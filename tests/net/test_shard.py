"""Sharded cache tier: shard server ops, client RPC, and the ring facade.

Shards run in-process on a background asyncio loop (real sockets on
127.0.0.1 ephemeral ports), so these tests exercise the actual line
protocol without subprocess overhead.  The load-bearing property is the
last test class: a dead shard degrades to a cache *miss*, never an error.
"""

import asyncio
import threading
import unittest

from repro.faults import FaultPlan, clear, install_plan
from repro.net.shard import (
    CacheShardServer,
    ShardClient,
    ShardedPlanCache,
    parse_endpoint,
)
from repro.service.request import PlanResponse


class _ShardFixture:
    """One CacheShardServer on its own event-loop thread.

    ``start()`` already makes the asyncio server accept connections, so the
    loop just runs until :meth:`stop`.  Teardown cancels the per-connection
    handler tasks *before* closing the server — that sends FIN to any
    keep-alive clients immediately (which is what the dead-shard test needs)
    and keeps ``wait_closed`` from blocking on open connections.
    """

    def __init__(self, capacity: int = 64) -> None:
        self.server = CacheShardServer(capacity=capacity)
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        assert self._ready.wait(timeout=5.0), "shard did not start"

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self._ready.set()
        self.loop.run_forever()
        tasks = asyncio.all_tasks(self.loop)
        for task in tasks:
            task.cancel()
        if tasks:
            self.loop.run_until_complete(
                asyncio.gather(*tasks, return_exceptions=True)
            )
        self.loop.run_until_complete(self.server.stop())
        self.loop.close()

    @property
    def endpoint(self) -> str:
        return f"127.0.0.1:{self.server.port}"

    def stop(self) -> None:
        if self.loop.is_running():
            self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=5.0)


def _response(request_id: str = "orig", status: str = "ok") -> PlanResponse:
    return PlanResponse(request_id=request_id, status=status, success=True,
                        path_cost=2.5, path=[[0.0, 0.0], [1.0, 1.0]])


class TestParseEndpoint(unittest.TestCase):
    def test_round_trip(self):
        self.assertEqual(parse_endpoint("127.0.0.1:9001"), ("127.0.0.1", 9001))

    def test_rejects_garbage(self):
        for bad in ("localhost", ":9001", "host:", "host:abc"):
            with self.assertRaises(ValueError):
                parse_endpoint(bad)


class TestShardServerOps(unittest.TestCase):
    """Direct op dispatch (no sockets): the shard's whole vocabulary."""

    def setUp(self):
        self.server = CacheShardServer(capacity=4)

    def test_ping(self):
        self.assertTrue(self.server.handle({"op": "ping"})["ok"])

    def test_get_miss_then_put_then_hit(self):
        self.assertFalse(self.server.handle({"op": "get", "key": "k"})["hit"])
        from repro.net.wire import response_to_wire

        self.server.handle({"op": "put", "key": "k",
                            "response": response_to_wire(_response())})
        reply = self.server.handle({"op": "get", "key": "k",
                                    "request_id": "req-2"})
        self.assertTrue(reply["hit"])
        # PlanCache relabels hits for the requester and flags them.
        self.assertEqual(reply["response"]["request_id"], "req-2")
        self.assertTrue(reply["response"]["cache_hit"])

    def test_stats_and_clear(self):
        stats = self.server.handle({"op": "stats"})["stats"]
        self.assertEqual(stats["size"], 0)
        self.assertIn("requests", stats)
        self.assertTrue(self.server.handle({"op": "clear"})["ok"])

    def test_unknown_op_is_answered_not_fatal(self):
        reply = self.server.handle({"op": "explode"})
        self.assertFalse(reply["ok"])
        self.assertIn("unknown op", reply["error"])


class TestShardClient(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.fixture = _ShardFixture()

    @classmethod
    def tearDownClass(cls):
        cls.fixture.stop()

    def test_ping_over_the_socket(self):
        client = ShardClient(self.fixture.endpoint)
        try:
            self.assertTrue(client.ping())
        finally:
            client.close()

    def test_put_get_round_trip_over_the_socket(self):
        client = ShardClient(self.fixture.endpoint)
        try:
            from repro.net.wire import response_to_wire

            client.call({"op": "put", "key": "sock-key",
                         "response": response_to_wire(_response())})
            reply = client.call({"op": "get", "key": "sock-key",
                                 "request_id": "sock-req"})
            self.assertTrue(reply["hit"])
            self.assertEqual(reply["response"]["request_id"], "sock-req")
        finally:
            client.close()

    def test_refused_op_raises_connection_error(self):
        client = ShardClient(self.fixture.endpoint)
        try:
            with self.assertRaises(ConnectionError):
                client.call({"op": "nope"})
        finally:
            client.close()

    def test_dead_endpoint_raises(self):
        client = ShardClient("127.0.0.1:1", timeout_s=0.5)
        with self.assertRaises(OSError):
            client.ping()


class TestShardedPlanCache(unittest.TestCase):
    def setUp(self):
        self.fixtures = [_ShardFixture(), _ShardFixture()]
        self.tier = ShardedPlanCache([f.endpoint for f in self.fixtures])

    def tearDown(self):
        self.tier.close()
        for fixture in self.fixtures:
            fixture.stop()
        clear()  # drop any fault plan a test installed

    def test_needs_at_least_one_endpoint(self):
        with self.assertRaises(ValueError):
            ShardedPlanCache([])

    def test_round_trip_and_key_spread(self):
        keys = [f"tier-key-{i}" for i in range(40)]
        for key in keys:
            self.tier.put(key, _response())
        for key in keys:
            hit = self.tier.get(key, request_id=f"r-{key}")
            self.assertIsNotNone(hit)
            self.assertTrue(hit.cache_hit)
            self.assertEqual(hit.request_id, f"r-{key}")
        stats = self.tier.stats()
        self.assertTrue(stats["sharded"])
        self.assertEqual(stats["hits"], len(keys))
        self.assertEqual(stats["size"], len(keys))
        # Consistent hashing spreads 40 keys over both shards.
        sizes = [s["size"] for s in stats["shards"].values()]
        self.assertEqual(len(sizes), 2)
        self.assertTrue(all(size > 0 for size in sizes), stats["shards"])

    def test_miss_is_counted(self):
        self.assertIsNone(self.tier.get("never-stored"))
        self.assertEqual(self.tier.misses, 1)
        self.assertEqual(self.tier.hit_rate, 0.0)

    def test_clear_empties_every_shard(self):
        for i in range(10):
            self.tier.put(f"c-{i}", _response())
        self.tier.clear()
        self.assertEqual(self.tier.stats()["size"], 0)

    def test_dead_shard_degrades_to_miss(self):
        # Kill one shard, then look up keys it owns: the facade must
        # answer None (a miss) and count the error — never raise.
        keys = [f"death-{i}" for i in range(30)]
        for key in keys:
            self.tier.put(key, _response())
        victim = self.fixtures[0].endpoint
        self.fixtures[0].stop()
        owned = [k for k in keys if self.tier.ring.node_for(k) == victim]
        self.assertTrue(owned, "test needs at least one key on the victim")
        for key in owned:
            self.assertIsNone(self.tier.get(key))
        self.assertGreaterEqual(self.tier.shard_errors, len(owned))
        # Survivor keys still hit; the dead shard shows as unreachable.
        for key in keys:
            if key not in owned:
                self.assertIsNotNone(self.tier.get(key))
        self.assertTrue(self.tier.stats()["shards"][victim].get("unreachable"))

    def test_reshard_add_and_remove(self):
        extra = _ShardFixture()
        try:
            self.tier.add_shard(extra.endpoint)
            self.assertIn(extra.endpoint, self.tier.endpoints)
            self.tier.put("after-join", _response())
            self.assertIsNotNone(self.tier.get("after-join"))
            self.tier.remove_shard(extra.endpoint)
            self.assertNotIn(extra.endpoint, self.tier.endpoints)
        finally:
            extra.stop()

    def test_shard_rpc_fault_site_degrades_to_miss(self):
        # A deterministic net.shard_rpc drop makes the next RPC fail; the
        # facade must absorb it as a miss (and planning would proceed).
        self.tier.put("faulted-key", _response())
        install_plan(FaultPlan.from_spec("net.shard_rpc:drop:max=1"),
                     scope="test")
        try:
            self.assertIsNone(self.tier.get("faulted-key"))
            self.assertEqual(self.tier.shard_errors, 1)
        finally:
            clear()
        # Fault exhausted (max=1): the tier heals on the next lookup.
        self.assertIsNotNone(self.tier.get("faulted-key"))


if __name__ == "__main__":
    unittest.main()
