"""Wire-format round trips: the HTTP payload schema, pinned.

These tests are the contract for ``POST /plan`` bodies and response
envelopes — every terminal status from the service taxonomy (including
``degraded``) must survive ``response_to_wire`` -> JSON ->
``response_from_wire`` byte-identically, and both request forms (full
task+config and compact spec) must hash to the same cache key after a
round trip, since that equality is what lets front ends share a tier.
"""

import json
import unittest

from repro.errors import InvalidRequest
from repro.net.wire import (
    HTTP_STATUS_FOR,
    WIRE_VERSION,
    error_body,
    http_status_for,
    request_from_wire,
    request_to_wire,
    response_from_wire,
    response_to_wire,
    spec_to_request,
)
from repro.service.request import STATUSES, PlanResponse

SPEC = {"robot": "mobile2d", "obstacles": 8, "seed": 7, "samples": 120}


def _json_round_trip(payload):
    """Simulate the HTTP hop: encode to bytes, decode back."""
    return json.loads(json.dumps(payload).encode("utf-8"))


class TestRequestWire(unittest.TestCase):
    def test_spec_form_expands_deterministically(self):
        a = spec_to_request(dict(SPEC), request_id="a")
        b = spec_to_request(dict(SPEC), request_id="b")
        self.assertEqual(a.cache_key(), b.cache_key())

    def test_different_seeds_are_different_work(self):
        a = spec_to_request(dict(SPEC))
        b = spec_to_request(dict(SPEC, seed=8))
        self.assertNotEqual(a.cache_key(), b.cache_key())

    def test_full_form_round_trip_preserves_cache_key(self):
        original = spec_to_request(dict(SPEC, lanes=2, smooth=True,
                                        timeout_s=9.5), request_id="rt-1")
        data = _json_round_trip(request_to_wire(original))
        decoded = request_from_wire(data)
        self.assertEqual(decoded.cache_key(), original.cache_key())
        self.assertEqual(decoded.request_id, "rt-1")
        self.assertEqual(decoded.lanes, 2)
        self.assertTrue(decoded.smooth)
        self.assertEqual(decoded.timeout_s, 9.5)

    def test_spec_body_and_full_body_agree(self):
        # The two request shapes the front end accepts must describe the
        # same work when built from the same spec.
        via_spec = request_from_wire({"spec": dict(SPEC)})
        via_full = request_from_wire(
            _json_round_trip(request_to_wire(spec_to_request(dict(SPEC))))
        )
        self.assertEqual(via_spec.cache_key(), via_full.cache_key())

    def test_deadline_spec_sets_anytime_config(self):
        request = spec_to_request(dict(SPEC, deadline_s=0.05))
        self.assertEqual(request.config.deadline_s, 0.05)

    def test_unknown_spec_key_is_invalid(self):
        with self.assertRaises(InvalidRequest):
            spec_to_request(dict(SPEC, samplez=100))

    def test_unknown_robot_is_invalid(self):
        # Through the HTTP-facing decoder: a typo'd robot must degrade to
        # InvalidRequest (-> 400), not escape as a KeyError (-> 500).
        with self.assertRaises(InvalidRequest):
            request_from_wire({"spec": dict(SPEC, robot="hexapod9000")})

    def test_non_object_bodies_are_invalid(self):
        for body in ([1, 2], "text", 42, None):
            with self.assertRaises(InvalidRequest):
                request_from_wire(body)

    def test_body_without_task_or_spec_is_invalid(self):
        with self.assertRaises(InvalidRequest):
            request_from_wire({"lanes": 2})

    def test_non_object_spec_is_invalid(self):
        with self.assertRaises(InvalidRequest):
            request_from_wire({"spec": [1, 2, 3]})

    def test_bad_config_field_is_invalid_not_a_crash(self):
        full = request_to_wire(spec_to_request(dict(SPEC)))
        full["config"]["no_such_knob"] = 1
        with self.assertRaises(InvalidRequest):
            request_from_wire(_json_round_trip(full))


class TestResponseWire(unittest.TestCase):
    def _response_for(self, status):
        return PlanResponse(
            request_id=f"resp-{status}",
            status=status,
            success=status in ("ok", "degraded"),
            path_cost=3.25 if status == "ok" else None,
            path=[[0.0, 0.0], [1.0, 2.0]] if status == "ok" else [],
            op_events={"collision_check": 12},
            op_macs={"collision_check": 480.0},
            plan_seconds=0.012,
            degraded_reason="deadline" if status == "degraded" else None,
            best_goal_distance=0.8 if status == "degraded" else None,
            error=None if status in ("ok", "degraded") else f"boom:{status}",
            attempts=2,
        )

    def test_every_terminal_status_round_trips(self):
        # Includes status="degraded" and the whole error taxonomy
        # (error/timeout/crash/poison/invalid).
        for status in STATUSES:
            original = self._response_for(status)
            wire = _json_round_trip(response_to_wire(original))
            self.assertEqual(wire["wire_version"], WIRE_VERSION)
            decoded = response_from_wire(wire)
            self.assertEqual(decoded.to_dict(), original.to_dict(),
                             f"status {status!r} did not round-trip")

    def test_degraded_fields_survive_the_wire(self):
        decoded = response_from_wire(
            _json_round_trip(response_to_wire(self._response_for("degraded")))
        )
        self.assertEqual(decoded.status, "degraded")
        self.assertEqual(decoded.degraded_reason, "deadline")
        self.assertEqual(decoded.best_goal_distance, 0.8)

    def test_path_can_be_elided(self):
        wire = response_to_wire(self._response_for("ok"), include_path=False)
        self.assertNotIn("path", wire)
        self.assertEqual(response_from_wire(_json_round_trip(wire)).path, [])

    def test_missing_wire_version_is_tolerated(self):
        wire = response_to_wire(self._response_for("ok"))
        del wire["wire_version"]
        self.assertEqual(response_from_wire(wire).status, "ok")

    def test_newer_wire_version_is_rejected(self):
        wire = response_to_wire(self._response_for("ok"))
        wire["wire_version"] = WIRE_VERSION + 1
        with self.assertRaises(ValueError):
            response_from_wire(wire)

    def test_unknown_status_is_rejected(self):
        wire = response_to_wire(self._response_for("ok"))
        wire["status"] = "sideways"
        with self.assertRaises(ValueError):
            response_from_wire(wire)

    def test_non_object_response_is_rejected(self):
        with self.assertRaises(ValueError):
            response_from_wire([1, 2, 3])


class TestHttpStatusMapping(unittest.TestCase):
    def test_every_service_status_has_an_http_code(self):
        for status in STATUSES:
            self.assertIn(status, HTTP_STATUS_FOR)

    def test_mapping_semantics(self):
        self.assertEqual(http_status_for("ok"), 200)
        # degraded is a served best-so-far result, not an error
        self.assertEqual(http_status_for("degraded"), 200)
        self.assertEqual(http_status_for("invalid"), 400)
        self.assertEqual(http_status_for("timeout"), 504)
        for status in ("crash", "error", "poison"):
            self.assertEqual(http_status_for(status), 500)

    def test_unknown_status_maps_to_500(self):
        self.assertEqual(http_status_for("??"), 500)

    def test_shed_has_no_service_status(self):
        # 429 happens before a request becomes a job — it must never
        # appear in the terminal-status map.
        self.assertNotIn(429, HTTP_STATUS_FOR.values())


class TestErrorBody(unittest.TestCase):
    def test_error_body_is_a_valid_response_envelope(self):
        body = _json_round_trip(error_body("invalid", "bad JSON", "req-9"))
        decoded = response_from_wire(body)
        self.assertEqual(decoded.status, "invalid")
        self.assertEqual(decoded.error, "bad JSON")
        self.assertEqual(decoded.request_id, "req-9")


if __name__ == "__main__":
    unittest.main()
