"""Consistent-hash ring: distribution uniformity and bounded remap.

SHA-256 placement makes every assertion here fully deterministic — the
bounds are not flaky tolerances, they pin the actual ring geometry for
the default vnode count.
"""

import unittest

from repro.net.hashring import DEFAULT_VIRTUAL_NODES, HashRing, spawn_ring

KEYS = [f"key-{i}" for i in range(6000)]
NODES = ["127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003"]


class TestRingBasics(unittest.TestCase):
    def test_topology_accessors(self):
        ring = HashRing(NODES)
        self.assertEqual(len(ring), 3)
        self.assertEqual(ring.nodes, NODES)
        self.assertIn(NODES[0], ring)
        self.assertNotIn("127.0.0.1:9999", ring)

    def test_duplicate_add_rejected(self):
        ring = HashRing(NODES)
        with self.assertRaises(ValueError):
            ring.add_node(NODES[0])

    def test_remove_unknown_rejected(self):
        ring = HashRing(NODES)
        with self.assertRaises(ValueError):
            ring.remove_node("127.0.0.1:9999")

    def test_empty_ring_has_no_owner(self):
        with self.assertRaises(ValueError):
            HashRing().node_for("anything")

    def test_vnode_count_validated(self):
        with self.assertRaises(ValueError):
            HashRing(NODES, virtual_nodes=0)

    def test_placement_is_deterministic_across_instances(self):
        # hash() is process-salted; the ring must not be.  Two rings built
        # from the same topology agree on every key.
        a = HashRing(NODES)
        b = HashRing(list(NODES))
        for key in KEYS[:500]:
            self.assertEqual(a.node_for(key), b.node_for(key))

    def test_single_node_owns_everything(self):
        ring = HashRing([NODES[0]])
        self.assertTrue(all(ring.node_for(k) == NODES[0] for k in KEYS[:100]))


class TestDistributionUniformity(unittest.TestCase):
    def test_keys_spread_evenly_across_shards(self):
        ring = HashRing(NODES)
        histogram = ring.distribution(KEYS)
        self.assertEqual(sum(histogram.values()), len(KEYS))
        mean = len(KEYS) / len(NODES)
        for node, count in histogram.items():
            self.assertGreater(count, 0.5 * mean,
                               f"{node} badly underloaded: {histogram}")
            self.assertLess(count, 1.6 * mean,
                            f"{node} badly overloaded: {histogram}")

    def test_more_vnodes_do_not_break_coverage(self):
        ring = HashRing(NODES, virtual_nodes=4 * DEFAULT_VIRTUAL_NODES)
        histogram = ring.distribution(KEYS)
        self.assertTrue(all(count > 0 for count in histogram.values()))


class TestBoundedRemap(unittest.TestCase):
    """The consistent-hashing contract: reshard moves ~1/(N+1), not all."""

    def test_adding_a_shard_remaps_a_bounded_fraction(self):
        before = HashRing(NODES)
        after = spawn_ring(before, extra=["127.0.0.1:9004"])
        fraction = before.remap_fraction(after, KEYS)
        # Expectation is 1/4; a modulo-hash scheme would remap ~3/4.
        self.assertGreater(fraction, 0.05)
        self.assertLess(fraction, 0.45)

    def test_moved_keys_all_land_on_the_new_shard(self):
        new = "127.0.0.1:9004"
        before = HashRing(NODES)
        after = spawn_ring(before, extra=[new])
        for key in KEYS:
            owner_before = before.node_for(key)
            owner_after = after.node_for(key)
            if owner_after != owner_before:
                self.assertEqual(owner_after, new,
                                 "a key moved between surviving shards")

    def test_removing_a_shard_only_moves_its_own_keys(self):
        departing = NODES[2]
        before = HashRing(NODES)
        after = HashRing(NODES)
        after.remove_node(departing)
        for key in KEYS:
            owner_before = before.node_for(key)
            if owner_before == departing:
                self.assertNotEqual(after.node_for(key), departing)
            else:
                self.assertEqual(after.node_for(key), owner_before,
                                 "a surviving shard lost a key it owned")

    def test_remove_then_readd_restores_placement(self):
        ring = HashRing(NODES)
        original = {key: ring.node_for(key) for key in KEYS[:1000]}
        ring.remove_node(NODES[1])
        ring.add_node(NODES[1])
        for key, owner in original.items():
            self.assertEqual(ring.node_for(key), owner)

    def test_remap_fraction_of_identical_rings_is_zero(self):
        ring = HashRing(NODES)
        self.assertEqual(ring.remap_fraction(HashRing(NODES), KEYS[:200]), 0.0)
        self.assertEqual(ring.remap_fraction(ring, []), 0.0)


if __name__ == "__main__":
    unittest.main()
