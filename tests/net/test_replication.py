"""Replicated shard tier: R-way writes, read failover, anti-entropy.

The load-bearing properties: with ``replication=2`` a dead primary
degrades to a *replica-served hit* (tagged ``via_replica``) instead of a
miss, a rejoining shard is backfilled with the entries it owns, and the
``shard.replicate`` fault site degrades a replica write to a counted
error — never an exception on the planning path.
"""

import unittest

from repro.faults import FaultPlan, clear, install_plan
from repro.net.hashring import HashRing
from repro.net.shard import ShardedPlanCache

from tests.net.test_shard import _response, _ShardFixture


class TestNodesFor(unittest.TestCase):
    def test_first_node_matches_node_for(self):
        ring = HashRing(["a:1", "b:1", "c:1"])
        for key in ("k1", "k2", "k3", "plan-key"):
            self.assertEqual(ring.nodes_for(key, 1), [ring.node_for(key)])

    def test_returns_distinct_successors(self):
        ring = HashRing(["a:1", "b:1", "c:1"])
        owners = ring.nodes_for("some-key", 2)
        self.assertEqual(len(owners), 2)
        self.assertEqual(len(set(owners)), 2)

    def test_count_clamped_to_ring_size(self):
        ring = HashRing(["a:1", "b:1"])
        self.assertEqual(len(ring.nodes_for("k", 5)), 2)

    def test_empty_ring_and_bad_count_raise(self):
        ring = HashRing(["a:1"])
        ring.remove_node("a:1")
        with self.assertRaises(ValueError):
            ring.nodes_for("k", 1)
        with self.assertRaises(ValueError):
            HashRing(["a:1"]).nodes_for("k", 0)


class TestReplicatedTier(unittest.TestCase):
    def setUp(self):
        self.fixtures = [_ShardFixture(), _ShardFixture()]
        self.tier = ShardedPlanCache(
            [f.endpoint for f in self.fixtures], replication=2
        )

    def tearDown(self):
        self.tier.close()
        for fixture in self.fixtures:
            fixture.stop()
        clear()

    def test_replication_validated(self):
        with self.assertRaises(ValueError):
            ShardedPlanCache(["a:1"], replication=0)

    def test_put_writes_every_replica(self):
        self.tier.put("repl-key", _response())
        for fixture in self.fixtures:
            self.assertIn("repl-key", fixture.server.cache.keys())

    def test_dead_primary_fails_over_to_replica_hit(self):
        keys = [f"fo-{i}" for i in range(20)]
        for key in keys:
            self.tier.put(key, _response())
        victim = self.fixtures[0].endpoint
        owned = [k for k in keys if self.tier.replicas_for(k)[0] == victim]
        self.assertTrue(owned, "test needs a key whose primary dies")
        self.fixtures[0].stop()
        for key in owned:
            hit = self.tier.get(key, request_id=f"r-{key}")
            self.assertIsNotNone(hit, f"{key} lost despite a live replica")
            self.assertTrue(hit.cache_hit)
            self.assertTrue(hit.via_replica)
        self.assertEqual(self.tier.failovers, len(owned))
        self.assertEqual(self.tier.replica_hits, len(owned))
        # Keys whose primary survived are served normally, untagged.
        for key in keys:
            if key not in owned:
                hit = self.tier.get(key)
                self.assertIsNotNone(hit)
                self.assertFalse(hit.via_replica)

    def test_alive_but_empty_primary_is_a_miss_not_a_failover(self):
        # The first successful reply decides: an alive primary that
        # simply lacks the key answers the lookup (miss) — the tier must
        # not go fishing in replicas behind a healthy owner's back.
        self.assertIsNone(self.tier.get("never-stored"))
        self.assertEqual(self.tier.failovers, 0)
        self.assertEqual(self.tier.misses, 1)

    def test_backfill_restores_owned_keys_after_rejoin(self):
        keys = [f"bf-{i}" for i in range(20)]
        for key in keys:
            self.tier.put(key, _response())
        # Simulate a shard that lost its state (restarted empty).
        rejoined = self.fixtures[1].endpoint
        self.fixtures[1].server.cache.clear()
        copied = self.tier.backfill(rejoined)
        # Both shards replicate everything at R=2 over 2 nodes.
        self.assertEqual(copied, len(keys))
        self.assertEqual(
            sorted(self.fixtures[1].server.cache.keys()), sorted(keys)
        )
        self.assertEqual(self.tier.backfilled, copied)

    def test_backfill_rejects_unknown_endpoint(self):
        with self.assertRaises(ValueError):
            self.tier.backfill("127.0.0.1:1")

    def test_probe_after_down_mark_triggers_backfill(self):
        # Down-mark the second shard (dead socket), repopulate via the
        # survivor, restart the "dead" one empty: the first successful
        # probe must mark it up and anti-entropy must backfill it.
        tier = ShardedPlanCache(
            [f.endpoint for f in self.fixtures], replication=2,
            retry_down_s=60.0,
        )
        try:
            tier.put("pre-key", _response())
            victim_fixture = self.fixtures[1]
            victim = victim_fixture.endpoint
            victim_fixture.server.cache.clear()
            tier._mark_down(victim, op="test")
            self.assertIn(victim, tier.stats()["down"])
            tier._down[victim] = 0.0  # probe window elapsed
            tier.put("post-key", _response())  # probe succeeds -> up
            self.assertNotIn(victim, tier.stats()["down"])
            self.assertIn("pre-key", victim_fixture.server.cache.keys())
        finally:
            tier.close()

    def test_replicate_fault_site_degrades_to_counted_error(self):
        install_plan(FaultPlan.from_spec("shard.replicate:drop:max=1"),
                     scope="test")
        try:
            self.tier.put("half-replicated", _response())
        finally:
            clear()
        self.assertEqual(self.tier.shard_errors, 1)
        # The primary write landed; only the replica copy was lost.
        primary = self.tier.replicas_for("half-replicated")[0]
        holders = [
            f.endpoint for f in self.fixtures
            if "half-replicated" in f.server.cache.keys()
        ]
        self.assertEqual(holders, [primary])
        # And the entry is still servable (from its primary).
        self.assertIsNotNone(self.tier.get("half-replicated"))

    def test_stats_expose_replication_counters(self):
        stats = self.tier.stats()
        for key in ("replication", "failovers", "replica_hits",
                    "backfilled", "down"):
            self.assertIn(key, stats)
        self.assertEqual(stats["replication"], 2)


if __name__ == "__main__":
    unittest.main()
