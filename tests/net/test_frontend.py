"""Front-end HTTP server: routes, admission control, and async results.

The server under test runs in-process (inline planning, no worker
subprocesses) on a background event-loop thread with real sockets, so the
HTTP parsing, keep-alive, and backpressure paths are the production ones.
The overload tests pin the acceptance criterion: saturation surfaces as
``429`` + ``Retry-After``, never as errors or a deadlock.
"""

import asyncio
import http.client
import json
import tempfile
import threading
import time
import unittest

from repro.net.frontend import FrontEndConfig, PlanFrontEnd
from repro.service.breaker import OPEN
from repro.service.journal import scan_journal

SPEC_BODY = {"spec": {"robot": "mobile2d", "obstacles": 4, "seed": 3,
                      "samples": 60}}


class _FrontEndFixture:
    """One PlanFrontEnd on its own event-loop thread (inline planning)."""

    def __init__(self, **overrides) -> None:
        overrides.setdefault("workers", 0)
        overrides.setdefault("port", 0)
        self.front = PlanFrontEnd(FrontEndConfig(**overrides))
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        assert self._ready.wait(timeout=5.0), "front end did not start"

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.front.start())
        self._ready.set()
        self.loop.run_forever()
        tasks = asyncio.all_tasks(self.loop)
        for task in tasks:
            task.cancel()
        if tasks:
            self.loop.run_until_complete(
                asyncio.gather(*tasks, return_exceptions=True)
            )
        self.loop.run_until_complete(self.front.stop())
        self.loop.close()

    def stop(self) -> None:
        if self.loop.is_running():
            self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10.0)

    def request(self, method: str, path: str, body=None):
        conn = http.client.HTTPConnection("127.0.0.1", self.front.port,
                                          timeout=30.0)
        try:
            payload = json.dumps(body).encode() if body is not None else None
            conn.request(method, path, body=payload,
                         headers={"Content-Type": "application/json"})
            raw = conn.getresponse()
            data = raw.read()
            headers = dict(raw.getheaders())
        finally:
            conn.close()
        try:
            decoded = json.loads(data) if data else {}
        except json.JSONDecodeError:
            decoded = {"raw": data.decode("utf-8", "replace")}
        return raw.status, decoded, headers


class TestRoutes(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.fx = _FrontEndFixture()

    @classmethod
    def tearDownClass(cls):
        cls.fx.stop()

    def test_plan_synchronous_ok(self):
        code, body, _ = self.fx.request("POST", "/plan", SPEC_BODY)
        self.assertEqual(code, 200)
        self.assertEqual(body["status"], "ok")
        self.assertEqual(body["wire_version"], 1)
        self.assertTrue(body["request_id"].startswith("net-"))

    def test_repeat_request_is_a_cache_hit(self):
        body = {"spec": dict(SPEC_BODY["spec"], seed=11)}
        first = self.fx.request("POST", "/plan", body)[1]
        self.assertFalse(first["cache_hit"])
        second = self.fx.request("POST", "/plan", body)[1]
        self.assertTrue(second["cache_hit"])

    def test_async_mode_roundtrip(self):
        code, body, _ = self.fx.request("POST", "/plan?wait=0", SPEC_BODY)
        self.assertEqual(code, 202)
        result_id = body["id"]
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            code, body, _ = self.fx.request("GET", f"/result/{result_id}")
            if code != 202:
                break
            time.sleep(0.05)
        self.assertEqual(code, 200)
        self.assertEqual(body["status"], "ok")
        self.assertEqual(body["request_id"], result_id)

    def test_unknown_result_id_is_404(self):
        code, _, _ = self.fx.request("GET", "/result/net-999999")
        self.assertEqual(code, 404)

    def test_bad_json_is_400(self):
        conn = http.client.HTTPConnection("127.0.0.1", self.fx.front.port,
                                          timeout=10.0)
        try:
            conn.request("POST", "/plan", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            raw = conn.getresponse()
            body = json.loads(raw.read())
        finally:
            conn.close()
        self.assertEqual(raw.status, 400)
        self.assertEqual(body["status"], "invalid")

    def test_bad_robot_is_400_invalid(self):
        code, body, _ = self.fx.request(
            "POST", "/plan", {"spec": {"robot": "nope", "seed": 1}}
        )
        self.assertEqual(code, 400)
        self.assertEqual(body["status"], "invalid")

    def test_healthz_shape(self):
        code, body, _ = self.fx.request("GET", "/healthz")
        self.assertEqual(code, 200)
        self.assertEqual(body["status"], "ok")
        for key in ("queue_depth", "inflight", "shed", "cache", "breaker"):
            self.assertIn(key, body)

    def test_metrics_route_answers(self):
        code, _, headers = self.fx.request("GET", "/metrics")
        self.assertEqual(code, 200)
        self.assertIn("text/plain", headers.get("Content-Type", ""))

    def test_unknown_route_is_404(self):
        self.assertEqual(self.fx.request("GET", "/nope")[0], 404)

    def test_wrong_method_is_405(self):
        self.assertEqual(self.fx.request("GET", "/plan")[0], 405)
        self.assertEqual(self.fx.request("POST", "/healthz")[0], 405)


class TestAdmissionControl(unittest.TestCase):
    """The shed paths, driven deterministically (no timing races)."""

    def _handle(self, front, query="", body=b"{}"):
        return asyncio.run(front._handle_plan(query, body))

    def test_queue_depth_shed_is_429_with_retry_after(self):
        front = PlanFrontEnd(FrontEndConfig(workers=0, max_queue_depth=1))
        # Fill the intake without running the engine thread: depth == 1.
        front.engine.intake.put(object())
        code, payload, headers = self._handle(front)
        self.assertEqual(code, 429)
        self.assertTrue(payload["shed"])
        self.assertEqual(payload["reason"], "queue")
        self.assertIn("Retry-After", headers)
        self.assertGreaterEqual(int(headers["Retry-After"]), 1)
        self.assertEqual(front.shed["queue"], 1)

    def test_inflight_shed_is_429(self):
        front = PlanFrontEnd(FrontEndConfig(workers=0, max_inflight=1))
        front.inflight = 2
        code, payload, headers = self._handle(front)
        self.assertEqual(code, 429)
        self.assertEqual(payload["reason"], "inflight")
        self.assertIn("Retry-After", headers)

    def test_open_breaker_sheds_at_the_edge(self):
        front = PlanFrontEnd(FrontEndConfig(workers=0))

        class _StubBreaker:
            enabled = True
            state = OPEN
            cooldown_s = 4.0
            opened_at = time.monotonic()

        class _StubPool:
            breaker = _StubBreaker()

        front.service._pool = _StubPool()
        try:
            code, payload, headers = self._handle(front)
        finally:
            front.service._pool = None
        self.assertEqual(code, 429)
        self.assertEqual(payload["reason"], "breaker")
        # Retry-After reflects the breaker's remaining cooldown.
        self.assertGreaterEqual(int(headers["Retry-After"]), 1)
        self.assertLessEqual(int(headers["Retry-After"]), 4)

    def test_oversized_body_is_413(self):
        front = PlanFrontEnd(FrontEndConfig(workers=0))
        code, payload, _ = self._handle(front, body=b"__too_large__")
        self.assertEqual(code, 413)
        self.assertEqual(payload["status"], "invalid")


class TestReadinessAndDrain(unittest.TestCase):
    """Liveness vs readiness split, and the SIGTERM drain path."""

    def test_liveness_always_200_readiness_gates_on_drain(self):
        front = PlanFrontEnd(FrontEndConfig(workers=0))  # no journal: ready
        code, body, _ = front._handle_health("")
        self.assertEqual(code, 200)
        self.assertTrue(body["ready"])
        self.assertEqual(front._handle_health("ready=1")[0], 200)
        front.draining = True
        code, body, headers = front._handle_health("ready=1")
        self.assertEqual(code, 503)
        self.assertEqual(body["status"], "draining")
        self.assertIn("Retry-After", headers)
        # Liveness keeps answering 200: the process is alive, just
        # refusing new traffic — restart orchestrators key off the split.
        self.assertEqual(front._handle_health("")[0], 200)

    def test_not_ready_until_journal_recovery_completes(self):
        with tempfile.TemporaryDirectory() as tmp:
            front = PlanFrontEnd(FrontEndConfig(workers=0, journal_dir=tmp))
            try:
                self.assertFalse(front.ready.is_set())
                code, body, _ = front._handle_health("ready=1")
                self.assertEqual(code, 503)
                self.assertEqual(body["status"], "starting")
                front._recover()  # the engine's prepare step, run inline
                self.assertTrue(front.ready.is_set())
                code, body, _ = front._handle_health("ready=1")
                self.assertEqual(code, 200)
                self.assertTrue(body["recovery"]["enabled"])
            finally:
                front.service.close()
                front.service.journal.close()

    def test_draining_plan_requests_are_503_with_retry_after(self):
        front = PlanFrontEnd(FrontEndConfig(workers=0))
        front.draining = True
        code, payload, headers = asyncio.run(front._handle_plan("", b"{}"))
        self.assertEqual(code, 503)
        self.assertTrue(payload["shed"])
        self.assertEqual(payload["reason"], "draining")
        self.assertIn("Retry-After", headers)
        self.assertEqual(front.shed["draining"], 1)

    def test_drain_and_stop_marks_clean_shutdown(self):
        with tempfile.TemporaryDirectory() as tmp:
            fx = _FrontEndFixture(journal_dir=tmp, drain_deadline_s=10.0)
            try:
                self.assertTrue(fx.front.ready.wait(timeout=10.0),
                                "recovery never opened readiness")
                code, body, _ = fx.request("POST", "/plan", SPEC_BODY)
                self.assertEqual(code, 200)
                future = asyncio.run_coroutine_threadsafe(
                    fx.front.drain_and_stop(), fx.loop
                )
                self.assertTrue(future.result(timeout=15.0),
                                "drain missed its deadline while idle")
            finally:
                fx.stop()
            records, torn = scan_journal(tmp)
            kinds = [r["kind"] for r in records]
            self.assertFalse(torn)
            self.assertIn("admit", kinds)
            self.assertEqual(kinds[-1], "clean_shutdown")


class TestOverloadEndToEnd(unittest.TestCase):
    """Acceptance criterion: saturation -> 429s, no errors, no deadlock."""

    def test_saturated_engine_sheds_and_recovers(self):
        fx = _FrontEndFixture(max_queue_depth=1, retry_after_s=1.0)
        gate = threading.Event()
        original = fx.front.service.run_batch

        def gated(requests):
            gate.wait(timeout=30.0)
            return original(requests)

        fx.front.service.run_batch = gated
        try:
            # First request is admitted (async mode) and parks the engine
            # behind the gate, pinning queue depth at max.
            code, body, _ = fx.request("POST", "/plan?wait=0", SPEC_BODY)
            self.assertEqual(code, 202)
            result_id = body["id"]
            deadline = time.monotonic() + 5.0
            while fx.front.engine.depth() < 1:
                self.assertLess(time.monotonic(), deadline,
                                "engine never picked up the parked job")
                time.sleep(0.01)

            # Burst while saturated: every response is a clean 429 with
            # Retry-After — nothing errors, nothing blocks.
            for _ in range(8):
                code, payload, headers = fx.request("POST", "/plan",
                                                    SPEC_BODY)
                self.assertEqual(code, 429)
                self.assertTrue(payload["shed"])
                self.assertIn("Retry-After", headers)

            # Release the engine: the parked job completes and new
            # requests are admitted again — overload was transient.
            gate.set()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                code, body, _ = fx.request("GET", f"/result/{result_id}")
                if code != 202:
                    break
                time.sleep(0.05)
            self.assertEqual(code, 200)
            self.assertEqual(body["status"], "ok")
            code, body, _ = fx.request("POST", "/plan", SPEC_BODY)
            self.assertEqual(code, 200)
        finally:
            gate.set()
            fx.stop()


if __name__ == "__main__":
    unittest.main()
