"""Traffic harness: arrival processes, mixes, pacing, and the report gate.

Everything here is socket-free: arrival samplers and report reduction are
pure functions of seeded RNG / synthetic records, so the tests pin the
harness semantics without load-dependent timing.
"""

import random
import unittest

from repro.net.traffic import (
    ARRIVALS,
    TrafficConfig,
    TrafficResult,
    _Pacer,
    build_report,
    check_report,
    make_arrivals,
)
from repro.workloads.mixes import TRAFFIC_MIXES, draw_spec, mix_names


class TestArrivals(unittest.TestCase):
    def test_uniform_gaps_are_constant(self):
        gap = make_arrivals("uniform", 50.0, random.Random(1))
        self.assertTrue(all(gap() == 0.02 for _ in range(10)))

    def test_poisson_mean_matches_rate(self):
        gap = make_arrivals("poisson", 100.0, random.Random(7))
        draws = [gap() for _ in range(20000)]
        mean = sum(draws) / len(draws)
        self.assertAlmostEqual(mean, 0.01, delta=0.001)
        self.assertTrue(all(d >= 0.0 for d in draws))

    def test_burst_pattern_preserves_mean_rate(self):
        gap = make_arrivals("burst", 80.0, random.Random(0))
        draws = [gap() for _ in range(16)]  # two full bursts of 8
        self.assertEqual(draws.count(0.0), 14)
        self.assertAlmostEqual(sum(draws), 16 / 80.0)

    def test_unknown_process_rejected(self):
        with self.assertRaises(ValueError):
            make_arrivals("fractal", 10.0, random.Random(0))

    def test_nonpositive_rate_rejected(self):
        with self.assertRaises(ValueError):
            make_arrivals("uniform", 0.0, random.Random(0))

    def test_registry_names(self):
        self.assertEqual(sorted(ARRIVALS), ["burst", "poisson", "uniform"])


class TestPacer(unittest.TestCase):
    def test_slots_are_strictly_increasing_and_claimed_once(self):
        pacer = _Pacer(lambda: 0.5, start=100.0)
        slots = [pacer.claim() for _ in range(5)]
        self.assertEqual(slots, [100.0, 100.5, 101.0, 101.5, 102.0])


class TestMixes(unittest.TestCase):
    def test_known_mixes_present(self):
        for name in ("smoke", "cold", "mixed", "deadline"):
            self.assertIn(name, mix_names())

    def test_draw_is_deterministic_given_the_rng(self):
        a = [draw_spec("mixed", random.Random(5)) for _ in range(20)]
        b = [draw_spec("mixed", random.Random(5)) for _ in range(20)]
        self.assertEqual(a, b)

    def test_draws_stay_inside_the_seed_pool(self):
        rng = random.Random(3)
        pool = TRAFFIC_MIXES["smoke"][0]["seed_pool"]
        for _ in range(200):
            spec = draw_spec("smoke", rng)
            self.assertIn("seed", spec)
            self.assertTrue(0 <= spec["seed"] < pool)

    def test_seed_base_offsets_the_pool(self):
        rng = random.Random(3)
        spec = draw_spec("smoke", rng, seed_base=10_000)
        self.assertGreaterEqual(spec["seed"], 10_000)

    def test_deadline_mix_carries_the_deadline(self):
        spec = draw_spec("deadline", random.Random(0))
        self.assertEqual(spec["deadline_s"], 0.05)

    def test_unknown_mix_rejected(self):
        with self.assertRaises(ValueError):
            draw_spec("nope", random.Random(0))


class TestTrafficConfig(unittest.TestCase):
    def test_open_loop_requires_rps(self):
        with self.assertRaises(ValueError):
            TrafficConfig(mode="open")

    def test_bad_mode_rejected(self):
        with self.assertRaises(ValueError):
            TrafficConfig(mode="sideways")

    def test_needs_urls(self):
        with self.assertRaises(ValueError):
            TrafficConfig(urls=())


def _result(records, transport_errors=0, duration_s=2.0):
    result = TrafficResult(records=records, started_at=0.0,
                           finished_at=duration_s,
                           transport_errors=transport_errors)
    return result


def _record(code, status="ok", latency_s=0.05, cache_hit=False):
    return {"code": code, "status": status, "latency_s": latency_s,
            "cache_hit": cache_hit}


class TestBuildReport(unittest.TestCase):
    def test_report_splits_served_shed_errors(self):
        records = (
            [_record(200, latency_s=0.010 * (i + 1)) for i in range(10)]
            + [_record(202, status=None)] * 2
            + [_record(429, status="invalid")] * 4
            + [_record(500, status="error"), _record(0, "transport_error")]
        )
        config = TrafficConfig(mode="closed", rps=50.0, mix="smoke")
        report = build_report(_result(records, transport_errors=1), config)
        self.assertEqual(report["requests"], 18)
        self.assertEqual(report["served"], 12)
        self.assertEqual(report["shed"], 4)
        self.assertEqual(report["errors"], 2)  # the 500 and the transport 0
        self.assertEqual(report["transport_errors"], 1)
        self.assertAlmostEqual(report["shed_rate"], 4 / 18, places=4)
        self.assertAlmostEqual(report["error_rate"], 2 / 18, places=4)
        self.assertEqual(report["goodput_rps"], 6.0)  # 12 served / 2 s
        self.assertEqual(report["by_code"]["429"], 4)
        self.assertIsNotNone(report["latency_ms"]["p50"])
        self.assertLessEqual(report["latency_ms"]["p50"],
                             report["latency_ms"]["p99"])
        self.assertLessEqual(report["latency_ms"]["p99"],
                             report["latency_ms"]["max"])

    def test_cache_hits_counted_from_served_only(self):
        records = [_record(200, cache_hit=True),
                   _record(429, cache_hit=True),  # shed: not counted
                   _record(200)]
        report = build_report(_result(records),
                              TrafficConfig(mode="closed", mix="smoke"))
        self.assertEqual(report["cache_hits"], 1)

    def test_empty_run_has_null_percentiles(self):
        report = build_report(_result([]), TrafficConfig(mode="closed"))
        self.assertEqual(report["requests"], 0)
        self.assertIsNone(report["latency_ms"]["p50"])

    def test_report_is_schema_stamped(self):
        report = build_report(_result([_record(200)]),
                              TrafficConfig(mode="closed"))
        self.assertEqual(report["schema"], 1)
        self.assertEqual(report["emitter"], "repro.net.traffic")

    def test_include_records_carries_per_request_rows(self):
        records = [_record(200), _record(429)]
        config = TrafficConfig(mode="closed", mix="smoke")
        compact = build_report(_result(records), config)
        self.assertNotIn("records", compact)
        full = build_report(_result(records), config, include_records=True)
        self.assertEqual(len(full["records"]), 2)
        self.assertEqual(full["records"][0]["code"], 200)

    def test_request_records_carry_workload_attributes(self):
        # The drill-down satellite: per-request rows must name the robot /
        # samples / deadline the spec asked for, so RCA can slice on them.
        from repro.net.traffic import _spec_attributes

        spec = {"robot": "xarm7", "obstacles": 16, "samples": 200,
                "seed": 3, "deadline_s": 0.05}
        attrs = _spec_attributes(spec)
        self.assertEqual(attrs["robot"], "xarm7")
        self.assertEqual(attrs["obstacles"], 16)
        self.assertEqual(attrs["samples"], 200)
        self.assertEqual(attrs["deadline"], "armed")
        self.assertEqual(_spec_attributes({"robot": "rozum"})["deadline"],
                         "none")


class TestCheckReport(unittest.TestCase):
    def _report(self, **overrides):
        records = [_record(200)] * 8 + [_record(429, status=None)] * 2
        report = build_report(_result(records), TrafficConfig(mode="closed"))
        report.update(overrides)
        return report

    def test_clean_report_passes(self):
        self.assertEqual(check_report(self._report()), [])

    def test_no_requests_is_a_violation(self):
        violations = check_report(
            build_report(_result([]), TrafficConfig(mode="closed"))
        )
        self.assertEqual(violations, ["no requests were issued"])

    def test_errors_violate_the_default_gate(self):
        # Admission control means overload must shed, never error: the
        # default gate is strict on errors and permissive on shed rate.
        report = self._report(error_rate=0.1, errors=1, transport_errors=0)
        violations = check_report(report)
        self.assertEqual(len(violations), 1)
        self.assertIn("error rate", violations[0])

    def test_shed_rate_cap_can_be_tightened(self):
        violations = check_report(self._report(), max_shed_rate=0.1)
        self.assertTrue(any("shed rate" in v for v in violations))

    def test_min_served_enforced(self):
        violations = check_report(self._report(), min_served=100)
        self.assertTrue(any("served" in v for v in violations))


if __name__ == "__main__":
    unittest.main()
