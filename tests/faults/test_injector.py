"""Unit tests for ``repro.faults``: rules, plans, and the injector."""

import pytest

from repro.errors import FaultInjected
from repro.faults import (
    SIDE_EFFECT_KINDS,
    SITES,
    TRANSPORT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultRule,
    clear,
    get_injector,
    install_plan,
    set_injector,
)


class TestFaultRule:
    def test_spec_round_trip(self):
        rule = FaultRule("worker.send", "corrupt", p=0.5, after=3,
                         max_fires=2, delay_s=0.1)
        assert FaultRule.from_spec(rule.to_spec()) == rule

    def test_minimal_spec(self):
        rule = FaultRule.from_spec("planner.round:error")
        assert rule == FaultRule("planner.round", "error")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultRule("worker.recv", "meltdown")

    def test_unknown_site_rejected_when_strict(self):
        with pytest.raises(ValueError, match="site"):
            FaultRule.from_spec("warp.core:crash")
        assert FaultRule.from_spec("warp.core:crash", strict=False).site == "warp.core"

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultRule("worker.recv", "slow", p=1.5)
        with pytest.raises(ValueError):
            FaultRule("worker.recv", "slow", p=-0.1)

    def test_bad_spec_fields(self):
        with pytest.raises(ValueError):
            FaultRule.from_spec("worker.recv")
        with pytest.raises(ValueError):
            FaultRule.from_spec("worker.recv:slow:bogus=1")

    def test_kind_tables_are_disjoint(self):
        assert not set(SIDE_EFFECT_KINDS) & set(TRANSPORT_KINDS)
        assert all(":" not in site for site in SITES)


class TestFaultPlan:
    def test_spec_round_trip(self):
        plan = FaultPlan.from_spec(
            "planner.round:error@0.25;worker.send:corrupt:max=2", seed=7
        )
        assert FaultPlan.from_spec(plan.to_spec(), seed=7) == plan
        assert plan.seed == 7
        assert len(plan.rules) == 2

    def test_seed_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultPlan(seed=0)

    def test_for_sites_filters_by_prefix(self):
        plan = FaultPlan.from_spec(
            "planner.round:error;worker.send:corrupt;worker.recv:slow"
        )
        worker_only = plan.for_sites("worker.")
        assert {r.site for r in worker_only.rules} == {"worker.send", "worker.recv"}


class TestFaultInjector:
    def test_always_fires_at_p1(self):
        plan = FaultPlan.from_spec("worker.send:corrupt")
        injector = FaultInjector(plan)
        assert [injector.fire("worker.send") for _ in range(4)] == ["corrupt"] * 4

    def test_quiet_site_returns_none(self):
        injector = FaultInjector(FaultPlan.from_spec("worker.send:corrupt"))
        assert injector.fire("worker.recv") is None

    def test_inert_rules_dropped_at_construction(self):
        # p=0 on a frozen rule can never fire: the hot path must pay a
        # bare dict miss, not a rule-evaluation loop (the <1% contract).
        injector = FaultInjector(FaultPlan.from_spec("planner.collision:slow@0"))
        assert not injector.has_site("planner.collision")
        assert injector.fire("planner.collision") is None
        assert injector.fired == []

    def test_deterministic_per_seed_and_scope(self):
        plan = FaultPlan.from_spec("worker.send:corrupt@0.5", seed=11)

        def sequence(scope):
            injector = FaultInjector(plan, scope=scope)
            return [injector.fire("worker.send") for _ in range(64)]

        assert sequence("worker1") == sequence("worker1")
        assert sequence("worker1") != sequence("worker2")  # scopes diverge
        fires = [k for k in sequence("worker1") if k]
        assert 0 < len(fires) < 64  # probabilistic, not all-or-nothing

    def test_after_warmup_lets_early_calls_through(self):
        injector = FaultInjector(FaultPlan.from_spec("worker.send:drop:after=2"))
        assert injector.fire("worker.send") is None
        assert injector.fire("worker.send") is None
        assert injector.fire("worker.send") == "drop"

    def test_max_fires_caps_total(self):
        injector = FaultInjector(FaultPlan.from_spec("worker.send:drop:max=2"))
        kinds = [injector.fire("worker.send") for _ in range(5)]
        assert kinds == ["drop", "drop", None, None, None]

    def test_slow_sleeps_then_continues(self):
        naps = []
        injector = FaultInjector(
            FaultPlan.from_spec("worker.recv:slow:delay=0.25"),
            sleep=naps.append,
        )
        assert injector.fire("worker.recv") is None  # side effect, no kind
        assert naps == [0.25]

    def test_error_raises_fault_injected(self):
        injector = FaultInjector(FaultPlan.from_spec("worker.plan:error"))
        with pytest.raises(FaultInjected, match="worker.plan"):
            injector.fire("worker.plan", detail="job 7")

    def test_counts_by_site_and_kind(self):
        injector = FaultInjector(
            FaultPlan.from_spec("worker.send:drop:max=2;worker.recv:slow:max=1"),
            sleep=lambda s: None,
        )
        for _ in range(3):
            injector.fire("worker.send")
            injector.fire("worker.recv")
        assert injector.counts() == {"worker.send:drop": 2, "worker.recv:slow": 1}


class TestGlobalInjector:
    def test_default_is_none(self):
        previous = set_injector(None)
        try:
            assert get_injector() is None
        finally:
            set_injector(previous)

    def test_install_and_clear(self):
        previous = get_injector()
        try:
            injector = install_plan(FaultPlan.from_spec("worker.send:drop"))
            assert get_injector() is injector
            clear()
            assert get_injector() is None
            assert install_plan(None) is None  # None plan clears too
        finally:
            set_injector(previous)

    def test_set_injector_returns_previous(self):
        previous = get_injector()
        try:
            a = FaultInjector(FaultPlan.from_spec("worker.send:drop"))
            assert set_injector(a) is previous
            assert set_injector(None) is a
        finally:
            set_injector(previous)
