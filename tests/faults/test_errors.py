"""Unit tests for the structured error taxonomy (``repro.errors``)."""

import pytest

from repro.errors import (
    ERROR_CLASSES,
    RETRYABLE,
    CircuitOpen,
    DeadlineExceeded,
    FaultInjected,
    InvalidRequest,
    PlanningError,
    PoisonJob,
    WorkerCrash,
    WorkerTimeout,
    error_for_status,
)
from repro.service.request import STATUSES


class TestTaxonomy:
    def test_every_class_subclasses_the_base(self):
        for cls in (InvalidRequest, DeadlineExceeded, WorkerCrash,
                    WorkerTimeout, PoisonJob, CircuitOpen, FaultInjected):
            assert issubclass(cls, PlanningError)

    def test_statuses_are_wire_statuses(self):
        # CircuitOpen is pool-internal (the breaker pauses dispatch, it
        # never finalises a job), so its status is not a wire status.
        for cls in (InvalidRequest, DeadlineExceeded, WorkerCrash,
                    WorkerTimeout, PoisonJob, FaultInjected):
            assert cls.status in STATUSES

    def test_invalid_request_is_a_value_error(self):
        # Back-compat: pre-taxonomy call sites guard with ValueError.
        with pytest.raises(ValueError):
            raise InvalidRequest("bad input")

    def test_fault_injected_is_a_runtime_error(self):
        with pytest.raises(RuntimeError):
            raise FaultInjected("injected")

    def test_retryable_matches_pool_default(self):
        from repro.service.pool import PoolConfig

        assert tuple(RETRYABLE) == PoolConfig().retry_statuses

    def test_error_classes_invert_status_attrs(self):
        for status, cls in ERROR_CLASSES.items():
            if cls is PlanningError:
                continue
            assert cls.status == status


class TestErrorForStatus:
    def test_ok_maps_to_none(self):
        assert error_for_status("ok") is None

    def test_known_statuses_map_to_their_class(self):
        assert isinstance(error_for_status("invalid"), InvalidRequest)
        assert isinstance(error_for_status("crash"), WorkerCrash)
        assert isinstance(error_for_status("timeout"), WorkerTimeout)
        assert isinstance(error_for_status("poison"), PoisonJob)
        assert isinstance(error_for_status("degraded"), DeadlineExceeded)

    def test_message_is_carried(self):
        err = error_for_status("crash", "worker 3 died")
        assert "worker 3 died" in str(err)

    def test_unknown_status_falls_back_to_base(self):
        err = error_for_status("somehow-new")
        assert type(err) is PlanningError
        assert "somehow-new" in str(err)
