"""Tests for the chaos harness: schedules, determinism, and a live run."""

import numpy as np
import pytest

from repro.errors import InvalidRequest
from repro.faults.chaos import (
    CATEGORIES,
    ChaosInvariantError,
    build_schedule,
    run_chaos,
    schedule_digest,
)
from repro.service.request import TERMINAL_STATUSES


class TestSchedule:
    def test_weights_positive_and_statuses_terminal(self):
        for name, weight, expected in CATEGORIES:
            assert weight > 0, name
            assert expected, name
            assert set(expected) <= set(TERMINAL_STATUSES), name

    def test_deterministic_under_seed(self, tmp_path):
        a = build_schedule(3, 40, flag_dir=str(tmp_path))
        b = build_schedule(3, 40, flag_dir=str(tmp_path))
        assert schedule_digest(a) == schedule_digest(b)
        assert [j.category for j in a] == [j.category for j in b]

    def test_different_seeds_differ(self, tmp_path):
        a = build_schedule(1, 40, flag_dir=str(tmp_path))
        b = build_schedule(2, 40, flag_dir=str(tmp_path))
        assert schedule_digest(a) != schedule_digest(b)

    def test_malformed_jobs_carry_nan_and_fail_validation(self, tmp_path):
        schedule = build_schedule(0, 120, flag_dir=str(tmp_path))
        malformed = [j for j in schedule if j.category == "malformed"]
        assert malformed, "no malformed jobs in 120 draws?"
        for job in malformed:
            assert np.isnan(np.asarray(job.request.task.start)).any()
            with pytest.raises(InvalidRequest):
                job.request.validate()

    def test_degraded_jobs_share_one_cache_key(self, tmp_path):
        schedule = build_schedule(0, 120, flag_dir=str(tmp_path))
        degraded = [j for j in schedule if j.category == "degraded"]
        assert len(degraded) >= 2, "need duplicates to exercise coalescing"
        keys = {j.request.cache_key() for j in degraded}
        assert len(keys) == 1

    def test_faulted_jobs_carry_their_hook(self, tmp_path):
        schedule = build_schedule(0, 120, flag_dir=str(tmp_path))
        by_category = {}
        for job in schedule:
            by_category.setdefault(job.category, job)
        assert by_category["hang"].request.fault == "hang"
        assert by_category["crash"].request.fault == "crash"
        assert by_category["corrupt"].request.fault == "corrupt"
        assert by_category["healthy"].request.fault is None
        flaky = by_category.get("flaky")
        if flaky is not None:
            assert flaky.request.fault.startswith("flaky:")


class TestRunChaos:
    def test_small_live_run_holds_every_invariant(self):
        # A miniature end-to-end chaos run: real pool, real faults.  The
        # harness raises ChaosInvariantError on any violation, so a clean
        # report *is* the assertion; spot-check the bookkeeping anyway.
        report = run_chaos(seed=0, jobs=12, workers=2, log=lambda *_: None)
        assert report.jobs == 12
        assert sum(report.statuses.values()) == 12
        assert sum(report.categories.values()) == 12
        assert set(report.statuses) <= set(TERMINAL_STATUSES)
        assert len(report.digest) == 64
        payload = report.to_dict()
        assert payload["seed"] == 0
        assert payload["pool"]["count"] == 2
        # Drill-down wiring: the report is schema-stamped and carries one
        # category-tagged telemetry row per job, so repro.obs.rca can
        # attribute fault-induced tail latency to its fault site.
        assert payload["schema"] == 1
        assert payload["emitter"] == "repro.faults.chaos"
        assert len(payload["records"]) == 12
        categories = {row["category"] for row in payload["records"]}
        assert categories <= set(report.categories)
        from repro.obs.rca import records_from_chaos

        rows = records_from_chaos(payload)
        assert len(rows) == 12
        assert {r.attributes["fault"] for r in rows} <= {"clean", "armed"}

    def test_cli_quick_smoke(self, capsys):
        from repro.faults.__main__ import main

        code = main(["chaos", "--jobs", "8", "--seed", "1", "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert '"digest"' in out
