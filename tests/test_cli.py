"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.robot == "mobile2d"
        assert args.variant == "full"

    def test_rejects_unknown_robot(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--robot", "optimus"])

    def test_rejects_unknown_variant(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--variant", "v9"])


class TestMain:
    def test_plans_and_reports(self, capsys):
        code = main(["--robot", "mobile2d", "--obstacles", "8",
                     "--samples", "200", "--seed", "1", "--goal-bias", "0.2"])
        out = capsys.readouterr().out
        assert "2D Mobile" in out
        assert code in (0, 1)

    def test_writes_result_json(self, tmp_path, capsys):
        out_file = tmp_path / "result.json"
        main(["--robot", "mobile2d", "--obstacles", "8", "--samples", "150",
              "--seed", "1", "--goal-bias", "0.2", "--out", str(out_file)])
        data = json.loads(out_file.read_text())
        assert data["iterations"] == 150

    def test_smooth_flag(self, capsys):
        code = main(["--robot", "mobile2d", "--obstacles", "8",
                     "--samples", "250", "--seed", "1", "--goal-bias", "0.2",
                     "--smooth"])
        out = capsys.readouterr().out
        if code == 0:  # success path
            assert "smoothed" in out

    def test_render_flag(self, capsys):
        main(["--robot", "mobile2d", "--obstacles", "8", "--samples", "150",
              "--seed", "1", "--goal-bias", "0.2", "--render"])
        out = capsys.readouterr().out
        assert "+----" in out  # the ASCII border

    def test_task_round_trip(self, tmp_path, capsys):
        from repro.io import save_task
        from repro.workloads import random_task

        task = random_task("mobile2d", 8, seed=2)
        task_file = tmp_path / "task.json"
        save_task(task, task_file)
        code = main(["--task", str(task_file), "--samples", "150",
                     "--seed", "0", "--goal-bias", "0.2"])
        out = capsys.readouterr().out
        assert "obstacles=8" in out

    def test_baseline_variant(self, capsys):
        main(["--robot", "mobile2d", "--obstacles", "8", "--samples", "100",
              "--seed", "1", "--variant", "baseline"])
        assert "variant=baseline" in capsys.readouterr().out


class TestKernelsFlag:
    def test_default_is_batch(self):
        assert build_parser().parse_args([]).kernels == "batch"

    def test_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--kernels", "simd"])

    def test_backends_agree_end_to_end(self, capsys):
        argv = ["--robot", "mobile2d", "--obstacles", "8", "--samples", "150",
                "--seed", "1", "--goal-bias", "0.2"]
        main(argv + ["--kernels", "batch"])
        batch_out = capsys.readouterr().out
        main(argv + ["--kernels", "reference"])
        reference_out = capsys.readouterr().out
        assert batch_out == reference_out
