"""Repository consistency checks: docs, benches, and registries agree."""

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestDesignDocConsistency:
    def test_every_referenced_bench_exists(self):
        """Each bench file named in DESIGN.md's experiment index is real."""
        design = (REPO / "DESIGN.md").read_text()
        referenced = set(re.findall(r"benchmarks/([a-z0-9_]+\.py)", design))
        assert referenced, "DESIGN.md lists no bench files?"
        for name in referenced:
            assert (REPO / "benchmarks" / name).exists(), f"missing {name}"

    def test_every_bench_file_is_referenced_somewhere(self):
        """No orphan bench targets: DESIGN.md or EXPERIMENTS.md mentions each."""
        docs = (REPO / "DESIGN.md").read_text() + (REPO / "EXPERIMENTS.md").read_text()
        for path in (REPO / "benchmarks").glob("test_*.py"):
            assert path.name in docs, f"{path.name} not documented"

    def test_claimed_modules_exist(self):
        """Module paths named in DESIGN.md's inventory import cleanly."""
        design = (REPO / "DESIGN.md").read_text()
        modules = set(re.findall(r"`(repro(?:\.[a-z_0-9]+)+)`", design))
        import importlib

        for name in sorted(modules):
            importlib.import_module(name)


class TestRunAllRegistry:
    def test_runners_cover_all_paper_figures(self):
        from repro.analysis.run_all import RUNNERS

        expected = {"fig03", "fig05", "fig06", "fig08", "fig10", "fig14",
                    "fig15", "fig16", "fig17", "fig18", "fig19L", "fig19R",
                    "snr_buffers", "caching"}
        assert expected <= set(RUNNERS)

    def test_runner_callables_have_docstrings(self):
        from repro.analysis.run_all import RUNNERS

        for name, runner in RUNNERS.items():
            assert runner.__doc__, f"{name} runner lacks a docstring"


class TestExamplesExist:
    def test_readme_examples_table_matches_directory(self):
        readme = (REPO / "examples" / "README.md").read_text()
        scripts = {p.name for p in (REPO / "examples").glob("*.py")}
        referenced = set(re.findall(r"`([a-z_0-9]+\.py)`", readme))
        assert referenced <= scripts
        assert len(scripts) >= 7

    def test_all_examples_compile(self):
        import ast

        for path in (REPO / "examples").glob("*.py"):
            ast.parse(path.read_text(), filename=str(path))


class TestPackageMetadata:
    def test_version_consistent(self):
        import repro

        pyproject = (REPO / "pyproject.toml").read_text()
        assert f'version = "{repro.__version__}"' in pyproject

    def test_console_scripts_resolve(self):
        from repro.cli import main as plan_main
        from repro.analysis.run_all import main as figures_main

        assert callable(plan_main) and callable(figures_main)
