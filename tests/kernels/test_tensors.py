"""Tests for the stacked kernel containers and the batch forward kinematics.

The tensors must hold *bit-identical* values to their scalar sources: the
batch collision path builds masks from these arrays and then replays scalar
control flow, so any ULP drift here would change planning decisions.
"""

import numpy as np
import pytest

from repro.core.robots import ROBOT_FACTORIES, get_robot
from repro.kernels.tensors import BodyBatch, FlatRTree, ObstacleTensors
from repro.workloads.generator import random_task


@pytest.fixture(scope="module")
def env24():
    return random_task("rozum", 24, seed=9).environment


class TestBatchForwardKinematics:
    @pytest.mark.parametrize("robot_name", sorted(ROBOT_FACTORIES))
    def test_frames_bit_identical_to_scalar(self, robot_name):
        robot = get_robot(robot_name)
        rng = np.random.default_rng(17)
        configs = rng.uniform(robot.config_lo, robot.config_hi, size=(32, robot.dof))
        centers, halves, rotations = robot.body_frames_batch(configs)
        assert centers.shape == (32, robot.num_body_obbs, robot.workspace_dim)
        for i, config in enumerate(configs):
            for j, obb in enumerate(robot.body_obbs(config)):
                assert np.array_equal(centers[i, j], obb.center)
                assert np.array_equal(halves[i, j], obb.half_extents)
                assert np.array_equal(rotations[i, j], obb.rotation)

    def test_single_config_batch_matches(self):
        robot = get_robot("rozum")
        config = robot.clip(np.full(robot.dof, 0.3))
        centers, halves, rotations = robot.body_frames_batch(config[None, :])
        for j, obb in enumerate(robot.body_obbs(config)):
            assert np.array_equal(centers[0, j], obb.center)
            assert np.array_equal(rotations[0, j], obb.rotation)


class TestBodyBatch:
    def test_aabb_corners_match_scalar_to_aabb(self):
        robot = get_robot("xarm7")
        rng = np.random.default_rng(5)
        configs = rng.uniform(robot.config_lo, robot.config_hi, size=(8, robot.dof))
        bodies = BodyBatch.from_frames(*robot.body_frames_batch(configs))
        lo, hi = bodies.aabb_corners()
        row = 0
        for config in configs:
            for obb in robot.body_obbs(config):
                box = obb.to_aabb()
                assert np.array_equal(lo[row], box.lo)
                assert np.array_equal(hi[row], box.hi)
                row += 1

    def test_row_major_config_body_order(self):
        robot = get_robot("rozum")
        rng = np.random.default_rng(6)
        configs = rng.uniform(robot.config_lo, robot.config_hi, size=(3, robot.dof))
        bodies = BodyBatch.from_frames(*robot.body_frames_batch(configs))
        assert bodies.rows == 3 * bodies.bodies_per_config
        scalar = robot.body_obbs(configs[1])
        row = 1 * bodies.bodies_per_config
        assert np.array_equal(bodies.centers[row], scalar[0].center)

    def test_from_obbs_validation(self):
        with pytest.raises(ValueError):
            BodyBatch.from_obbs([], num_configs=1)


class TestObstacleTensors:
    def test_values_match_environment(self, env24):
        tensors = env24.obstacle_tensors
        assert tensors.count == env24.num_obstacles
        for i, obb in enumerate(env24.obstacles):
            assert np.array_equal(tensors.centers[i], obb.center)
            assert np.array_equal(tensors.half_extents[i], obb.half_extents)
            assert np.array_equal(tensors.rotations[i], obb.rotation)
        for i, box in enumerate(env24.obstacle_aabbs):
            assert np.array_equal(tensors.aabb_lo[i], box.lo)
            assert np.array_equal(tensors.aabb_hi[i], box.hi)

    def test_empty_environment_requires_dim(self):
        with pytest.raises(ValueError):
            ObstacleTensors.from_obbs([])
        empty = ObstacleTensors.from_obbs([], dim=3)
        assert empty.count == 0 and empty.dim == 3

    def test_cached_property_is_stable(self, env24):
        assert env24.obstacle_tensors is env24.obstacle_tensors


class TestFlatRTree:
    def test_structure_consistent(self, env24):
        flat = env24.flat_rtree
        assert flat.num_units == flat.num_nodes + env24.num_obstacles
        # Root is unit 0 and the only node without a parent.
        assert flat.parents[0] == -1
        assert np.count_nonzero(flat.parents < 0) == 1
        # Every non-root node is its parent's child.
        for node in range(1, flat.num_nodes):
            assert node in flat.children[flat.parents[node]]
        # entry_leaf agrees with the entries lists.
        for node, node_entries in enumerate(flat.entries):
            for idx in node_entries:
                assert flat.entry_leaf[idx] == node

    def test_entry_order_is_permutation(self, env24):
        flat = env24.flat_rtree
        assert sorted(flat.entry_order) == list(range(env24.num_obstacles))

    def test_unit_boxes_cover_entries(self, env24):
        flat = env24.flat_rtree
        for i, box in enumerate(env24.obstacle_aabbs):
            unit = flat.entry_unit(i)
            assert np.array_equal(flat.unit_lo[unit], box.lo)
            assert np.array_equal(flat.unit_hi[unit], box.hi)
            # The holding leaf's MBR contains the entry box.
            leaf = int(flat.entry_leaf[i])
            assert np.all(flat.unit_lo[leaf] <= box.lo + 1e-12)
            assert np.all(flat.unit_hi[leaf] >= box.hi - 1e-12)

    def test_batch_query_counts_no_pruning(self, env24):
        """With every mask true, each row visits every unit and keeps all."""
        flat = env24.flat_rtree
        rows = 4
        ones_nodes = np.ones((rows, flat.num_nodes), dtype=bool)
        ones_entries = np.ones((rows, env24.num_obstacles), dtype=bool)
        n_aabb, n_obb, candidates = flat.batch_query_counts(
            ones_nodes, ones_nodes, ones_entries, ones_entries
        )
        assert np.all(candidates)
        assert np.all(n_aabb == flat.num_units)
        assert np.all(n_obb == flat.num_units)

    def test_batch_query_counts_root_pruned(self, env24):
        """A root AABB miss stops the traversal after one test."""
        flat = env24.flat_rtree
        node_aabb = np.zeros((1, flat.num_nodes), dtype=bool)
        node_obb = np.ones((1, flat.num_nodes), dtype=bool)
        entry = np.ones((1, env24.num_obstacles), dtype=bool)
        n_aabb, n_obb, candidates = flat.batch_query_counts(
            node_aabb, node_obb, entry, entry
        )
        assert n_aabb[0] == 1       # only the root's AABB test ran
        assert n_obb[0] == 0        # prefilter failed, no OBB test
        assert not candidates.any()
