"""Property-based golden tests: batch kernels == scalar reference kernels.

The scalar implementations in :mod:`repro.kernels.reference` wrap the
original per-object geometry routines and are the trusted baseline; every
batch kernel must reproduce their boolean verdicts bit-for-bit on random
inputs (the distance kernels return raw floats whose vectorized
accumulation may differ by ULPs, so indices are exact and values close).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.rotations import random_rotation_2d, random_rotation_3d
from repro.kernels import batch, reference

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def random_boxes(rng, n, dim, span=40.0):
    lo = rng.uniform(0.0, span, size=(n, dim))
    hi = lo + rng.uniform(0.1, span / 3.0, size=(n, dim))
    return lo, hi


def random_obbs(rng, n, dim, span=40.0):
    centers = rng.uniform(0.0, span, size=(n, dim))
    halves = rng.uniform(0.1, span / 4.0, size=(n, dim))
    make = random_rotation_2d if dim == 2 else random_rotation_3d
    rotations = np.stack([make(rng) for _ in range(n)])
    return centers, halves, rotations


class TestSATGolden:
    @pytest.mark.parametrize("dim", [2, 3])
    @settings(max_examples=30, deadline=None)
    @given(seed=seeds)
    def test_aabb_aabb_grid(self, dim, seed):
        rng = np.random.default_rng(seed)
        a = random_boxes(rng, 7, dim)
        b = random_boxes(rng, 5, dim)
        assert np.array_equal(
            batch.aabb_aabb_grid(*a, *b), reference.aabb_aabb_grid(*a, *b)
        )

    @pytest.mark.parametrize("dim", [2, 3])
    @settings(max_examples=30, deadline=None)
    @given(seed=seeds)
    def test_aabb_obb_grid(self, dim, seed):
        rng = np.random.default_rng(seed)
        lo, hi = random_boxes(rng, 6, dim)
        obs = random_obbs(rng, 5, dim)
        assert np.array_equal(
            batch.aabb_obb_grid(lo, hi, *obs), reference.aabb_obb_grid(lo, hi, *obs)
        )

    @pytest.mark.parametrize("dim", [2, 3])
    @settings(max_examples=30, deadline=None)
    @given(seed=seeds)
    def test_obb_obb_grid(self, dim, seed):
        rng = np.random.default_rng(seed)
        a = random_obbs(rng, 6, dim)
        b = random_obbs(rng, 5, dim)
        assert np.array_equal(
            batch.obb_obb_grid(*a, *b), reference.obb_obb_grid(*a, *b)
        )

    @pytest.mark.parametrize("dim", [2, 3])
    @settings(max_examples=30, deadline=None)
    @given(seed=seeds)
    def test_obb_obb_pairs(self, dim, seed):
        rng = np.random.default_rng(seed)
        a = random_obbs(rng, 16, dim)
        b = random_obbs(rng, 16, dim)
        assert np.array_equal(
            batch.obb_obb_pairs(*a, *b), reference.obb_obb_pairs(*a, *b)
        )

    @pytest.mark.parametrize("dim", [2, 3])
    @settings(max_examples=30, deadline=None)
    @given(seed=seeds)
    def test_aabb_obb_pairs(self, dim, seed):
        rng = np.random.default_rng(seed)
        lo, hi = random_boxes(rng, 16, dim)
        obs = random_obbs(rng, 16, dim)
        assert np.array_equal(
            batch.aabb_obb_pairs(lo, hi, *obs), reference.aabb_obb_pairs(lo, hi, *obs)
        )

    @pytest.mark.parametrize("dim", [2, 3])
    def test_touching_boxes_agree(self, dim):
        """Boundary contact (the `>` vs `>=` separation rule) matches."""
        lo = np.zeros((1, dim))
        hi = np.ones((1, dim))
        touch_lo = np.ones((1, dim))  # shares exactly one corner
        touch_hi = touch_lo + 1.0
        assert np.array_equal(
            batch.aabb_aabb_grid(lo, hi, touch_lo, touch_hi),
            reference.aabb_aabb_grid(lo, hi, touch_lo, touch_hi),
        )

    @pytest.mark.parametrize("dim", [2, 3])
    @settings(max_examples=20, deadline=None)
    @given(seed=seeds)
    def test_nested_and_identical_obbs_collide(self, dim, seed):
        """Degenerate overlap: an OBB against itself is always a hit."""
        rng = np.random.default_rng(seed)
        obs = random_obbs(rng, 4, dim)
        mask = batch.obb_obb_grid(*obs, *obs)
        assert np.array_equal(mask, reference.obb_obb_grid(*obs, *obs))
        assert np.all(np.diag(mask))


class TestPointKernelsGolden:
    @pytest.mark.parametrize("dim", [2, 3, 4, 5, 6, 7])
    @settings(max_examples=25, deadline=None)
    @given(seed=seeds)
    def test_nearest_index(self, dim, seed):
        rng = np.random.default_rng(seed)
        points = rng.uniform(-5.0, 5.0, size=(rng.integers(1, 200), dim))
        query = rng.uniform(-5.0, 5.0, size=dim)
        b_idx, b_dist = batch.nearest_index(points, query)
        r_idx, r_dist = reference.nearest_index(points, query)
        assert b_idx == r_idx
        assert b_dist == pytest.approx(r_dist, rel=1e-12, abs=1e-12)

    @pytest.mark.parametrize("dim", [2, 3, 4, 5, 6, 7])
    @settings(max_examples=25, deadline=None)
    @given(seed=seeds)
    def test_radius_mask(self, dim, seed):
        rng = np.random.default_rng(seed)
        points = rng.uniform(-5.0, 5.0, size=(rng.integers(1, 200), dim))
        query = rng.uniform(-5.0, 5.0, size=dim)
        b_sq, b_hits = batch.radius_mask(points, query, 2.5)
        r_sq, r_hits = reference.radius_mask(points, query, 2.5)
        assert np.array_equal(b_hits, r_hits)
        np.testing.assert_allclose(b_sq, r_sq, rtol=1e-12, atol=1e-12)

    def test_nearest_tie_breaks_to_first(self):
        points = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        query = np.zeros(2)
        assert batch.nearest_index(points, query)[0] == 0
        assert reference.nearest_index(points, query)[0] == 0
