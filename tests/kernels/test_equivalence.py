"""Backend equivalence: ``kernels="batch"`` == ``kernels="reference"``.

The acceptance contract of the vectorized hot paths: switching the kernel
backend changes wall time and nothing else.  Per-query collision verdicts,
full plans (paths and costs, bit-for-bit), and every
:class:`~repro.core.counters.OpCounter` total must be identical, because
the batch path replays the scalar control flow over its precomputed masks.
"""

import numpy as np
import pytest

from repro.core.collision import make_checker
from repro.core.config import PlannerConfig, baseline_config, moped_config
from repro.core.counters import OpCounter
from repro.core.robots import get_robot
from repro.core.rrtstar import plan
from repro.workloads.generator import random_task

CHECKERS = ["obb", "aabb", "two_stage", "grid"]


def checker_pair(task, checker, **kwargs):
    robot = get_robot(task.robot_name)
    resolution = robot.step_size / 4.0
    fast = make_checker(
        checker, robot, task.environment, resolution, kernels="batch", **kwargs
    )
    gold = make_checker(
        checker, robot, task.environment, resolution, kernels="reference", **kwargs
    )
    return robot, fast, gold


class TestCheckerEquivalence:
    @pytest.mark.parametrize("checker", CHECKERS)
    @pytest.mark.parametrize("robot_name", ["mobile2d", "rozum"])
    def test_config_checks_identical(self, checker, robot_name):
        task = random_task(robot_name, 24, seed=11)
        robot, fast, gold = checker_pair(task, checker)
        rng = np.random.default_rng(2)
        configs = rng.uniform(robot.config_lo, robot.config_hi, size=(60, robot.dof))
        for config in configs:
            c_fast, c_gold = OpCounter(), OpCounter()
            assert fast.config_in_collision(config, counter=c_fast) == \
                gold.config_in_collision(config, counter=c_gold)
            assert c_fast.to_dict() == c_gold.to_dict()

    @pytest.mark.parametrize("checker", CHECKERS)
    def test_motion_checks_identical(self, checker):
        task = random_task("rozum", 24, seed=12)
        robot, fast, gold = checker_pair(task, checker)
        rng = np.random.default_rng(3)
        starts = rng.uniform(robot.config_lo, robot.config_hi, size=(20, robot.dof))
        ends = starts + rng.normal(scale=0.3, size=starts.shape)
        for a, b in zip(starts, ends):
            c_fast, c_gold = OpCounter(), OpCounter()
            assert fast.motion_in_collision(a, b, counter=c_fast) == \
                gold.motion_in_collision(a, b, counter=c_gold)
            assert c_fast.to_dict() == c_gold.to_dict()

    def test_two_stage_coarse_only_identical(self):
        task = random_task("rozum", 24, seed=13)
        robot, fast, gold = checker_pair(task, "two_stage", fine_stage=False)
        rng = np.random.default_rng(4)
        configs = rng.uniform(robot.config_lo, robot.config_hi, size=(40, robot.dof))
        for config in configs:
            c_fast, c_gold = OpCounter(), OpCounter()
            assert fast.config_in_collision(config, counter=c_fast) == \
                gold.config_in_collision(config, counter=c_gold)
            assert c_fast.to_dict() == c_gold.to_dict()

    def test_empty_environment_identical(self):
        task = random_task("mobile2d", 0, seed=1)
        robot, fast, gold = checker_pair(task, "obb")
        config = robot.clip(np.zeros(robot.dof))
        c_fast, c_gold = OpCounter(), OpCounter()
        assert fast.config_in_collision(config, counter=c_fast) == \
            gold.config_in_collision(config, counter=c_gold)
        assert c_fast.to_dict() == c_gold.to_dict()


def run_pair(robot_name, num_obstacles, make_config, samples=150):
    task = random_task(robot_name, num_obstacles, seed=3)
    robot = get_robot(robot_name)
    out = {}
    for backend in ("batch", "reference"):
        config = make_config(kernels=backend, max_samples=samples, seed=5)
        out[backend] = plan(robot, task, config)
    return out["batch"], out["reference"]


class TestPlanEquivalence:
    @pytest.mark.parametrize(
        "robot_name,variant",
        [("mobile2d", "v4"), ("rozum", "v1"), ("rozum", "v4"), ("drone3d", "v2")],
    )
    def test_moped_plans_bit_identical(self, robot_name, variant):
        fast, gold = run_pair(
            robot_name, 20, lambda **kw: moped_config(variant, **kw)
        )
        assert fast.success == gold.success
        assert fast.path_cost == gold.path_cost
        assert len(fast.path) == len(gold.path)
        for a, b in zip(fast.path, gold.path):
            assert np.array_equal(a, b)
        assert fast.counter.to_dict() == gold.counter.to_dict()

    def test_baseline_plans_bit_identical(self):
        fast, gold = run_pair("mobile2d", 16, baseline_config)
        assert fast.path_cost == gold.path_cost
        assert fast.counter.to_dict() == gold.counter.to_dict()

    def test_node_sequences_identical(self):
        fast, gold = run_pair("rozum", 20, lambda **kw: moped_config("v4", **kw))
        assert fast.num_nodes == gold.num_nodes
        assert fast.iterations == gold.iterations
        assert fast.first_solution_iteration == gold.first_solution_iteration


class TestBackendSelection:
    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="kernels"):
            PlannerConfig(kernels="simd")

    def test_checker_rejects_unknown_backend(self):
        task = random_task("mobile2d", 4, seed=0)
        robot = get_robot("mobile2d")
        with pytest.raises((KeyError, ValueError)):
            make_checker(
                "obb", robot, task.environment, robot.step_size / 4.0, kernels="simd"
            )

    def test_default_backend_is_batch(self):
        assert PlannerConfig().kernels == "batch"
