"""Tests for the ``repro.bench`` harness: schema, gate, and CLI smoke."""

import json
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent.parent

from repro.bench import (
    bench_kernels,
    compare_to_baseline,
    load_report,
    run_benchmarks,
    save_report,
)


def make_report(kernels):
    return {"schema": 1, "kernels": kernels, "end_to_end": []}


def entry(kernel="obb_obb_grid", dim=3, size="18x32", batch_s=1e-4, reference_s=1e-2):
    return {
        "kernel": kernel,
        "dim": dim,
        "size": size,
        "batch_s": batch_s,
        "reference_s": reference_s,
        "speedup": reference_s / batch_s,
    }


class TestRegressionGate:
    def test_passes_when_fast(self):
        base = make_report([entry(batch_s=1e-4)])
        now = make_report([entry(batch_s=1.5e-4)])
        assert compare_to_baseline(now, base, factor=2.0) == []

    def test_fails_on_regression(self):
        base = make_report([entry(batch_s=1e-4)])
        now = make_report([entry(batch_s=3e-4)])
        failures = compare_to_baseline(now, base, factor=2.0)
        assert len(failures) == 1
        assert "obb_obb_grid" in failures[0]

    def test_unmatched_points_are_skipped(self):
        base = make_report([entry(size="18x8")])
        now = make_report([entry(size="36x48", batch_s=99.0)])
        assert compare_to_baseline(now, base) == []

    def test_factor_is_respected(self):
        base = make_report([entry(batch_s=1e-4)])
        now = make_report([entry(batch_s=2.5e-4)])
        assert compare_to_baseline(now, base, factor=3.0) == []
        assert compare_to_baseline(now, base, factor=2.0)

    def test_failed_check_writes_rca_drilldown(self, tmp_path, monkeypatch,
                                               capsys):
        # A forced gate failure must produce the machine artifact naming
        # the regressed slice (the CI drill-down wiring).
        from repro.bench import __main__ as bench_main

        base = make_report([entry(batch_s=1e-4),
                            entry(kernel="aabb_aabb_grid", batch_s=1e-4)])
        now = make_report([entry(batch_s=5e-4),
                           entry(kernel="aabb_aabb_grid", batch_s=1e-4)])
        now["mode"] = "quick"
        now["wave"] = []
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(base))
        monkeypatch.setattr(bench_main, "run_benchmarks", lambda **_: now)
        rca_path = tmp_path / "BENCH_rca.json"
        code = bench_main.main([
            "--check", "--baseline", str(baseline_path),
            "--output", str(tmp_path / "report.json"),
            "--rca-output", str(rca_path),
        ])
        assert code == 1
        payload = json.loads(rca_path.read_text())
        assert payload["emitter"] == "repro.obs.rca"
        top = payload["findings"][0]["attributes"]
        assert top.get("kernel") == "obb_obb_grid"
        assert "obb_obb_grid" in capsys.readouterr().err


class TestHarness:
    @pytest.fixture(scope="class")
    def quick_report(self):
        return run_benchmarks(quick=True, skip_e2e=True, seed=1)

    def test_schema_fields(self, quick_report):
        assert quick_report["schema"] == 1
        assert quick_report["mode"] == "quick"
        assert {"python", "numpy", "machine"} <= set(quick_report["host"])
        assert quick_report["end_to_end"] == []
        assert quick_report["kernels"]

    def test_kernel_entries_complete(self, quick_report):
        for item in quick_report["kernels"]:
            assert {"kernel", "dim", "size", "batch_s", "reference_s", "speedup"} <= set(item)
            assert item["batch_s"] > 0 and item["reference_s"] > 0

    def test_covers_all_sat_kernels(self, quick_report):
        names = {item["kernel"] for item in quick_report["kernels"]}
        assert {
            "aabb_aabb_grid", "aabb_obb_grid", "obb_obb_grid",
            "obb_obb_pairs", "aabb_obb_pairs", "nearest_index", "radius_mask",
        } <= names

    def test_report_roundtrip(self, quick_report, tmp_path):
        path = tmp_path / "report.json"
        save_report(quick_report, str(path))
        assert load_report(str(path)) == json.loads(path.read_text())

    def test_bench_kernels_rejects_divergence(self, monkeypatch):
        """The harness refuses to time kernels that disagree with golden."""
        from repro.kernels import batch as batch_mod

        def broken(*args, **kwargs):
            import numpy as np
            return np.zeros((1, 1), dtype=bool)

        monkeypatch.setattr(batch_mod, "aabb_aabb_grid", broken)
        with pytest.raises(AssertionError):
            bench_kernels(quick=True, seed=0)


class TestBaselineFile:
    def test_committed_baseline_is_valid(self):
        report = load_report(str(REPO / "benchmarks" / "BENCH_baseline.json"))
        assert report["schema"] == 1
        assert report["kernels"]
        e2e = {item["case"]: item for item in report["end_to_end"]}
        # The acceptance configuration is recorded with its measured speedup
        # and the bit-identical equivalence flag.
        rozum = e2e["rozum/32obs/v4"]
        assert rozum["equivalent"] is True
        assert rozum["speedup"] >= 3.0


def wave_entry(case="mobile2d/32obs/v1-norewire", wave_width=8,
               max_samples=600, wave_s=0.15, scalar_s=0.24):
    return {
        "case": case,
        "robot": "mobile2d",
        "obstacles": 32,
        "variant": "v1",
        "wave_width": wave_width,
        "max_samples": max_samples,
        "scalar_s": scalar_s,
        "scalar_spec_s": scalar_s * 1.05,
        "wave_s": wave_s,
        "speedup_vs_scalar": scalar_s / wave_s,
        "speedup_vs_spec": scalar_s * 1.05 / wave_s,
        "wave_occupancy": 0.95,
        "cache": {},
        "path_cost": 1.0,
        "num_nodes": 100,
        "equivalent": True,
    }


class TestWaveGate:
    def test_passes_when_fast(self):
        base = {"schema": 1, "wave": [wave_entry(wave_s=0.15)]}
        now = {"schema": 1, "wave": [wave_entry(wave_s=0.2)]}
        assert compare_to_baseline(now, base, factor=2.0) == []

    def test_fails_on_wave_regression(self):
        base = {"schema": 1, "wave": [wave_entry(wave_s=0.15)]}
        now = {"schema": 1, "wave": [wave_entry(wave_s=0.4)]}
        failures = compare_to_baseline(now, base, factor=2.0)
        assert len(failures) == 1
        assert "wave mobile2d/32obs/v1-norewire" in failures[0]

    def test_unmatched_wave_points_are_skipped(self):
        base = {"schema": 1, "wave": [wave_entry(wave_width=8)]}
        now = {"schema": 1, "wave": [wave_entry(wave_width=16, wave_s=99.0)]}
        assert compare_to_baseline(now, base) == []

    def test_kernel_and_wave_failures_combine(self):
        base = {
            "schema": 1,
            "kernels": [entry(batch_s=1e-4)],
            "wave": [wave_entry(wave_s=0.15)],
        }
        now = {
            "schema": 1,
            "kernels": [entry(batch_s=3e-4)],
            "wave": [wave_entry(wave_s=0.4)],
        }
        assert len(compare_to_baseline(now, base, factor=2.0)) == 2


class TestWaveBaselineFile:
    def test_committed_wave_baseline_is_valid(self):
        from repro.bench import WAVE_SAMPLES, WAVE_SUITE

        report = load_report(str(REPO / "benchmarks" / "BENCH_wave.json"))
        assert report["schema"] == 1
        cases = {item["case"]: item for item in report["wave"]}
        # Every suite point is measured at the shared sampling budget with
        # the bit-equality flag set.
        for label, *_ in WAVE_SUITE:
            assert cases[label]["equivalent"] is True
            assert cases[label]["max_samples"] == WAVE_SAMPLES
            assert cases[label]["wave_s"] > 0
        # The acceptance claim: >= 2x end-to-end over the PR 3 batch
        # backend on a 32-obstacle case, at healthy lane occupancy.
        ref = report["pr3_reference"]
        assert ref["case"] in cases
        assert cases[ref["case"]]["obstacles"] == 32
        assert ref["speedup_vs_pr3"] >= 2.0
        assert ref["wave_occupancy"] >= 0.9
