"""Unit tests for the workload generators."""

import numpy as np
import pytest

from repro.core.collision import BruteOBBChecker
from repro.core.robots import get_robot
from repro.workloads import (
    OBSTACLE_COUNTS,
    narrow_passage_environment,
    random_environment,
    random_start_goal,
    random_task,
    task_suite,
)


class TestRandomEnvironment:
    def test_counts_match_paper(self):
        assert OBSTACLE_COUNTS == (8, 16, 32, 48)

    @pytest.mark.parametrize("dim", [2, 3])
    @pytest.mark.parametrize("count", [0, 8, 48])
    def test_obstacle_count(self, dim, count):
        env = random_environment(dim, count, seed=0)
        assert env.num_obstacles == count
        assert env.workspace_dim == dim

    def test_size_limits_respected_3d(self):
        """Paper: 3D obstacles limited to 30x30x50."""
        env = random_environment(3, 48, seed=1)
        for obstacle in env.obstacles:
            extents = 2.0 * obstacle.half_extents
            assert extents[0] <= 30.0 + 1e-9
            assert extents[1] <= 30.0 + 1e-9
            assert extents[2] <= 50.0 + 1e-9

    def test_size_limits_respected_2d(self):
        """Paper: 2D obstacles limited to 30x30."""
        env = random_environment(2, 48, seed=2)
        for obstacle in env.obstacles:
            assert np.all(2.0 * obstacle.half_extents <= 30.0 + 1e-9)

    def test_centers_inside_workspace(self):
        env = random_environment(3, 32, seed=3)
        for obstacle in env.obstacles:
            assert np.all(obstacle.center >= 0) and np.all(obstacle.center <= 300.0)

    def test_deterministic(self):
        a = random_environment(3, 16, seed=4)
        b = random_environment(3, 16, seed=4)
        for oa, ob in zip(a.obstacles, b.obstacles):
            np.testing.assert_allclose(oa.center, ob.center)

    def test_different_seeds_differ(self):
        a = random_environment(3, 16, seed=5)
        b = random_environment(3, 16, seed=6)
        assert not np.allclose(a.obstacles[0].center, b.obstacles[0].center)

    def test_clear_region_respected(self):
        center = np.array([150.0, 150.0, 20.0])
        env = random_environment(3, 48, seed=7, clear_center=center, clear_radius=50.0)
        for obstacle in env.obstacles:
            assert np.linalg.norm(obstacle.center - center) >= 50.0

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            random_environment(4, 8)

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            random_environment(3, -1)

    def test_orientations_are_random(self):
        env = random_environment(3, 8, seed=8)
        rotations = [o.rotation for o in env.obstacles]
        assert not all(np.allclose(r, np.eye(3)) for r in rotations)


class TestNarrowPassage:
    @pytest.mark.parametrize("dim", [2, 3])
    def test_structure(self, dim):
        env = narrow_passage_environment(workspace_dim=dim, gap=20.0)
        assert env.num_obstacles == 2
        assert env.workspace_dim == dim

    def test_gap_is_passable_with_obb_but_not_aabb(self):
        """The channel must be truly free yet AABB-blocked (Fig 5)."""
        from repro.core.collision import BruteAABBChecker

        env = narrow_passage_environment(workspace_dim=2, gap=26.0)
        robot = get_robot("mobile2d")
        exact = BruteOBBChecker(robot, env, motion_resolution=2.0)
        coarse = BruteAABBChecker(robot, env, motion_resolution=2.0)
        # Robot centred in the channel, aligned with the diagonal.
        config = np.array([150.0, 150.0, np.pi / 4])
        assert not exact.config_in_collision(config)
        assert coarse.config_in_collision(config)

    def test_invalid_gap(self):
        with pytest.raises(ValueError):
            narrow_passage_environment(gap=0.0)
        with pytest.raises(ValueError):
            narrow_passage_environment(gap=500.0)


class TestStartGoal:
    @pytest.mark.parametrize("robot_name", ["mobile2d", "drone3d", "viperx300"])
    def test_pair_is_collision_free(self, robot_name):
        robot = get_robot(robot_name)
        env = random_environment(robot.workspace_dim, 8, seed=9)
        rng = np.random.default_rng(0)
        start, goal = random_start_goal(robot, env, rng)
        checker = BruteOBBChecker(robot, env, motion_resolution=robot.step_size)
        assert not checker.config_in_collision(start)
        assert not checker.config_in_collision(goal)

    def test_pair_is_separated(self):
        robot = get_robot("mobile2d")
        env = random_environment(2, 8, seed=10)
        rng = np.random.default_rng(1)
        start, goal = random_start_goal(robot, env, rng)
        span = float(np.linalg.norm(robot.config_hi - robot.config_lo))
        assert np.linalg.norm(goal - start) >= 0.25 * span

    def test_impossible_environment_raises(self):
        """A workspace packed solid must raise, not loop forever."""
        from repro.core.world import Environment
        from repro.geometry.obb import OBB

        solid = OBB(np.array([150.0, 150.0]), np.array([160.0, 160.0]), np.eye(2))
        env = Environment(2, 300.0, [solid])
        robot = get_robot("mobile2d")
        with pytest.raises(RuntimeError):
            random_start_goal(robot, env, np.random.default_rng(2), max_tries=20)


class TestTasks:
    def test_random_task_shape(self):
        task = random_task("mobile2d", 8, seed=11)
        assert task.robot_name == "mobile2d"
        assert task.environment.num_obstacles == 8
        assert task.start.shape == (3,)

    def test_task_suite_sizes(self):
        suite = task_suite("mobile2d", 8, num_tasks=3, seed=12)
        assert len(suite) == 3
        assert [t.task_id for t in suite] == [0, 1, 2]

    def test_suite_tasks_differ(self):
        suite = task_suite("mobile2d", 8, num_tasks=2, seed=13)
        assert not np.allclose(suite[0].start, suite[1].start)

    def test_arm_task_protects_base(self):
        task = random_task("viperx300", 16, seed=14)
        base = np.array([150.0, 150.0, 20.0])
        for obstacle in task.environment.obstacles:
            assert np.linalg.norm(obstacle.center - base) >= 45.0
