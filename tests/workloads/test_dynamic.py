"""Unit tests for dynamic scenarios and moving obstacles."""

import numpy as np
import pytest

from repro.geometry.obb import OBB
from repro.geometry.rotations import rotation_2d
from repro.workloads.dynamic import (
    DynamicScenario,
    MovingObstacle,
    random_dynamic_scenario,
)


def obstacle(center=(50.0, 50.0), half=(10.0, 10.0), velocity=(5.0, 0.0)):
    return MovingObstacle(
        OBB(np.asarray(center, float), np.asarray(half, float), rotation_2d(0.3)),
        np.asarray(velocity, float),
    )


class TestMovingObstacle:
    def test_zero_time_is_initial_pose(self):
        moving = obstacle()
        at0 = moving.at(0.0, size=300.0)
        np.testing.assert_allclose(at0.center, [50.0, 50.0])

    def test_moves_with_velocity(self):
        moving = obstacle(velocity=(10.0, 0.0))
        at2 = moving.at(2.0, size=300.0)
        np.testing.assert_allclose(at2.center, [70.0, 50.0])

    def test_stays_inside_workspace(self):
        moving = obstacle(velocity=(37.0, -23.0))
        for t in np.linspace(0, 100, 60):
            box = moving.at(float(t), size=300.0).to_aabb()
            assert np.all(box.lo >= -16.0)  # rotated box AABB slightly wider
            assert np.all(box.hi <= 316.0)

    def test_bounces_off_walls(self):
        moving = obstacle(center=(280.0, 150.0), velocity=(30.0, 0.0))
        # Travelling right from near the wall must eventually come back left.
        positions = [moving.at(float(t), 300.0).center[0] for t in range(8)]
        assert min(positions) < 280.0

    def test_rotation_preserved(self):
        moving = obstacle()
        at5 = moving.at(5.0, size=300.0)
        np.testing.assert_allclose(at5.rotation, moving.obb.rotation)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            obstacle().at(-1.0, size=300.0)

    def test_velocity_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MovingObstacle(
                OBB(np.zeros(2), np.ones(2), np.eye(2)), np.zeros(3)
            )


class TestDynamicScenario:
    def test_environment_snapshots(self):
        scenario = DynamicScenario(2, 300.0, [obstacle()])
        env0 = scenario.environment_at(0.0)
        env5 = scenario.environment_at(5.0)
        assert env0.num_obstacles == env5.num_obstacles == 1
        assert not np.allclose(env0.obstacles[0].center, env5.obstacles[0].center)

    def test_snapshot_is_plannable(self):
        scenario = random_dynamic_scenario(2, 8, seed=1)
        env = scenario.environment_at(3.0)
        env.rtree.validate()

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            DynamicScenario(4, 300.0, [])

    def test_rejects_obstacle_dim_mismatch(self):
        bad = MovingObstacle(OBB(np.zeros(3), np.ones(3), np.eye(3)), np.zeros(3))
        with pytest.raises(ValueError):
            DynamicScenario(2, 300.0, [bad])

    def test_random_scenario_deterministic(self):
        a = random_dynamic_scenario(2, 6, seed=2)
        b = random_dynamic_scenario(2, 6, seed=2)
        for ma, mb in zip(a.obstacles, b.obstacles):
            np.testing.assert_allclose(ma.velocity, mb.velocity)

    def test_random_scenario_3d(self):
        scenario = random_dynamic_scenario(3, 6, seed=3)
        env = scenario.environment_at(1.0)
        assert env.workspace_dim == 3
        assert env.num_obstacles == 6
