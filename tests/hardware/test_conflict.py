"""Unit tests for the memory bank-conflict analysis (Section IV-C)."""

import numpy as np
import pytest

from repro.core.config import moped_config
from repro.core.metrics import RoundRecord
from repro.core.robots import get_robot
from repro.core.rrtstar import RRTStarPlanner
from repro.hardware.conflict import analyze_bank_conflicts
from repro.workloads import random_task


@pytest.fixture(scope="module")
def plan():
    task = random_task("mobile2d", 16, seed=1)
    robot = get_robot("mobile2d")
    return RRTStarPlanner(
        robot, task, moped_config("v4", max_samples=300, seed=0)
    ).plan()


class TestValidation:
    def test_bad_hit_rate(self, plan):
        with pytest.raises(ValueError):
            analyze_bank_conflicts(plan.rounds, 3, 2, top_hit_rate=1.5)

    def test_bad_port(self, plan):
        with pytest.raises(ValueError):
            analyze_bank_conflicts(plan.rounds, 3, 2, port_words=0)

    def test_empty_rounds(self):
        report = analyze_bank_conflicts([], 3, 2)
        assert report.stall_cycles == 0.0
        assert report.bottleneck_bank == "none"


class TestCacheEffect:
    def test_caches_cut_bottom_ns_pressure(self, plan):
        """The Section IV-C claim: redirected traffic relieves the NS SRAM."""
        with_caches = analyze_bank_conflicts(plan.rounds, 3, 2, caches_enabled=True)
        without = analyze_bank_conflicts(plan.rounds, 3, 2, caches_enabled=False)
        assert with_caches.bank_cycles["bottom_ns"] < 0.3 * without.bank_cycles["bottom_ns"]

    def test_cache_banks_absorb_traffic(self, plan):
        report = analyze_bank_conflicts(plan.rounds, 3, 2, caches_enabled=True)
        assert report.bank_cycles.get("top_ns_cache", 0.0) > 0
        assert report.bank_cycles.get("trace_cache", 0.0) > 0
        assert report.bank_cycles.get("neighbor_cache", 0.0) > 0

    def test_no_cache_banks_when_disabled(self, plan):
        report = analyze_bank_conflicts(plan.rounds, 3, 2, caches_enabled=False)
        assert "top_ns_cache" not in report.bank_cycles
        assert "neighbor_cache" not in report.bank_cycles

    def test_stalls_never_negative(self, plan):
        report = analyze_bank_conflicts(plan.rounds, 3, 2)
        assert report.stall_cycles >= 0.0
        assert 0.0 <= report.stall_fraction <= 1.0

    def test_narrow_ports_create_stalls(self, plan):
        """Starving the banks (1 word/cycle, no replication, no caches)
        must surface conflict stalls."""
        report = analyze_bank_conflicts(
            plan.rounds, 3, 2, caches_enabled=False, port_words=1,
            replication={},
        )
        assert report.stall_cycles > 0.0
        assert report.bottleneck_bank != "none"

    def test_replication_reduces_pressure(self, plan):
        solo = analyze_bank_conflicts(
            plan.rounds, 3, 2, caches_enabled=False, replication={}
        )
        replicated = analyze_bank_conflicts(
            plan.rounds, 3, 2, caches_enabled=False,
            replication={"obstacle_aabb": 4},
        )
        assert (
            replicated.bank_cycles["obstacle_aabb"]
            < solo.bank_cycles["obstacle_aabb"]
        )


class TestSyntheticRounds:
    def test_known_traffic(self):
        # One round: 16 dist events in 3-D C-space -> 48 words on bottom_ns.
        record = RoundRecord(
            ns_macs=64.0, cc_macs=0.0, maint_macs=0.0, other_macs=0.0,
            accepted=False, events={"dist": 16},
        )
        report = analyze_bank_conflicts(
            [record], dof=3, workspace_dim=2, caches_enabled=False, port_words=16
        )
        assert report.bank_cycles["bottom_ns"] == pytest.approx(48 / 16)

    def test_rounds_without_events_are_computed_only(self):
        record = RoundRecord(
            ns_macs=160.0, cc_macs=128.0, maint_macs=0.0, other_macs=0.0,
            accepted=False, events=None,
        )
        report = analyze_bank_conflicts([record], dof=3, workspace_dim=2)
        assert report.compute_cycles > 0
        assert report.bank_cycles == {}
