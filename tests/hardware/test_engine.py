"""Integration tests for the MOPED accelerator model and its baselines."""

import numpy as np
import pytest

from repro.core import get_robot
from repro.core.config import baseline_config, moped_config
from repro.hardware import (
    MopedAccelerator,
    format_comparison,
    run_asic_baseline,
    run_codacc_baseline,
    run_cpu_baseline,
)
from repro.workloads import random_task

SAMPLES = 250


@pytest.fixture(scope="module")
def task2d():
    return random_task("mobile2d", 16, seed=3)


@pytest.fixture(scope="module")
def robot2d():
    return get_robot("mobile2d")


@pytest.fixture(scope="module")
def moped_run(robot2d, task2d):
    acc = MopedAccelerator()
    return acc.run(
        robot2d, task2d, moped_config("v4", max_samples=SAMPLES, seed=0, sampler="lfsr")
    )


class TestAccelerator:
    def test_produces_valid_plan(self, moped_run):
        assert moped_run.plan.iterations == SAMPLES
        assert moped_run.plan.total_macs > 0

    def test_latency_positive_and_sub_second(self, moped_run):
        assert 0 < moped_run.perf.latency_s < 1.0

    def test_pipeline_speedup_over_one(self, moped_run):
        assert moped_run.pipeline.speedup > 1.0

    def test_buffer_occupancies_within_paper_budgets(self, moped_run):
        """Section IV-B: 20-deep FIFO and 5-entry missing buffer suffice."""
        assert moped_run.pipeline.max_fifo_occupancy <= 20
        assert moped_run.pipeline.max_missing_neighbors <= 5

    def test_cache_hierarchy_active(self, moped_run):
        assert moped_run.cache.top_cache_hit_rate > 0.5
        assert moped_run.cache.neighbor_cache_reads > 0

    def test_trace_cache_engages_beyond_unit_cache(self, robot2d, task2d):
        """With a unit cache smaller than the tree, the module-level trace
        cache must absorb revisits (Section IV-C)."""
        from repro.core.config import moped_config as mc
        from repro.hardware.memory import MemorySystem
        from repro.core.rrtstar import RRTStarPlanner

        config = mc("v4", max_samples=SAMPLES, seed=0, sampler="lfsr")
        acc = MopedAccelerator()
        planner = RRTStarPlanner(robot2d, task2d, config)
        memory = MemorySystem(robot2d.dof, top_cache_nodes=2, enable_caches=True)
        acc._attach_memory(planner, memory)
        planner.plan()
        assert memory.trace_hits > 0

    def test_snr_disabled_is_slower(self, robot2d, task2d):
        config = moped_config("v4", max_samples=SAMPLES, seed=0, sampler="lfsr")
        fast = MopedAccelerator(enable_snr=True).run(robot2d, task2d, config)
        slow = MopedAccelerator(enable_snr=False).run(robot2d, task2d, config)
        assert slow.perf.latency_s > fast.perf.latency_s

    def test_caches_disabled_cost_more_energy(self, robot2d, task2d):
        config = moped_config("v4", max_samples=SAMPLES, seed=0, sampler="lfsr")
        cached = MopedAccelerator(enable_caches=True).run(robot2d, task2d, config)
        uncached = MopedAccelerator(enable_caches=False).run(robot2d, task2d, config)
        assert cached.cache.total_energy_j < uncached.cache.total_energy_j

    def test_default_config_is_full_moped(self, robot2d, task2d):
        result = MopedAccelerator().run(robot2d, task2d)
        assert result.plan.iterations > 0


class TestBaselines:
    @pytest.fixture(scope="class")
    def base_cfg(self):
        return baseline_config(max_samples=SAMPLES, seed=0)

    def test_cpu_baseline(self, robot2d, task2d, base_cfg):
        plan, report = run_cpu_baseline(robot2d, task2d, base_cfg)
        assert plan.total_macs > 0
        assert report.latency_s > 0
        assert report.platform.startswith("CPU")

    def test_asic_baseline(self, robot2d, task2d, base_cfg):
        plan, report = run_asic_baseline(robot2d, task2d, base_cfg)
        assert report.latency_s > 0
        assert report.area_mm2 == pytest.approx(0.60)

    def test_codacc_requires_grid_checker(self, robot2d, task2d, base_cfg):
        with pytest.raises(ValueError):
            run_codacc_baseline(robot2d, task2d, base_cfg)

    def test_codacc_baseline(self, robot2d, task2d):
        config = baseline_config(checker="grid", max_samples=SAMPLES, seed=0)
        plan, report = run_codacc_baseline(robot2d, task2d, config)
        assert report.latency_s > 0
        assert report.area_mm2 > 0.60  # CODAcc adds area

    def test_fig15_ordering(self, robot2d, task2d, moped_run, base_cfg):
        """The paper's headline: MOPED beats CODAcc beats ASIC beats CPU."""
        _, cpu = run_cpu_baseline(robot2d, task2d, base_cfg)
        _, asic = run_asic_baseline(robot2d, task2d, base_cfg)
        _, codacc = run_codacc_baseline(
            robot2d, task2d, baseline_config(checker="grid", max_samples=SAMPLES, seed=0)
        )
        moped = moped_run.perf
        assert moped.latency_s < codacc.latency_s < asic.latency_s < cpu.latency_s
        ratios = moped.ratios_vs(asic)
        assert ratios["speedup"] > 2.0
        assert ratios["energy_efficiency"] > 2.0

    def test_format_comparison_renders(self, moped_run, robot2d, task2d, base_cfg):
        _, asic = run_asic_baseline(robot2d, task2d, base_cfg)
        table = format_comparison({"MOPED": moped_run.perf, "ASIC": asic}, reference="MOPED")
        assert "MOPED" in table and "ASIC" in table

    def test_format_comparison_bad_reference(self, moped_run):
        with pytest.raises(KeyError):
            format_comparison({"MOPED": moped_run.perf}, reference="GPU")


class TestPerfReport:
    def test_derived_metrics(self, moped_run):
        perf = moped_run.perf
        assert perf.throughput_hz == pytest.approx(1.0 / perf.latency_s)
        assert perf.energy_efficiency == pytest.approx(1.0 / perf.energy_j)
        assert perf.area_efficiency == pytest.approx(perf.throughput_hz / perf.area_mm2)

    def test_self_ratios_are_one(self, moped_run):
        ratios = moped_run.perf.ratios_vs(moped_run.perf)
        for value in ratios.values():
            assert value == pytest.approx(1.0)
