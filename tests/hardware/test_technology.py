"""Unit tests for the 28 nm technology model."""

import pytest

from repro.hardware.params import MopedHardwareParams
from repro.hardware.technology import TechnologyModel, consistency_report

TECH = TechnologyModel()
PARAMS = MopedHardwareParams()


class TestAreaModel:
    def test_sram_area_scales_linearly(self):
        assert TECH.sram_area_mm2(64.0) == pytest.approx(2 * TECH.sram_area_mm2(32.0))

    def test_datapath_area_scales_with_macs(self):
        assert TECH.datapath_area_mm2(336) == pytest.approx(
            2 * TECH.datapath_area_mm2(168)
        )

    def test_breakdown_sums_to_total(self):
        breakdown = TECH.area_breakdown(PARAMS)
        assert sum(breakdown.values()) == pytest.approx(TECH.total_area_mm2(PARAMS))

    def test_derived_area_matches_paper(self):
        """Bottom-up 28nm area lands within 10% of the reported 0.62 mm^2."""
        derived = TECH.total_area_mm2(PARAMS)
        assert derived == pytest.approx(PARAMS.area_mm2, rel=0.10)

    def test_sram_dominates_area(self):
        """At 198 KB vs 168 MACs, memory is the bigger area consumer."""
        breakdown = TECH.area_breakdown(PARAMS)
        assert breakdown["sram"] > breakdown["datapath"]


class TestPowerModel:
    def test_derived_power_matches_paper(self):
        """Bottom-up 28nm power lands within 15% of the reported 137.5 mW."""
        derived = TECH.total_power_w(PARAMS)
        assert derived == pytest.approx(PARAMS.power_w, rel=0.15)

    def test_power_scales_with_activity(self):
        low = TECH.total_power_w(PARAMS, mac_activity=0.2)
        high = TECH.total_power_w(PARAMS, mac_activity=0.9)
        assert low < high

    def test_activity_validation(self):
        with pytest.raises(ValueError):
            TECH.dynamic_power_w(PARAMS, mac_activity=1.5)

    def test_breakdown_sums_to_total(self):
        breakdown = TECH.power_breakdown(PARAMS)
        assert sum(breakdown.values()) == pytest.approx(TECH.total_power_w(PARAMS))

    def test_static_power_is_small_fraction(self):
        breakdown = TECH.power_breakdown(PARAMS)
        assert breakdown["static"] < 0.2 * TECH.total_power_w(PARAMS)


class TestConsistencyReport:
    def test_renders(self):
        text = consistency_report()
        assert "derived" in text and "reported" in text
        assert "0.62" in text
