"""Tests for the discrete-event simulator, incl. analytical cross-validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import moped_config
from repro.core.metrics import RoundRecord
from repro.core.robots import get_robot
from repro.core.rrtstar import RRTStarPlanner
from repro.hardware.eventsim import MopedEventSimulator, format_timeline
from repro.hardware.params import MopedHardwareParams
from repro.hardware.pipeline import snr_latency_cycles
from repro.workloads import random_task

PARAMS = MopedHardwareParams()


def make_round(ns=160.0, cc=1280.0, accepted=True):
    return RoundRecord(ns_macs=ns, cc_macs=cc, maint_macs=0.0, other_macs=0.0,
                       accepted=accepted)


class TestBasics:
    def test_empty(self):
        result = MopedEventSimulator().run([])
        assert result.total_cycles == 0.0
        assert result.traces == []

    def test_single_round(self):
        result = MopedEventSimulator().run([make_round(ns=16.0, cc=128.0)])
        trace = result.traces[0]
        assert trace.ns_start == 0.0
        assert trace.ns_end == pytest.approx(1.0)
        assert trace.cc_start == pytest.approx(1.0)
        assert trace.cc_end == pytest.approx(2.0)

    def test_overlap_emerges(self):
        """With balanced loads, round i+1's NS overlaps round i's CC."""
        rounds = [make_round(ns=1600.0, cc=12800.0, accepted=False)] * 3
        result = MopedEventSimulator().run(rounds)
        t0, t1 = result.traces[0], result.traces[1]
        assert t1.ns_start < t0.cc_end  # overlap

    def test_buffer_bounds_respected(self):
        rounds = [make_round(ns=1.6, cc=12800.0) for _ in range(60)]
        result = MopedEventSimulator().run(rounds)
        assert result.max_fifo <= PARAMS.fifo_depth
        assert result.max_missing <= PARAMS.missing_buffer_entries

    def test_utilisations_in_range(self):
        rounds = [make_round() for _ in range(40)]
        result = MopedEventSimulator().run(rounds)
        assert 0.0 < result.utilisation_cc <= 1.0
        assert 0.0 < result.utilisation_ns <= 1.0


class TestCrossValidation:
    """The DES must agree with the analytical model — independently coded."""

    def test_agrees_on_real_planner_run(self):
        task = random_task("mobile2d", 16, seed=1)
        robot = get_robot("mobile2d")
        plan = RRTStarPlanner(
            robot, task, moped_config("v4", max_samples=300, seed=0)
        ).plan()
        analytical = snr_latency_cycles(plan.rounds, PARAMS)
        des = MopedEventSimulator().run(plan.rounds)
        assert des.total_cycles == pytest.approx(analytical.snr_cycles, rel=0.01)
        assert des.max_fifo == analytical.max_fifo_occupancy
        assert des.max_missing == analytical.max_missing_neighbors

    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.tuples(
            st.floats(0.0, 4000.0),
            st.floats(0.0, 4000.0),
            st.booleans(),
        ),
        min_size=1,
        max_size=40,
    ))
    def test_agrees_on_random_round_logs(self, spec):
        rounds = [
            RoundRecord(ns_macs=ns, cc_macs=cc, maint_macs=0.0, other_macs=0.0,
                        accepted=acc)
            for ns, cc, acc in spec
        ]
        analytical = snr_latency_cycles(rounds, PARAMS)
        des = MopedEventSimulator().run(rounds)
        assert des.total_cycles == pytest.approx(analytical.snr_cycles, rel=1e-6, abs=1e-6)
        assert des.max_missing == analytical.max_missing_neighbors


class TestTimeline:
    def test_renders(self):
        rounds = [make_round() for _ in range(20)]
        result = MopedEventSimulator().run(rounds)
        art = format_timeline(result, first=0, count=8)
        assert "N" in art and "C" in art
        assert art.count("\n") == 8  # header + 8 rows

    def test_empty_window(self):
        result = MopedEventSimulator().run([make_round()])
        assert "no rounds" in format_timeline(result, first=5, count=3)
