"""Unit tests for the SRAM banks and multi-level cache model."""

import pytest

from repro.hardware.memory import LRUCache, MemorySystem, SRAMBank


class TestSRAMBank:
    def test_access_counting(self):
        bank = SRAMBank("exp_node", 64.0)
        bank.read(10)
        bank.write(3)
        assert bank.reads == 10
        assert bank.writes == 3
        assert bank.accesses == 13

    def test_energy_scales_with_accesses(self):
        bank = SRAMBank("exp_node", 64.0)
        bank.read(100)
        e100 = bank.energy_j()
        bank.read(100)
        assert bank.energy_j() == pytest.approx(2 * e100)


class TestLRUCache:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_hit_after_insert(self):
        cache = LRUCache(4)
        assert not cache.access("a")  # cold miss
        assert cache.access("a")  # hit
        assert cache.hits == 1
        assert cache.misses == 1

    def test_eviction_order_is_lru(self):
        cache = LRUCache(2)
        cache.access("a")
        cache.access("b")
        cache.access("a")  # refresh a; b is now LRU
        cache.access("c")  # evicts b
        assert cache.access("a")
        assert not cache.access("b")

    def test_capacity_respected(self):
        cache = LRUCache(3)
        for key in range(10):
            cache.access(key)
        assert len(cache) == 3

    def test_hit_rate(self):
        cache = LRUCache(8)
        for _ in range(2):
            for key in range(4):
                cache.access(key)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_empty_hit_rate_is_zero(self):
        assert LRUCache(2).hit_rate == 0.0


class TestMemorySystem:
    def test_rejects_bad_dof(self):
        with pytest.raises(ValueError):
            MemorySystem(dof=0)

    def test_top_cache_captures_temporal_locality(self):
        """Repeated root-side accesses must mostly hit the unit cache."""
        mem = MemorySystem(dof=3, top_cache_nodes=16)
        for _ in range(50):
            for uid in range(4):  # the same "top" nodes every search
                mem.on_tree_access(uid, depth=0)
            mem.end_search()
        report = mem.report()
        assert report.top_cache_hit_rate > 0.9

    def test_trace_cache_absorbs_revisits(self):
        """Nodes revisited in the next search hit the module-level trace
        even after the tiny unit cache evicted them."""
        mem = MemorySystem(dof=3, top_cache_nodes=1)
        mem.on_tree_access(100, depth=2)
        mem.on_tree_access(200, depth=2)  # evicts 100 from the 1-entry cache
        mem.end_search()
        mem.on_tree_access(100, depth=2)  # same node, next search
        mem.end_search()
        assert mem.trace_hits == 1

    def test_disabled_caches_charge_sram(self):
        mem = MemorySystem(dof=3, enable_caches=False)
        for _ in range(20):
            mem.on_tree_access(0, depth=0)
            mem.end_search()
        report = mem.report()
        assert report.top_cache_hits == 0
        assert report.trace_hits == 0
        assert mem.banks["bottom_ns"].reads > 0

    def test_caches_reduce_energy(self):
        """The Section IV-C claim: caching lowers memory energy."""

        def run(enable):
            mem = MemorySystem(dof=5, top_cache_nodes=64, enable_caches=enable)
            for _ in range(100):
                for uid in range(8):
                    mem.on_tree_access(uid, depth=uid // 4)
                mem.end_search()
            return mem.report().total_energy_j

        assert run(True) < run(False)

    def test_neighborhood_handoff_uses_engine_cache(self):
        mem = MemorySystem(dof=4)
        mem.on_neighborhood_handoff(num_neighbors=6)
        assert mem.neighbor_cache_reads == 6
        assert mem.banks["neighbor_cache"].reads == 24  # 6 neighbors x dof

    def test_obstacle_reads_use_paper_word_counts(self):
        mem = MemorySystem(dof=3)
        mem.on_obstacle_obb_read(3, n=2)
        mem.on_obstacle_aabb_read(3, n=2)
        assert mem.banks["obstacle_obb"].reads == 30  # 15 words per 3D OBB
        assert mem.banks["obstacle_aabb"].reads == 12  # 6 words per 3D AABB
        mem2 = MemorySystem(dof=3)
        mem2.on_obstacle_obb_read(2, n=1)
        mem2.on_obstacle_aabb_read(2, n=1)
        assert mem2.banks["obstacle_obb"].reads == 8  # 8 words per 2D OBB
        assert mem2.banks["obstacle_aabb"].reads == 4

    def test_report_totals(self):
        mem = MemorySystem(dof=3)
        mem.on_node_write(5)
        mem.on_struct_update(2)
        report = mem.report()
        assert report.sram_energy_j > 0
        assert report.total_energy_j >= report.sram_energy_j
