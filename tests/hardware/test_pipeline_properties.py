"""Property tests for the speculate-and-repair pipeline model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import RoundRecord
from repro.hardware.params import MopedHardwareParams
from repro.hardware.pipeline import serialized_latency_cycles, snr_latency_cycles

PARAMS = MopedHardwareParams()


@st.composite
def round_list(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    rounds = []
    for _ in range(n):
        rounds.append(
            RoundRecord(
                ns_macs=draw(st.floats(0.0, 5000.0)),
                cc_macs=draw(st.floats(0.0, 5000.0)),
                maint_macs=draw(st.floats(0.0, 500.0)),
                other_macs=draw(st.floats(0.0, 500.0)),
                accepted=draw(st.booleans()),
            )
        )
    return rounds


@settings(max_examples=80, deadline=None)
@given(round_list())
def test_snr_never_slower_than_serial_plus_repairs(rounds):
    """S&R latency <= serialized latency + total repair overhead."""
    report = snr_latency_cycles(rounds, PARAMS)
    serial = serialized_latency_cycles(rounds, PARAMS)
    assert report.snr_cycles <= serial + report.repair_cycles + 1e-6


@settings(max_examples=80, deadline=None)
@given(round_list())
def test_buffer_occupancies_respect_hardware_budgets(rounds):
    """Backpressure caps FIFO at 20 entries and missing neighbors at 5."""
    report = snr_latency_cycles(rounds, PARAMS)
    assert report.max_fifo_occupancy <= PARAMS.fifo_depth
    assert report.max_missing_neighbors <= PARAMS.missing_buffer_entries


@settings(max_examples=80, deadline=None)
@given(round_list())
def test_latencies_nonnegative_and_monotone_in_rounds(rounds):
    """Adding a round never reduces either schedule's latency."""
    full = snr_latency_cycles(rounds, PARAMS)
    prefix = snr_latency_cycles(rounds[:-1], PARAMS)
    assert full.snr_cycles >= prefix.snr_cycles - 1e-9
    assert full.serial_cycles >= prefix.serial_cycles - 1e-9
    assert full.snr_cycles >= 0.0


@settings(max_examples=50, deadline=None)
@given(round_list(), st.floats(0.0, 10.0))
def test_repair_overhead_scales_with_cost(rounds, repair_cost):
    """Higher per-entry repair cost never reduces latency."""
    cheap = snr_latency_cycles(rounds, PARAMS, repair_cycles_per_entry=0.0)
    priced = snr_latency_cycles(rounds, PARAMS, repair_cycles_per_entry=repair_cost)
    assert priced.snr_cycles >= cheap.snr_cycles - 1e-9


@settings(max_examples=50, deadline=None)
@given(round_list())
def test_serial_equals_sum_of_unit_cycles(rounds):
    """The serialized schedule is exactly the per-round cycle sum."""
    params = PARAMS
    expected = 0.0
    for r in rounds:
        expected += (
            r.ns_macs / params.ns_unit_macs
            + r.maint_macs / params.tree_op_macs
            + r.other_macs / params.refine_unit_macs
            + r.cc_macs / params.cc_unit_macs
        )
    assert serialized_latency_cycles(rounds, params) == np.float64(expected)
