"""Unit tests for the speculate-and-repair pipeline timing model."""

import pytest

from repro.core.metrics import RoundRecord
from repro.hardware.params import MopedHardwareParams
from repro.hardware.pipeline import serialized_latency_cycles, snr_latency_cycles

PARAMS = MopedHardwareParams()


def make_round(ns_macs=160.0, cc_macs=1280.0, maint=0.0, other=0.0, accepted=True):
    return RoundRecord(
        ns_macs=ns_macs,
        cc_macs=cc_macs,
        maint_macs=maint,
        other_macs=other,
        accepted=accepted,
    )


class TestSerialized:
    def test_empty(self):
        assert serialized_latency_cycles([], PARAMS) == 0.0

    def test_sums_unit_cycles(self):
        rounds = [make_round(ns_macs=16.0, cc_macs=128.0)]
        # 16/16 + 128/128 = 2 cycles.
        assert serialized_latency_cycles(rounds, PARAMS) == pytest.approx(2.0)

    def test_linear_in_rounds(self):
        one = serialized_latency_cycles([make_round()], PARAMS)
        ten = serialized_latency_cycles([make_round()] * 10, PARAMS)
        assert ten == pytest.approx(10 * one)


class TestSnr:
    def test_empty(self):
        report = snr_latency_cycles([], PARAMS)
        assert report.snr_cycles == 0.0
        assert report.max_fifo_occupancy == 0

    def test_speedup_at_least_one_ish(self):
        """Overlap can only help (up to tiny repair overhead)."""
        rounds = [make_round() for _ in range(50)]
        report = snr_latency_cycles(rounds, PARAMS)
        assert report.speedup > 0.95

    def test_balanced_loads_approach_2x(self):
        """Equal NS/CC cycle loads overlap almost perfectly."""
        rounds = [
            make_round(ns_macs=16.0 * 100, cc_macs=128.0 * 100, accepted=False)
            for _ in range(200)
        ]
        report = snr_latency_cycles(rounds, PARAMS)
        assert report.speedup > 1.8

    def test_imbalanced_loads_limited_speedup(self):
        """CC-dominated rounds cap the overlap benefit."""
        rounds = [
            make_round(ns_macs=16.0, cc_macs=128.0 * 100, accepted=False)
            for _ in range(100)
        ]
        report = snr_latency_cycles(rounds, PARAMS)
        assert report.speedup < 1.2

    def test_missing_buffer_bounded(self):
        """Backpressure caps in-flight insertions at the buffer size."""
        rounds = [make_round(ns_macs=1.6, cc_macs=12800.0) for _ in range(100)]
        report = snr_latency_cycles(rounds, PARAMS)
        assert report.max_missing_neighbors <= PARAMS.missing_buffer_entries

    def test_fifo_bounded(self):
        rounds = [make_round(ns_macs=1.6, cc_macs=12800.0, accepted=False) for _ in range(100)]
        report = snr_latency_cycles(rounds, PARAMS)
        assert report.max_fifo_occupancy <= PARAMS.fifo_depth

    def test_stalls_appear_under_backpressure(self):
        rounds = [make_round(ns_macs=1.6, cc_macs=12800.0) for _ in range(100)]
        report = snr_latency_cycles(rounds, PARAMS)
        assert report.fifo_stall_cycles > 0

    def test_no_stalls_when_cc_is_fast(self):
        rounds = [make_round(ns_macs=1600.0, cc_macs=12.8) for _ in range(50)]
        report = snr_latency_cycles(rounds, PARAMS)
        assert report.fifo_stall_cycles == pytest.approx(0.0)
        assert report.max_missing_neighbors <= 1

    def test_repair_overhead_accounted(self):
        rounds = [make_round() for _ in range(30)]
        report = snr_latency_cycles(rounds, PARAMS, repair_cycles_per_entry=5.0)
        baseline = snr_latency_cycles(rounds, PARAMS, repair_cycles_per_entry=0.0)
        assert report.snr_cycles >= baseline.snr_cycles
        if report.max_missing_neighbors > 0:
            assert report.repair_cycles > 0

    def test_snr_never_slower_than_serial_plus_repair(self):
        rounds = [make_round() for _ in range(40)]
        report = snr_latency_cycles(rounds, PARAMS)
        serial = serialized_latency_cycles(rounds, PARAMS)
        assert report.snr_cycles <= serial + report.repair_cycles + 1e-9
