"""Unit tests for the hardware parameter sets."""

import pytest

from repro.hardware.params import (
    AsicParams,
    CodaccParams,
    CpuParams,
    MopedHardwareParams,
    SRAM_BANKS_KB,
    sram_access_energy_j,
)


class TestMopedParams:
    def test_paper_design_point(self):
        """Section V-B: 168 MACs, 198 KB, 0.62 mm^2, 137.5 mW, 1 GHz."""
        params = MopedHardwareParams()
        assert params.num_macs == 168
        assert params.sram_kbytes == 198.0
        assert params.area_mm2 == pytest.approx(0.62)
        assert params.power_w == pytest.approx(0.1375)
        assert params.frequency_hz == 1.0e9

    def test_unit_allocation_sums_to_total(self):
        params = MopedHardwareParams()
        total = (
            params.ns_unit_macs
            + params.cc_unit_macs
            + params.refine_unit_macs
            + params.tree_op_macs
        )
        assert total == params.num_macs

    def test_bad_allocation_rejected(self):
        with pytest.raises(ValueError):
            MopedHardwareParams(ns_unit_macs=100)

    def test_snr_buffer_sizing(self):
        """Section IV-B: 20-deep FIFO, 5-entry missing buffer, 0.75 KB."""
        params = MopedHardwareParams()
        assert params.fifo_depth == 20
        assert params.missing_buffer_entries == 5
        assert params.snr_buffer_kbytes == pytest.approx(0.75)

    def test_derived_quantities(self):
        params = MopedHardwareParams()
        assert params.cycle_time_s == pytest.approx(1e-9)
        # 137.5 mW at 1 GHz = 137.5 pJ per cycle.
        assert params.energy_per_cycle_j == pytest.approx(137.5e-12)


class TestBaselineParams:
    def test_cpu_is_epyc_7601(self):
        params = CpuParams()
        assert params.frequency_hz == pytest.approx(2.2e9)
        assert params.power_w > 1.0  # a server core, not an accelerator

    def test_asic_mirrors_moped_resources(self):
        asic, moped = AsicParams(), MopedHardwareParams()
        assert asic.num_macs == moped.num_macs
        assert asic.frequency_hz == moped.frequency_hz
        assert abs(asic.area_mm2 - moped.area_mm2) < 0.1

    def test_codacc_four_accelerators(self):
        params = CodaccParams()
        assert params.num_accelerators == 4
        assert params.total_probe_rate == 256.0


class TestSramModel:
    def test_energy_positive_and_monotone(self):
        small = sram_access_energy_j(4.0)
        large = sram_access_energy_j(64.0)
        assert 0 < small < large

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            sram_access_energy_j(0.0)

    def test_word_width_scaling(self):
        assert sram_access_energy_j(16.0, word_bits=32) == pytest.approx(
            2.0 * sram_access_energy_j(16.0, word_bits=16)
        )

    def test_bank_budget_close_to_paper(self):
        """The Fig 11 banks must sum to roughly the 198 KB budget."""
        total = sum(SRAM_BANKS_KB.values())
        assert 150.0 <= total <= 198.0
