"""Unit tests for ASCII rendering, suite statistics, and the run-all CLI."""

import numpy as np
import pytest

from repro.analysis.render import render_environment
from repro.analysis.suite import SuiteStats, evaluate_suite
from repro.core.config import moped_config
from repro.core.world import Environment
from repro.geometry.obb import OBB
from repro.workloads import random_environment, task_suite


class TestRender:
    def test_dimensions(self):
        env = random_environment(2, 8, seed=0)
        art = render_environment(env, width=40, height=20)
        lines = art.splitlines()
        assert len(lines) == 22  # 20 rows + 2 borders
        assert all(len(line) == 42 for line in lines)

    def test_obstacles_drawn(self):
        env = random_environment(2, 8, seed=0)
        art = render_environment(env)
        assert "#" in art

    def test_empty_environment_blank(self):
        env = Environment(2, 300.0, [])
        art = render_environment(env)
        assert "#" not in art

    def test_path_markers(self):
        env = Environment(2, 300.0, [])
        path = [np.array([20.0, 20.0, 0.0]), np.array([280.0, 280.0, 0.0])]
        art = render_environment(env, path=path)
        assert "S" in art and "G" in art and "*" in art

    def test_obstacle_position_correct(self):
        obstacle = OBB(np.array([75.0, 225.0]), np.array([20.0, 20.0]), np.eye(2))
        env = Environment(2, 300.0, [obstacle])
        art = render_environment(env, width=60, height=30)
        lines = art.splitlines()[1:-1]  # strip borders
        # Obstacle centre (x=75 -> col ~15, y=225 -> upper quarter).
        upper = "".join(lines[: len(lines) // 2])
        lower = "".join(lines[len(lines) // 2 :])
        assert "#" in upper and "#" not in lower

    def test_rejects_3d(self):
        env = random_environment(3, 4, seed=1)
        with pytest.raises(ValueError):
            render_environment(env)

    def test_rejects_tiny_grid(self):
        env = Environment(2, 300.0, [])
        with pytest.raises(ValueError):
            render_environment(env, width=1, height=1)


class TestSuiteStats:
    @pytest.fixture(scope="class")
    def stats(self):
        tasks = task_suite("mobile2d", 8, num_tasks=3, seed=0)
        config = moped_config("v4", max_samples=250, goal_bias=0.15, seed=0)
        return evaluate_suite(tasks, config)

    def test_counts(self, stats):
        assert stats.num_tasks == 3
        assert 0 <= stats.successes <= 3
        assert stats.success_rate == stats.successes / 3

    def test_aggregates_sane(self, stats):
        assert stats.mean_macs > 0
        assert stats.p95_macs >= stats.mean_macs * 0.5
        assert stats.mean_nodes > 1

    def test_row_shape(self, stats):
        assert len(stats.row()) == 5

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            evaluate_suite([], moped_config("v4"))


class TestRunAllCli:
    def test_single_figure(self, tmp_path, monkeypatch, capsys):
        from repro.analysis.run_all import main

        monkeypatch.setenv("REPRO_SAMPLES", "120")
        monkeypatch.setenv("REPRO_TASKS", "1")
        code = main(["--only", "fig17", "--out", str(tmp_path),
                     "--samples", "120", "--tasks", "1"])
        assert code == 0
        assert (tmp_path / "fig17.txt").exists()
        assert "S&R" in capsys.readouterr().out

    def test_unknown_figure_rejected(self, tmp_path):
        from repro.analysis.run_all import main

        with pytest.raises(SystemExit):
            main(["--only", "fig99", "--out", str(tmp_path)])
