"""Unit tests for table formatting."""

import pytest

from repro.analysis import format_table


class TestFormatTable:
    def test_basic_rendering(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_float_formatting(self):
        out = format_table(["x"], [[3.14159]], float_fmt="{:.2f}")
        assert "3.14" in out

    def test_ints_and_strings_pass_through(self):
        out = format_table(["n", "s"], [[7, "hello"]])
        assert "7" in out and "hello" in out

    def test_alignment_consistent(self):
        out = format_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = out.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # every line padded to the same width

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out
