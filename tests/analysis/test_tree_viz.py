"""Unit tests for SI-MBR-Tree diagnostics and visualisation."""

import numpy as np
import pytest

from repro.analysis.tree_viz import render_tree, tree_stats
from repro.spatial import SIMBRTree


def grown_tree(n=120, dim=3, capacity=6, steering=True, seed=0):
    rng = np.random.default_rng(seed)
    tree = SIMBRTree(dim, capacity=capacity)
    points = {0: rng.uniform(0, 10, dim)}
    tree.insert(0, points[0])
    for i in range(1, n):
        if steering:
            parent = int(rng.integers(0, i))
            p = points[parent] + rng.normal(scale=0.5, size=dim)
            tree.insert(i, p, sibling_of=parent)
        else:
            p = rng.uniform(0, 10, dim)
            tree.insert(i, p)
        points[i] = p
    return tree


class TestTreeStats:
    def test_empty_tree(self):
        stats = tree_stats(SIMBRTree(dim=3))
        assert stats.size == 0
        assert stats.height == 0
        assert stats.levels == []

    def test_counts_consistent(self):
        tree = grown_tree()
        stats = tree_stats(tree)
        assert stats.size == 120
        assert stats.height == tree.height
        assert len(stats.levels) == tree.height
        assert stats.levels[0].nodes == 1  # the root

    def test_leaf_occupancy_bounded_by_capacity(self):
        tree = grown_tree(capacity=6)
        stats = tree_stats(tree)
        assert 1.0 <= stats.mean_leaf_occupancy <= 6.0

    def test_total_overlap_matches_tree_method(self):
        tree = grown_tree(seed=1)
        stats = tree_stats(tree)
        assert stats.total_overlap == pytest.approx(tree.total_overlap())

    def test_level_overlaps_sum_to_total(self):
        tree = grown_tree(seed=2)
        stats = tree_stats(tree)
        assert sum(l.overlap_volume for l in stats.levels) == pytest.approx(
            stats.total_overlap
        )

    def test_summary_renders(self):
        stats = tree_stats(grown_tree())
        text = stats.summary()
        assert "SI-MBR-Tree" in text
        assert "depth 0" in text

    def test_lci_reduces_overlap_in_real_planning(self):
        """The Section III-C claim, measured on real planner runs.

        LCI's sibling placement wins *because* x_new is steered from its
        true nearest neighbor — placing far-apart points as siblings (as a
        synthetic random-parent workload would) degrades the tree instead.
        Averaged over planner seeds, the steering-informed trees carry less
        sibling MBR overlap than minimum-area-enlargement descent.
        """
        from repro.core.config import moped_config
        from repro.core.robots import get_robot
        from repro.core.rrtstar import RRTStarPlanner
        from repro.workloads import random_task

        task = random_task("drone3d", 16, seed=0)
        robot = get_robot("drone3d")
        ratios = []
        for seed in range(2):
            overlaps = {}
            for variant in ("v3", "v4"):
                planner = RRTStarPlanner(
                    robot, task,
                    moped_config(variant, max_samples=250, seed=seed, goal_bias=0.1),
                )
                planner.plan()
                overlaps[variant] = tree_stats(planner.strategy.tree).total_overlap
            ratios.append(overlaps["v4"] / max(overlaps["v3"], 1e-12))
        assert np.mean(ratios) < 1.0


class TestRenderTree:
    def test_empty(self):
        assert "empty" in render_tree(SIMBRTree(dim=2))

    def test_renders_hierarchy(self):
        art = render_tree(grown_tree())
        assert "node[" in art
        assert "leaf[" in art

    def test_truncation(self):
        art = render_tree(grown_tree(n=400, capacity=4), max_depth=1, max_children=2)
        assert "..." in art or "more)" in art
