"""Smoke tests for the per-figure experiment runners.

Each runner is executed at the tiny smoke scale and checked for structural
sanity (headers match rows, values in plausible ranges).  The full-scale
trend assertions live in ``benchmarks/``.
"""

import math

import pytest

from repro.analysis import (
    ExperimentScale,
    run_fig15_hardware,
    run_fig18_aabb_speedup,
    run_fig18_bounding_box,
    run_cache_stats,
    run_fig03_breakdown,
    run_fig06_two_stage,
    run_fig08_approx_ns,
    run_fig10_insertion,
    run_fig14_algorithmic,
    run_fig16_breakdown,
    run_fig17_snr,
    run_fig19_kd_comparison,
    run_fig19_scaling,
    run_snr_buffer_stats,
)

SMOKE = ExperimentScale.smoke()


def check_structure(result):
    assert result.rows, f"{result.figure}: no rows"
    for row in result.rows:
        assert len(row) == len(result.headers)
    assert result.paper_claim
    dicts = result.row_dicts()
    assert dicts[0].keys() == set(result.headers)


class TestScale:
    def test_smoke_scale_is_tiny(self):
        assert SMOKE.samples <= 200
        assert SMOKE.robots == ("mobile2d",)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLES", "123")
        monkeypatch.setenv("REPRO_TASKS", "7")
        scale = ExperimentScale.from_env()
        assert scale.samples == 123
        assert scale.tasks == 7

    def test_from_env_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_SAMPLES", raising=False)
        monkeypatch.delenv("REPRO_TASKS", raising=False)
        scale = ExperimentScale.from_env()
        assert scale.samples == 400


class TestRunners:
    def test_fig03(self):
        result = run_fig03_breakdown(SMOKE)
        check_structure(result)
        for row in result.rows:
            shares = row[2:5]
            assert all(0.0 <= s <= 100.0 for s in shares)
            assert math.isclose(sum(shares), 100.0, rel_tol=1e-6)

    def test_fig06(self):
        result = run_fig06_two_stage(SMOKE)
        check_structure(result)
        assert all(row[4] > 1.0 for row in result.rows)

    def test_fig08(self):
        result = run_fig08_approx_ns(SMOKE)
        check_structure(result)
        assert all(row[3] > 1.0 for row in result.rows)

    def test_fig10(self):
        result = run_fig10_insertion(SMOKE)
        check_structure(result)

    def test_fig14(self):
        result = run_fig14_algorithmic(SMOKE)
        check_structure(result)
        assert all(row[2] > 1.0 for row in result.rows)

    def test_fig16(self):
        result = run_fig16_breakdown(SMOKE)
        check_structure(result)
        assert all(row[5] > 1.0 for row in result.rows)

    def test_fig17(self):
        result = run_fig17_snr(SMOKE)
        check_structure(result)
        assert all(row[2] > 0.9 for row in result.rows)

    def test_fig19_left(self):
        result = run_fig19_scaling(SMOKE)
        check_structure(result)

    def test_fig19_right(self):
        result = run_fig19_kd_comparison(SMOKE)
        check_structure(result)

    def test_fig15(self):
        result = run_fig15_hardware(SMOKE)
        check_structure(result)
        for row in result.rows:
            assert row[3] > 1.0  # vs CPU
            assert row[5] > 1.0  # vs ASIC

    def test_fig18_bounding_box(self):
        result = run_fig18_bounding_box(SMOKE)
        check_structure(result)
        labels = {row[0] for row in result.rows}
        assert "Narrow passage" in labels

    def test_fig18_aabb_speedup(self):
        result = run_fig18_aabb_speedup(SMOKE)
        check_structure(result)
        assert all(row[1] > 1.0 for row in result.rows)

    def test_snr_buffers(self):
        result = run_snr_buffer_stats(SMOKE)
        check_structure(result)
        assert all(row[2] <= 20 and row[3] <= 5 for row in result.rows)

    def test_cache_stats(self):
        result = run_cache_stats(SMOKE)
        check_structure(result)
