"""Unit tests for the configuration-comparison utility."""

import pytest

from repro.analysis.compare import compare_configs
from repro.core.config import baseline_config, moped_config
from repro.workloads import task_suite


@pytest.fixture(scope="module")
def comparison():
    tasks = task_suite("mobile2d", 8, num_tasks=2, seed=0)
    configs = {
        "baseline": baseline_config(max_samples=200, seed=0, goal_bias=0.15),
        "moped": moped_config("v4", max_samples=200, seed=0, goal_bias=0.15),
    }
    return compare_configs(tasks, configs, reference="baseline")


class TestCompareConfigs:
    def test_stats_per_config(self, comparison):
        assert set(comparison.stats) == {"baseline", "moped"}
        for stat in comparison.stats.values():
            assert stat.num_tasks == 2

    def test_moped_speedup_positive(self, comparison):
        assert comparison.speedup("moped") > 1.0
        assert comparison.speedup("baseline") == pytest.approx(1.0)

    def test_table_renders(self, comparison):
        table = comparison.table()
        assert "baseline" in table and "moped" in table
        assert "speedup_vs_ref" in table

    def test_empty_configs_rejected(self):
        with pytest.raises(ValueError):
            compare_configs([], {})

    def test_unknown_reference_rejected(self):
        tasks = task_suite("mobile2d", 8, num_tasks=1, seed=1)
        with pytest.raises(KeyError):
            compare_configs(tasks, {"a": baseline_config()}, reference="b")

    def test_default_reference_is_first(self):
        tasks = task_suite("mobile2d", 8, num_tasks=1, seed=2)
        configs = {
            "x": baseline_config(max_samples=100, seed=0),
            "y": moped_config("v4", max_samples=100, seed=0),
        }
        comparison = compare_configs(tasks, configs)
        assert comparison.reference == "x"
