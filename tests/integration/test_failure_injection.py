"""Failure injection: validators must catch corruption, inputs must fail loud.

Two families:

* **Structure corruption** — damage an internal invariant directly and
  assert the structure's ``validate()`` reports it (guarding against
  validators that silently pass everything).
* **Adversarial inputs** — NaN/inf configurations, degenerate geometry,
  and malformed payloads must raise clean errors instead of corrupting
  state or planning garbage.
"""

import numpy as np
import pytest

from repro.core.robots import get_robot
from repro.core.tree import ExpTree
from repro.core.world import Environment, PlanningTask
from repro.geometry.obb import OBB
from repro.spatial import RTree, SIMBRTree
from repro.geometry.aabb import AABB
from repro.workloads import random_environment


class TestSimbrCorruptionDetected:
    def build(self):
        tree = SIMBRTree(dim=3, capacity=4)
        rng = np.random.default_rng(0)
        for i in range(40):
            tree.insert(i, rng.uniform(0, 10, 3))
        return tree

    def test_shrunken_mbr_detected(self):
        tree = self.build()
        node = tree._root
        node.lo = node.lo + 5.0  # root MBR no longer covers children
        with pytest.raises(AssertionError):
            tree.validate()

    def test_broken_parent_pointer_detected(self):
        tree = self.build()
        child = tree._root.children[0]
        child.parent = None
        with pytest.raises(AssertionError):
            tree.validate()

    def test_stale_leaf_map_detected(self):
        tree = self.build()
        # Point the leaf map at the wrong leaf.
        leaves = [n for n in tree._root.children if n.is_leaf] or tree._root.children
        tree._leaf_of[0] = leaves[-1] if leaves[-1] is not tree._leaf_of[0] else leaves[0]
        with pytest.raises(AssertionError):
            tree.validate()

    def test_overfull_leaf_detected(self):
        tree = self.build()
        leaf = tree._leaf_of[0]
        for extra in range(100, 110):
            point = leaf.entries[0][1]
            leaf.entries.append((extra, point))
            tree._points[extra] = point
            tree._leaf_of[extra] = leaf
        with pytest.raises(AssertionError):
            tree.validate()


class TestExpTreeCorruptionDetected:
    def build(self):
        tree = ExpTree(np.zeros(2))
        rng = np.random.default_rng(1)
        for i in range(30):
            parent = int(rng.integers(0, len(tree)))
            point = tree.point(parent) + rng.normal(size=2)
            tree.add(point, parent, float(np.linalg.norm(point - tree.point(parent))))
        return tree

    def test_cost_corruption_detected(self):
        tree = self.build()
        tree._cost[5] += 3.0
        with pytest.raises(AssertionError):
            tree.validate()

    def test_cycle_detected(self):
        tree = self.build()
        # Manually create a cycle, bypassing rewire's guard.
        child = 3
        descendant = None
        for node in tree.nodes():
            if tree.parent(node) == child:
                descendant = node
                break
        if descendant is None:
            descendant = tree.add(tree.point(child) + 0.1, child, 0.2)
        tree._parent[child] = descendant
        with pytest.raises(AssertionError):
            tree.validate()

    def test_orphan_detected(self):
        tree = self.build()
        tree._children[tree.parent(7)].discard(7)
        with pytest.raises(AssertionError):
            tree.validate()


class TestRTreeCorruptionDetected:
    def test_shrunken_node_mbr_detected(self):
        rng = np.random.default_rng(2)
        lo = rng.uniform(0, 100, size=(40, 3))
        boxes = [AABB(lo[i], lo[i] + rng.uniform(1, 10, 3)) for i in range(40)]
        tree = RTree(boxes, leaf_capacity=4)
        node = tree._root
        object.__setattr__(node.mbr, "hi", node.mbr.hi - 50.0)
        with pytest.raises(AssertionError):
            tree.validate()


class TestAdversarialInputs:
    def test_nan_configuration_rejected_by_robot(self):
        robot = get_robot("mobile2d")
        body = robot.body_obbs(np.array([np.nan, 10.0, 0.0]))
        # NaN propagates into geometry; the OBB must at least not claim
        # validity, so downstream validators can reject it.
        assert not body[0].is_valid() or np.isnan(body[0].center).any()

    def test_planner_rejects_mismatched_task(self):
        from repro.core.config import moped_config
        from repro.core.rrtstar import RRTStarPlanner

        env = random_environment(2, 4, seed=3)
        task = PlanningTask("mobile2d", env, np.zeros(4), np.ones(4))
        with pytest.raises(ValueError):
            RRTStarPlanner(get_robot("mobile2d"), task, moped_config("v4"))

    def test_environment_rejects_wrong_dim_obstacle(self):
        with pytest.raises(ValueError):
            Environment(2, 300.0, [OBB(np.zeros(3), np.ones(3), np.eye(3))])

    def test_obb_rejects_nonfinite_validity(self):
        bad = OBB(np.array([np.inf, 0.0]), np.ones(2), np.eye(2))
        # Construction succeeds (dataclass), but validity must flag issues
        # via geometry operations: its AABB is non-finite.
        assert not np.isfinite(bad.to_aabb().hi).all()

    def test_zero_extent_obstacle_is_handled(self):
        flat = OBB(np.array([150.0, 150.0]), np.array([0.0, 10.0]), np.eye(2))
        env = Environment(2, 300.0, [flat])
        env.rtree.validate()
        robot = get_robot("mobile2d")
        from repro.core.collision import TwoStageChecker, BruteOBBChecker

        two_stage = TwoStageChecker(robot, env, motion_resolution=5.0)
        brute = BruteOBBChecker(robot, env, motion_resolution=5.0)
        rng = np.random.default_rng(4)
        for _ in range(40):
            config = rng.uniform(robot.config_lo, robot.config_hi)
            assert two_stage.config_in_collision(config) == brute.config_in_collision(config)

    def test_sampler_rejects_degenerate_bounds(self):
        from repro.core.rng import LFSRSampler, NumpySampler

        for cls in (LFSRSampler, NumpySampler):
            with pytest.raises(ValueError):
                cls(np.zeros(3), np.zeros(3), seed=1)

    def test_smoothing_with_inf_waypoint_keeps_endpoints(self):
        """Non-finite interior waypoints must not crash the smoother."""
        from repro.core.collision import BruteOBBChecker
        from repro.core.smoothing import shortcut_smooth

        robot = get_robot("mobile2d")
        env = Environment(2, 300.0, [])
        checker = BruteOBBChecker(robot, env, motion_resolution=5.0)
        path = [np.zeros(3), np.array([np.inf, 0.0, 0.0]), np.array([10.0, 0.0, 0.0])]
        smoothed, cost = shortcut_smooth(path, checker, iterations=20, seed=0)
        np.testing.assert_allclose(smoothed[0], path[0])
        np.testing.assert_allclose(smoothed[-1], path[-1])
