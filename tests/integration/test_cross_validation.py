"""Cross-validation against independent reference implementations.

scipy and networkx are available in the environment; they provide oracles
built by other people:

* ``scipy.spatial.cKDTree`` validates every nearest-neighbor structure;
* ``scipy.spatial.distance`` validates the MINDIST-pruned radius queries;
* ``networkx`` validates the EXP-tree's structure and shortest-path costs.
"""

import networkx as nx
import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro.core.tree import ExpTree
from repro.spatial import BruteForceIndex, KDTree, SIMBRTree


def build_point_set(n=300, dim=5, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(-10, 10, size=(n, dim))


class TestNearestVsScipy:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda dim: BruteForceIndex(dim),
            lambda dim: KDTree(dim),
            lambda dim: SIMBRTree(dim, capacity=6),
        ],
        ids=["brute", "kdtree", "simbr"],
    )
    def test_nearest_matches_ckdtree(self, factory):
        points = build_point_set()
        index = factory(points.shape[1])
        for i, p in enumerate(points):
            index.insert(i, p)
        reference = cKDTree(points)
        rng = np.random.default_rng(1)
        for _ in range(50):
            query = rng.uniform(-12, 12, points.shape[1])
            dist_ref, idx_ref = reference.query(query)
            key, point, dist = index.nearest(query)
            assert dist == pytest.approx(float(dist_ref))

    @pytest.mark.parametrize(
        "factory",
        [
            lambda dim: BruteForceIndex(dim),
            lambda dim: KDTree(dim),
            lambda dim: SIMBRTree(dim, capacity=6),
        ],
        ids=["brute", "kdtree", "simbr"],
    )
    def test_radius_query_matches_ckdtree(self, factory):
        points = build_point_set(seed=2)
        index = factory(points.shape[1])
        for i, p in enumerate(points):
            index.insert(i, p)
        reference = cKDTree(points)
        rng = np.random.default_rng(3)
        for _ in range(20):
            query = rng.uniform(-12, 12, points.shape[1])
            radius = float(rng.uniform(1.0, 6.0))
            expected = set(reference.query_ball_point(query, radius))
            got = {key for key, _, _ in index.neighbors_within(query, radius)}
            assert got == expected

    def test_simbr_steering_inserts_match_ckdtree(self):
        """LCI-built trees answer queries identically to scipy."""
        rng = np.random.default_rng(4)
        dim = 6
        tree = SIMBRTree(dim, capacity=8)
        points = [rng.uniform(0, 10, dim)]
        tree.insert(0, points[0])
        for i in range(1, 250):
            parent = int(rng.integers(0, i))
            p = points[parent] + rng.normal(scale=0.5, size=dim)
            tree.insert(i, p, sibling_of=parent)
            points.append(p)
        reference = cKDTree(np.array(points))
        for _ in range(40):
            query = rng.uniform(0, 10, dim)
            dist_ref, _ = reference.query(query)
            _, _, dist = tree.nearest(query)
            assert dist == pytest.approx(float(dist_ref))


class TestExpTreeVsNetworkx:
    def build_random_tree(self, n=120, seed=5):
        rng = np.random.default_rng(seed)
        tree = ExpTree(np.zeros(3))
        graph = nx.DiGraph()
        graph.add_node(0)
        for i in range(1, n):
            parent = int(rng.integers(0, i))
            point = tree.point(parent) + rng.normal(scale=1.0, size=3)
            edge = float(np.linalg.norm(point - tree.point(parent)))
            node = tree.add(point, parent, edge)
            graph.add_edge(parent, node, weight=edge)
        return tree, graph, rng

    def test_structure_is_a_tree(self):
        tree, graph, _ = self.build_random_tree()
        assert nx.is_arborescence(graph)

    def test_costs_match_shortest_paths(self):
        tree, graph, _ = self.build_random_tree()
        lengths = nx.single_source_dijkstra_path_length(graph, 0)
        for node in tree.nodes():
            assert tree.cost(node) == pytest.approx(lengths[node])

    def test_costs_match_after_rewiring(self):
        tree, graph, rng = self.build_random_tree(seed=6)
        for _ in range(60):
            node = int(rng.integers(1, len(tree)))
            target = int(rng.integers(0, len(tree)))
            edge = float(np.linalg.norm(tree.point(node) - tree.point(target)))
            try:
                tree.rewire(node, target, edge)
            except ValueError:
                continue
            old_parent = next(iter(graph.predecessors(node)))
            graph.remove_edge(old_parent, node)
            graph.add_edge(target, node, weight=edge)
        assert nx.is_arborescence(graph)
        lengths = nx.single_source_dijkstra_path_length(graph, 0)
        for node in tree.nodes():
            assert tree.cost(node) == pytest.approx(lengths[node])

    def test_path_to_matches_networkx(self):
        tree, graph, rng = self.build_random_tree(seed=7)
        target = int(rng.integers(1, len(tree)))
        nx_path = nx.shortest_path(graph, 0, target)
        our_path = tree.path_to(target)
        assert len(our_path) == len(nx_path)
