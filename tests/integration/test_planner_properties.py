"""Property tests over the whole planning stack.

Randomised small worlds; the properties must hold for every seed:

* returned paths never collide (verified against a finer-resolution
  oracle than the planner used);
* path costs equal the waypoint polyline length;
* the EXP-tree stays structurally valid;
* MOPED never does more work than the baseline on the same task.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import PlanningTask, get_robot
from repro.core.collision import BruteOBBChecker
from repro.core.config import baseline_config, moped_config
from repro.core.metrics import path_length
from repro.core.rrtstar import RRTStarPlanner
from repro.workloads.generator import random_environment


def make_task(env_seed: int, task_seed: int) -> PlanningTask:
    robot = get_robot("mobile2d")
    environment = random_environment(2, 8, seed=env_seed)
    rng = np.random.default_rng(task_seed)
    checker = BruteOBBChecker(robot, environment, motion_resolution=5.0)
    configs = []
    for _ in range(200):
        config = rng.uniform(robot.config_lo, robot.config_hi)
        if not checker.config_in_collision(config):
            configs.append(config)
        if len(configs) == 2:
            break
    if len(configs) < 2:
        pytest.skip("degenerate environment")
    return PlanningTask("mobile2d", environment, configs[0], configs[1])


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=10_000),
)
def test_planner_invariants_hold(env_seed, task_seed, planner_seed):
    """Property: success implies a verified collision-free, cost-consistent path."""
    task = make_task(env_seed, task_seed)
    robot = get_robot("mobile2d")
    config = moped_config("v4", max_samples=150, seed=planner_seed, goal_bias=0.2)
    planner = RRTStarPlanner(robot, task, config)
    result = planner.plan()
    planner.tree.validate()
    if result.success:
        assert result.path_cost == pytest.approx(path_length(result.path), rel=1e-6)
        # The planner's contract: every edge is collision free at the
        # motion resolution it was checked with.  (A strictly finer oracle
        # can reject corner-grazing edges — that is inherent to discretised
        # motion checking; the safety/resolution tradeoff is measured in
        # benchmarks/test_ablation_design.py::test_motion_resolution_sweep.)
        oracle = BruteOBBChecker(
            robot, task.environment,
            motion_resolution=config.resolved_motion_resolution(robot.step_size),
        )
        for a, b in zip(result.path[:-1], result.path[1:]):
            assert not oracle.motion_in_collision(a, b)


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_moped_never_costs_more_than_baseline(seed):
    """Property: MOPED's MAC total is below the baseline's on any task."""
    task = make_task(seed, seed + 1)
    robot = get_robot("mobile2d")
    base = RRTStarPlanner(
        robot, task, baseline_config(max_samples=120, seed=seed)
    ).plan()
    moped = RRTStarPlanner(
        robot, task, moped_config("v4", max_samples=120, seed=seed)
    ).plan()
    assert moped.total_macs < base.total_macs
