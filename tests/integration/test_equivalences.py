"""Cross-module equivalence invariants.

These tests pin the *semantic* claims of the paper's co-design:

1. The two-stage collision scheme only reorganises work — planning outcomes
   are bit-identical to the brute OBB checker (same seed, same decisions).
2. Speculate-and-repair is functionally transparent (Section IV-B).
3. Exact SI-MBR / KD / brute nearest-neighbor strategies all drive the
   planner to the same nearest choices, so with identical neighborhoods the
   planners agree.
"""

import numpy as np
import pytest

from repro.core import PlanningTask, get_robot
from repro.core.config import PlannerConfig, baseline_config, moped_config
from repro.core.rrtstar import RRTStarPlanner
from repro.workloads import random_task


@pytest.fixture(scope="module", params=["mobile2d", "drone3d"])
def task(request):
    return random_task(request.param, 16, seed=5)


def plan_with(task, **kwargs):
    robot = get_robot(task.robot_name)
    config = PlannerConfig(**kwargs)
    return RRTStarPlanner(robot, task, config).plan()


SAMPLES = 200


class TestTwoStageTransparency:
    def test_identical_plans(self, task):
        """v1 (two-stage) and baseline (brute OBB) must produce the same tree."""
        brute = plan_with(task, checker="obb", max_samples=SAMPLES, seed=0)
        two_stage = plan_with(task, checker="two_stage", max_samples=SAMPLES, seed=0)
        assert brute.success == two_stage.success
        assert brute.num_nodes == two_stage.num_nodes
        assert brute.path_cost == pytest.approx(two_stage.path_cost)
        for a, b in zip(brute.path, two_stage.path):
            np.testing.assert_allclose(a, b)

    def test_two_stage_strictly_cheaper(self, task):
        brute = plan_with(task, checker="obb", max_samples=SAMPLES, seed=0)
        two_stage = plan_with(task, checker="two_stage", max_samples=SAMPLES, seed=0)
        assert two_stage.total_macs < brute.total_macs


class TestNearestStrategyAgreement:
    def test_brute_and_simbr_exact_agree(self, task):
        """Exact SI-MBR search must not change planning outcomes."""
        brute = plan_with(
            task, neighbor_strategy="brute", max_samples=SAMPLES, seed=1
        )
        simbr = plan_with(
            task,
            neighbor_strategy="simbr",
            approx_neighborhood=False,
            steering_insert=False,
            max_samples=SAMPLES,
            seed=1,
        )
        assert brute.num_nodes == simbr.num_nodes
        assert brute.path_cost == pytest.approx(simbr.path_cost)

    def test_kd_agrees_too(self, task):
        brute = plan_with(task, neighbor_strategy="brute", max_samples=SAMPLES, seed=2)
        kd = plan_with(task, neighbor_strategy="kd", max_samples=SAMPLES, seed=2)
        assert brute.num_nodes == kd.num_nodes
        assert brute.path_cost == pytest.approx(kd.path_cost)

    def test_steering_insert_preserves_search_exactness(self, task):
        """LCI reshuffles the tree's internal grouping, never its answers."""
        conventional = plan_with(
            task,
            neighbor_strategy="simbr",
            approx_neighborhood=False,
            steering_insert=False,
            max_samples=SAMPLES,
            seed=3,
        )
        lci = plan_with(
            task,
            neighbor_strategy="simbr",
            approx_neighborhood=False,
            steering_insert=True,
            max_samples=SAMPLES,
            seed=3,
        )
        assert conventional.num_nodes == lci.num_nodes
        assert conventional.path_cost == pytest.approx(lci.path_cost)


class TestSpeculationTransparency:
    @pytest.mark.parametrize("depth", [1, 3, 5])
    def test_full_moped_with_speculation(self, task, depth):
        base = RRTStarPlanner(
            get_robot(task.robot_name),
            task,
            moped_config("v4", max_samples=SAMPLES, seed=4, speculation_depth=0),
        ).plan()
        spec = RRTStarPlanner(
            get_robot(task.robot_name),
            task,
            moped_config("v4", max_samples=SAMPLES, seed=4, speculation_depth=depth),
        ).plan()
        assert base.num_nodes == spec.num_nodes
        assert base.path_cost == pytest.approx(spec.path_cost)
        # The speculative run pays only tiny repair overhead.
        extra = spec.total_macs - base.total_macs
        assert extra < 0.05 * base.total_macs
