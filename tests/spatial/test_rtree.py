"""Unit and property tests for the STR-packed R-tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import AABB, OBB, aabb_intersects_obb
from repro.geometry.rotations import random_rotation_3d
from repro.spatial import RTree


def random_boxes(n, dim, rng, span=100.0, size=10.0):
    lo = rng.uniform(0, span, size=(n, dim))
    return [AABB(lo[i], lo[i] + rng.uniform(0.5, size, dim)) for i in range(n)]


class TestConstruction:
    def test_empty_tree(self):
        tree = RTree([])
        assert len(tree) == 0
        assert tree.height == 0
        obb = OBB(np.zeros(3), np.ones(3), np.eye(3))
        assert tree.query_obb(obb) == []

    def test_single_box(self):
        tree = RTree([AABB(np.zeros(3), np.ones(3))])
        assert len(tree) == 1
        assert tree.height == 1
        tree.validate()

    def test_rejects_tiny_capacity(self):
        with pytest.raises(ValueError):
            RTree([AABB(np.zeros(2), np.ones(2))], leaf_capacity=1)

    def test_structure_valid_for_many_sizes(self):
        rng = np.random.default_rng(0)
        for n in (1, 2, 7, 8, 9, 30, 64, 100):
            tree = RTree(random_boxes(n, 3, rng), leaf_capacity=8)
            tree.validate()

    def test_height_grows_logarithmically(self):
        rng = np.random.default_rng(1)
        tree = RTree(random_boxes(200, 3, rng), leaf_capacity=8)
        # 200 entries, fanout 8: height must stay small.
        assert tree.height <= 4
        tree.validate()

    def test_2d_boxes(self):
        rng = np.random.default_rng(2)
        tree = RTree(random_boxes(40, 2, rng), leaf_capacity=4)
        tree.validate()


class TestQueryObb:
    def test_matches_naive_filter(self):
        rng = np.random.default_rng(3)
        boxes = random_boxes(60, 3, rng)
        tree = RTree(boxes, leaf_capacity=6)
        for _ in range(25):
            robot = OBB(rng.uniform(0, 100, 3), rng.uniform(1, 15, 3), random_rotation_3d(rng))
            expected = sorted(
                i for i, b in enumerate(boxes) if aabb_intersects_obb(b, robot)
            )
            assert sorted(tree.query_obb(robot)) == expected

    def test_counter_records_sat_checks(self):
        class Counter:
            def __init__(self):
                self.events = []

            def record(self, kind, dim=None, n=1):
                self.events.append((kind, dim, n))

        rng = np.random.default_rng(4)
        boxes = random_boxes(30, 3, rng)
        tree = RTree(boxes)
        counter = Counter()
        robot = OBB(np.full(3, 50.0), np.full(3, 5.0), np.eye(3))
        tree.query_obb(robot, counter=counter)
        kinds = {kind for kind, _, _ in counter.events}
        assert kinds == {"sat_aabb_obb"}
        assert len(counter.events) >= 1

    def test_pruning_reduces_checks(self):
        """A far-away robot must touch far fewer nodes than a naive scan."""

        class Counter:
            def __init__(self):
                self.n = 0

            def record(self, kind, dim=None, n=1):
                self.n += n

        rng = np.random.default_rng(5)
        boxes = random_boxes(200, 3, rng, span=100.0)
        tree = RTree(boxes, leaf_capacity=8)
        counter = Counter()
        distant = OBB(np.full(3, 1e5), np.ones(3), np.eye(3))
        assert tree.query_obb(distant, counter=counter) == []
        assert counter.n < 200  # fewer checks than one per obstacle


class TestQueryAabb:
    def test_matches_naive_filter(self):
        rng = np.random.default_rng(6)
        boxes = random_boxes(50, 2, rng)
        tree = RTree(boxes, leaf_capacity=5)
        for _ in range(20):
            lo = rng.uniform(0, 100, 2)
            probe = AABB(lo, lo + rng.uniform(1, 20, 2))
            expected = sorted(i for i, b in enumerate(boxes) if b.intersects(probe))
            assert sorted(tree.query_aabb(probe)) == expected


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=80),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=2, max_value=10),
)
def test_rtree_query_is_exhaustive(n, seed, capacity):
    """Property: tree query returns exactly the naively-filtered set."""
    rng = np.random.default_rng(seed)
    boxes = random_boxes(n, 3, rng)
    tree = RTree(boxes, leaf_capacity=capacity)
    tree.validate()
    robot = OBB(rng.uniform(0, 100, 3), rng.uniform(1, 20, 3), random_rotation_3d(rng))
    expected = sorted(i for i, b in enumerate(boxes) if aabb_intersects_obb(b, robot))
    assert sorted(tree.query_obb(robot)) == expected
