"""Unit and property tests for the SI-MBR-Tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial import SIMBRTree


class CountingStub:
    def __init__(self):
        self.counts = {}

    def record(self, kind, dim=None, n=1):
        self.counts[kind] = self.counts.get(kind, 0) + n


def brute_nearest(points, query, exclude=frozenset()):
    best = None
    for key, p in points.items():
        if key in exclude:
            continue
        d = float(np.linalg.norm(p - query))
        if best is None or d < best[2]:
            best = (key, p, d)
    return best


class TestInsertBasics:
    def test_empty_tree(self):
        tree = SIMBRTree(dim=3)
        assert len(tree) == 0
        assert tree.height == 0
        assert tree.nearest(np.zeros(3)) is None
        assert tree.neighbors_within(np.zeros(3), 1.0) == []

    def test_single_insert(self):
        tree = SIMBRTree(dim=2)
        tree.insert("a", np.array([1.0, 2.0]))
        assert len(tree) == 1
        assert "a" in tree
        key, point, dist = tree.nearest(np.array([1.0, 2.0]))
        assert key == "a"
        assert dist == pytest.approx(0.0)

    def test_duplicate_key_rejected(self):
        tree = SIMBRTree(dim=2)
        tree.insert(0, np.zeros(2))
        with pytest.raises(KeyError):
            tree.insert(0, np.ones(2))

    def test_wrong_dim_rejected(self):
        tree = SIMBRTree(dim=3)
        with pytest.raises(ValueError):
            tree.insert(0, np.zeros(2))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SIMBRTree(dim=0)
        with pytest.raises(ValueError):
            SIMBRTree(dim=2, capacity=1)

    def test_sibling_of_unknown_key(self):
        tree = SIMBRTree(dim=2)
        tree.insert(0, np.zeros(2))
        with pytest.raises(KeyError):
            tree.insert(1, np.ones(2), sibling_of=99)

    def test_splits_maintain_validity(self):
        tree = SIMBRTree(dim=2, capacity=4)
        rng = np.random.default_rng(0)
        for i in range(100):
            tree.insert(i, rng.uniform(0, 10, 2))
            tree.validate()
        assert len(tree) == 100
        assert tree.height >= 2

    def test_steering_inserts_maintain_validity(self):
        tree = SIMBRTree(dim=3, capacity=4)
        rng = np.random.default_rng(1)
        tree.insert(0, rng.uniform(0, 10, 3))
        keys = [0]
        for i in range(1, 120):
            parent = int(rng.choice(keys))
            point = tree.point(parent) + rng.normal(scale=0.3, size=3)
            tree.insert(i, point, sibling_of=parent)
            keys.append(i)
            if i % 10 == 0:
                tree.validate()
        tree.validate()


class TestNearest:
    def test_matches_brute_force_conventional(self):
        rng = np.random.default_rng(2)
        tree = SIMBRTree(dim=4, capacity=6)
        points = {}
        for i in range(150):
            p = rng.uniform(-5, 5, 4)
            tree.insert(i, p)
            points[i] = p
        for _ in range(30):
            q = rng.uniform(-6, 6, 4)
            got = tree.nearest(q)
            want = brute_nearest(points, q)
            assert got[0] == want[0]
            assert got[2] == pytest.approx(want[2])

    def test_matches_brute_force_steering_inserts(self):
        rng = np.random.default_rng(3)
        tree = SIMBRTree(dim=5, capacity=8)
        points = {0: rng.uniform(0, 10, 5)}
        tree.insert(0, points[0])
        for i in range(1, 120):
            parent = int(rng.integers(0, i))
            p = points[parent] + rng.normal(scale=0.5, size=5)
            tree.insert(i, p, sibling_of=parent)
            points[i] = p
        for _ in range(25):
            q = rng.uniform(0, 10, 5)
            got = tree.nearest(q)
            want = brute_nearest(points, q)
            assert got[2] == pytest.approx(want[2])

    def test_exclude_hides_keys(self):
        tree = SIMBRTree(dim=2)
        tree.insert("near", np.array([0.0, 0.0]))
        tree.insert("far", np.array([5.0, 5.0]))
        got = tree.nearest(np.array([0.1, 0.1]), exclude={"near"})
        assert got[0] == "far"

    def test_exclude_everything_returns_none(self):
        tree = SIMBRTree(dim=2)
        tree.insert(0, np.zeros(2))
        assert tree.nearest(np.zeros(2), exclude={0}) is None

    def test_counter_records_ops(self):
        tree = SIMBRTree(dim=3, capacity=4)
        rng = np.random.default_rng(4)
        for i in range(50):
            tree.insert(i, rng.uniform(0, 10, 3))
        counter = CountingStub()
        tree.nearest(rng.uniform(0, 10, 3), counter=counter)
        assert counter.counts.get("dist", 0) > 0
        assert counter.counts.get("mindist", 0) > 0

    def test_pruning_skips_most_leaves(self):
        """Clustered data: NN search must touch far fewer points than n."""
        rng = np.random.default_rng(5)
        tree = SIMBRTree(dim=3, capacity=8)
        for i in range(400):
            cluster = rng.integers(0, 8)
            center = np.array([cluster * 100.0, 0.0, 0.0])
            tree.insert(i, center + rng.normal(scale=1.0, size=3))
        counter = CountingStub()
        tree.nearest(np.array([350.0, 0.0, 0.0]), counter=counter)
        assert counter.counts["dist"] < 400


class TestNeighborsWithin:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(6)
        tree = SIMBRTree(dim=3, capacity=5)
        points = {}
        for i in range(120):
            p = rng.uniform(0, 10, 3)
            tree.insert(i, p)
            points[i] = p
        q = rng.uniform(0, 10, 3)
        radius = 2.5
        got = {k for k, _, _ in tree.neighbors_within(q, radius)}
        want = {k for k, p in points.items() if np.linalg.norm(p - q) <= radius}
        assert got == want

    def test_sorted_by_distance(self):
        rng = np.random.default_rng(7)
        tree = SIMBRTree(dim=2)
        for i in range(60):
            tree.insert(i, rng.uniform(0, 10, 2))
        result = tree.neighbors_within(np.array([5.0, 5.0]), 4.0)
        dists = [d for _, _, d in result]
        assert dists == sorted(dists)

    def test_zero_radius_only_exact_matches(self):
        tree = SIMBRTree(dim=2)
        tree.insert(0, np.array([1.0, 1.0]))
        tree.insert(1, np.array([2.0, 2.0]))
        got = tree.neighbors_within(np.array([1.0, 1.0]), 0.0)
        assert [k for k, _, _ in got] == [0]


class TestLeafSiblings:
    def test_contains_own_key(self):
        tree = SIMBRTree(dim=2, capacity=4)
        rng = np.random.default_rng(8)
        for i in range(30):
            tree.insert(i, rng.uniform(0, 10, 2))
        sibs = tree.leaf_siblings(17)
        assert 17 in {k for k, _ in sibs}

    def test_bounded_by_capacity(self):
        tree = SIMBRTree(dim=2, capacity=4)
        rng = np.random.default_rng(9)
        for i in range(50):
            tree.insert(i, rng.uniform(0, 10, 2))
        for i in range(50):
            assert len(tree.leaf_siblings(i)) <= 4

    def test_unknown_key_raises(self):
        tree = SIMBRTree(dim=2)
        tree.insert(0, np.zeros(2))
        with pytest.raises(KeyError):
            tree.leaf_siblings(42)

    def test_siblings_are_geometrically_close(self):
        """Steered inserts: leaf siblings should be nearer than average."""
        rng = np.random.default_rng(10)
        tree = SIMBRTree(dim=3, capacity=6)
        points = {0: rng.uniform(0, 100, 3)}
        tree.insert(0, points[0])
        for i in range(1, 200):
            parent = int(rng.integers(0, i))
            p = points[parent] + rng.normal(scale=2.0, size=3)
            tree.insert(i, p, sibling_of=parent)
            points[i] = p
        all_pts = np.array(list(points.values()))
        mean_pairwise = np.mean(
            np.linalg.norm(all_pts[None, :, :] - all_pts[:, None, :], axis=-1)
        )
        sib_dists = []
        for key in range(0, 200, 10):
            p = points[key]
            for k2, p2 in tree.leaf_siblings(key):
                if k2 != key:
                    sib_dists.append(np.linalg.norm(p2 - p))
        assert np.mean(sib_dists) < mean_pairwise


class TestDiagnostics:
    def test_total_overlap_nonnegative(self):
        rng = np.random.default_rng(11)
        tree = SIMBRTree(dim=2, capacity=4)
        for i in range(80):
            tree.insert(i, rng.uniform(0, 10, 2))
        assert tree.total_overlap() >= 0.0

    def test_items_returns_all(self):
        tree = SIMBRTree(dim=2)
        tree.insert("x", np.zeros(2))
        tree.insert("y", np.ones(2))
        assert dict(tree.items()).keys() == {"x", "y"}


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=60),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=2, max_value=12),
    st.booleans(),
)
def test_simbr_nearest_is_exact(n, seed, dim, steering):
    """Property: NN result always matches brute force, both insert modes."""
    rng = np.random.default_rng(seed)
    tree = SIMBRTree(dim=dim, capacity=4)
    points = {}
    for i in range(n):
        if steering and i > 0:
            parent = int(rng.integers(0, i))
            p = points[parent] + rng.normal(scale=1.0, size=dim)
            tree.insert(i, p, sibling_of=parent)
        else:
            p = rng.uniform(-10, 10, dim)
            tree.insert(i, p)
        points[i] = p
    tree.validate()
    q = rng.uniform(-12, 12, dim)
    got = tree.nearest(q)
    want = brute_nearest(points, q)
    assert got[2] == pytest.approx(want[2])


class TestNeighborhoodCache:
    """Reused-neighborhood cache: hits must equal fresh leaf reads."""

    def _grown_tree(self, cache_capacity, n=60, seed=11):
        tree = SIMBRTree(dim=2, capacity=4, neighborhood_cache=cache_capacity)
        rng = np.random.default_rng(seed)
        for i in range(n):
            tree.insert(i, rng.uniform(0, 10, 2))
        return tree

    def test_cached_siblings_equal_fresh_read(self):
        cached = self._grown_tree(cache_capacity=64)
        plain = self._grown_tree(cache_capacity=0)
        for key in range(60):
            want = sorted((k, tuple(p)) for k, p in plain.leaf_siblings(key))
            first = sorted((k, tuple(p)) for k, p in cached.leaf_siblings(key))
            again = sorted((k, tuple(p)) for k, p in cached.leaf_siblings(key))
            assert first == want
            assert again == want
        assert cached.neighborhood_cache.hits > 0

    def test_insert_invalidates_stale_entry(self):
        """A leaf's cache key changes when its population changes."""
        tree = SIMBRTree(dim=2, capacity=8, neighborhood_cache=64)
        tree.insert(0, np.array([1.0, 1.0]))
        before = {k for k, _ in tree.leaf_siblings(0)}
        assert before == {0}
        tree.insert(1, np.array([1.1, 1.1]), sibling_of=0)
        after = {k for k, _ in tree.leaf_siblings(0)}
        assert after == {0, 1}

    def test_disabled_cache_has_no_map(self):
        tree = self._grown_tree(cache_capacity=0)
        assert tree.neighborhood_cache is None

    def test_hit_returns_a_copy(self):
        """Callers may mutate the returned list without corrupting the cache."""
        tree = self._grown_tree(cache_capacity=64)
        first = tree.leaf_siblings(5)
        first.clear()
        again = tree.leaf_siblings(5)
        assert len(again) > 0
