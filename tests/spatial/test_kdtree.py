"""Unit and property tests for the KD-tree baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial import KDTree


class CountingStub:
    def __init__(self):
        self.counts = {}

    def record(self, kind, dim=None, n=1):
        self.counts[kind] = self.counts.get(kind, 0) + n


def brute_nearest(points, query):
    best = None
    for key, p in points.items():
        d = float(np.linalg.norm(p - query))
        if best is None or d < best[1]:
            best = (key, d)
    return best


class TestInsert:
    def test_empty(self):
        tree = KDTree(dim=2)
        assert len(tree) == 0
        assert tree.nearest(np.zeros(2)) is None
        assert tree.neighbors_within(np.zeros(2), 1.0) == []

    def test_size_tracks_inserts(self):
        tree = KDTree(dim=2)
        rng = np.random.default_rng(0)
        for i in range(37):
            tree.insert(i, rng.uniform(0, 1, 2))
        assert len(tree) == 37
        assert len(tree.items()) == 37

    def test_wrong_dim_rejected(self):
        tree = KDTree(dim=3)
        with pytest.raises(ValueError):
            tree.insert(0, np.zeros(2))

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            KDTree(dim=0)


class TestNearest:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(1)
        tree = KDTree(dim=3)
        points = {}
        for i in range(200):
            p = rng.uniform(-5, 5, 3)
            tree.insert(i, p)
            points[i] = p
        for _ in range(30):
            q = rng.uniform(-6, 6, 3)
            got = tree.nearest(q)
            want = brute_nearest(points, q)
            assert got[2] == pytest.approx(want[1])

    def test_exclude(self):
        tree = KDTree(dim=2)
        tree.insert("a", np.zeros(2))
        tree.insert("b", np.ones(2))
        got = tree.nearest(np.array([0.1, 0.1]), exclude={"a"})
        assert got[0] == "b"

    def test_counter_counts_distance_ops(self):
        rng = np.random.default_rng(2)
        tree = KDTree(dim=2)
        for i in range(100):
            tree.insert(i, rng.uniform(0, 10, 2))
        counter = CountingStub()
        tree.nearest(rng.uniform(0, 10, 2), counter=counter)
        assert counter.counts["dist"] >= 1
        assert counter.counts["plane_compare"] >= 1

    def test_high_dim_visits_more(self):
        """Curse of dimensionality: 7D search visits more nodes than 2D."""
        visits = {}
        for dim in (2, 7):
            rng = np.random.default_rng(3)
            tree = KDTree(dim=dim)
            for i in range(300):
                tree.insert(i, rng.uniform(0, 10, dim))
            counter = CountingStub()
            for _ in range(20):
                tree.nearest(rng.uniform(0, 10, dim), counter=counter)
            visits[dim] = counter.counts["dist"]
        assert visits[7] > visits[2]


class TestNeighborsWithin:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(4)
        tree = KDTree(dim=3)
        points = {}
        for i in range(150):
            p = rng.uniform(0, 10, 3)
            tree.insert(i, p)
            points[i] = p
        q = rng.uniform(0, 10, 3)
        got = {k for k, _, _ in tree.neighbors_within(q, 3.0)}
        want = {k for k, p in points.items() if np.linalg.norm(p - q) <= 3.0}
        assert got == want


class TestRebuild:
    def test_rebuild_preserves_contents(self):
        rng = np.random.default_rng(5)
        tree = KDTree(dim=2)
        points = {}
        for i in range(64):
            p = rng.uniform(0, 10, 2)
            tree.insert(i, p)
            points[i] = p
        tree.rebuild()
        assert len(tree) == 64
        q = rng.uniform(0, 10, 2)
        got = tree.nearest(q)
        want = brute_nearest(points, q)
        assert got[2] == pytest.approx(want[1])

    def test_rebuild_reduces_depth_for_sorted_inserts(self):
        tree = KDTree(dim=1)
        for i in range(64):
            tree.insert(i, np.array([float(i)]))
        assert tree.depth == 64  # pathological chain
        tree.rebuild()
        assert tree.depth <= 7  # log2(64) + 1

    def test_rebuild_cost_recorded(self):
        tree = KDTree(dim=2)
        rng = np.random.default_rng(6)
        for i in range(32):
            tree.insert(i, rng.uniform(0, 1, 2))
        counter = CountingStub()
        tree.rebuild(counter=counter)
        assert counter.counts["rebuild_item"] >= 32


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=80),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=1, max_value=7),
)
def test_kdtree_nearest_is_exact(n, seed, dim):
    """Property: KD-tree NN always matches brute force."""
    rng = np.random.default_rng(seed)
    tree = KDTree(dim=dim)
    points = {}
    for i in range(n):
        p = rng.uniform(-10, 10, dim)
        tree.insert(i, p)
        points[i] = p
    q = rng.uniform(-12, 12, dim)
    got = tree.nearest(q)
    want = brute_nearest(points, q)
    assert got[2] == pytest.approx(want[1])
