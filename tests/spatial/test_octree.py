"""Unit and property tests for the Octree collision structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.collision import BruteOBBChecker
from repro.core.counters import OpCounter
from repro.core.robots import get_robot
from repro.geometry.obb import OBB
from repro.geometry.rotations import rotation_2d
from repro.spatial.octree import CollisionOctree, make_octree_checker
from repro.workloads import random_environment


class TestConstruction:
    def test_empty_space_is_one_free_node(self):
        tree = CollisionOctree([], size=300.0, dim=2, max_depth=6)
        assert tree.node_count == 1
        assert tree.root.state == "free"

    def test_full_coverage_is_occupied(self):
        big = OBB(np.full(2, 150.0), np.full(2, 400.0), np.eye(2))
        tree = CollisionOctree([big], size=300.0, dim=2, max_depth=6)
        assert tree.root.state == "occupied"
        assert tree.node_count == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CollisionOctree([], size=300.0, dim=4)
        with pytest.raises(ValueError):
            CollisionOctree([], size=0.0, dim=2)
        with pytest.raises(ValueError):
            CollisionOctree([], size=300.0, dim=2, max_depth=-1)

    def test_node_count_grows_with_depth(self):
        env = random_environment(2, 16, seed=0)
        counts = [
            CollisionOctree(env.obstacles, env.size, 2, max_depth=d).node_count
            for d in (3, 5, 7)
        ]
        assert counts[0] < counts[1] < counts[2]

    def test_memory_tracks_nodes(self):
        env = random_environment(2, 8, seed=1)
        tree = CollisionOctree(env.obstacles, env.size, 2, max_depth=5)
        assert tree.memory_bytes() == 4 * tree.node_count

    def test_leaf_resolution(self):
        tree = CollisionOctree([], size=256.0, dim=2, max_depth=4)
        assert tree.leaf_resolution() == pytest.approx(16.0)

    def test_3d_octree(self):
        env = random_environment(3, 8, seed=2)
        tree = CollisionOctree(env.obstacles, env.size, 3, max_depth=4)
        assert tree.node_count >= 1


class TestPointQueries:
    def test_inside_obstacle_is_occupied(self):
        obstacle = OBB(np.array([100.0, 100.0]), np.array([20.0, 20.0]), rotation_2d(0.4))
        tree = CollisionOctree([obstacle], size=300.0, dim=2, max_depth=7)
        assert tree.point_occupied(np.array([100.0, 100.0]))

    def test_far_free_space_is_free(self):
        obstacle = OBB(np.array([100.0, 100.0]), np.array([20.0, 20.0]), rotation_2d(0.4))
        tree = CollisionOctree([obstacle], size=300.0, dim=2, max_depth=7)
        assert not tree.point_occupied(np.array([280.0, 280.0]))

    def test_conservative_near_boundary(self):
        """Points inside an obstacle are always flagged (never false-free)."""
        obstacle = OBB(np.array([150.0, 150.0]), np.array([30.0, 10.0]), rotation_2d(0.7))
        tree = CollisionOctree([obstacle], size=300.0, dim=2, max_depth=7)
        rng = np.random.default_rng(0)
        for _ in range(200):
            local = rng.uniform(-1, 1, 2) * obstacle.half_extents
            point = obstacle.center + obstacle.rotation @ local
            assert tree.point_occupied(point)


class TestOctreeChecker:
    @pytest.fixture(scope="class")
    def setup(self):
        env = random_environment(2, 16, seed=3)
        robot = get_robot("mobile2d")
        return (
            robot,
            env,
            make_octree_checker(robot, env, motion_resolution=5.0, max_depth=7),
            BruteOBBChecker(robot, env, motion_resolution=5.0),
        )

    def test_conservative_vs_exact(self, setup):
        robot, env, octree, exact = setup
        rng = np.random.default_rng(1)
        for _ in range(150):
            config = rng.uniform(robot.config_lo, robot.config_hi)
            if exact.config_in_collision(config):
                assert octree.config_in_collision(config)

    def test_free_space_detected(self, setup):
        robot, env, octree, exact = setup
        rng = np.random.default_rng(2)
        free = 0
        for _ in range(150):
            config = rng.uniform(robot.config_lo, robot.config_hi)
            if not octree.config_in_collision(config):
                free += 1
                assert not exact.config_in_collision(config)
        assert free > 30  # the checker is not degenerately conservative

    def test_counter_records_queries(self, setup):
        robot, env, octree, _ = setup
        counter = OpCounter()
        octree.config_in_collision(np.array([150.0, 150.0, 0.2]), counter=counter)
        assert counter.events.get("sat_aabb_obb", 0) > 0

    def test_motion_check(self, setup):
        robot, env, octree, exact = setup
        a = np.array([10.0, 10.0, 0.0])
        b = np.array([290.0, 290.0, 0.0])
        if exact.motion_in_collision(a, b):
            assert octree.motion_in_collision(a, b)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=3, max_value=7),
)
def test_octree_never_reports_false_free(seed, depth):
    """Property: any in-workspace point inside any obstacle is occupied.

    The octree's domain is the workspace box; a rotated obstacle's corner
    can poke slightly outside it, and such points are legitimately outside
    the tree's coverage — they are skipped here.
    """
    rng = np.random.default_rng(seed)
    env = random_environment(2, 6, seed=seed)
    tree = CollisionOctree(env.obstacles, env.size, 2, max_depth=depth)
    for obstacle in env.obstacles:
        local = rng.uniform(-1, 1, 2) * obstacle.half_extents
        point = obstacle.center + obstacle.rotation @ local
        if np.any(point < 0) or np.any(point > env.size):
            continue  # outside the octree's domain
        assert tree.point_occupied(point)
