"""Unit tests for the brute-force index."""

import numpy as np
import pytest

from repro.spatial import BruteForceIndex


class CountingStub:
    def __init__(self):
        self.counts = {}

    def record(self, kind, dim=None, n=1):
        self.counts[kind] = self.counts.get(kind, 0) + n


class TestBasics:
    def test_empty(self):
        idx = BruteForceIndex(dim=3)
        assert len(idx) == 0
        assert idx.nearest(np.zeros(3)) is None
        assert idx.neighbors_within(np.zeros(3), 1.0) == []

    def test_wrong_dim_rejected(self):
        idx = BruteForceIndex(dim=2)
        with pytest.raises(ValueError):
            idx.insert(0, np.zeros(3))

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            BruteForceIndex(dim=0)

    def test_growth_beyond_initial_capacity(self):
        idx = BruteForceIndex(dim=2, initial_capacity=4)
        rng = np.random.default_rng(0)
        points = {}
        for i in range(50):
            p = rng.uniform(0, 1, 2)
            idx.insert(i, p)
            points[i] = p
        assert len(idx) == 50
        got = dict(idx.items())
        for key, p in points.items():
            np.testing.assert_allclose(got[key], p)


class TestNearest:
    def test_finds_closest(self):
        idx = BruteForceIndex(dim=2)
        idx.insert("a", np.array([0.0, 0.0]))
        idx.insert("b", np.array([10.0, 0.0]))
        key, point, dist = idx.nearest(np.array([1.0, 0.0]))
        assert key == "a"
        assert dist == pytest.approx(1.0)

    def test_exclude(self):
        idx = BruteForceIndex(dim=2)
        idx.insert("a", np.array([0.0, 0.0]))
        idx.insert("b", np.array([10.0, 0.0]))
        key, _, _ = idx.nearest(np.array([1.0, 0.0]), exclude={"a"})
        assert key == "b"

    def test_exclude_all_returns_none(self):
        idx = BruteForceIndex(dim=2)
        idx.insert("a", np.zeros(2))
        assert idx.nearest(np.zeros(2), exclude={"a"}) is None

    def test_counter_charges_full_scan(self):
        idx = BruteForceIndex(dim=3)
        rng = np.random.default_rng(1)
        for i in range(77):
            idx.insert(i, rng.uniform(0, 1, 3))
        counter = CountingStub()
        idx.nearest(rng.uniform(0, 1, 3), counter=counter)
        assert counter.counts["dist"] == 77


class TestNeighborsWithin:
    def test_exact_set(self):
        idx = BruteForceIndex(dim=2)
        rng = np.random.default_rng(2)
        points = {}
        for i in range(100):
            p = rng.uniform(0, 10, 2)
            idx.insert(i, p)
            points[i] = p
        q = np.array([5.0, 5.0])
        got = {k for k, _, _ in idx.neighbors_within(q, 2.0)}
        want = {k for k, p in points.items() if np.linalg.norm(p - q) <= 2.0}
        assert got == want

    def test_sorted_output(self):
        idx = BruteForceIndex(dim=2)
        rng = np.random.default_rng(3)
        for i in range(50):
            idx.insert(i, rng.uniform(0, 10, 2))
        dists = [d for _, _, d in idx.neighbors_within(np.full(2, 5.0), 5.0)]
        assert dists == sorted(dists)
