"""Anytime planning: deadline/op-budget degradation and the no-budget
bit-identity contract, in both the scalar and wavefront loops."""

import numpy as np
import pytest

from repro.core.collision import BruteOBBChecker
from repro.core.config import PlannerConfig
from repro.core.moped import config_for_variant
from repro.core.robots import get_robot
from repro.core.rrtstar import plan
from repro.io import result_from_dict, result_to_dict
from repro.workloads.generator import random_task


def _plan(variant="v4", robot="mobile2d", seed=2, samples=200, obstacles=8,
          **overrides):
    task = random_task(robot, obstacles, seed=seed)
    config = config_for_variant(variant, max_samples=samples, seed=seed,
                                **overrides)
    return task, plan(get_robot(robot), task, config)


def _assert_bit_identical(a, b):
    assert len(a.path) == len(b.path)
    for p, q in zip(a.path, b.path):
        assert np.array_equal(p, q)
    assert a.path_cost == b.path_cost
    assert a.num_nodes == b.num_nodes
    assert a.counter.to_dict() == b.counter.to_dict()


class TestConfigValidation:
    def test_budgets_must_be_positive(self):
        with pytest.raises(ValueError, match="deadline_s"):
            PlannerConfig(deadline_s=0.0)
        with pytest.raises(ValueError, match="deadline_s"):
            PlannerConfig(deadline_s=-1.0)
        with pytest.raises(ValueError, match="op_budget"):
            PlannerConfig(op_budget=0.0)
        PlannerConfig(deadline_s=1.0, op_budget=1e6)  # fine

    def test_disabled_by_default(self):
        config = PlannerConfig()
        assert config.deadline_s is None
        assert config.op_budget is None


class TestOpBudgetDegradation:
    def test_scalar_expiry_returns_degraded(self):
        task, result = _plan(samples=2000, op_budget=5_000.0)
        assert result.status == "degraded"
        assert result.degraded
        assert result.degraded_reason == "op_budget"
        assert result.iterations < 2000  # stopped early
        assert result.counter.total_macs() >= 5_000.0

    def test_wave_expiry_returns_degraded(self):
        task, result = _plan(samples=2000, wave_width=8, op_budget=5_000.0)
        assert result.status == "degraded"
        assert result.degraded_reason == "op_budget"
        assert result.iterations < 2000

    def test_op_budget_expiry_is_deterministic(self):
        _, a = _plan(samples=2000, op_budget=5_000.0)
        _, b = _plan(samples=2000, op_budget=5_000.0)
        _assert_bit_identical(a, b)
        assert a.iterations == b.iterations
        assert a.degraded_reason == b.degraded_reason

    def test_best_so_far_prefix_is_collision_free(self):
        task, result = _plan(samples=2000, op_budget=20_000.0)
        assert result.status == "degraded"
        if result.success:  # reached the goal region before expiry
            assert result.best_goal_distance == 0.0
            return
        # The unreached-goal degraded contract: a collision-free prefix
        # path from the start, plus the straight-line remainder estimate.
        assert len(result.path) >= 1
        np.testing.assert_allclose(result.path[0], task.start)
        assert result.best_goal_distance == pytest.approx(
            float(np.linalg.norm(result.path[-1] - task.goal))
        )
        assert result.path_cost == np.inf  # goal approached, not reached
        robot = get_robot("mobile2d")
        checker = BruteOBBChecker(robot, task.environment, motion_resolution=1.0)
        for a, b in zip(result.path[:-1], result.path[1:]):
            assert not checker.motion_in_collision(a, b)


class TestDeadlineDegradation:
    def test_tiny_deadline_degrades_with_best_so_far(self):
        # 50k samples cannot finish inside 50 ms, so the wall deadline is
        # guaranteed to expire mid-run.
        task, result = _plan(samples=50_000, deadline_s=0.05)
        assert result.status == "degraded"
        assert result.degraded_reason == "deadline"
        assert result.iterations < 50_000
        assert len(result.path) >= 1

    def test_deadline_wins_when_both_budgets_armed(self):
        # budget_expired checks the wall deadline first; with an already
        # expired deadline *and* a spent op budget, the reason is the
        # deadline.
        task, result = _plan(samples=2000, deadline_s=1e-9 + 1e-12,
                             op_budget=1e-9)
        assert result.status == "degraded"
        assert result.degraded_reason == "deadline"


class TestNoBudgetBitIdentity:
    @pytest.mark.parametrize("width", [1, 8])
    def test_unreachable_budgets_do_not_perturb_the_run(self, width):
        # deadline_s / op_budget far beyond what the run can spend must be
        # bit-identical to the disabled (None) configuration: paths, costs,
        # and every OpCounter total.
        _, bare = _plan(samples=150, wave_width=width)
        _, armed = _plan(samples=150, wave_width=width,
                         deadline_s=3600.0, op_budget=1e18)
        assert armed.status == "complete"
        assert armed.degraded_reason is None
        _assert_bit_identical(bare, armed)
        assert len(bare.rounds) == len(armed.rounds)
        for r, s in zip(bare.rounds, armed.rounds):
            assert r.events == s.events


class TestResultRoundTrip:
    def test_degraded_fields_survive_io(self):
        _, result = _plan(samples=2000, op_budget=5_000.0)
        assert result.status == "degraded"
        back = result_from_dict(result_to_dict(result))
        assert back.status == "degraded"
        assert back.degraded_reason == result.degraded_reason
        assert back.best_goal_distance == result.best_goal_distance
        assert back.degraded

    def test_complete_fields_survive_io(self):
        _, result = _plan(samples=150)
        back = result_from_dict(result_to_dict(result))
        assert back.status == "complete"
        assert back.degraded_reason is None
        assert not back.degraded
