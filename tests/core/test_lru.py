"""LRUMap: the value-storing cache under the engine's software caches."""

import pytest

from repro.core.lru import LRUMap


class TestLRUMap:
    def test_get_miss_then_hit(self):
        cache = LRUMap(capacity=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1
        assert cache.misses == 1

    def test_evicts_least_recently_used(self):
        cache = LRUMap(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_put_refreshes_recency(self):
        cache = LRUMap(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 10

    def test_capacity_bound_holds(self):
        cache = LRUMap(capacity=3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 3
        assert cache.evictions == 7

    def test_none_value_rejected(self):
        cache = LRUMap(capacity=1)
        with pytest.raises(ValueError):
            cache.put("a", None)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUMap(capacity=0)

    def test_stats_and_hit_rate(self):
        cache = LRUMap(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("x")
        stats = cache.stats()
        assert stats["hits"] == 2
        assert stats["misses"] == 1
        assert stats["size"] == 1
        assert stats["hit_rate"] == pytest.approx(2 / 3)

    def test_clear_keeps_statistics(self):
        cache = LRUMap(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None
        assert cache.hits == 1
        assert cache.misses == 1
