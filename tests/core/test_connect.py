"""Unit tests for the bidirectional RRT-Connect planner."""

import numpy as np
import pytest

from repro.core.config import baseline_config, moped_config
from repro.core.connect import RRTConnectPlanner
from repro.core.collision import BruteOBBChecker
from repro.core.robots import get_robot
from repro.core.rrtstar import RRTStarPlanner
from repro.core.world import Environment, PlanningTask
from repro.workloads import random_task


@pytest.fixture(scope="module")
def task2d():
    return random_task("mobile2d", 16, seed=4)


def connect_plan(task, config=None, **overrides):
    robot = get_robot(task.robot_name)
    config = config or moped_config("v4", max_samples=500, seed=0, **overrides)
    return RRTConnectPlanner(robot, task, config).plan()


class TestBasics:
    def test_finds_path(self, task2d):
        result = connect_plan(task2d)
        assert result.success
        assert len(result.path) >= 2

    def test_path_endpoints(self, task2d):
        result = connect_plan(task2d)
        np.testing.assert_allclose(result.path[0], task2d.start)
        np.testing.assert_allclose(result.path[-1], task2d.goal)

    def test_path_is_collision_free(self, task2d):
        result = connect_plan(task2d)
        robot = get_robot("mobile2d")
        checker = BruteOBBChecker(robot, task2d.environment, motion_resolution=1.5)
        for a, b in zip(result.path[:-1], result.path[1:]):
            assert not checker.motion_in_collision(a, b)

    def test_cost_matches_path(self, task2d):
        from repro.core.metrics import path_length

        result = connect_plan(task2d)
        assert result.path_cost == pytest.approx(path_length(result.path))

    def test_both_trees_valid(self, task2d):
        robot = get_robot("mobile2d")
        planner = RRTConnectPlanner(robot, task2d, moped_config("v4", max_samples=300, seed=1))
        planner.plan()
        planner.trees[0].validate()
        planner.trees[1].validate()

    def test_deterministic(self, task2d):
        a = connect_plan(task2d)
        b = connect_plan(task2d)
        assert a.path_cost == b.path_cost
        assert a.iterations == b.iterations

    def test_rejects_dim_mismatch(self, task2d):
        robot = get_robot("drone3d")
        with pytest.raises(ValueError):
            RRTConnectPlanner(robot, task2d, moped_config("v4"))

    def test_failure_when_boxed_in(self):
        from repro.geometry.obb import OBB

        walls = [
            OBB(np.array([50.0, 30.0]), np.array([30.0, 5.0]), np.eye(2)),
            OBB(np.array([50.0, 70.0]), np.array([30.0, 5.0]), np.eye(2)),
            OBB(np.array([30.0, 50.0]), np.array([5.0, 30.0]), np.eye(2)),
            OBB(np.array([70.0, 50.0]), np.array([5.0, 30.0]), np.eye(2)),
        ]
        env = Environment(2, 300.0, walls)
        task = PlanningTask(
            "mobile2d", env, np.array([50.0, 50.0, 0.0]), np.array([250.0, 250.0, 0.0])
        )
        result = connect_plan(task, config=moped_config("v4", max_samples=150, seed=0))
        assert not result.success
        assert result.path == []


def _assert_plans_bit_equal(a, b):
    """Full bit-equality: paths, costs, counters, and per-round records."""
    assert len(a.path) == len(b.path)
    for p, q in zip(a.path, b.path):
        assert np.array_equal(p, q)
    assert a.path_cost == b.path_cost
    assert a.num_nodes == b.num_nodes
    assert a.iterations == b.iterations
    assert a.counter.to_dict() == b.counter.to_dict()
    assert len(a.rounds) == len(b.rounds)
    for r, s in zip(a.rounds, b.rounds):
        assert (r.ns_macs, r.cc_macs, r.maint_macs, r.other_macs) == (
            s.ns_macs, s.cc_macs, s.maint_macs, s.other_macs
        )
        assert (r.accepted, r.events) == (s.accepted, s.events)


def boxed_in_task():
    """An unsolvable task (goal walled off) to force budget expiry."""
    from repro.geometry.obb import OBB

    walls = [
        OBB(np.array([50.0, 30.0]), np.array([30.0, 5.0]), np.eye(2)),
        OBB(np.array([50.0, 70.0]), np.array([30.0, 5.0]), np.eye(2)),
        OBB(np.array([30.0, 50.0]), np.array([5.0, 30.0]), np.eye(2)),
        OBB(np.array([70.0, 50.0]), np.array([5.0, 30.0]), np.eye(2)),
    ]
    env = Environment(2, 300.0, walls)
    return PlanningTask(
        "mobile2d", env, np.array([50.0, 50.0, 0.0]), np.array([250.0, 250.0, 0.0])
    )


class TestBitReproducibility:
    """Fixed-seed RRT-Connect is bit-reproducible across repeats and widths."""

    def test_repeats_bit_identical(self, task2d):
        a = connect_plan(task2d)
        b = connect_plan(task2d)
        _assert_plans_bit_equal(a, b)

    @pytest.mark.parametrize("width", [2, 4, 8])
    def test_wave_widths_bit_identical(self, task2d, width):
        scalar = connect_plan(task2d, wave_width=1)
        wave = connect_plan(task2d, wave_width=width)
        _assert_plans_bit_equal(scalar, wave)

    def test_arm_robot_bit_identical_across_widths(self):
        task = random_task("rozum", 12, seed=2)
        scalar = connect_plan(task, config=moped_config(
            "v4", max_samples=300, seed=5, mode="connect", wave_width=1))
        wave = connect_plan(task, config=moped_config(
            "v4", max_samples=300, seed=5, mode="connect", wave_width=8))
        _assert_plans_bit_equal(scalar, wave)


class TestBudgets:
    """Connect honors the PR 5 anytime budgets and race cancellation."""

    @pytest.mark.parametrize("width", [1, 8])
    def test_deadline_degrades(self, width):
        task = boxed_in_task()
        result = connect_plan(
            task,
            config=moped_config("v4", max_samples=1_000_000, seed=0,
                                wave_width=width, deadline_s=0.05,
                                mode="connect"),
        )
        assert result.status == "degraded"
        assert result.degraded_reason == "deadline"
        assert result.iterations < 1_000_000
        assert not result.success

    @pytest.mark.parametrize("width", [1, 8])
    def test_op_budget_degrades(self, width):
        task = boxed_in_task()
        result = connect_plan(
            task,
            config=moped_config("v4", max_samples=100_000, seed=0,
                                wave_width=width, op_budget=20_000.0,
                                mode="connect"),
        )
        assert result.status == "degraded"
        assert result.degraded_reason == "op_budget"
        assert result.counter.total_macs() >= 20_000.0

    def test_degraded_returns_collision_free_prefix(self):
        task = boxed_in_task()
        result = connect_plan(
            task,
            config=moped_config("v4", max_samples=100_000, seed=0,
                                op_budget=20_000.0, mode="connect"),
        )
        assert len(result.path) >= 1
        np.testing.assert_allclose(result.path[0], task.start)
        assert result.best_goal_distance is not None
        robot = get_robot("mobile2d")
        checker = BruteOBBChecker(robot, task.environment, motion_resolution=1.0)
        for a, b in zip(result.path[:-1], result.path[1:]):
            assert not checker.motion_in_collision(a, b)

    @pytest.mark.parametrize("width", [1, 8])
    def test_unreachable_budgets_do_not_perturb_the_run(self, task2d, width):
        bare = connect_plan(task2d, wave_width=width)
        armed = connect_plan(task2d, wave_width=width,
                             deadline_s=3600.0, op_budget=1e18)
        assert armed.success
        _assert_plans_bit_equal(bare, armed)

    def test_cancel_predicate_stops_the_run(self):
        from repro.core import cancel

        task = boxed_in_task()
        polls = []

        def predicate():
            polls.append(1)
            return len(polls) > 3

        previous = cancel.install(predicate)
        try:
            result = connect_plan(
                task,
                config=moped_config("v4", max_samples=100_000, seed=0,
                                    mode="connect"),
            )
        finally:
            cancel.install(previous)
        assert result.status == "degraded"
        assert result.degraded_reason == "cancelled"
        assert result.iterations <= len(polls)


class TestFaultedConnect:
    """connect.extend fault site: a faulted connect always terminates."""

    def teardown_method(self):
        from repro import faults

        faults.clear()

    def test_error_fault_fires_and_terminates(self, task2d):
        from repro import faults
        from repro.errors import FaultInjected

        injector = faults.install_plan(
            faults.FaultPlan.from_spec("connect.extend:error"))
        with pytest.raises(FaultInjected, match="connect.extend"):
            connect_plan(task2d)
        assert injector.counts().get("connect.extend:error", 0) >= 1

    def test_slow_fault_under_deadline_degrades_promptly(self):
        import time

        from repro import faults

        task = boxed_in_task()
        injector = faults.install_plan(
            faults.FaultPlan.from_spec("connect.extend:slow:delay=0.002"))
        started = time.monotonic()
        result = connect_plan(
            task,
            config=moped_config("v4", max_samples=1_000_000, seed=0,
                                deadline_s=0.1, mode="connect"),
        )
        elapsed = time.monotonic() - started
        assert result.status == "degraded"
        assert result.degraded_reason == "deadline"
        assert elapsed < 5.0  # the per-chunk poll keeps the overshoot bounded
        assert injector.counts().get("connect.extend:slow", 0) >= 1


class TestVsRRTStar:
    def test_finds_first_solution_faster(self, task2d):
        """Connect reaches feasibility in fewer iterations than RRT\\*."""
        connect = connect_plan(task2d)
        robot = get_robot("mobile2d")
        star = RRTStarPlanner(
            robot, task2d, moped_config("v4", max_samples=500, seed=0, goal_bias=0.1)
        ).plan()
        assert connect.success and star.success
        assert connect.iterations < star.first_solution_iteration + 50

    def test_works_with_baseline_config(self, task2d):
        result = connect_plan(task2d, config=baseline_config(max_samples=500, seed=0))
        assert result.success

    def test_composes_with_moped_optimisations(self, task2d):
        """Two-stage checking cuts RRT-Connect's cost too (Section VI)."""
        base = connect_plan(task2d, config=baseline_config(max_samples=500, seed=0))
        moped = connect_plan(task2d, config=moped_config("v4", max_samples=500, seed=0))
        assert moped.total_macs < base.total_macs

    def test_rounds_recorded(self, task2d):
        result = connect_plan(task2d)
        assert len(result.rounds) == result.iterations
        assert any(r.accepted for r in result.rounds)
