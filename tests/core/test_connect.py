"""Unit tests for the bidirectional RRT-Connect planner."""

import numpy as np
import pytest

from repro.core.config import baseline_config, moped_config
from repro.core.connect import RRTConnectPlanner
from repro.core.collision import BruteOBBChecker
from repro.core.robots import get_robot
from repro.core.rrtstar import RRTStarPlanner
from repro.core.world import Environment, PlanningTask
from repro.workloads import random_task


@pytest.fixture(scope="module")
def task2d():
    return random_task("mobile2d", 16, seed=4)


def connect_plan(task, config=None, **overrides):
    robot = get_robot(task.robot_name)
    config = config or moped_config("v4", max_samples=500, seed=0, **overrides)
    return RRTConnectPlanner(robot, task, config).plan()


class TestBasics:
    def test_finds_path(self, task2d):
        result = connect_plan(task2d)
        assert result.success
        assert len(result.path) >= 2

    def test_path_endpoints(self, task2d):
        result = connect_plan(task2d)
        np.testing.assert_allclose(result.path[0], task2d.start)
        np.testing.assert_allclose(result.path[-1], task2d.goal)

    def test_path_is_collision_free(self, task2d):
        result = connect_plan(task2d)
        robot = get_robot("mobile2d")
        checker = BruteOBBChecker(robot, task2d.environment, motion_resolution=1.5)
        for a, b in zip(result.path[:-1], result.path[1:]):
            assert not checker.motion_in_collision(a, b)

    def test_cost_matches_path(self, task2d):
        from repro.core.metrics import path_length

        result = connect_plan(task2d)
        assert result.path_cost == pytest.approx(path_length(result.path))

    def test_both_trees_valid(self, task2d):
        robot = get_robot("mobile2d")
        planner = RRTConnectPlanner(robot, task2d, moped_config("v4", max_samples=300, seed=1))
        planner.plan()
        planner.trees[0].validate()
        planner.trees[1].validate()

    def test_deterministic(self, task2d):
        a = connect_plan(task2d)
        b = connect_plan(task2d)
        assert a.path_cost == b.path_cost
        assert a.iterations == b.iterations

    def test_rejects_dim_mismatch(self, task2d):
        robot = get_robot("drone3d")
        with pytest.raises(ValueError):
            RRTConnectPlanner(robot, task2d, moped_config("v4"))

    def test_failure_when_boxed_in(self):
        from repro.geometry.obb import OBB

        walls = [
            OBB(np.array([50.0, 30.0]), np.array([30.0, 5.0]), np.eye(2)),
            OBB(np.array([50.0, 70.0]), np.array([30.0, 5.0]), np.eye(2)),
            OBB(np.array([30.0, 50.0]), np.array([5.0, 30.0]), np.eye(2)),
            OBB(np.array([70.0, 50.0]), np.array([5.0, 30.0]), np.eye(2)),
        ]
        env = Environment(2, 300.0, walls)
        task = PlanningTask(
            "mobile2d", env, np.array([50.0, 50.0, 0.0]), np.array([250.0, 250.0, 0.0])
        )
        result = connect_plan(task, config=moped_config("v4", max_samples=150, seed=0))
        assert not result.success
        assert result.path == []


class TestVsRRTStar:
    def test_finds_first_solution_faster(self, task2d):
        """Connect reaches feasibility in fewer iterations than RRT\\*."""
        connect = connect_plan(task2d)
        robot = get_robot("mobile2d")
        star = RRTStarPlanner(
            robot, task2d, moped_config("v4", max_samples=500, seed=0, goal_bias=0.1)
        ).plan()
        assert connect.success and star.success
        assert connect.iterations < star.first_solution_iteration + 50

    def test_works_with_baseline_config(self, task2d):
        result = connect_plan(task2d, config=baseline_config(max_samples=500, seed=0))
        assert result.success

    def test_composes_with_moped_optimisations(self, task2d):
        """Two-stage checking cuts RRT-Connect's cost too (Section VI)."""
        base = connect_plan(task2d, config=baseline_config(max_samples=500, seed=0))
        moped = connect_plan(task2d, config=moped_config("v4", max_samples=500, seed=0))
        assert moped.total_macs < base.total_macs

    def test_rounds_recorded(self, task2d):
        result = connect_plan(task2d)
        assert len(result.rounds) == result.iterations
        assert any(r.accepted for r in result.rounds)
