"""Unit tests for the 16-bit fixed-point quantization model."""

import numpy as np
import pytest

from repro.core.quantization import (
    QuantizingSampler,
    quantization_step,
    quantize_config,
    quantize_environment,
    quantize_obb,
    quantize_task,
    quantize_values,
)
from repro.core.rng import NumpySampler
from repro.core.robots import get_robot
from repro.workloads import random_environment, random_task


class TestQuantizeValues:
    def test_idempotent(self):
        lo, hi = np.zeros(3), np.full(3, 300.0)
        x = np.array([12.3456, 200.001, 299.9])
        once = quantize_values(x, lo, hi)
        twice = quantize_values(once, lo, hi)
        np.testing.assert_allclose(once, twice)

    def test_error_bounded_by_half_step(self):
        lo, hi = np.zeros(1), np.ones(1) * 300.0
        step = quantization_step(0.0, 300.0, bits=16)
        rng = np.random.default_rng(0)
        for _ in range(200):
            x = rng.uniform(0, 300, 1)
            q = quantize_values(x, lo, hi, bits=16)
            assert abs(float((q - x)[0])) <= step / 2 + 1e-12

    def test_clipping(self):
        lo, hi = np.zeros(2), np.ones(2)
        q = quantize_values(np.array([-5.0, 7.0]), lo, hi)
        np.testing.assert_allclose(q, [0.0, 1.0])

    def test_endpoints_exact(self):
        lo, hi = np.zeros(1), np.full(1, 300.0)
        np.testing.assert_allclose(quantize_values(lo, lo, hi), lo)
        np.testing.assert_allclose(quantize_values(hi, lo, hi), hi)

    def test_fewer_bits_coarser(self):
        lo, hi = np.zeros(1), np.full(1, 300.0)
        x = np.array([123.456789])
        err16 = abs(float((quantize_values(x, lo, hi, 16) - x)[0]))
        err8 = abs(float((quantize_values(x, lo, hi, 8) - x)[0]))
        assert err16 < err8

    def test_validation(self):
        with pytest.raises(ValueError):
            quantize_values(np.zeros(1), np.zeros(1), np.ones(1), bits=1)
        with pytest.raises(ValueError):
            quantize_values(np.zeros(1), np.ones(1), np.zeros(1))

    def test_step_for_paper_workspace(self):
        """16 bits over 300 units: sub-0.005-unit grid (why 16 suffices)."""
        assert quantization_step(0.0, 300.0, 16) < 0.005


class TestQuantizeGeometry:
    def test_obb_stays_valid(self):
        env = random_environment(3, 16, seed=0)
        for obstacle in env.obstacles:
            q = quantize_obb(obstacle, env.size, bits=16)
            assert q.is_valid()

    def test_obb_16bit_is_close(self):
        env = random_environment(3, 8, seed=1)
        for obstacle in env.obstacles:
            q = quantize_obb(obstacle, env.size, bits=16)
            assert np.linalg.norm(q.center - obstacle.center) < 0.01
            assert np.abs(q.rotation - obstacle.rotation).max() < 1e-3

    def test_environment_preserves_structure(self):
        env = random_environment(2, 12, seed=2)
        q = quantize_environment(env, bits=16)
        assert q.num_obstacles == 12
        assert q.workspace_dim == 2

    def test_task_round(self):
        task = random_task("mobile2d", 8, seed=3)
        robot = get_robot("mobile2d")
        q = quantize_task(task, robot, bits=16)
        assert np.linalg.norm(q.start - task.start) < 0.01


class TestQuantizingSampler:
    def test_draws_on_grid(self):
        base = NumpySampler(np.zeros(3), np.full(3, 300.0), seed=0)
        sampler = QuantizingSampler(base, bits=8)
        step = quantization_step(0.0, 300.0, 8)
        for _ in range(50):
            x = sampler.sample()
            codes = x / step
            np.testing.assert_allclose(codes, np.round(codes), atol=1e-6)

    def test_respects_bounds(self):
        base = NumpySampler(np.zeros(2), np.ones(2), seed=1)
        sampler = QuantizingSampler(base, bits=16)
        for _ in range(50):
            x = sampler.sample()
            assert np.all(x >= 0.0) and np.all(x <= 1.0)

    def test_validation(self):
        base = NumpySampler(np.zeros(2), np.ones(2), seed=2)
        with pytest.raises(ValueError):
            QuantizingSampler(base, bits=64)


class TestPlanningUnderQuantization:
    def test_16bit_task_plans_like_float(self):
        """16-bit data must not change planning viability (§IV-A)."""
        from repro.core import MopedEngine

        task = random_task("mobile2d", 16, seed=4)
        robot = get_robot("mobile2d")
        q_task = quantize_task(task, robot, bits=16)
        float_result = MopedEngine(robot, task.environment, max_samples=300,
                                   seed=0, goal_bias=0.15).plan_task(task)
        quant_result = MopedEngine(robot, q_task.environment, max_samples=300,
                                   seed=0, goal_bias=0.15).plan_task(q_task)
        assert float_result.success == quant_result.success
        if float_result.success:
            assert quant_result.path_cost == pytest.approx(
                float_result.path_cost, rel=0.05
            )
