"""Unit tests for the LFSR and numpy samplers."""

import numpy as np
import pytest

from repro.core.counters import OpCounter
from repro.core.rng import LFSR16, LFSRSampler, NumpySampler


class TestLFSR16:
    def test_rejects_zero_seed(self):
        with pytest.raises(ValueError):
            LFSR16(seed=0)

    def test_state_stays_16_bit(self):
        lfsr = LFSR16(seed=0xACE1)
        for _ in range(100):
            word = lfsr.next_word()
            assert 0 <= word <= 0xFFFF

    def test_never_reaches_zero(self):
        lfsr = LFSR16(seed=1)
        for _ in range(5000):
            assert lfsr.next_word() != 0

    def test_deterministic(self):
        a, b = LFSR16(seed=123), LFSR16(seed=123)
        assert [a.next_word() for _ in range(20)] == [b.next_word() for _ in range(20)]

    def test_different_seeds_differ(self):
        a, b = LFSR16(seed=123), LFSR16(seed=321)
        assert [a.next_word() for _ in range(10)] != [b.next_word() for _ in range(10)]

    def test_unit_range(self):
        lfsr = LFSR16(seed=7)
        for _ in range(200):
            u = lfsr.next_unit()
            assert 0.0 <= u < 1.0

    def test_roughly_uniform(self):
        lfsr = LFSR16(seed=42)
        draws = np.array([lfsr.next_unit() for _ in range(2000)])
        assert 0.4 < draws.mean() < 0.6
        assert draws.std() > 0.2


@pytest.mark.parametrize("sampler_cls", [LFSRSampler, NumpySampler])
class TestSamplers:
    def test_within_bounds(self, sampler_cls):
        lo, hi = np.array([0.0, -1.0, 5.0]), np.array([10.0, 1.0, 6.0])
        sampler = sampler_cls(lo, hi, seed=3)
        for _ in range(200):
            x = sampler.sample()
            assert np.all(x >= lo) and np.all(x <= hi)

    def test_counter_records_samples(self, sampler_cls):
        sampler = sampler_cls(np.zeros(4), np.ones(4), seed=1)
        counter = OpCounter()
        for _ in range(10):
            sampler.sample(counter=counter)
        assert counter.events["sample"] == 10

    def test_goal_bias_zero_never_returns_goal(self, sampler_cls):
        sampler = sampler_cls(np.zeros(2), np.ones(2), seed=5)
        goal = np.array([0.5, 0.5])
        hits = sum(
            np.allclose(sampler.sample_biased(goal, 0.0), goal) for _ in range(100)
        )
        assert hits == 0

    def test_goal_bias_high_returns_goal_often(self, sampler_cls):
        sampler = sampler_cls(np.zeros(2), np.ones(2), seed=5)
        goal = np.array([0.25, 0.75])
        hits = sum(
            np.allclose(sampler.sample_biased(goal, 0.9), goal) for _ in range(200)
        )
        assert hits > 120

    def test_invalid_bias_rejected(self, sampler_cls):
        sampler = sampler_cls(np.zeros(2), np.ones(2), seed=1)
        with pytest.raises(ValueError):
            sampler.sample_biased(np.zeros(2), 1.0)

    def test_invalid_bounds_rejected(self, sampler_cls):
        with pytest.raises(ValueError):
            sampler_cls(np.ones(2), np.zeros(2), seed=1)

    def test_deterministic_with_seed(self, sampler_cls):
        a = sampler_cls(np.zeros(3), np.ones(3), seed=11)
        b = sampler_cls(np.zeros(3), np.ones(3), seed=11)
        for _ in range(20):
            np.testing.assert_allclose(a.sample(), b.sample())


class TestLFSRSamplerSpecifics:
    def test_dimensions_not_identical(self):
        """Per-dimension LFSRs must not produce correlated coordinates."""
        sampler = LFSRSampler(np.zeros(3), np.ones(3), seed=1)
        draws = np.array([sampler.sample() for _ in range(200)])
        corr = np.corrcoef(draws.T)
        off_diag = corr[~np.eye(3, dtype=bool)]
        assert np.all(np.abs(off_diag) < 0.3)

    def test_covers_space(self):
        sampler = LFSRSampler(np.zeros(2), np.full(2, 100.0), seed=9)
        draws = np.array([sampler.sample() for _ in range(1000)])
        assert draws.min() < 10.0
        assert draws.max() > 90.0
