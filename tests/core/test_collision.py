"""Unit and property tests for the collision checkers.

The central invariants (also stated in DESIGN.md):

* the two-stage checker's decisions are identical to brute OBB-OBB
  (conservative filter + exact second stage);
* the AABB checker and the occupancy-grid checker are conservative with
  respect to the OBB checker (clear implies truly clear);
* the two-stage checker is far cheaper than brute checking.
"""

import numpy as np
import pytest

from repro.core.collision import (
    BruteAABBChecker,
    BruteOBBChecker,
    OccupancyGridChecker,
    TwoStageChecker,
    make_checker,
)
from repro.core.counters import OpCounter
from repro.core.robots import get_robot
from repro.core.world import Environment
from repro.workloads.generator import random_environment


@pytest.fixture(scope="module")
def env3d():
    return random_environment(workspace_dim=3, num_obstacles=16, seed=42)


@pytest.fixture(scope="module")
def env2d():
    return random_environment(workspace_dim=2, num_obstacles=16, seed=42)


def random_configs(robot, n, seed):
    rng = np.random.default_rng(seed)
    return [rng.uniform(robot.config_lo, robot.config_hi) for _ in range(n)]


class TestFactory:
    def test_all_names(self, env3d):
        robot = get_robot("drone3d")
        for name in ("obb", "aabb", "two_stage", "grid"):
            checker = make_checker(name, robot, env3d, motion_resolution=5.0)
            assert checker is not None

    def test_unknown_name(self, env3d):
        with pytest.raises(KeyError):
            make_checker("magic", get_robot("drone3d"), env3d, motion_resolution=5.0)

    def test_dim_mismatch_rejected(self, env2d):
        with pytest.raises(ValueError):
            BruteOBBChecker(get_robot("drone3d"), env2d, motion_resolution=5.0)

    def test_bad_resolution_rejected(self, env3d):
        with pytest.raises(ValueError):
            BruteOBBChecker(get_robot("drone3d"), env3d, motion_resolution=0.0)


class TestBruteOBB:
    def test_empty_environment_never_collides(self):
        robot = get_robot("drone3d")
        env = Environment(3, 300.0, [])
        checker = BruteOBBChecker(robot, env, motion_resolution=5.0)
        for config in random_configs(robot, 10, 0):
            assert not checker.config_in_collision(config)

    def test_config_inside_obstacle_collides(self, env3d):
        robot = get_robot("drone3d")
        checker = BruteOBBChecker(robot, env3d, motion_resolution=5.0)
        obstacle = env3d.obstacles[0]
        config = np.concatenate([obstacle.center, np.zeros(3)])
        assert checker.config_in_collision(config)

    def test_counts_obb_obb_checks(self, env3d):
        robot = get_robot("drone3d")
        checker = BruteOBBChecker(robot, env3d, motion_resolution=5.0)
        counter = OpCounter()
        config = np.array([5.0, 5.0, 290.0, 0, 0, 0])  # likely free corner
        collided = checker.config_in_collision(config, counter=counter)
        if not collided:
            # One check per obstacle per body OBB.
            assert counter.events["sat_obb_obb"] == env3d.num_obstacles


class TestTwoStageEquivalence:
    @pytest.mark.parametrize("robot_name", ["drone3d", "viperx300", "xarm7"])
    def test_decisions_match_brute_obb(self, env3d, robot_name):
        robot = get_robot(robot_name)
        brute = BruteOBBChecker(robot, env3d, motion_resolution=robot.step_size)
        two_stage = TwoStageChecker(robot, env3d, motion_resolution=robot.step_size)
        for config in random_configs(robot, 40, 1):
            assert brute.config_in_collision(config) == two_stage.config_in_collision(config)

    def test_motion_decisions_match(self, env2d):
        robot = get_robot("mobile2d")
        brute = BruteOBBChecker(robot, env2d, motion_resolution=4.0)
        two_stage = TwoStageChecker(robot, env2d, motion_resolution=4.0)
        rng = np.random.default_rng(2)
        for _ in range(25):
            a = rng.uniform(robot.config_lo, robot.config_hi)
            b = a + rng.normal(scale=10.0, size=3)
            b = robot.clip(b)
            assert brute.motion_in_collision(a, b) == two_stage.motion_in_collision(a, b)

    def test_two_stage_is_cheaper(self, env3d):
        robot = get_robot("drone3d")
        brute = BruteOBBChecker(robot, env3d, motion_resolution=5.0)
        two_stage = TwoStageChecker(robot, env3d, motion_resolution=5.0)
        c_brute, c_two = OpCounter(), OpCounter()
        for config in random_configs(robot, 30, 3):
            brute.config_in_collision(config, counter=c_brute)
            two_stage.config_in_collision(config, counter=c_two)
        assert c_two.total_macs() < 0.5 * c_brute.total_macs()

    def test_coarse_only_mode_is_conservative(self, env3d):
        robot = get_robot("drone3d")
        exact = BruteOBBChecker(robot, env3d, motion_resolution=5.0)
        coarse = TwoStageChecker(robot, env3d, motion_resolution=5.0, fine_stage=False)
        for config in random_configs(robot, 40, 4):
            if exact.config_in_collision(config):
                assert coarse.config_in_collision(config)


class TestAABBChecker:
    def test_conservative_vs_obb(self, env3d):
        robot = get_robot("drone3d")
        exact = BruteOBBChecker(robot, env3d, motion_resolution=5.0)
        coarse = BruteAABBChecker(robot, env3d, motion_resolution=5.0)
        for config in random_configs(robot, 50, 5):
            if exact.config_in_collision(config):
                assert coarse.config_in_collision(config)

    def test_has_false_positives_for_rotated_obstacles(self):
        """A strongly rotated obstacle's AABB must flag some free configs."""
        robot = get_robot("mobile2d")
        from repro.geometry.obb import OBB
        from repro.geometry.rotations import rotation_2d

        obstacle = OBB(np.array([150.0, 150.0]), np.array([40.0, 4.0]), rotation_2d(np.pi / 4))
        env = Environment(2, 300.0, [obstacle])
        exact = BruteOBBChecker(robot, env, motion_resolution=5.0)
        coarse = BruteAABBChecker(robot, env, motion_resolution=5.0)
        false_positives = 0
        rng = np.random.default_rng(6)
        for _ in range(300):
            config = rng.uniform(robot.config_lo, robot.config_hi)
            if coarse.config_in_collision(config) and not exact.config_in_collision(config):
                false_positives += 1
        assert false_positives > 0


class TestOccupancyGrid:
    def test_grid_memory_matches_paper_footnote(self):
        """300^3 at 1 unit/cell needs > 3.2 MB at one bit per cell."""
        robot = get_robot("drone3d")
        env = random_environment(3, 8, seed=0)
        checker = OccupancyGridChecker(robot, env, motion_resolution=5.0, resolution=1.0)
        assert checker.grid_bytes > 3.2 * 1024 * 1024

    def test_conservative_vs_obb(self):
        robot = get_robot("mobile2d")
        env = random_environment(2, 16, seed=7)
        exact = BruteOBBChecker(robot, env, motion_resolution=5.0)
        grid = OccupancyGridChecker(robot, env, motion_resolution=5.0, resolution=1.0)
        rng = np.random.default_rng(8)
        for _ in range(60):
            config = rng.uniform(robot.config_lo, robot.config_hi)
            if exact.config_in_collision(config):
                assert grid.config_in_collision(config)

    def test_free_space_is_clear(self):
        robot = get_robot("mobile2d")
        from repro.geometry.obb import OBB
        from repro.geometry.rotations import rotation_2d

        obstacle = OBB(np.array([30.0, 30.0]), np.array([10.0, 10.0]), rotation_2d(0.0))
        env = Environment(2, 300.0, [obstacle])
        grid = OccupancyGridChecker(robot, env, motion_resolution=5.0, resolution=1.0)
        assert not grid.config_in_collision(np.array([250.0, 250.0, 0.0]))

    def test_counts_grid_lookups(self):
        robot = get_robot("mobile2d")
        env = random_environment(2, 8, seed=9)
        grid = OccupancyGridChecker(robot, env, motion_resolution=5.0, resolution=1.0)
        counter = OpCounter()
        grid.config_in_collision(np.array([150.0, 150.0, 0.3]), counter=counter)
        assert counter.events.get("grid_lookup", 0) > 0

    def test_invalid_resolution(self):
        robot = get_robot("mobile2d")
        env = random_environment(2, 4, seed=10)
        with pytest.raises(ValueError):
            OccupancyGridChecker(robot, env, motion_resolution=5.0, resolution=0.0)


class TestMotionChecks:
    def test_motion_through_obstacle_detected(self):
        robot = get_robot("mobile2d")
        from repro.geometry.obb import OBB
        from repro.geometry.rotations import rotation_2d

        wall = OBB(np.array([150.0, 150.0]), np.array([5.0, 100.0]), rotation_2d(0.0))
        env = Environment(2, 300.0, [wall])
        checker = BruteOBBChecker(robot, env, motion_resolution=2.0)
        a = np.array([50.0, 150.0, 0.0])
        b = np.array([250.0, 150.0, 0.0])
        assert checker.motion_in_collision(a, b)
        assert not checker.config_in_collision(a)
        assert not checker.config_in_collision(b)

    def test_short_free_motion_clear(self, env3d):
        robot = get_robot("drone3d")
        checker = BruteOBBChecker(robot, env3d, motion_resolution=5.0)
        a = np.array([5.0, 5.0, 290.0, 0, 0, 0])
        if not checker.config_in_collision(a):
            b = a + np.array([2.0, 2.0, 0.0, 0, 0, 0])
            assert not checker.motion_in_collision(a, b)
