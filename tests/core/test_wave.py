"""Wavefront planner: bit-equality with the scalar speculative loop.

The wavefront mode (``wave_width = W``) batches W rounds per wave through
the vectorized kernels but commits in sample order with the same
speculate-and-repair semantics as ``speculation_depth = W``; plans, costs,
operation counters, and per-round telemetry must therefore be bitwise
identical to the scalar planner at the equivalent depth.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.metrics import RoundRecord, wave_occupancy
from repro.core.moped import config_for_variant
from repro.core.robots import get_robot
from repro.core.rrtstar import plan
from repro.workloads.generator import random_task


def _plan(robot_name, variant, seed=2, samples=100, obstacles=8, **overrides):
    task = random_task(robot_name, obstacles, seed=seed)
    config = config_for_variant(
        variant, max_samples=samples, seed=seed, **overrides
    )
    return plan(get_robot(robot_name), task, config)


def _assert_bit_identical(a, b):
    assert len(a.path) == len(b.path)
    for p, q in zip(a.path, b.path):
        assert np.array_equal(p, q)
    assert a.path_cost == b.path_cost
    assert a.num_nodes == b.num_nodes
    assert a.counter.to_dict() == b.counter.to_dict()
    assert len(a.rounds) == len(b.rounds)
    for r, s in zip(a.rounds, b.rounds):
        assert (r.ns_macs, r.cc_macs, r.maint_macs, r.other_macs) == (
            s.ns_macs, s.cc_macs, s.maint_macs, s.other_macs
        )
        assert (r.accepted, r.missing_used, r.repaired) == (
            s.accepted, s.missing_used, s.repaired
        )
        assert r.events == s.events


class TestWaveBitEquality:
    @pytest.mark.parametrize("robot", ["rozum", "xarm7", "mobile2d"])
    @pytest.mark.parametrize("width", [1, 4, 16])
    def test_wave_matches_scalar_at_equivalent_depth(self, robot, width):
        # wave_width = 1 degenerates to the plain scalar loop (depth 0);
        # any wider wave carries its own speculation depth of W.
        depth = width if width > 1 else 0
        wave = _plan(robot, "v4", wave_width=width)
        scalar = _plan(robot, "v4", speculation_depth=depth)
        _assert_bit_identical(wave, scalar)

    @pytest.mark.parametrize("variant", ["baseline", "v1", "v3"])
    def test_wave_matches_scalar_across_variants(self, variant):
        wave = _plan("mobile2d", variant, obstacles=12, wave_width=8)
        scalar = _plan("mobile2d", variant, obstacles=12, speculation_depth=8)
        _assert_bit_identical(wave, scalar)

    def test_wave_without_rewire(self):
        wave = _plan("mobile2d", "v1", rewire=False, wave_width=8)
        scalar = _plan("mobile2d", "v1", rewire=False, speculation_depth=8)
        _assert_bit_identical(wave, scalar)


class TestWaveRepairProperty:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        width=st.sampled_from([2, 4, 8, 16]),
    )
    def test_wave_never_accepts_what_scalar_rejects(self, seed, width):
        """Intra-wave repair is exactly the scalar pending-repair.

        Round by round, the wave planner accepts a node if and only if the
        scalar speculative planner at the equivalent depth accepts one —
        a wave must never commit a speculative edge the scalar loop's
        repair would have rejected (or vice versa).
        """
        wave = _plan("mobile2d", "v1", seed=seed, samples=60, wave_width=width)
        scalar = _plan(
            "mobile2d", "v1", seed=seed, samples=60, speculation_depth=width
        )
        wave_accepts = [r.accepted for r in wave.rounds]
        scalar_accepts = [r.accepted for r in scalar.rounds]
        assert wave_accepts == scalar_accepts
        assert wave.num_nodes == scalar.num_nodes
        assert wave.path_cost == scalar.path_cost


class TestWaveTelemetry:
    def test_round_record_wave_fields_round_trip(self):
        record = RoundRecord(
            ns_macs=10.0, cc_macs=20.0, maint_macs=3.0, other_macs=1.0,
            accepted=True, missing_used=2, repaired=True,
            events={"dist": 5, "sat_obb_obb": 2},
            wave_width=8, repaired_in_wave=True,
        )
        assert RoundRecord.from_dict(record.to_dict()) == record

    def test_round_record_defaults_are_scalar(self):
        record = RoundRecord(
            ns_macs=1.0, cc_macs=1.0, maint_macs=0.0, other_macs=0.0,
            accepted=False,
        )
        assert record.wave_width == 1
        assert record.repaired_in_wave is False
        # Legacy dicts without the wave fields load as scalar rounds.
        data = record.to_dict()
        del data["wave_width"], data["repaired_in_wave"]
        assert RoundRecord.from_dict(data) == record

    def test_wave_rounds_carry_width_and_brief_reports_occupancy(self):
        result = _plan("mobile2d", "v1", wave_width=8)
        widths = {r.wave_width for r in result.rounds}
        # A truncated trailing wave records its actual (smaller) width.
        assert max(widths) == 8
        assert all(w > 1 for w in widths)
        occupancy = result.brief()["wave_occupancy"]
        assert occupancy is not None
        assert 0.0 <= occupancy <= 1.0
        assert occupancy == wave_occupancy(result.rounds)

    def test_scalar_brief_has_no_occupancy(self):
        result = _plan("mobile2d", "v1", samples=40)
        assert result.brief()["wave_occupancy"] is None

    def test_wave_lane_utilization_stats(self):
        from repro.hardware.pipeline import wave_lane_utilization

        result = _plan("mobile2d", "v1", wave_width=8)
        stats = wave_lane_utilization(result.rounds)
        assert stats.lanes == 8
        assert stats.slots == len(result.rounds)
        assert stats.committed <= stats.slots
        assert stats.occupancy == wave_occupancy(result.rounds)

        scalar = wave_lane_utilization(_plan("mobile2d", "v1", samples=30).rounds)
        assert scalar.lanes == 0
        assert scalar.occupancy is None
