"""Unit tests for shortcut path smoothing."""

import numpy as np
import pytest

from repro.core.collision import BruteOBBChecker
from repro.core.metrics import path_length
from repro.core.robots import get_robot
from repro.core.smoothing import shortcut_smooth
from repro.core.world import Environment
from repro.geometry.obb import OBB


@pytest.fixture
def empty_checker():
    robot = get_robot("mobile2d")
    return BruteOBBChecker(robot, Environment(2, 300.0, []), motion_resolution=2.0)


@pytest.fixture
def wall_checker():
    robot = get_robot("mobile2d")
    wall = OBB(np.array([150.0, 150.0]), np.array([5.0, 120.0]), np.eye(2))
    return BruteOBBChecker(robot, Environment(2, 300.0, [wall]), motion_resolution=2.0)


def zigzag_path():
    return [
        np.array([20.0, 20.0, 0.0]),
        np.array([60.0, 120.0, 0.0]),
        np.array([100.0, 40.0, 0.0]),
        np.array([120.0, 130.0, 0.0]),
        np.array([140.0, 20.0, 0.0]),
    ]


class TestShortcutSmooth:
    def test_free_space_collapses_to_straight_line(self, empty_checker):
        path = zigzag_path()
        smoothed, cost = shortcut_smooth(path, empty_checker, iterations=200, seed=0)
        direct = float(np.linalg.norm(path[-1] - path[0]))
        assert cost == pytest.approx(direct, rel=1e-6)
        assert len(smoothed) == 2

    def test_never_increases_cost(self, empty_checker):
        path = zigzag_path()
        smoothed, cost = shortcut_smooth(path, empty_checker, iterations=50, seed=1)
        assert cost <= path_length(path) + 1e-9

    def test_endpoints_preserved(self, empty_checker):
        path = zigzag_path()
        smoothed, _ = shortcut_smooth(path, empty_checker, iterations=100, seed=2)
        np.testing.assert_allclose(smoothed[0], path[0])
        np.testing.assert_allclose(smoothed[-1], path[-1])

    def test_respects_obstacles(self, wall_checker):
        # Path around the wall; direct shortcut would pass through it.
        path = [
            np.array([100.0, 150.0, 0.0]),
            np.array([110.0, 282.0, 0.0]),
            np.array([190.0, 282.0, 0.0]),
            np.array([200.0, 150.0, 0.0]),
        ]
        smoothed, _ = shortcut_smooth(path, wall_checker, iterations=300, seed=3)
        for a, b in zip(smoothed[:-1], smoothed[1:]):
            assert not wall_checker.motion_in_collision(a, b)

    def test_input_path_unmodified(self, empty_checker):
        path = zigzag_path()
        original = [p.copy() for p in path]
        shortcut_smooth(path, empty_checker, iterations=100, seed=4)
        for a, b in zip(path, original):
            np.testing.assert_allclose(a, b)

    def test_two_waypoint_path_is_noop(self, empty_checker):
        path = [np.array([0.0, 0.0, 0.0]), np.array([10.0, 0.0, 0.0])]
        smoothed, cost = shortcut_smooth(path, empty_checker, iterations=10, seed=5)
        assert len(smoothed) == 2
        assert cost == pytest.approx(10.0)

    def test_rejects_short_path(self, empty_checker):
        with pytest.raises(ValueError):
            shortcut_smooth([np.zeros(3)], empty_checker)

    def test_rejects_negative_iterations(self, empty_checker):
        with pytest.raises(ValueError):
            shortcut_smooth(zigzag_path(), empty_checker, iterations=-1)

    def test_zero_iterations_is_identity(self, empty_checker):
        path = zigzag_path()
        smoothed, cost = shortcut_smooth(path, empty_checker, iterations=0)
        assert len(smoothed) == len(path)
        assert cost == pytest.approx(path_length(path))

    def test_counter_charges_collision_checks(self, empty_checker):
        from repro.core.counters import OpCounter

        counter = OpCounter()
        # No obstacles -> checker never records SAT ops; use the wall fixture
        # pattern inline to get real checks counted.
        robot = get_robot("mobile2d")
        wall = OBB(np.array([150.0, 20.0]), np.array([5.0, 10.0]), np.eye(2))
        checker = BruteOBBChecker(robot, Environment(2, 300.0, [wall]), motion_resolution=5.0)
        shortcut_smooth(zigzag_path(), checker, iterations=20, seed=6, counter=counter)
        assert counter.events.get("sat_obb_obb", 0) > 0

    def test_smooths_planner_output(self, empty_checker):
        """End-to-end: smoothing a real planner path reduces its cost."""
        from repro import MopedEngine, get_robot
        from repro.workloads import random_task

        task = random_task("mobile2d", 8, seed=6)
        robot = get_robot("mobile2d")
        checker = BruteOBBChecker(robot, task.environment, motion_resolution=3.0)
        result = MopedEngine(robot, task.environment, max_samples=400, seed=0,
                             goal_bias=0.1).plan_task(task)
        if result.success:
            smoothed, cost = shortcut_smooth(result.path, checker, iterations=150, seed=7)
            assert cost <= result.path_cost + 1e-9
            for a, b in zip(smoothed[:-1], smoothed[1:]):
                assert not checker.motion_in_collision(a, b)
