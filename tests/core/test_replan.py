"""Unit tests for the dynamic-environment replanning loop."""

import numpy as np
import pytest

from repro.core.config import moped_config
from repro.core.replan import ReplanningSession, environment_prep_macs
from repro.core.robots import get_robot
from repro.workloads.dynamic import random_dynamic_scenario
from repro.workloads.generator import random_environment


class TestPrepCosts:
    @pytest.fixture(scope="class")
    def env(self):
        return random_environment(3, 32, seed=0)

    def test_ordering_matches_section_vi(self, env):
        """R-tree rebuild << grid re-rasterisation << full precomputation."""
        rtree = environment_prep_macs(env, "rtree")
        grid = environment_prep_macs(env, "grid")
        precomputed = environment_prep_macs(env, "precomputed")
        assert rtree < grid / 100.0
        assert grid < precomputed / 100.0

    def test_rtree_prep_scales_gently(self):
        small = environment_prep_macs(random_environment(3, 8, seed=1), "rtree")
        large = environment_prep_macs(random_environment(3, 48, seed=1), "rtree")
        assert large < 20.0 * small  # ~n log n, not voxel-count

    def test_empty_environment(self):
        env = random_environment(3, 0, seed=2)
        assert environment_prep_macs(env, "rtree") == 0.0
        assert environment_prep_macs(env, "grid") == 0.0

    def test_unknown_method_rejected(self, env):
        with pytest.raises(KeyError):
            environment_prep_macs(env, "magic")


class TestReplanningSession:
    @pytest.fixture(scope="class")
    def outcome(self):
        scenario = random_dynamic_scenario(2, 10, seed=3, max_speed=8.0)
        robot = get_robot("mobile2d")
        session = ReplanningSession(
            robot,
            scenario,
            config=moped_config("v4", max_samples=200, goal_bias=0.2, seed=0),
            execute_distance=60.0,
        )
        return session.run(
            np.array([30.0, 30.0, 0.0]), np.array([270.0, 270.0, 0.0]), max_epochs=12
        )

    def test_reaches_goal(self, outcome):
        assert outcome.reached_goal

    def test_epochs_recorded(self, outcome):
        assert 1 <= len(outcome.epochs) <= 12
        for epoch in outcome.epochs:
            assert epoch.prep_macs > 0
            assert epoch.plan.iterations > 0

    def test_progress_is_monotone_toward_goal(self, outcome):
        goal = np.array([270.0, 270.0, 0.0])
        first = float(np.linalg.norm(outcome.epochs[0].executed_to - goal))
        last = float(np.linalg.norm(outcome.epochs[-1].executed_to - goal))
        assert last < first

    def test_totals(self, outcome):
        assert outcome.total_plan_macs > 0
        assert outcome.total_prep_macs == pytest.approx(
            sum(e.prep_macs for e in outcome.epochs)
        )
        # The Section VI point: per-epoch prep is negligible next to planning.
        assert outcome.total_prep_macs < 0.01 * outcome.total_plan_macs

    def test_validation(self):
        robot = get_robot("mobile2d")
        scenario = random_dynamic_scenario(2, 4, seed=4)
        with pytest.raises(ValueError):
            ReplanningSession(robot, scenario, epoch_duration=0.0)
        session = ReplanningSession(robot, scenario)
        with pytest.raises(ValueError):
            session.run(np.zeros(3), np.ones(3), max_epochs=0)
