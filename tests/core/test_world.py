"""Unit tests for environments and tasks."""

import numpy as np
import pytest

from repro.core.world import Environment, PlanningTask
from repro.geometry.obb import OBB
from repro.geometry.rotations import rotation_from_euler


def obb3(center, half=(5.0, 5.0, 5.0), yaw=0.3):
    return OBB(np.asarray(center, float), np.asarray(half, float), rotation_from_euler(yaw))


class TestEnvironment:
    def test_basic_construction(self):
        env = Environment(3, 300.0, [obb3([50, 50, 50])])
        assert env.num_obstacles == 1
        assert env.workspace_dim == 3

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            Environment(4, 300.0, [])

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            Environment(3, 0.0, [])

    def test_rejects_obstacle_dim_mismatch(self):
        with pytest.raises(ValueError):
            Environment(2, 300.0, [obb3([50, 50, 50])])

    def test_obstacle_aabbs_cover_obbs(self):
        env = Environment(3, 300.0, [obb3([50, 50, 50]), obb3([100, 100, 100], yaw=1.0)])
        for obb, aabb in zip(env.obstacles, env.obstacle_aabbs):
            for corner in obb.corners():
                assert aabb.contains_point(corner)

    def test_rtree_is_cached_and_valid(self):
        env = Environment(3, 300.0, [obb3([30 * i + 20, 50, 50]) for i in range(8)])
        tree1 = env.rtree
        tree2 = env.rtree
        assert tree1 is tree2
        tree1.validate()
        assert len(tree1) == 8

    def test_empty_environment(self):
        env = Environment(3, 300.0, [])
        assert env.obstacle_aabbs == []
        assert len(env.rtree) == 0

    def test_bounds(self):
        env = Environment(2, 100.0, [])
        bounds = env.bounds()
        np.testing.assert_allclose(bounds.lo, [0.0, 0.0])
        np.testing.assert_allclose(bounds.hi, [100.0, 100.0])


class TestPlanningTask:
    def test_construction(self):
        env = Environment(2, 300.0, [])
        task = PlanningTask("mobile2d", env, np.zeros(3), np.ones(3), task_id=7)
        assert task.task_id == 7
        np.testing.assert_allclose(task.goal, np.ones(3))

    def test_rejects_mismatched_start_goal(self):
        env = Environment(2, 300.0, [])
        with pytest.raises(ValueError):
            PlanningTask("mobile2d", env, np.zeros(3), np.ones(4))
