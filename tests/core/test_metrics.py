"""Unit tests for result dataclasses and path metrics."""

import numpy as np
import pytest

from repro.core.counters import OpCounter
from repro.core.metrics import PlanResult, RoundRecord, path_length


class TestPathLength:
    def test_empty_and_single(self):
        assert path_length([]) == 0.0
        assert path_length([np.zeros(3)]) == 0.0

    def test_straight_segments(self):
        path = [np.zeros(2), np.array([3.0, 4.0]), np.array([3.0, 8.0])]
        assert path_length(path) == pytest.approx(9.0)

    def test_high_dim(self):
        path = [np.zeros(7), np.ones(7)]
        assert path_length(path) == pytest.approx(np.sqrt(7.0))


class TestRoundRecord:
    def test_total(self):
        record = RoundRecord(1.0, 2.0, 3.0, 4.0, accepted=True)
        assert record.total_macs == pytest.approx(10.0)

    def test_defaults(self):
        record = RoundRecord(0.0, 0.0, 0.0, 0.0, accepted=False)
        assert record.missing_used == 0
        assert not record.repaired

    def test_frozen(self):
        record = RoundRecord(1.0, 2.0, 3.0, 4.0, accepted=True)
        with pytest.raises(AttributeError):
            record.ns_macs = 9.0


class TestPlanResult:
    def make(self, success=True):
        counter = OpCounter()
        counter.record("dist", dim=3, n=10)
        return PlanResult(
            success=success,
            path=[np.zeros(3), np.ones(3)] if success else [],
            path_cost=np.sqrt(3.0) if success else float("inf"),
            num_nodes=5,
            iterations=20,
            counter=counter,
        )

    def test_total_macs_delegates_to_counter(self):
        result = self.make()
        assert result.total_macs == result.counter.total_macs()

    def test_summary_success(self):
        text = self.make().summary()
        assert "success" in text
        assert "nodes=5" in text

    def test_summary_failure(self):
        text = self.make(success=False).summary()
        assert "failure" in text

    def test_neighborhood_macs_default(self):
        assert self.make().neighborhood_macs == 0.0
