"""Unit tests for informed sampling (the Informed-RRT\\* extension)."""

import numpy as np
import pytest

from repro.core.informed import InformedSampler, rotation_to_world_frame
from repro.core.rng import NumpySampler
from repro.geometry.rotations import is_rotation_matrix


def make_sampler(dim=3, span=100.0, seed=0):
    base = NumpySampler(np.zeros(dim), np.full(dim, span), seed=seed)
    start = np.full(dim, 20.0)
    goal = np.full(dim, 80.0)
    return InformedSampler(base, start, goal, seed=seed), start, goal


class TestRotationToWorldFrame:
    def test_is_rotation(self):
        rng = np.random.default_rng(0)
        for dim in (2, 3, 5, 7):
            start, goal = rng.uniform(0, 10, dim), rng.uniform(0, 10, dim)
            c = rotation_to_world_frame(start, goal)
            np.testing.assert_allclose(c @ c.T, np.eye(dim), atol=1e-9)
            assert np.linalg.det(c) == pytest.approx(1.0)

    def test_maps_x_axis_to_heading(self):
        start = np.array([0.0, 0.0, 0.0])
        goal = np.array([10.0, 0.0, 0.0])
        c = rotation_to_world_frame(start, goal)
        np.testing.assert_allclose(c @ np.array([1.0, 0.0, 0.0]), [1.0, 0.0, 0.0], atol=1e-9)

    def test_general_heading(self):
        rng = np.random.default_rng(1)
        start, goal = rng.uniform(0, 10, 4), rng.uniform(0, 10, 4)
        c = rotation_to_world_frame(start, goal)
        heading = (goal - start) / np.linalg.norm(goal - start)
        e1 = np.zeros(4)
        e1[0] = 1.0
        np.testing.assert_allclose(c @ e1, heading, atol=1e-9)

    def test_degenerate_identical_foci(self):
        c = rotation_to_world_frame(np.zeros(3), np.zeros(3))
        np.testing.assert_allclose(c, np.eye(3))


class TestInformedSampler:
    def test_delegates_before_solution(self):
        sampler, _, _ = make_sampler()
        draws = [sampler.sample() for _ in range(50)]
        assert sampler.informed_draws == 0
        for draw in draws:
            assert np.all(draw >= sampler.lo) and np.all(draw <= sampler.hi)

    def test_informed_draws_inside_ellipsoid(self):
        sampler, start, goal = make_sampler()
        c_best = 1.5 * sampler.c_min
        sampler.update_best_cost(c_best)
        for _ in range(200):
            point = sampler.sample()
            # Ellipsoid membership: |x - f1| + |x - f2| <= c_best.
            total = np.linalg.norm(point - start) + np.linalg.norm(point - goal)
            assert total <= c_best + 1e-6

    def test_informed_draws_respect_bounds(self):
        sampler, _, _ = make_sampler(span=60.0)  # tight box clips the ellipsoid
        sampler.update_best_cost(3.0 * sampler.c_min)
        for _ in range(200):
            point = sampler.sample()
            assert np.all(point >= sampler.lo - 1e-9)
            assert np.all(point <= sampler.hi + 1e-9)

    def test_best_cost_only_shrinks(self):
        sampler, _, _ = make_sampler()
        sampler.update_best_cost(200.0)
        sampler.update_best_cost(500.0)  # worse: ignored
        assert sampler.best_cost == 200.0
        sampler.update_best_cost(150.0)
        assert sampler.best_cost == 150.0

    def test_shrinking_cost_concentrates_samples(self):
        sampler, start, goal = make_sampler(seed=3)
        sampler.update_best_cost(2.0 * sampler.c_min)
        wide = np.array([sampler.sample() for _ in range(300)])
        sampler.update_best_cost(1.05 * sampler.c_min)
        narrow = np.array([sampler.sample() for _ in range(300)])
        axis = (goal - start) / np.linalg.norm(goal - start)
        # Perpendicular spread must shrink with the ellipsoid.
        def perp_spread(points):
            rel = points - (start + goal) / 2.0
            parallel = rel @ axis
            perp = rel - np.outer(parallel, axis)
            return np.linalg.norm(perp, axis=1).mean()
        assert perp_spread(narrow) < 0.5 * perp_spread(wide)

    def test_sample_biased_returns_goal(self):
        sampler, _, goal = make_sampler(seed=4)
        sampler.update_best_cost(1.5 * sampler.c_min)
        hits = sum(
            np.allclose(sampler.sample_biased(goal, 0.9), goal) for _ in range(100)
        )
        assert hits > 60

    def test_counter_records_samples(self):
        from repro.core.counters import OpCounter

        sampler, _, _ = make_sampler(seed=5)
        sampler.update_best_cost(1.5 * sampler.c_min)
        counter = OpCounter()
        for _ in range(10):
            sampler.sample(counter=counter)
        assert counter.events["sample"] == 10


class TestPlannerIntegration:
    def test_informed_planner_succeeds(self):
        from repro import MopedEngine, get_robot
        from repro.workloads import random_task

        task = random_task("mobile2d", 8, seed=2)
        robot = get_robot("mobile2d")
        engine = MopedEngine(robot, task.environment, variant="full",
                             max_samples=400, seed=0, goal_bias=0.1, informed=True)
        result = engine.plan_task(task)
        assert result.success

    def test_informed_never_worse_much(self):
        """Informed sampling must not degrade the solution."""
        from repro import MopedEngine, get_robot
        from repro.workloads import random_task

        task = random_task("mobile2d", 8, seed=3)
        robot = get_robot("mobile2d")
        costs = {}
        for informed in (False, True):
            engine = MopedEngine(robot, task.environment, variant="full",
                                 max_samples=500, seed=1, goal_bias=0.1,
                                 informed=informed)
            costs[informed] = engine.plan_task(task).path_cost
        assert costs[True] <= 1.1 * costs[False]
