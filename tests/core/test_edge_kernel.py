"""Whole-edge validation: bit-identity against the scalar reference.

Property tests (Hypothesis) that :meth:`motion_results_batch` — the stacked
whole-edge kernel path with its conservative AABB broadphase — returns, for
every checker variant, exactly the verdict, the first-colliding ladder
index, and the per-phase OpCounter totals of the scalar reference's
start-side early-exit walk; plus planner-level wave/scalar bit-equality at
W in {1, 4, 16} and mask-equality of the broadphased kernels against the
full grids they replace.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.collision import make_checker
from repro.core.config import PlannerConfig
from repro.core.counters import OpCounter
from repro.core.robots import get_robot
from repro.core.rrtstar import plan
from repro.geometry.motion import interpolate_configs, interpolate_edges
from repro.kernels import batch as kernels_batch
from repro.kernels.tensors import BodyBatch
from repro.workloads.generator import random_task

CHECKER_NAMES = ("obb", "aabb", "two_stage", "grid")

ROBOT = get_robot("mobile2d")
ENV = random_task("mobile2d", 12, seed=3).environment
RESOLUTION = ROBOT.step_size / 4.0


def _checker(name, **kwargs):
    return make_checker(name, ROBOT, ENV, RESOLUTION, **kwargs)


def _scalar_reference(golden, start, end):
    """The golden semantics: per-config walk from the start side.

    Returns (verdict, captured counter, first-colliding ladder index or
    None) using the reference backend's scalar single-config check.
    """
    configs = interpolate_configs(start, end, golden.motion_resolution)
    captured = OpCounter()
    for i, config in enumerate(configs):
        if golden._config_scalar(config, captured):
            return True, captured, i
    return False, captured, None


@st.composite
def edge_batches(draw):
    """1-5 short random movements inside the robot's configuration bounds."""
    n = draw(st.integers(1, 5))
    dof = ROBOT.dof
    unit = st.floats(0.0, 1.0, allow_nan=False)
    lo, hi = ROBOT.config_lo, ROBOT.config_hi
    u = np.array([[draw(unit) for _ in range(dof)] for _ in range(n)])
    v = np.array([[draw(unit) for _ in range(dof)] for _ in range(n)])
    lengths = np.array([draw(st.floats(0.0, 2.0)) for _ in range(n)])
    starts = lo + u * (hi - lo)
    deltas = (v - 0.5) * 2.0
    norms = np.linalg.norm(deltas, axis=1, keepdims=True)
    deltas = np.where(norms > 1e-9, deltas / np.maximum(norms, 1e-9), 1.0)
    ends = np.clip(
        starts + deltas * lengths[:, None] * ROBOT.step_size, lo, hi
    )
    return starts, ends


class TestWholeEdgeBitIdentity:
    @pytest.mark.parametrize("name", CHECKER_NAMES)
    @settings(max_examples=25, deadline=None)
    @given(batch=edge_batches())
    def test_matches_scalar_reference(self, name, batch):
        """Whole-edge verdicts and counters equal the golden scalar walk."""
        starts, ends = batch
        checker = _checker(name)
        golden = _checker(name, kernels="reference")
        results = checker.motion_results_batch(starts, ends)
        assert len(results) == len(starts)
        for e, (verdict, events) in enumerate(results):
            gold_verdict, gold_events, _ = _scalar_reference(
                golden, starts[e], ends[e]
            )
            assert verdict == gold_verdict
            assert events.to_dict() == gold_events.to_dict()

    @pytest.mark.parametrize("name", CHECKER_NAMES)
    @settings(max_examples=15, deadline=None)
    @given(batch=edge_batches())
    def test_first_colliding_index_matches(self, name, batch):
        """The per-config path agrees on *which* waypoint collides first."""
        starts, ends = batch
        checker = _checker(name)
        golden = _checker(name, kernels="reference")
        for e in range(len(starts)):
            _, _, gold_first = _scalar_reference(golden, starts[e], ends[e])
            configs = interpolate_configs(starts[e], ends[e], RESOLUTION)
            verdicts, _ = checker.config_results(configs)
            hits = [i for i, v in enumerate(verdicts) if v]
            first = hits[0] if hits else None
            assert first == gold_first

    @pytest.mark.parametrize("name", CHECKER_NAMES)
    @settings(max_examples=15, deadline=None)
    @given(batch=edge_batches())
    def test_edge_cache_replay_is_identical(self, name, batch):
        """A cache hit replays the stored result bit-for-bit."""
        starts, ends = batch
        cached = _checker(name, edge_cache_size=64)
        cold = cached.motion_results_batch(starts, ends)
        warm = cached.motion_results_batch(starts, ends)
        for (v1, e1), (v2, e2) in zip(cold, warm):
            assert v1 == v2
            assert e1.to_dict() == e2.to_dict()
        assert cached.edge_cache.stats()["hits"] >= len(starts)


class TestWavePlannerBitIdentity:
    @pytest.mark.parametrize("name", CHECKER_NAMES)
    @pytest.mark.parametrize("width", [1, 4, 16])
    def test_wave_equals_scalar_speculation(self, name, width):
        """plan(wave_width=W) is bit-identical to plan(speculation_depth=W).

        wave_width = 1 degenerates to the plain scalar loop (depth 0).
        """
        depth = width if width > 1 else 0
        task = random_task("mobile2d", 10, seed=6)
        robot = get_robot("mobile2d")
        scalar = plan(robot, task, PlannerConfig(
            checker=name, max_samples=150, seed=5, speculation_depth=depth,
        ))
        wave = plan(robot, task, PlannerConfig(
            checker=name, max_samples=150, seed=5, wave_width=width,
        ))
        assert len(scalar.path) == len(wave.path)
        for a, b in zip(scalar.path, wave.path):
            assert np.array_equal(a, b)
        assert scalar.path_cost == wave.path_cost
        assert scalar.counter.to_dict() == wave.counter.to_dict()


class TestBroadphaseMaskEquality:
    """The AABB broadphase must reproduce the full grids bit-for-bit."""

    def _bodies(self, seed=0, edges=6):
        rng = np.random.default_rng(seed)
        lo, hi = ROBOT.config_lo, ROBOT.config_hi
        starts = rng.uniform(lo, hi, size=(edges, ROBOT.dof))
        ends = np.clip(
            starts + rng.normal(size=(edges, ROBOT.dof)) * ROBOT.step_size,
            lo, hi,
        )
        configs, offsets = interpolate_edges(starts, ends, RESOLUTION)
        bodies = BodyBatch.from_frames(*ROBOT.body_frames_batch(configs))
        bpc = bodies.rows // int(offsets[-1])
        return bodies, np.asarray(offsets, dtype=np.intp) * bpc

    def test_edge_obb_obb_grid_equals_full_grid(self):
        obs = ENV.obstacle_tensors
        bodies, row_offsets = self._bodies()
        lo, hi = bodies.aabb_corners()
        hits, visited = kernels_batch.edge_obb_obb_grid(
            bodies.centers, bodies.half_extents, bodies.rotations, lo, hi,
            obs.centers, obs.half_extents, obs.rotations,
            obs.aabb_lo, obs.aabb_hi, row_offsets,
        )
        full = kernels_batch.obb_obb_grid(
            bodies.centers, bodies.half_extents, bodies.rotations,
            obs.centers, obs.half_extents, obs.rotations,
        )
        ref_hits, ref_visited = kernels_batch.segment_first_hit(
            full, row_offsets * full.shape[1]
        )
        assert np.array_equal(hits, ref_hits)
        assert np.array_equal(visited, ref_visited)

    def test_edge_aabb_obb_grid_equals_full_grid(self):
        obs = ENV.obstacle_tensors
        bodies, row_offsets = self._bodies(seed=1)
        lo, hi = bodies.aabb_corners()
        hits, visited = kernels_batch.edge_aabb_obb_grid(
            obs.aabb_lo, obs.aabb_hi,
            bodies.centers, bodies.half_extents, bodies.rotations,
            lo, hi, row_offsets,
        )
        full = kernels_batch.aabb_obb_grid(
            obs.aabb_lo, obs.aabb_hi,
            bodies.centers, bodies.half_extents, bodies.rotations,
        )
        ref_hits, ref_visited = kernels_batch.segment_first_hit(
            full, row_offsets * full.shape[1]
        )
        assert np.array_equal(hits, ref_hits)
        assert np.array_equal(visited, ref_visited)

    def test_masked_aabb_obb_grid_matches_under_prefilter(self):
        """Wherever the prefilter passes, the masked grid equals the full
        grid; everywhere else it is False — exactly what the two-stage
        funnel consumes (always conjoined with the AABB mask)."""
        ftree = ENV.flat_rtree
        bodies, _ = self._bodies(seed=2)
        lo, hi = bodies.aabb_corners()
        prefilter = kernels_batch.aabb_aabb_grid(
            lo, hi, ftree.unit_lo, ftree.unit_hi
        )
        masked = kernels_batch.masked_aabb_obb_grid(
            ftree.unit_lo, ftree.unit_hi,
            bodies.centers, bodies.half_extents, bodies.rotations,
            prefilter,
        )
        full = kernels_batch.aabb_obb_grid(
            ftree.unit_lo, ftree.unit_hi,
            bodies.centers, bodies.half_extents, bodies.rotations,
        )
        assert np.array_equal(masked & prefilter, full & prefilter)
        assert not (masked & ~prefilter).any()
