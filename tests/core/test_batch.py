"""Unit tests for the batch (spatially parallel) RRT\\* planner."""

import numpy as np
import pytest

from repro.core.batch import BatchRRTStarPlanner, multilane_latency_cycles
from repro.core.config import moped_config
from repro.core.collision import BruteOBBChecker
from repro.core.robots import get_robot
from repro.core.rrtstar import RRTStarPlanner
from repro.workloads import random_task


@pytest.fixture(scope="module")
def task2d():
    return random_task("mobile2d", 12, seed=6)


def batch_plan(task, batch_size=4, **overrides):
    robot = get_robot(task.robot_name)
    config = moped_config("v4", max_samples=300, seed=0, goal_bias=0.15, **overrides)
    return BatchRRTStarPlanner(robot, task, config, batch_size=batch_size).plan()


class TestBatchPlanner:
    def test_rejects_bad_batch_size(self, task2d):
        robot = get_robot("mobile2d")
        with pytest.raises(ValueError):
            BatchRRTStarPlanner(robot, task2d, moped_config("v4"), batch_size=0)

    def test_solves_task(self, task2d):
        result = batch_plan(task2d)
        assert result.success

    def test_sampling_budget_respected(self, task2d):
        result = batch_plan(task2d, batch_size=7)
        assert result.counter.events["sample"] <= 300 + 1

    def test_rounds_are_batched(self, task2d):
        result = batch_plan(task2d, batch_size=4)
        # 300 samples in batches of 4 -> 75 rounds.
        assert result.iterations == 75

    def test_batch_one_equals_sequential_structure(self, task2d):
        """batch_size=1 must behave like the plain planner (same seed)."""
        robot = get_robot("mobile2d")
        config = moped_config("v4", max_samples=200, seed=3, goal_bias=0.15)
        batched = BatchRRTStarPlanner(robot, task2d, config, batch_size=1).plan()
        plain = RRTStarPlanner(robot, task2d, config).plan()
        assert batched.num_nodes == plain.num_nodes
        assert batched.path_cost == pytest.approx(plain.path_cost)

    def test_path_collision_free(self, task2d):
        result = batch_plan(task2d)
        robot = get_robot("mobile2d")
        checker = BruteOBBChecker(robot, task2d.environment, motion_resolution=1.5)
        for a, b in zip(result.path[:-1], result.path[1:]):
            assert not checker.motion_in_collision(a, b)

    def test_tree_valid(self, task2d):
        robot = get_robot("mobile2d")
        config = moped_config("v4", max_samples=200, seed=1, goal_bias=0.15)
        planner = BatchRRTStarPlanner(robot, task2d, config, batch_size=6)
        planner.plan()
        planner.tree.validate()

    def test_quality_comparable_to_sequential(self, task2d):
        """Stale reads cost little path quality."""
        robot = get_robot("mobile2d")
        seq_costs, batch_costs = [], []
        for seed in range(3):
            config = moped_config("v4", max_samples=300, seed=seed, goal_bias=0.15)
            seq = RRTStarPlanner(robot, task2d, config).plan()
            bat = BatchRRTStarPlanner(robot, task2d, config, batch_size=4).plan()
            if seq.success and bat.success:
                seq_costs.append(seq.path_cost)
                batch_costs.append(bat.path_cost)
        assert seq_costs, "sequential planner never succeeded"
        assert np.mean(batch_costs) <= 1.3 * np.mean(seq_costs)


class TestMultilaneLatency:
    @pytest.fixture(scope="class")
    def rounds(self, task2d):
        return batch_plan(task2d, batch_size=4).rounds

    def test_rejects_bad_lanes(self, rounds):
        with pytest.raises(ValueError):
            multilane_latency_cycles(rounds, lanes=0)

    def test_more_lanes_is_faster(self, rounds):
        one = multilane_latency_cycles(rounds, lanes=1)
        four = multilane_latency_cycles(rounds, lanes=4)
        assert four.snr_cycles < one.snr_cycles

    def test_snr_composes_with_lanes(self, rounds):
        """Temporal (S&R) and spatial (lanes) parallelism stack."""
        lanes_only = multilane_latency_cycles(rounds, lanes=4, use_snr=False)
        both = multilane_latency_cycles(rounds, lanes=4, use_snr=True)
        assert both.snr_cycles < lanes_only.snr_cycles

    def test_scaling_is_sublinear_but_real(self, rounds):
        one = multilane_latency_cycles(rounds, lanes=1).snr_cycles
        eight = multilane_latency_cycles(rounds, lanes=8).snr_cycles
        speedup = one / eight
        assert 2.0 < speedup <= 8.0 + 1e-9
