"""Unit and property tests for the EXP-tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tree import ExpTree


def build_chain(n=5):
    """Root -> 1 -> 2 -> ... -> n-1, unit edges along x."""
    tree = ExpTree(np.zeros(2))
    for i in range(1, n):
        tree.add(np.array([float(i), 0.0]), parent_id=i - 1, edge_cost=1.0)
    return tree


class TestBasics:
    def test_root_only(self):
        tree = ExpTree(np.array([1.0, 2.0]))
        assert len(tree) == 1
        assert tree.cost(0) == 0.0
        assert tree.parent(0) is None
        np.testing.assert_allclose(tree.point(0), [1.0, 2.0])

    def test_add_accumulates_cost(self):
        tree = build_chain(4)
        assert tree.cost(3) == pytest.approx(3.0)
        assert tree.parent(3) == 2

    def test_add_rejects_bad_parent(self):
        tree = ExpTree(np.zeros(2))
        with pytest.raises(IndexError):
            tree.add(np.ones(2), parent_id=5, edge_cost=1.0)

    def test_add_rejects_negative_cost(self):
        tree = ExpTree(np.zeros(2))
        with pytest.raises(ValueError):
            tree.add(np.ones(2), parent_id=0, edge_cost=-1.0)

    def test_add_rejects_wrong_dim(self):
        tree = ExpTree(np.zeros(2))
        with pytest.raises(ValueError):
            tree.add(np.ones(3), parent_id=0, edge_cost=1.0)

    def test_children_tracking(self):
        tree = ExpTree(np.zeros(2))
        a = tree.add(np.array([1.0, 0.0]), 0, 1.0)
        b = tree.add(np.array([0.0, 1.0]), 0, 1.0)
        assert tree.children(0) == {a, b}
        assert tree.children(a) == set()

    def test_depth(self):
        tree = build_chain(5)
        assert tree.depth(0) == 0
        assert tree.depth(4) == 4

    def test_path_to(self):
        tree = build_chain(4)
        path = tree.path_to(3)
        assert len(path) == 4
        np.testing.assert_allclose(path[0], [0.0, 0.0])
        np.testing.assert_allclose(path[-1], [3.0, 0.0])


class TestRewire:
    def test_rewire_reduces_cost(self):
        # Root, A far from root, B close to both; rewiring A under B helps.
        tree = ExpTree(np.zeros(2))
        a = tree.add(np.array([3.0, 4.0]), 0, 5.0)  # cost 5
        b = tree.add(np.array([3.0, 0.0]), 0, 3.0)  # cost 3
        tree.rewire(a, b, 4.0)  # new cost 7? no: use a cheaper edge
        assert tree.parent(a) == b
        assert tree.cost(a) == pytest.approx(7.0)

    def test_rewire_propagates_to_descendants(self):
        tree = ExpTree(np.zeros(1))
        a = tree.add(np.array([10.0]), 0, 10.0)
        c = tree.add(np.array([11.0]), a, 1.0)  # cost 11
        b = tree.add(np.array([5.0]), 0, 5.0)
        tree.rewire(a, b, 2.0)  # a cost 7
        assert tree.cost(a) == pytest.approx(7.0)
        assert tree.cost(c) == pytest.approx(8.0)

    def test_rewire_root_rejected(self):
        tree = build_chain(3)
        with pytest.raises(ValueError):
            tree.rewire(0, 1, 1.0)

    def test_rewire_cycle_rejected(self):
        tree = build_chain(4)
        with pytest.raises(ValueError):
            tree.rewire(1, 3, 1.0)  # 3 is a descendant of 1

    def test_rewire_self_rejected(self):
        tree = build_chain(3)
        with pytest.raises(ValueError):
            tree.rewire(1, 1, 1.0)

    def test_rewire_negative_cost_rejected(self):
        tree = build_chain(3)
        with pytest.raises(ValueError):
            tree.rewire(2, 0, -1.0)

    def test_old_parent_loses_child(self):
        tree = ExpTree(np.zeros(1))
        a = tree.add(np.array([1.0]), 0, 1.0)
        b = tree.add(np.array([2.0]), a, 1.0)
        c = tree.add(np.array([3.0]), 0, 3.0)
        tree.rewire(b, c, 1.0)
        assert b not in tree.children(a)
        assert b in tree.children(c)


class TestValidate:
    def test_consistent_tree_passes(self):
        tree = ExpTree(np.zeros(2))
        rng = np.random.default_rng(0)
        for i in range(50):
            parent = int(rng.integers(0, len(tree)))
            point = tree.point(parent) + rng.normal(scale=1.0, size=2)
            edge = float(np.linalg.norm(point - tree.point(parent)))
            tree.add(point, parent, edge)
        tree.validate()

    def test_validate_after_rewires(self):
        rng = np.random.default_rng(1)
        tree = ExpTree(np.zeros(2))
        for i in range(30):
            parent = int(rng.integers(0, len(tree)))
            point = tree.point(parent) + rng.normal(scale=1.0, size=2)
            tree.add(point, parent, float(np.linalg.norm(point - tree.point(parent))))
        # Random legal rewires with geometric edge costs.
        for _ in range(20):
            node = int(rng.integers(1, len(tree)))
            target = int(rng.integers(0, len(tree)))
            if node == target:
                continue
            try:
                edge = float(np.linalg.norm(tree.point(node) - tree.point(target)))
                tree.rewire(node, target, edge)
            except ValueError:
                continue
        tree.validate()


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1), st.integers(min_value=2, max_value=60))
def test_tree_invariants_hold_under_random_ops(seed, n_ops):
    """Property: random adds + legal rewires keep the tree valid."""
    rng = np.random.default_rng(seed)
    tree = ExpTree(np.zeros(3))
    for _ in range(n_ops):
        if len(tree) > 2 and rng.random() < 0.3:
            node = int(rng.integers(1, len(tree)))
            target = int(rng.integers(0, len(tree)))
            edge = float(np.linalg.norm(tree.point(node) - tree.point(target)))
            try:
                tree.rewire(node, target, edge)
            except ValueError:
                pass  # cycle attempts are expected and rejected
        else:
            parent = int(rng.integers(0, len(tree)))
            point = tree.point(parent) + rng.normal(scale=1.0, size=3)
            edge = float(np.linalg.norm(point - tree.point(parent)))
            tree.add(point, parent, edge)
    tree.validate()


class TestSoAStore:
    """The structure-of-arrays node store behind the public accessors."""

    def build(self, n=200, dim=4, seed=8):
        rng = np.random.default_rng(seed)
        tree = ExpTree(np.zeros(dim))
        for _ in range(n):
            parent = int(rng.integers(0, len(tree)))
            point = tree.point(parent) + rng.normal(scale=0.5, size=dim)
            tree.add(point, parent, float(np.linalg.norm(point - tree.point(parent))))
        return tree

    def test_points_view_matches_point_accessor(self):
        tree = self.build()
        view = tree.points_view()
        assert view.shape == (len(tree), tree.dim)
        for node in tree.nodes():
            assert np.array_equal(view[node], tree.point(node))

    def test_costs_view_matches_cost_accessor(self):
        tree = self.build()
        costs = tree.costs_view()
        assert costs.shape == (len(tree),)
        for node in tree.nodes():
            assert tree.cost(node) == costs[node]

    def test_growth_beyond_initial_capacity_preserves_data(self):
        tree = self.build(n=500, dim=2)
        assert len(tree) == 501
        tree.validate()

    def test_point_out_of_range_raises(self):
        tree = ExpTree(np.zeros(2))
        with pytest.raises(IndexError):
            tree.point(5)

    def test_views_are_not_stale_after_growth(self):
        """Views taken before a reallocation still hold correct values."""
        tree = ExpTree(np.zeros(2))
        early = tree.point(0)
        for i in range(300):
            tree.add(np.array([float(i + 1), 0.0]), i, 1.0)
        assert np.array_equal(early, np.zeros(2))
        assert np.array_equal(tree.point(300), [300.0, 0.0])
        assert tree.cost(300) == 300.0

    def test_cost_returns_python_float(self):
        tree = ExpTree(np.zeros(2))
        node = tree.add(np.ones(2), 0, float(np.sqrt(2.0)))
        assert type(tree.cost(node)) is float

    def test_vectorized_goal_scan_matches_scalar(self):
        """points_view/costs_view support one-shot distance reductions."""
        tree = self.build(n=120, dim=3)
        goal = np.array([0.5, -0.2, 1.0])
        diffs = tree.points_view() - goal
        totals = tree.costs_view() + np.sqrt(np.einsum("nd,nd->n", diffs, diffs))
        scalar = [
            tree.cost(n) + float(np.linalg.norm(tree.point(n) - goal))
            for n in tree.nodes()
        ]
        np.testing.assert_allclose(totals, scalar, rtol=1e-12)
