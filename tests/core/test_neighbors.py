"""Unit tests for the neighbor-search strategies."""

import numpy as np
import pytest

from repro.core.counters import OpCounter
from repro.core.neighbors import (
    BruteStrategy,
    KDTreeStrategy,
    SIMBRStrategy,
    make_strategy,
)


def grow(strategy, rng, n=80, dim=3, steered=True):
    points = {0: rng.uniform(0, 10, dim)}
    strategy.insert(0, points[0])
    for i in range(1, n):
        if steered:
            parent = int(rng.integers(0, i))
            p = points[parent] + rng.normal(scale=0.5, size=dim)
            strategy.insert(i, p, nearest_key=parent)
        else:
            p = rng.uniform(0, 10, dim)
            strategy.insert(i, p)
        points[i] = p
    return points


class TestFactory:
    def test_known_names(self):
        for name in ("brute", "kd", "simbr"):
            assert make_strategy(name, dim=3) is not None

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_strategy("octree", dim=3)

    def test_kd_rebuild_param(self):
        strategy = make_strategy("kd", dim=2, kd_rebuild_every=10)
        assert isinstance(strategy, KDTreeStrategy)

    def test_invalid_rebuild_interval(self):
        with pytest.raises(ValueError):
            KDTreeStrategy(dim=2, rebuild_every=0)


@pytest.mark.parametrize(
    "factory",
    [
        lambda: BruteStrategy(dim=3),
        lambda: KDTreeStrategy(dim=3),
        lambda: KDTreeStrategy(dim=3, rebuild_every=25),
        lambda: SIMBRStrategy(dim=3, steering_insert=False, approx_neighborhood=False),
        lambda: SIMBRStrategy(dim=3, steering_insert=True, approx_neighborhood=False),
    ],
    ids=["brute", "kd", "kd-rebuild", "simbr-conv", "simbr-steer"],
)
class TestExactStrategies:
    def test_nearest_matches_brute(self, factory):
        rng = np.random.default_rng(0)
        strategy = factory()
        points = grow(strategy, rng)
        for _ in range(15):
            q = rng.uniform(0, 10, 3)
            key, point, dist = strategy.nearest(q)
            want = min(np.linalg.norm(p - q) for p in points.values())
            assert dist == pytest.approx(want)

    def test_neighborhood_is_exact_radius(self, factory):
        rng = np.random.default_rng(1)
        strategy = factory()
        points = grow(strategy, rng)
        q = rng.uniform(0, 10, 3)
        got = {k for k, _, _ in strategy.neighborhood(q, 2.0, nearest_key=None)}
        want = {k for k, p in points.items() if np.linalg.norm(p - q) <= 2.0}
        assert got == want

    def test_len_tracks_inserts(self, factory):
        rng = np.random.default_rng(2)
        strategy = factory()
        grow(strategy, rng, n=37)
        assert len(strategy) == 37


class TestApproxNeighborhood:
    def test_returns_leaf_population_of_nearest(self):
        rng = np.random.default_rng(3)
        strategy = SIMBRStrategy(dim=3, steering_insert=True, approx_neighborhood=True)
        points = grow(strategy, rng, n=100)
        nearest_key = 42
        q = points[nearest_key] + 0.1
        got = strategy.neighborhood(q, radius=1e9, nearest_key=nearest_key)
        keys = {k for k, _, _ in got}
        expected = {k for k, _ in strategy.tree.leaf_siblings(nearest_key)}
        assert keys == expected

    def test_radius_filters_leaf_population(self):
        """Siblings beyond the RRT* radius are excluded from SIAS results."""
        rng = np.random.default_rng(12)
        strategy = SIMBRStrategy(dim=3, steering_insert=True, approx_neighborhood=True)
        points = grow(strategy, rng, n=100)
        nearest_key = 42
        q = points[nearest_key] + 0.1
        radius = 0.5
        got = strategy.neighborhood(q, radius=radius, nearest_key=nearest_key)
        for key, point, dist in got:
            assert dist <= radius
        all_sibs = strategy.neighborhood(q, radius=1e9, nearest_key=nearest_key)
        assert len(got) <= len(all_sibs)

    def test_distances_are_to_query(self):
        rng = np.random.default_rng(4)
        strategy = SIMBRStrategy(dim=2, steering_insert=True, approx_neighborhood=True)
        points = grow(strategy, rng, n=50, dim=2)
        q = np.array([5.0, 5.0])
        for key, point, dist in strategy.neighborhood(q, 3.0, nearest_key=10):
            assert dist == pytest.approx(float(np.linalg.norm(point - q)))

    def test_falls_back_to_exact_without_nearest_key(self):
        rng = np.random.default_rng(5)
        strategy = SIMBRStrategy(dim=2, approx_neighborhood=True)
        points = grow(strategy, rng, n=60, dim=2)
        q = rng.uniform(0, 10, 2)
        got = {k for k, _, _ in strategy.neighborhood(q, 2.0, nearest_key=None)}
        want = {k for k, p in points.items() if np.linalg.norm(p - q) <= 2.0}
        assert got == want

    def test_approx_is_cheaper_than_exact(self):
        rng = np.random.default_rng(6)
        exact = SIMBRStrategy(dim=3, steering_insert=True, approx_neighborhood=False)
        approx = SIMBRStrategy(dim=3, steering_insert=True, approx_neighborhood=True)
        pts_e = grow(exact, rng, n=300)
        rng = np.random.default_rng(6)
        pts_a = grow(approx, rng, n=300)
        c_exact, c_approx = OpCounter(), OpCounter()
        for key in range(0, 300, 10):
            q = pts_e[key] + 0.05
            exact.neighborhood(q, 3.0, nearest_key=key, counter=c_exact)
            approx.neighborhood(q, 3.0, nearest_key=key, counter=c_approx)
        assert c_approx.total_macs() < 0.5 * c_exact.total_macs()


class TestSteeringInsertCost:
    def test_steering_insert_cheaper_than_conventional(self):
        rng_a, rng_b = np.random.default_rng(7), np.random.default_rng(7)
        conv = SIMBRStrategy(dim=5, steering_insert=False, approx_neighborhood=False)
        steer = SIMBRStrategy(dim=5, steering_insert=True, approx_neighborhood=False)
        c_conv, c_steer = OpCounter(), OpCounter()
        points = {0: rng_a.uniform(0, 10, 5)}
        conv.insert(0, points[0], counter=c_conv)
        steer.insert(0, points[0], counter=c_steer)
        for i in range(1, 250):
            parent = int(rng_a.integers(0, i))
            p = points[parent] + rng_a.normal(scale=0.4, size=5)
            conv.insert(i, p, nearest_key=parent, counter=c_conv)
            steer.insert(i, p, nearest_key=parent, counter=c_steer)
            points[i] = p
        # The conventional descent pays per-level enlargement calcs.
        assert c_conv.events.get("enlargement", 0) > 0
        assert c_steer.events.get("enlargement", 0) == 0
        assert c_steer.total_macs() < c_conv.total_macs()

    def test_kd_rebuild_charges_ops(self):
        strategy = KDTreeStrategy(dim=2, rebuild_every=10)
        counter = OpCounter()
        rng = np.random.default_rng(8)
        for i in range(25):
            strategy.insert(i, rng.uniform(0, 1, 2), counter=counter)
        assert counter.events.get("rebuild_item", 0) > 0
