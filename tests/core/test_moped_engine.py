"""Unit tests for the MopedEngine facade."""

import numpy as np
import pytest

from repro.core import MopedEngine, get_robot
from repro.core.moped import VARIANTS, config_for_variant
from repro.workloads import random_environment, random_task


@pytest.fixture(scope="module")
def env2d():
    return random_environment(2, 8, seed=0)


class TestConstruction:
    def test_accepts_robot_by_name(self, env2d):
        engine = MopedEngine("mobile2d", env2d)
        assert engine.robot.name == "mobile2d"

    def test_accepts_robot_model(self, env2d):
        engine = MopedEngine(get_robot("mobile2d"), env2d)
        assert engine.robot.name == "mobile2d"

    def test_rejects_unknown_variant(self, env2d):
        with pytest.raises(ValueError):
            MopedEngine("mobile2d", env2d, variant="v9")

    def test_all_variants_construct(self, env2d):
        for variant in VARIANTS:
            MopedEngine("mobile2d", env2d, variant=variant)

    def test_config_overrides_applied(self, env2d):
        engine = MopedEngine("mobile2d", env2d, max_samples=77, seed=5)
        assert engine.config.max_samples == 77
        assert engine.config.seed == 5

    def test_full_variant_is_v4(self):
        full = config_for_variant("full")
        v4 = config_for_variant("v4")
        assert full == v4

    def test_baseline_variant(self):
        config = config_for_variant("baseline")
        assert config.checker == "obb"


class TestPlanning:
    def test_plan_builds_task(self, env2d):
        engine = MopedEngine("mobile2d", env2d, max_samples=150, seed=0, goal_bias=0.2)
        result = engine.plan(
            np.array([20.0, 20.0, 0.0]), np.array([250.0, 250.0, 0.0]), task_id=3
        )
        assert result.iterations > 0

    def test_plan_task_equivalent_to_plan(self, env2d):
        task = random_task("mobile2d", 8, seed=0)
        engine = MopedEngine("mobile2d", task.environment, max_samples=150, seed=0)
        a = engine.plan(task.start, task.goal)
        b = engine.plan_task(task)
        assert a.path_cost == b.path_cost
        assert a.total_macs == b.total_macs

    def test_with_config_creates_modified_copy(self, env2d):
        engine = MopedEngine("mobile2d", env2d, max_samples=100)
        tweaked = engine.with_config(max_samples=222)
        assert tweaked.config.max_samples == 222
        assert engine.config.max_samples == 100
        assert tweaked.robot is engine.robot

    def test_with_config_preserves_variant_flags(self, env2d):
        engine = MopedEngine("mobile2d", env2d, variant="v2")
        tweaked = engine.with_config(seed=9)
        assert tweaked.config.neighbor_strategy == "simbr"
        assert not tweaked.config.approx_neighborhood
