"""Integration tests for the RRT\\* planning loop and MOPED variants."""

import numpy as np
import pytest

from repro.core import MopedEngine, PlannerConfig, PlanningTask, get_robot
from repro.core.collision import BruteOBBChecker
from repro.core.config import moped_config
from repro.core.metrics import path_length
from repro.core.rrtstar import RRTStarPlanner
from repro.core.world import Environment
from repro.geometry.obb import OBB
from repro.geometry.rotations import rotation_2d


@pytest.fixture(scope="module")
def easy_env2d():
    """A sparse 2D environment the mobile robot can always solve."""
    obstacles = [
        OBB(np.array([80.0, 80.0]), np.array([12.0, 12.0]), rotation_2d(0.4)),
        OBB(np.array([200.0, 150.0]), np.array([10.0, 14.0]), rotation_2d(-0.7)),
        OBB(np.array([120.0, 230.0]), np.array([14.0, 8.0]), rotation_2d(1.1)),
    ]
    return Environment(2, 300.0, obstacles)


@pytest.fixture(scope="module")
def easy_task(easy_env2d):
    return PlanningTask(
        "mobile2d",
        easy_env2d,
        start=np.array([20.0, 20.0, 0.0]),
        goal=np.array([270.0, 270.0, 0.0]),
    )


def run(task, variant="full", **overrides):
    robot = get_robot(task.robot_name)
    engine = MopedEngine(robot, task.environment, variant=variant, **overrides)
    return engine.plan_task(task)


class TestBasicPlanning:
    def test_moped_solves_easy_2d(self, easy_task):
        result = run(easy_task, max_samples=400, seed=1)
        assert result.success
        assert result.path_cost < np.inf
        assert len(result.path) >= 2

    def test_baseline_solves_easy_2d(self, easy_task):
        result = run(easy_task, variant="baseline", max_samples=400, seed=1)
        assert result.success

    def test_path_starts_and_ends_correctly(self, easy_task):
        result = run(easy_task, max_samples=400, seed=2)
        assert result.success
        np.testing.assert_allclose(result.path[0], easy_task.start)
        np.testing.assert_allclose(result.path[-1], easy_task.goal)

    def test_path_cost_matches_path_length(self, easy_task):
        result = run(easy_task, max_samples=400, seed=3)
        assert result.success
        assert result.path_cost == pytest.approx(path_length(result.path), rel=1e-6)

    def test_returned_path_is_collision_free(self, easy_task):
        result = run(easy_task, max_samples=400, seed=4)
        assert result.success
        robot = get_robot("mobile2d")
        checker = BruteOBBChecker(robot, easy_task.environment, motion_resolution=1.0)
        for a, b in zip(result.path[:-1], result.path[1:]):
            assert not checker.motion_in_collision(a, b)

    def test_rounds_telemetry_complete(self, easy_task):
        result = run(easy_task, max_samples=150, seed=5)
        assert len(result.rounds) == result.iterations == 150
        assert all(r.total_macs >= 0 for r in result.rounds)
        assert any(r.accepted for r in result.rounds)

    def test_counter_populated(self, easy_task):
        result = run(easy_task, max_samples=100, seed=6)
        assert result.total_macs > 0
        assert result.counter.events.get("sample", 0) >= 1

    def test_failure_on_impossible_task(self):
        """Start boxed in by walls: the planner must report failure."""
        walls = [
            OBB(np.array([50.0, 30.0]), np.array([30.0, 5.0]), rotation_2d(0.0)),
            OBB(np.array([50.0, 70.0]), np.array([30.0, 5.0]), rotation_2d(0.0)),
            OBB(np.array([30.0, 50.0]), np.array([5.0, 30.0]), rotation_2d(0.0)),
            OBB(np.array([70.0, 50.0]), np.array([5.0, 30.0]), rotation_2d(0.0)),
        ]
        env = Environment(2, 300.0, walls)
        task = PlanningTask(
            "mobile2d", env, np.array([50.0, 50.0, 0.0]), np.array([250.0, 250.0, 0.0])
        )
        result = run(task, max_samples=200, seed=7)
        assert not result.success
        assert result.path_cost == np.inf
        assert result.path == []

    def test_stop_on_goal_terminates_early(self, easy_task):
        result = run(easy_task, max_samples=2000, seed=8, stop_on_goal=True, goal_bias=0.2)
        assert result.success
        assert result.iterations < 2000
        assert result.first_solution_iteration == result.iterations - 1

    def test_exp_tree_valid_after_planning(self, easy_task):
        robot = get_robot("mobile2d")
        planner = RRTStarPlanner(robot, easy_task, moped_config("v4", max_samples=300, seed=9))
        planner.plan()
        planner.tree.validate()

    def test_lfsr_sampler_plans(self, easy_task):
        result = run(easy_task, max_samples=400, seed=10, sampler="lfsr", goal_bias=0.1)
        assert result.success

    def test_deterministic_given_seed(self, easy_task):
        a = run(easy_task, max_samples=200, seed=11)
        b = run(easy_task, max_samples=200, seed=11)
        assert a.path_cost == b.path_cost
        assert a.num_nodes == b.num_nodes
        assert a.total_macs == b.total_macs


class TestVariants:
    @pytest.mark.parametrize("variant", ["baseline", "v1", "v2", "v3", "v4"])
    def test_every_variant_plans(self, easy_task, variant):
        result = run(easy_task, variant=variant, max_samples=300, seed=12, goal_bias=0.1)
        assert result.success

    def test_cost_ladder_monotone(self, easy_task):
        """Each ablation rung must reduce total MACs (Fig 16 top)."""
        macs = {}
        for variant in ("baseline", "v1", "v2", "v3", "v4"):
            result = run(easy_task, variant=variant, max_samples=300, seed=13)
            macs[variant] = result.total_macs
        assert macs["v1"] < macs["baseline"]
        assert macs["v2"] < macs["v1"]
        assert macs["v3"] < macs["v2"]
        assert macs["v4"] < macs["v3"]

    def test_moped_path_quality_comparable(self, easy_task):
        """SIAS must not blow up path cost (Section III-B, Fig 8)."""
        costs_base, costs_moped = [], []
        for seed in range(4):
            base = run(easy_task, variant="baseline", max_samples=350, seed=seed)
            moped = run(easy_task, variant="v4", max_samples=350, seed=seed)
            if base.success and moped.success:
                costs_base.append(base.path_cost)
                costs_moped.append(moped.path_cost)
        assert costs_base, "baseline never succeeded"
        assert np.mean(costs_moped) < 1.25 * np.mean(costs_base)


class TestSpeculation:
    """Functional speculate-and-repair: Section IV-B equivalence claim."""

    @pytest.mark.parametrize("depth", [1, 2, 5])
    def test_speculative_equals_exact(self, easy_task, depth):
        exact = run(easy_task, max_samples=250, seed=20, speculation_depth=0)
        spec = run(easy_task, max_samples=250, seed=20, speculation_depth=depth)
        assert spec.success == exact.success
        assert spec.path_cost == pytest.approx(exact.path_cost)
        assert spec.num_nodes == exact.num_nodes

    def test_repair_actually_fires(self, easy_task):
        """With dense sampling the missing buffer must occasionally win."""
        result = run(
            easy_task, max_samples=600, seed=21, speculation_depth=2, goal_bias=0.0
        )
        assert any(r.missing_used > 0 for r in result.rounds)
        assert any(r.repaired for r in result.rounds)

    def test_missing_buffer_occupancy_small(self, easy_task):
        """Paper sizes the Missing Neighbors Buffer at 5 entries."""
        result = run(easy_task, max_samples=400, seed=22, speculation_depth=5)
        assert max(r.missing_used for r in result.rounds) <= 5


class TestHigherDof:
    def test_drone_plans_in_sparse_env(self):
        robot = get_robot("drone3d")
        env = Environment(3, 300.0, [])
        task = PlanningTask(
            "drone3d",
            env,
            start=np.array([20.0, 20.0, 20.0, 0.0, 0.0, 0.0]),
            goal=np.array([250.0, 250.0, 250.0, 0.0, 0.0, 0.0]),
        )
        result = run(task, max_samples=500, seed=23, goal_bias=0.15)
        assert result.success

    def test_arm_plans_small_budget(self):
        robot = get_robot("viperx300")
        env = Environment(3, 300.0, [])
        task = PlanningTask(
            "viperx300",
            env,
            start=np.zeros(5),
            goal=np.full(5, 0.8),
        )
        result = run(task, max_samples=200, seed=24, goal_bias=0.2)
        assert result.success
