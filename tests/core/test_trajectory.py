"""Unit tests for trajectory time-parameterization."""

import numpy as np
import pytest

from repro.core.trajectory import Trajectory, time_parameterize


def straight_path(length=10.0, dim=2):
    return [np.zeros(dim), np.array([length] + [0.0] * (dim - 1))]


class TestValidation:
    def test_rejects_short_path(self):
        with pytest.raises(ValueError):
            time_parameterize([np.zeros(2)], max_speed=1.0, max_accel=1.0)

    def test_rejects_bad_limits(self):
        with pytest.raises(ValueError):
            time_parameterize(straight_path(), max_speed=0.0, max_accel=1.0)
        with pytest.raises(ValueError):
            time_parameterize(straight_path(), max_speed=1.0, max_accel=-1.0)

    def test_rejects_zero_length_path(self):
        with pytest.raises(ValueError):
            time_parameterize([np.zeros(2), np.zeros(2)], max_speed=1.0, max_accel=1.0)

    def test_skips_duplicate_waypoints(self):
        path = [np.zeros(2), np.zeros(2), np.array([5.0, 0.0])]
        traj = time_parameterize(path, max_speed=1.0, max_accel=1.0)
        assert len(traj.segments) == 1


class TestProfiles:
    def test_trapezoid_for_long_segment(self):
        # v=2, a=1: ramp distance = 4; length 10 -> trapezoid.
        traj = time_parameterize(straight_path(10.0), max_speed=2.0, max_accel=1.0)
        seg = traj.segments[0]
        assert seg.peak_speed == pytest.approx(2.0)
        assert seg.cruise_time > 0.0
        # ramp 2s + 2s + cruise (10-4)/2 = 3s -> 7s.
        assert seg.duration == pytest.approx(7.0)

    def test_triangle_for_short_segment(self):
        # length 1 < ramp distance 4 -> triangular profile.
        traj = time_parameterize(straight_path(1.0), max_speed=2.0, max_accel=1.0)
        seg = traj.segments[0]
        assert seg.cruise_time == 0.0
        assert seg.peak_speed == pytest.approx(1.0)  # sqrt(1*1)
        assert seg.duration == pytest.approx(2.0)

    def test_duration_monotone_in_length(self):
        short = time_parameterize(straight_path(5.0), 2.0, 1.0).duration
        long = time_parameterize(straight_path(20.0), 2.0, 1.0).duration
        assert long > short

    def test_faster_limits_reduce_duration(self):
        slow = time_parameterize(straight_path(10.0), 1.0, 1.0).duration
        fast = time_parameterize(straight_path(10.0), 4.0, 4.0).duration
        assert fast < slow

    def test_total_length_preserved(self):
        path = [np.zeros(2), np.array([3.0, 4.0]), np.array([3.0, 10.0])]
        traj = time_parameterize(path, 2.0, 1.0)
        assert traj.length == pytest.approx(11.0)


class TestStateAt:
    @pytest.fixture
    def traj(self):
        return time_parameterize(straight_path(10.0), max_speed=2.0, max_accel=1.0)

    def test_endpoints(self, traj):
        np.testing.assert_allclose(traj.state_at(0.0), [0.0, 0.0])
        np.testing.assert_allclose(traj.state_at(traj.duration), [10.0, 0.0])

    def test_clamps_outside_span(self, traj):
        np.testing.assert_allclose(traj.state_at(-5.0), [0.0, 0.0])
        np.testing.assert_allclose(traj.state_at(traj.duration + 5.0), [10.0, 0.0])

    def test_midpoint_by_symmetry(self, traj):
        mid = traj.state_at(traj.duration / 2.0)
        np.testing.assert_allclose(mid, [5.0, 0.0], atol=1e-9)

    def test_position_monotone(self, traj):
        times = np.linspace(0.0, traj.duration, 50)
        xs = [traj.state_at(float(t))[0] for t in times]
        assert all(b >= a - 1e-9 for a, b in zip(xs, xs[1:]))

    def test_speed_limit_respected(self, traj):
        times = np.linspace(0.0, traj.duration, 200)
        xs = np.array([traj.state_at(float(t)) for t in times])
        speeds = np.linalg.norm(np.diff(xs, axis=0), axis=1) / np.diff(times)
        assert speeds.max() <= 2.0 + 1e-6

    def test_multi_segment_stops_at_waypoints(self):
        path = [np.zeros(2), np.array([5.0, 0.0]), np.array([5.0, 5.0])]
        traj = time_parameterize(path, 2.0, 1.0)
        # At the end of segment one the robot is exactly at the waypoint.
        t1 = traj.segments[0].duration
        np.testing.assert_allclose(traj.state_at(t1), [5.0, 0.0], atol=1e-9)

    def test_planner_path_integration(self):
        from repro import MopedEngine, get_robot
        from repro.workloads import random_task

        task = random_task("mobile2d", 8, seed=7)
        robot = get_robot("mobile2d")
        result = MopedEngine(robot, task.environment, max_samples=300, seed=0,
                             goal_bias=0.2).plan_task(task)
        if result.success:
            traj = time_parameterize(result.path, max_speed=20.0, max_accel=10.0)
            assert traj.duration > 0
            np.testing.assert_allclose(traj.state_at(0.0), result.path[0])
