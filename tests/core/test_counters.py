"""Unit tests for the MAC-level operation counter."""

import pytest

from repro.core.counters import CATEGORY_OF, OpCounter, mac_cost


class TestMacCost:
    def test_obb_obb_3d_more_expensive_than_aabb_obb(self):
        """The first-stage check must be cheaper (Section III-A)."""
        assert mac_cost("sat_obb_obb", 3) > 2 * mac_cost("sat_aabb_obb", 3)

    def test_2d_checks_cheaper_than_3d(self):
        assert mac_cost("sat_obb_obb", 2) < mac_cost("sat_obb_obb", 3)
        assert mac_cost("sat_aabb_obb", 2) < mac_cost("sat_aabb_obb", 3)

    def test_dist_scales_with_dim(self):
        assert mac_cost("dist", 7) > mac_cost("dist", 3)

    def test_insert_direct_is_cheapest_tree_op(self):
        assert mac_cost("insert_direct", 7) < mac_cost("enlargement", 7)

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            mac_cost("nonexistent", 3)

    def test_default_dim_is_3(self):
        assert mac_cost("dist", None) == mac_cost("dist", 3)

    def test_all_categorised_kinds_have_costs(self):
        for kind in CATEGORY_OF:
            assert mac_cost(kind, 3) > 0


class TestOpCounter:
    def test_starts_empty(self):
        counter = OpCounter()
        assert counter.total_macs() == 0.0
        assert counter.total_events() == 0

    def test_record_accumulates(self):
        counter = OpCounter()
        counter.record("dist", dim=3)
        counter.record("dist", dim=3, n=4)
        assert counter.events["dist"] == 5
        assert counter.macs["dist"] == pytest.approx(5 * mac_cost("dist", 3))

    def test_categories(self):
        counter = OpCounter()
        counter.record("sat_obb_obb", dim=3)
        counter.record("dist", dim=3)
        counter.record("enlargement", dim=3)
        by_cat = counter.macs_by_category()
        assert by_cat["collision_check"] == pytest.approx(mac_cost("sat_obb_obb", 3))
        assert by_cat["neighbor_search"] == pytest.approx(mac_cost("dist", 3))
        assert by_cat["tree_maintenance"] == pytest.approx(mac_cost("enlargement", 3))

    def test_category_macs_missing_is_zero(self):
        assert OpCounter().category_macs("collision_check") == 0.0

    def test_merge(self):
        a, b = OpCounter(), OpCounter()
        a.record("dist", dim=2)
        b.record("dist", dim=2, n=2)
        b.record("sample", dim=2)
        a.merge(b)
        assert a.events["dist"] == 3
        assert a.events["sample"] == 1

    def test_to_dict_round_trip(self):
        counter = OpCounter()
        counter.record("dist", dim=3, n=7)
        counter.record("sat_obb_obb", dim=3, n=2)
        clone = OpCounter.from_dict(counter.to_dict())
        assert clone.events == counter.events
        assert clone.macs == counter.macs
        assert clone.total_macs() == pytest.approx(counter.total_macs())

    def test_to_dict_is_json_safe_snapshot(self):
        import json

        counter = OpCounter()
        counter.record("sample", dim=2)
        payload = counter.to_dict()
        counter.record("sample", dim=2)  # later work must not leak in
        restored = OpCounter.from_dict(json.loads(json.dumps(payload)))
        assert restored.events["sample"] == 1

    def test_from_dict_merges_across_process_shape(self):
        # The service-worker flow: ship dicts, rebuild, merge into a master.
        a, b = OpCounter(), OpCounter()
        a.record("dist", dim=2, n=3)
        b.record("dist", dim=2, n=2)
        master = OpCounter()
        for shipped in (a.to_dict(), b.to_dict()):
            master.merge(OpCounter.from_dict(shipped))
        assert master.events["dist"] == 5

    def test_snapshot_is_independent(self):
        counter = OpCounter()
        counter.record("dist", dim=3)
        snap = counter.snapshot()
        counter.record("dist", dim=3)
        assert snap.events["dist"] == 1
        assert counter.events["dist"] == 2

    def test_diff(self):
        counter = OpCounter()
        counter.record("dist", dim=3)
        snap = counter.snapshot()
        counter.record("dist", dim=3, n=2)
        counter.record("steer", dim=3)
        delta = counter.diff(snap)
        assert delta.events == {"dist": 2, "steer": 1}
        assert delta.total_macs() == pytest.approx(
            2 * mac_cost("dist", 3) + mac_cost("steer", 3)
        )

    def test_diff_of_identical_counters_is_empty(self):
        counter = OpCounter()
        counter.record("dist", dim=3)
        delta = counter.diff(counter.snapshot())
        assert delta.events == {}
        assert delta.total_macs() == 0.0

    def test_reset(self):
        counter = OpCounter()
        counter.record("dist", dim=3)
        counter.reset()
        assert counter.total_events() == 0
