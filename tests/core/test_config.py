"""Unit tests for PlannerConfig and the ablation presets."""

import pytest

from repro.core.config import PlannerConfig, baseline_config, moped_config


class TestValidation:
    def test_defaults_are_valid(self):
        PlannerConfig()

    def test_rejects_zero_samples(self):
        with pytest.raises(ValueError):
            PlannerConfig(max_samples=0)

    def test_rejects_bad_goal_bias(self):
        with pytest.raises(ValueError):
            PlannerConfig(goal_bias=1.0)
        with pytest.raises(ValueError):
            PlannerConfig(goal_bias=-0.1)

    def test_rejects_bad_radius_factor(self):
        with pytest.raises(ValueError):
            PlannerConfig(neighbor_radius_factor=0.0)

    def test_rejects_negative_speculation(self):
        with pytest.raises(ValueError):
            PlannerConfig(speculation_depth=-1)


class TestResolution:
    def test_step_defaults_to_robot(self):
        assert PlannerConfig().resolved_step(7.0) == 7.0
        assert PlannerConfig(step_size=3.0).resolved_step(7.0) == 3.0

    def test_motion_resolution_derivation(self):
        config = PlannerConfig()
        assert config.resolved_motion_resolution(8.0) == pytest.approx(2.0)
        assert PlannerConfig(motion_resolution=1.0).resolved_motion_resolution(8.0) == 1.0

    def test_goal_tolerance_derivation(self):
        assert PlannerConfig().resolved_goal_tolerance(5.0) == 5.0
        assert PlannerConfig(goal_tolerance=2.0).resolved_goal_tolerance(5.0) == 2.0


class TestNeighborRadius:
    def test_initial_radius_is_cap(self):
        config = PlannerConfig(neighbor_radius_factor=2.0)
        assert config.neighbor_radius(1, dim=3, step=5.0) == pytest.approx(10.0)

    def test_radius_shrinks_with_n(self):
        config = PlannerConfig(neighbor_radius_factor=2.0)
        radii = [config.neighbor_radius(n, dim=3, step=5.0) for n in (10, 100, 1000, 10000)]
        assert all(a >= b for a, b in zip(radii, radii[1:]))

    def test_radius_floored_at_step(self):
        config = PlannerConfig(neighbor_radius_factor=2.0)
        assert config.neighbor_radius(10**6, dim=2, step=5.0) >= 5.0

    def test_radius_capped(self):
        config = PlannerConfig(neighbor_radius_factor=2.0)
        for n in (2, 5, 50):
            assert config.neighbor_radius(n, dim=3, step=5.0) <= 10.0 + 1e-9


class TestPresets:
    def test_baseline(self):
        config = baseline_config()
        assert config.checker == "obb"
        assert config.neighbor_strategy == "brute"

    def test_v1_adds_two_stage_only(self):
        config = moped_config("v1")
        assert config.checker == "two_stage"
        assert config.neighbor_strategy == "brute"

    def test_v2_adds_simbr(self):
        config = moped_config("v2")
        assert config.neighbor_strategy == "simbr"
        assert not config.approx_neighborhood
        assert not config.steering_insert

    def test_v3_adds_approx(self):
        config = moped_config("v3")
        assert config.approx_neighborhood
        assert not config.steering_insert

    def test_v4_adds_lci(self):
        for name in ("v4", "full"):
            config = moped_config(name)
            assert config.approx_neighborhood
            assert config.steering_insert

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            moped_config("v9")

    def test_overrides_apply(self):
        config = moped_config("v4", max_samples=123, seed=9)
        assert config.max_samples == 123
        assert config.seed == 9
