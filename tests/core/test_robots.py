"""Unit tests for the five Section V robot models."""

import numpy as np
import pytest

from repro.core.robots import (
    ROBOT_FACTORIES,
    WORKSPACE_SIZE,
    all_robots,
    get_robot,
)

# Paper Section V: (name, DoF, workspace dim, number of body OBBs).
PAPER_SPECS = [
    ("mobile2d", 3, 2, 1),
    ("drone3d", 6, 3, 1),
    ("viperx300", 5, 3, 3),
    ("rozum", 6, 3, 4),
    ("xarm7", 7, 3, 7),
]


class TestRegistry:
    def test_all_five_paper_robots_present(self):
        assert {name for name, *_ in PAPER_SPECS} <= set(ROBOT_FACTORIES)

    def test_extension_robot_present(self):
        # The 2-13 DoF envelope claim: a 13-DoF platform is registered too.
        assert "dualarm13" in ROBOT_FACTORIES

    def test_unknown_robot_raises(self):
        with pytest.raises(KeyError):
            get_robot("optimus")

    def test_all_robots_ordering_by_use(self):
        robots = all_robots()
        assert len(robots) == 5
        assert robots[0].name == "mobile2d"


@pytest.mark.parametrize("name,dof,ws_dim,n_obbs", PAPER_SPECS)
class TestPaperSpecs:
    def test_dof_matches_paper(self, name, dof, ws_dim, n_obbs):
        assert get_robot(name).dof == dof

    def test_workspace_dim_matches_paper(self, name, dof, ws_dim, n_obbs):
        assert get_robot(name).workspace_dim == ws_dim

    def test_obb_count_matches_paper(self, name, dof, ws_dim, n_obbs):
        robot = get_robot(name)
        assert robot.num_body_obbs == n_obbs
        mid = (robot.config_lo + robot.config_hi) / 2.0
        assert len(robot.body_obbs(mid)) == n_obbs

    def test_bounds_are_consistent(self, name, dof, ws_dim, n_obbs):
        robot = get_robot(name)
        assert robot.config_lo.shape == (dof,)
        assert np.all(robot.config_lo < robot.config_hi)

    def test_body_obbs_valid_at_random_configs(self, name, dof, ws_dim, n_obbs):
        robot = get_robot(name)
        rng = np.random.default_rng(0)
        for _ in range(10):
            config = rng.uniform(robot.config_lo, robot.config_hi)
            for obb in robot.body_obbs(config):
                assert obb.dim == ws_dim
                assert obb.is_valid()
                assert np.all(obb.half_extents > 0)

    def test_wrong_config_dim_rejected(self, name, dof, ws_dim, n_obbs):
        robot = get_robot(name)
        with pytest.raises(ValueError):
            robot.body_obbs(np.zeros(dof + 1))


class TestMobile2D:
    def test_body_follows_position(self):
        robot = get_robot("mobile2d")
        body = robot.body_obbs(np.array([100.0, 200.0, 0.0]))[0]
        np.testing.assert_allclose(body.center, [100.0, 200.0])

    def test_body_rotates_with_heading(self):
        robot = get_robot("mobile2d")
        body = robot.body_obbs(np.array([0.0, 0.0, np.pi / 2]))[0]
        np.testing.assert_allclose(body.rotation @ [1, 0], [0, 1], atol=1e-12)


class TestDrone3D:
    def test_body_follows_position(self):
        robot = get_robot("drone3d")
        config = np.array([10.0, 20.0, 30.0, 0.0, 0.0, 0.0])
        body = robot.body_obbs(config)[0]
        np.testing.assert_allclose(body.center, [10.0, 20.0, 30.0])


class TestArms:
    @pytest.mark.parametrize("name", ["viperx300", "rozum", "xarm7"])
    def test_base_is_fixed(self, name):
        """Joint motion must never move the arm's base region far."""
        robot = get_robot(name)
        rng = np.random.default_rng(1)
        base = np.array([WORKSPACE_SIZE / 2, WORKSPACE_SIZE / 2, 20.0])
        for _ in range(5):
            config = rng.uniform(robot.config_lo, robot.config_hi)
            first = robot.body_obbs(config)[0]
            # The first body box stays within one link length of the base.
            assert np.linalg.norm(first.center - base) < 80.0

    @pytest.mark.parametrize("name", ["viperx300", "rozum", "xarm7"])
    def test_joint_motion_moves_end_effector(self, name):
        robot = get_robot(name)
        zero = np.zeros(robot.dof)
        moved = zero.copy()
        moved[1] = 1.0  # shoulder-ish joint
        end_a = robot.body_obbs(zero)[-1].center
        end_b = robot.body_obbs(moved)[-1].center
        assert np.linalg.norm(end_a - end_b) > 1.0

    @pytest.mark.parametrize("name", ["viperx300", "rozum", "xarm7"])
    def test_first_joint_rotation_preserves_reach(self, name):
        """Rotating only the base joint must not change the arm's radius."""
        robot = get_robot(name)
        zero = np.zeros(robot.dof)
        spun = zero.copy()
        spun[0] = 1.3
        base = np.array([WORKSPACE_SIZE / 2, WORKSPACE_SIZE / 2, 20.0])
        r_a = np.linalg.norm(robot.body_obbs(zero)[-1].center - base)
        r_b = np.linalg.norm(robot.body_obbs(spun)[-1].center - base)
        assert r_a == pytest.approx(r_b, rel=1e-6)

    def test_clip(self):
        robot = get_robot("xarm7")
        clipped = robot.clip(np.full(7, 100.0))
        np.testing.assert_allclose(clipped, robot.config_hi)


class TestDualArm13:
    """The 13-DoF envelope robot (paper intro: RRT* covers 2-13 DoF)."""

    def test_spec(self):
        robot = get_robot("dualarm13")
        assert robot.dof == 13
        assert robot.workspace_dim == 3
        assert robot.num_body_obbs == 11

    def test_body_obbs_valid(self):
        robot = get_robot("dualarm13")
        rng = np.random.default_rng(0)
        for _ in range(5):
            config = rng.uniform(robot.config_lo, robot.config_hi)
            obbs = robot.body_obbs(config)
            assert len(obbs) == 11
            for obb in obbs:
                assert obb.is_valid()

    def test_arms_move_independently(self):
        robot = get_robot("dualarm13")
        zero = np.zeros(13)
        left_only = zero.copy()
        left_only[1] = 1.0  # first left-arm joint
        obbs_zero = robot.body_obbs(zero)
        obbs_left = robot.body_obbs(left_only)
        # Torso and right arm unchanged; left arm moved.
        np.testing.assert_allclose(obbs_zero[0].center, obbs_left[0].center)
        for i in range(6, 11):  # right-arm boxes
            np.testing.assert_allclose(obbs_zero[i].center, obbs_left[i].center)
        assert not np.allclose(obbs_zero[1].center, obbs_left[1].center)

    def test_plans_in_free_space(self):
        from repro.core import MopedEngine
        from repro.core.world import Environment

        robot = get_robot("dualarm13")
        env = Environment(3, 300.0, [])
        engine = MopedEngine(robot, env, max_samples=150, seed=0, goal_bias=0.25)
        result = engine.plan(np.zeros(13), np.full(13, 0.5))
        assert result.success
