"""Input-validation boundaries: hostile numbers (NaN/inf/out-of-bounds)
must be rejected with :class:`InvalidRequest` at construction and load
time, long before they can poison the geometry kernels."""

import numpy as np
import pytest

from repro.core.moped import config_for_variant
from repro.core.robots import get_robot
from repro.core.world import Environment, PlanningTask
from repro.errors import InvalidRequest
from repro.geometry.obb import OBB
from repro.geometry.rotations import rotation_2d
from repro.io import environment_from_dict, environment_to_dict, task_from_dict
from repro.service.request import PlanRequest
from repro.workloads import random_task


def _obb(center=(50.0, 50.0), half=(5.0, 5.0), angle=0.3):
    return OBB(np.array(center, dtype=float), np.array(half, dtype=float),
               rotation_2d(angle))


class TestEnvironmentValidation:
    def test_accepts_finite_obstacles(self):
        env = Environment(2, 100.0, [_obb()])
        assert env.num_obstacles == 1

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_rejects_non_finite_center(self, bad):
        with pytest.raises(InvalidRequest, match="obstacle 0"):
            Environment(2, 100.0, [_obb(center=(bad, 50.0))])

    def test_rejects_non_finite_half_extents(self):
        with pytest.raises(InvalidRequest):
            Environment(2, 100.0, [_obb(half=(float("nan"), 5.0))])

    def test_rejects_non_finite_rotation(self):
        rot = rotation_2d(0.0).copy()
        rot[0, 0] = float("inf")
        bad = OBB(np.array([50.0, 50.0]), np.array([5.0, 5.0]), rot)
        with pytest.raises(InvalidRequest):
            Environment(2, 100.0, [bad])

    def test_reports_the_offending_index(self):
        with pytest.raises(InvalidRequest, match="obstacle 1"):
            Environment(2, 100.0, [_obb(), _obb(center=(float("nan"), 0.0))])

    def test_load_boundary_revalidates(self):
        # A serialized environment edited to carry NaN geometry must be
        # rejected when deserialized, not silently rebuilt.
        data = environment_to_dict(Environment(2, 100.0, [_obb()]))
        data["obstacles"][0]["center"][0] = float("nan")
        with pytest.raises(InvalidRequest):
            environment_from_dict(data)


class TestTaskValidation:
    def test_rejects_nan_start(self):
        env = Environment(2, 100.0, [])
        with pytest.raises(InvalidRequest, match="finite"):
            PlanningTask("mobile2d", env,
                         start=np.array([float("nan"), 1.0, 0.0]),
                         goal=np.array([2.0, 2.0, 0.0]))

    def test_rejects_inf_goal(self):
        env = Environment(2, 100.0, [])
        with pytest.raises(InvalidRequest):
            PlanningTask("mobile2d", env,
                         start=np.array([1.0, 1.0, 0.0]),
                         goal=np.array([2.0, float("inf"), 0.0]))

    def test_load_boundary_revalidates(self):
        from repro.io import task_to_dict

        data = task_to_dict(random_task("mobile2d", 2, seed=1))
        data["start"][0] = float("nan")
        with pytest.raises(InvalidRequest):
            task_from_dict(data)


class TestRequestValidation:
    def make(self, **task_overrides):
        import dataclasses

        task = random_task("mobile2d", 2, seed=1)
        if task_overrides:
            # Bypass PlanningTask's own __post_init__ guard so each test
            # exercises the *request* boundary in isolation (simulating a
            # task that crossed a pickle hop already corrupted).
            fields = {f.name: getattr(task, f.name)
                      for f in dataclasses.fields(task)}
            fields.update(task_overrides)
            task = object.__new__(PlanningTask)
            for name, value in fields.items():
                object.__setattr__(task, name, value)
        config = config_for_variant("full", max_samples=50, seed=1)
        return PlanRequest(task=task, config=config)

    def test_valid_request_constructs(self):
        assert self.make().task.robot_name == "mobile2d"

    def test_rejects_unknown_robot(self):
        with pytest.raises(InvalidRequest, match="unknown robot"):
            self.make(robot_name="optimus")

    def test_rejects_nan_configuration(self):
        with pytest.raises(InvalidRequest, match="finite"):
            self.make(start=np.array([float("nan"), 1.0, 0.0]))

    def test_rejects_wrong_dimension(self):
        with pytest.raises(InvalidRequest, match="dimensional"):
            self.make(start=np.array([1.0, 1.0]))

    def test_rejects_out_of_bounds_configuration(self):
        robot = get_robot("mobile2d")
        beyond = np.asarray(robot.config_hi, dtype=float) + 10.0
        with pytest.raises(InvalidRequest, match="bounds"):
            self.make(start=beyond)
        below = np.asarray(robot.config_lo, dtype=float) - 10.0
        with pytest.raises(InvalidRequest, match="bounds"):
            self.make(goal=below)

    def test_invalid_request_is_catchable_as_value_error(self):
        with pytest.raises(ValueError):
            self.make(robot_name="optimus")
