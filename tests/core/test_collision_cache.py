"""Collision-result cache: hits must equal fresh two-stage checks.

The cache stores ``(verdict, OpCounter events)`` per quantized
configuration; a hit must be indistinguishable from recomputing — same
verdict, same modeled counter events — under every checker and kernel
backend, or planning results would depend on cache state.
"""

import numpy as np
import pytest

from repro.core.collision import make_checker
from repro.core.counters import OpCounter
from repro.core.robots import get_robot
from repro.workloads.generator import random_environment


def _setup(checker_name, kernels, cache_size=0, cache_quantum=0.0):
    robot = get_robot("mobile2d")
    environment = random_environment(2, 12, seed=4)
    return make_checker(
        checker_name, robot, environment,
        motion_resolution=robot.step_size / 4.0,
        kernels=kernels,
        cache_size=cache_size,
        cache_quantum=cache_quantum,
    )


def _sample_configs(n=24, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(5.0, 95.0, size=(n, 3)) * np.array([1.0, 1.0, 0.06])


@pytest.mark.parametrize("checker_name", ["two_stage", "obb", "aabb"])
@pytest.mark.parametrize("kernels", ["batch", "reference"])
class TestCachedHitEqualsFreshCheck:
    def test_hits_reproduce_fresh_results(self, checker_name, kernels):
        configs = _sample_configs()
        fresh = _setup(checker_name, kernels)
        cached = _setup(checker_name, kernels, cache_size=256)

        want_verdicts, want_events = fresh.config_results(configs)
        first_v, first_e = cached.config_results(configs)
        assert cached.config_cache.hits == 0

        hit_v, hit_e = cached.config_results(configs)
        assert cached.config_cache.hits == len(configs)

        for got_v, got_e in ((first_v, first_e), (hit_v, hit_e)):
            assert [bool(v) for v in got_v] == [bool(v) for v in want_verdicts]
            for got, want in zip(got_e, want_events):
                assert got.to_dict() == want.to_dict()

    def test_replayed_motion_counter_matches_uncached_motion(
        self, checker_name, kernels
    ):
        """Merging cached per-config events == the scalar motion check."""
        checker = _setup(checker_name, kernels, cache_size=256)
        plain = _setup(checker_name, kernels)
        start = np.array([20.0, 20.0, 0.0])
        end = np.array([26.0, 24.0, 0.4])
        from repro.geometry.motion import interpolate_configs

        configs = interpolate_configs(start, end, checker.motion_resolution)
        # Warm the cache, then replay entirely from hits.
        checker.config_results(configs)
        verdicts, events = checker.config_results(configs)

        replayed = OpCounter()
        blocked = checker._replay_config_results(verdicts, events, replayed)

        direct = OpCounter()
        assert blocked == plain.motion_in_collision(start, end, counter=direct)
        assert replayed.to_dict() == direct.to_dict()


class TestCacheKeying:
    def test_exact_keying_distinguishes_any_bit_difference(self):
        checker = _setup("two_stage", "batch", cache_size=64)
        a = np.array([10.0, 10.0, 0.1])
        b = a + 1e-12
        checker.config_results(a[None, :])
        checker.config_results(b[None, :])
        assert checker.config_cache.hits == 0
        assert checker.config_cache.misses == 2

    def test_quantized_keying_coalesces_nearby_configs(self):
        checker = _setup("two_stage", "batch", cache_size=64, cache_quantum=0.5)
        a = np.array([10.0, 10.0, 0.1])
        b = a + 0.01  # well within the quantum
        checker.config_results(a[None, :])
        checker.config_results(b[None, :])
        assert checker.config_cache.hits == 1

    def test_duplicate_rows_in_one_batch_compute_once(self):
        checker = _setup("two_stage", "batch", cache_size=64)
        config = np.array([30.0, 40.0, 0.2])
        batch = np.stack([config, config, config])
        verdicts, events = checker.config_results(batch)
        # One computed miss, stored once; later batches hit per row.
        assert checker.config_cache.misses == 3
        assert len(checker.config_cache) == 1
        assert verdicts[0] == verdicts[1] == verdicts[2]
        assert events[0].to_dict() == events[1].to_dict()

    def test_eviction_is_counted(self):
        checker = _setup("two_stage", "batch", cache_size=4)
        checker.config_results(_sample_configs(n=12, seed=1))
        assert checker.config_cache.evictions == 8
        assert len(checker.config_cache) == 4
