"""Unit tests for rotation helpers."""

import math

import numpy as np
import pytest

from repro.geometry.rotations import (
    is_rotation_matrix,
    random_rotation_2d,
    random_rotation_3d,
    rotation_2d,
    rotation_about_axis,
    rotation_from_euler,
)


class TestRotation2D:
    def test_identity_at_zero(self):
        np.testing.assert_allclose(rotation_2d(0.0), np.eye(2), atol=1e-12)

    def test_quarter_turn(self):
        r = rotation_2d(math.pi / 2)
        np.testing.assert_allclose(r @ np.array([1.0, 0.0]), [0.0, 1.0], atol=1e-12)

    def test_is_proper_rotation(self):
        assert is_rotation_matrix(rotation_2d(1.234))


class TestRotationEuler:
    def test_identity_at_zero(self):
        np.testing.assert_allclose(rotation_from_euler(0.0, 0.0, 0.0), np.eye(3), atol=1e-12)

    def test_pure_yaw_rotates_x_to_y(self):
        r = rotation_from_euler(math.pi / 2)
        np.testing.assert_allclose(r @ np.array([1.0, 0.0, 0.0]), [0.0, 1.0, 0.0], atol=1e-12)

    def test_pure_roll_rotates_y_to_z(self):
        r = rotation_from_euler(0.0, 0.0, math.pi / 2)
        np.testing.assert_allclose(r @ np.array([0.0, 1.0, 0.0]), [0.0, 0.0, 1.0], atol=1e-12)

    def test_is_proper_rotation(self):
        assert is_rotation_matrix(rotation_from_euler(0.3, -0.8, 2.1))


class TestRotationAboutAxis:
    def test_matches_yaw(self):
        np.testing.assert_allclose(
            rotation_about_axis(np.array([0.0, 0.0, 1.0]), 0.7),
            rotation_from_euler(0.7),
            atol=1e-12,
        )

    def test_axis_is_fixed(self):
        axis = np.array([1.0, 2.0, 3.0]) / math.sqrt(14.0)
        r = rotation_about_axis(axis, 1.1)
        np.testing.assert_allclose(r @ axis, axis, atol=1e-12)

    def test_rejects_zero_axis(self):
        with pytest.raises(ValueError):
            rotation_about_axis(np.zeros(3), 1.0)

    def test_non_unit_axis_is_normalised(self):
        r1 = rotation_about_axis(np.array([0.0, 0.0, 5.0]), 0.4)
        r2 = rotation_about_axis(np.array([0.0, 0.0, 1.0]), 0.4)
        np.testing.assert_allclose(r1, r2, atol=1e-12)


class TestRandomRotations:
    def test_random_2d_is_rotation(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert is_rotation_matrix(random_rotation_2d(rng))

    def test_random_3d_is_rotation(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert is_rotation_matrix(random_rotation_3d(rng))

    def test_seeded_reproducibility(self):
        a = random_rotation_3d(np.random.default_rng(42))
        b = random_rotation_3d(np.random.default_rng(42))
        np.testing.assert_allclose(a, b)


class TestIsRotationMatrix:
    def test_rejects_reflection(self):
        assert not is_rotation_matrix(np.diag([1.0, -1.0]))

    def test_rejects_scaled_matrix(self):
        assert not is_rotation_matrix(2.0 * np.eye(3))

    def test_rejects_wrong_shape(self):
        assert not is_rotation_matrix(np.eye(4))
