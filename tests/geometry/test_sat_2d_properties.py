"""Property tests for the 2D SAT kernel and the R-tree prefilter path."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import AABB, OBB, aabb_intersects_obb, obb_intersects_obb
from repro.geometry.rotations import rotation_2d
from repro.spatial import RTree


@st.composite
def random_obb_2d(draw):
    center = np.array([draw(st.floats(-5, 5)) for _ in range(2)])
    half = np.array([draw(st.floats(0.3, 3.0)) for _ in range(2)])
    theta = draw(st.floats(-np.pi, np.pi))
    return OBB(center, half, rotation_2d(theta))


@settings(max_examples=80, deadline=None)
@given(random_obb_2d(), random_obb_2d())
def test_2d_sat_never_misses_sampled_overlap(a, b):
    """Property: if dense sampling finds a shared point, 2D SAT agrees."""
    result = obb_intersects_obb(a, b)
    grid = np.linspace(-1.0, 1.0, 9)
    pts = np.array([[x, y] for x in grid for y in grid])
    a_pts = a.center + (a.rotation @ (pts * a.half_extents).T).T
    b_pts = b.center + (b.rotation @ (pts * b.half_extents).T).T
    overlap = any(b.contains_point(p) for p in a_pts) or any(
        a.contains_point(p) for p in b_pts
    )
    if overlap:
        assert result


@settings(max_examples=80, deadline=None)
@given(random_obb_2d(), random_obb_2d())
def test_2d_aabb_filter_is_conservative(a, b):
    """Property: the 2D AABB first stage never rejects a true collision."""
    if obb_intersects_obb(a, b):
        assert aabb_intersects_obb(a.to_aabb(), b)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_rtree_prefilter_does_not_change_results(n, seed):
    """Property: the AABB-AABB prefilter is transparent to query_obb."""
    rng = np.random.default_rng(seed)
    lo = rng.uniform(0, 100, size=(n, 3))
    boxes = [AABB(lo[i], lo[i] + rng.uniform(0.5, 10, 3)) for i in range(n)]
    tree = RTree(boxes, leaf_capacity=5)
    from repro.geometry.rotations import random_rotation_3d

    robot = OBB(rng.uniform(0, 100, 3), rng.uniform(1, 15, 3), random_rotation_3d(rng))
    plain = sorted(tree.query_obb(robot))
    filtered = sorted(tree.query_obb(robot, prefilter_aabb=robot.to_aabb()))
    assert plain == filtered
