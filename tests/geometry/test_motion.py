"""Unit tests for swept-movement discretisation."""

import numpy as np
import pytest

from repro.geometry import interpolate_configs, motion_steps
from repro.geometry.motion import (
    UNIT_FRACTION_CACHE_MAX_STEPS,
    interpolate_edges,
    unit_fractions,
    unit_fractions_cache_info,
)


class TestMotionSteps:
    def test_counts_by_resolution(self):
        assert motion_steps(np.zeros(2), np.array([1.0, 0.0]), resolution=0.25) == 4

    def test_rounds_up(self):
        assert motion_steps(np.zeros(2), np.array([1.0, 0.0]), resolution=0.3) == 4

    def test_zero_length_has_one_step(self):
        assert motion_steps(np.ones(3), np.ones(3), resolution=0.5) == 1

    def test_rejects_nonpositive_resolution(self):
        with pytest.raises(ValueError):
            motion_steps(np.zeros(2), np.ones(2), resolution=0.0)


class TestInterpolate:
    def test_includes_both_endpoints(self):
        configs = interpolate_configs(np.zeros(2), np.array([1.0, 2.0]), resolution=0.5)
        np.testing.assert_allclose(configs[0], [0.0, 0.0])
        np.testing.assert_allclose(configs[-1], [1.0, 2.0])

    def test_uniform_spacing(self):
        configs = interpolate_configs(np.zeros(2), np.array([2.0, 0.0]), resolution=0.5)
        gaps = np.linalg.norm(np.diff(configs, axis=0), axis=1)
        np.testing.assert_allclose(gaps, gaps[0])
        assert gaps[0] <= 0.5 + 1e-12

    def test_spacing_never_exceeds_resolution(self):
        rng = np.random.default_rng(2)
        for _ in range(20):
            start, end = rng.uniform(-5, 5, 4), rng.uniform(-5, 5, 4)
            configs = interpolate_configs(start, end, resolution=0.7)
            gaps = np.linalg.norm(np.diff(configs, axis=0), axis=1)
            assert np.all(gaps <= 0.7 + 1e-9)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            interpolate_configs(np.zeros(2), np.zeros(3), resolution=0.5)

    def test_high_dim(self):
        configs = interpolate_configs(np.zeros(7), np.ones(7), resolution=0.1)
        assert configs.shape[1] == 7
        assert configs.shape[0] >= 27


class TestUnitFractionCache:
    def test_recurring_counts_share_one_cached_array(self):
        first = unit_fractions(12)
        again = unit_fractions(12)
        assert first is again
        assert not first.flags.writeable
        np.testing.assert_array_equal(first, np.linspace(0.0, 1.0, 13))

    def test_oversized_ladders_bypass_the_cache(self):
        # Ladders beyond the clamp come from one-off workspace-scale
        # probes; they must never enter (and thrash) the LRU.
        before = unit_fractions_cache_info()
        huge = UNIT_FRACTION_CACHE_MAX_STEPS + 1
        a = unit_fractions(huge)
        b = unit_fractions(huge)
        after = unit_fractions_cache_info()
        assert a is not b
        assert not a.flags.writeable
        np.testing.assert_array_equal(a, b)
        assert after.currsize == before.currsize
        assert after.misses == before.misses

    def test_clamped_count_is_still_cached(self):
        a = unit_fractions(UNIT_FRACTION_CACHE_MAX_STEPS)
        b = unit_fractions(UNIT_FRACTION_CACHE_MAX_STEPS)
        assert a is b

    def test_bypass_values_match_cached_arithmetic(self):
        huge = UNIT_FRACTION_CACHE_MAX_STEPS + 7
        np.testing.assert_array_equal(
            unit_fractions(huge), np.linspace(0.0, 1.0, huge + 1)
        )


class TestInterpolateEdges:
    def test_matches_per_edge_ladders_bitwise(self):
        rng = np.random.default_rng(9)
        starts = rng.uniform(-3, 3, size=(17, 6))
        ends = starts + rng.normal(size=(17, 6)) * 0.4
        configs, offsets = interpolate_edges(starts, ends, resolution=0.11)
        assert offsets[0] == 0 and offsets[-1] == len(configs)
        for e in range(17):
            expected = interpolate_configs(starts[e], ends[e], resolution=0.11)
            block = configs[offsets[e]:offsets[e + 1]]
            assert np.array_equal(block, expected)

    def test_empty_batch(self):
        configs, offsets = interpolate_edges(
            np.empty((0, 4)), np.empty((0, 4)), resolution=0.5
        )
        assert configs.shape == (0, 4)
        assert list(offsets) == [0]

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            interpolate_edges(np.zeros((2, 3)), np.zeros((3, 3)), resolution=0.5)
