"""Unit tests for swept-movement discretisation."""

import numpy as np
import pytest

from repro.geometry import interpolate_configs, motion_steps


class TestMotionSteps:
    def test_counts_by_resolution(self):
        assert motion_steps(np.zeros(2), np.array([1.0, 0.0]), resolution=0.25) == 4

    def test_rounds_up(self):
        assert motion_steps(np.zeros(2), np.array([1.0, 0.0]), resolution=0.3) == 4

    def test_zero_length_has_one_step(self):
        assert motion_steps(np.ones(3), np.ones(3), resolution=0.5) == 1

    def test_rejects_nonpositive_resolution(self):
        with pytest.raises(ValueError):
            motion_steps(np.zeros(2), np.ones(2), resolution=0.0)


class TestInterpolate:
    def test_includes_both_endpoints(self):
        configs = interpolate_configs(np.zeros(2), np.array([1.0, 2.0]), resolution=0.5)
        np.testing.assert_allclose(configs[0], [0.0, 0.0])
        np.testing.assert_allclose(configs[-1], [1.0, 2.0])

    def test_uniform_spacing(self):
        configs = interpolate_configs(np.zeros(2), np.array([2.0, 0.0]), resolution=0.5)
        gaps = np.linalg.norm(np.diff(configs, axis=0), axis=1)
        np.testing.assert_allclose(gaps, gaps[0])
        assert gaps[0] <= 0.5 + 1e-12

    def test_spacing_never_exceeds_resolution(self):
        rng = np.random.default_rng(2)
        for _ in range(20):
            start, end = rng.uniform(-5, 5, 4), rng.uniform(-5, 5, 4)
            configs = interpolate_configs(start, end, resolution=0.7)
            gaps = np.linalg.norm(np.diff(configs, axis=0), axis=1)
            assert np.all(gaps <= 0.7 + 1e-9)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            interpolate_configs(np.zeros(2), np.zeros(3), resolution=0.5)

    def test_high_dim(self):
        configs = interpolate_configs(np.zeros(7), np.ones(7), resolution=0.1)
        assert configs.shape[1] == 7
        assert configs.shape[0] >= 27
