"""Unit tests for axis-aligned bounding boxes."""

import numpy as np
import pytest

from repro.geometry import AABB, aabb_of_points, aabb_union


def box(lo, hi):
    return AABB(np.asarray(lo, dtype=float), np.asarray(hi, dtype=float))


class TestConstruction:
    def test_rejects_inverted_corners(self):
        with pytest.raises(ValueError):
            box([1.0, 0.0], [0.0, 1.0])

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            AABB(np.zeros(2), np.ones(3))

    def test_from_center_round_trips(self):
        b = AABB.from_center([5.0, 5.0, 5.0], [1.0, 2.0, 3.0])
        np.testing.assert_allclose(b.center, [5.0, 5.0, 5.0])
        np.testing.assert_allclose(b.half_extents, [1.0, 2.0, 3.0])

    def test_from_center_rejects_negative_half_extents(self):
        with pytest.raises(ValueError):
            AABB.from_center([0.0, 0.0], [-1.0, 1.0])

    def test_degenerate_box_allowed(self):
        b = box([1.0, 1.0], [1.0, 1.0])
        assert b.volume() == 0.0
        assert b.contains_point(np.array([1.0, 1.0]))


class TestGeometryQueries:
    def test_volume_2d(self):
        assert box([0, 0], [2, 3]).volume() == pytest.approx(6.0)

    def test_volume_3d(self):
        assert box([0, 0, 0], [2, 3, 4]).volume() == pytest.approx(24.0)

    def test_margin(self):
        assert box([0, 0, 0], [2, 3, 4]).margin() == pytest.approx(9.0)

    def test_contains_point_boundary(self):
        b = box([0, 0], [1, 1])
        assert b.contains_point(np.array([1.0, 0.0]))
        assert not b.contains_point(np.array([1.0001, 0.0]))

    def test_contains_aabb(self):
        outer = box([0, 0], [10, 10])
        inner = box([1, 1], [2, 2])
        assert outer.contains_aabb(inner)
        assert not inner.contains_aabb(outer)

    def test_corners_count_and_membership(self):
        b = box([0, 0, 0], [1, 2, 3])
        corners = b.corners()
        assert corners.shape == (8, 3)
        for corner in corners:
            assert b.contains_point(corner)


class TestIntersection:
    def test_overlapping(self):
        assert box([0, 0], [2, 2]).intersects(box([1, 1], [3, 3]))

    def test_touching_counts_as_intersecting(self):
        assert box([0, 0], [1, 1]).intersects(box([1, 0], [2, 1]))

    def test_disjoint(self):
        assert not box([0, 0], [1, 1]).intersects(box([2, 2], [3, 3]))

    def test_disjoint_on_one_axis_only(self):
        # Overlap in x, gap in y.
        assert not box([0, 0], [5, 1]).intersects(box([1, 2], [2, 3]))

    def test_intersection_is_symmetric(self):
        a, b = box([0, 0], [2, 2]), box([1, 1], [3, 3])
        assert a.intersects(b) == b.intersects(a)


class TestUnionAndEnlargement:
    def test_union_covers_both(self):
        a, b = box([0, 0], [1, 1]), box([2, 2], [3, 3])
        u = a.union(b)
        assert u.contains_aabb(a) and u.contains_aabb(b)

    def test_expanded_to_interior_point_is_noop(self):
        b = box([0, 0], [2, 2])
        e = b.expanded_to(np.array([1.0, 1.0]))
        np.testing.assert_allclose(e.lo, b.lo)
        np.testing.assert_allclose(e.hi, b.hi)

    def test_enlargement_zero_for_contained_point(self):
        assert box([0, 0], [2, 2]).enlargement(np.array([1.0, 1.0])) == pytest.approx(0.0)

    def test_enlargement_positive_for_outside_point(self):
        assert box([0, 0], [2, 2]).enlargement(np.array([4.0, 1.0])) > 0.0

    def test_aabb_of_points(self):
        pts = np.array([[0.0, 5.0], [2.0, 1.0], [-1.0, 3.0]])
        b = aabb_of_points(pts)
        np.testing.assert_allclose(b.lo, [-1.0, 1.0])
        np.testing.assert_allclose(b.hi, [2.0, 5.0])

    def test_aabb_of_points_rejects_empty(self):
        with pytest.raises(ValueError):
            aabb_of_points(np.empty((0, 2)))

    def test_aabb_union_multiple(self):
        boxes = [box([0, 0], [1, 1]), box([5, -2], [6, 0]), box([2, 2], [3, 9])]
        u = aabb_union(boxes)
        np.testing.assert_allclose(u.lo, [0.0, -2.0])
        np.testing.assert_allclose(u.hi, [6.0, 9.0])

    def test_aabb_union_rejects_empty(self):
        with pytest.raises(ValueError):
            aabb_union([])
