"""Unit tests for oriented bounding boxes."""

import math

import numpy as np
import pytest

from repro.geometry import AABB, OBB, obb_from_aabb
from repro.geometry.rotations import random_rotation_3d, rotation_2d, rotation_from_euler


class TestConstruction:
    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            OBB(np.zeros(1), np.ones(1), np.eye(1))

    def test_rejects_negative_extents(self):
        with pytest.raises(ValueError):
            OBB(np.zeros(3), np.array([1.0, -1.0, 1.0]), np.eye(3))

    def test_rejects_rotation_shape_mismatch(self):
        with pytest.raises(ValueError):
            OBB(np.zeros(3), np.ones(3), np.eye(2))

    def test_dim_property(self):
        assert OBB(np.zeros(2), np.ones(2), np.eye(2)).dim == 2
        assert OBB(np.zeros(3), np.ones(3), np.eye(3)).dim == 3


class TestCornersAndContainment:
    def test_axis_aligned_corners(self):
        b = OBB(np.zeros(2), np.array([1.0, 2.0]), np.eye(2))
        corners = b.corners()
        assert corners.shape == (4, 2)
        assert set(map(tuple, np.round(corners, 9))) == {
            (-1.0, -2.0),
            (1.0, -2.0),
            (-1.0, 2.0),
            (1.0, 2.0),
        }

    def test_rotated_corners_are_contained(self):
        b = OBB(np.array([5.0, 5.0]), np.array([2.0, 1.0]), rotation_2d(0.7))
        for corner in b.corners():
            assert b.contains_point(corner)

    def test_contains_center(self):
        b = OBB(np.array([1.0, 2.0, 3.0]), np.ones(3), rotation_from_euler(0.5, 0.2, 0.1))
        assert b.contains_point(b.center)

    def test_does_not_contain_far_point(self):
        b = OBB(np.zeros(3), np.ones(3), np.eye(3))
        assert not b.contains_point(np.array([10.0, 0.0, 0.0]))

    def test_volume(self):
        b = OBB(np.zeros(3), np.array([1.0, 2.0, 3.0]), random_rotation_3d(np.random.default_rng(1)))
        assert b.volume() == pytest.approx(48.0)


class TestToAABB:
    def test_identity_rotation_matches(self):
        b = OBB(np.array([1.0, 2.0]), np.array([3.0, 4.0]), np.eye(2))
        aabb = b.to_aabb()
        np.testing.assert_allclose(aabb.lo, [-2.0, -2.0])
        np.testing.assert_allclose(aabb.hi, [4.0, 6.0])

    def test_aabb_contains_all_corners(self):
        rng = np.random.default_rng(7)
        for _ in range(25):
            b = OBB(rng.uniform(-5, 5, 3), rng.uniform(0.1, 3, 3), random_rotation_3d(rng))
            aabb = b.to_aabb()
            for corner in b.corners():
                assert aabb.contains_point(corner)

    def test_aabb_is_tight(self):
        # A 45-degree rotated unit square has a sqrt(2)-halfwidth AABB.
        b = OBB(np.zeros(2), np.ones(2), rotation_2d(math.pi / 4))
        np.testing.assert_allclose(b.to_aabb().half_extents, [math.sqrt(2)] * 2, atol=1e-12)


class TestValueLayout:
    def test_3d_round_trip_is_15_values(self):
        b = OBB(np.array([1.0, 2.0, 3.0]), np.array([4.0, 5.0, 6.0]), rotation_from_euler(0.3))
        values = b.to_values()
        assert values.shape == (15,)
        back = OBB.from_values(values, dim=3)
        np.testing.assert_allclose(back.center, b.center)
        np.testing.assert_allclose(back.rotation, b.rotation)

    def test_2d_round_trip_is_8_values(self):
        b = OBB(np.array([1.0, 2.0]), np.array([3.0, 4.0]), rotation_2d(1.0))
        values = b.to_values()
        assert values.shape == (8,)
        back = OBB.from_values(values, dim=2)
        np.testing.assert_allclose(back.half_extents, b.half_extents)

    def test_from_values_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            OBB.from_values(np.zeros(10), dim=3)


class TestTransformed:
    def test_translation_moves_center(self):
        b = OBB(np.zeros(3), np.ones(3), np.eye(3))
        t = b.transformed(np.eye(3), np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(t.center, [1.0, 2.0, 3.0])

    def test_rotation_composes(self):
        b = OBB(np.array([1.0, 0.0, 0.0]), np.ones(3), np.eye(3))
        r = rotation_from_euler(math.pi / 2)
        t = b.transformed(r, np.zeros(3))
        np.testing.assert_allclose(t.center, [0.0, 1.0, 0.0], atol=1e-12)
        np.testing.assert_allclose(t.rotation, r, atol=1e-12)

    def test_transformed_preserves_validity(self):
        rng = np.random.default_rng(3)
        b = OBB(np.zeros(3), np.ones(3), random_rotation_3d(rng))
        t = b.transformed(random_rotation_3d(rng), rng.uniform(-5, 5, 3))
        assert t.is_valid()


class TestObbFromAabb:
    def test_round_trip(self):
        aabb = AABB(np.array([0.0, 1.0]), np.array([4.0, 5.0]))
        b = obb_from_aabb(aabb)
        np.testing.assert_allclose(b.center, [2.0, 3.0])
        np.testing.assert_allclose(b.half_extents, [2.0, 2.0])
        back = b.to_aabb()
        np.testing.assert_allclose(back.lo, aabb.lo)
        np.testing.assert_allclose(back.hi, aabb.hi)
