"""Unit and property tests for the SAT collision kernels.

The property tests validate the SAT implementation against a dense
point-sampling ground truth: if any sampled point of box A lies inside box B
(or vice versa), SAT must report intersection.  The converse (SAT says
intersect but sampling finds no shared point) is only checked with a margin,
since thin overlaps can slip between samples.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import AABB, OBB
from repro.geometry.sat import (
    aabb_intersects_aabb,
    aabb_intersects_obb,
    obb_intersects_obb,
    sat_axis_count,
)
from repro.geometry.rotations import random_rotation_3d, rotation_2d, rotation_from_euler


def unit_obb(center, rotation=None, dim=3, half=1.0):
    center = np.asarray(center, dtype=float)
    rotation = rotation if rotation is not None else np.eye(dim)
    return OBB(center, np.full(dim, half), rotation)


class TestAxisCount:
    def test_3d_is_15(self):
        assert sat_axis_count(3, aligned=False) == 15
        assert sat_axis_count(3, aligned=True) == 15

    def test_2d_is_4(self):
        assert sat_axis_count(2, aligned=False) == 4

    def test_rejects_other_dims(self):
        with pytest.raises(ValueError):
            sat_axis_count(4, aligned=False)


class TestObbObb3D:
    def test_identical_boxes_intersect(self):
        a = unit_obb([0, 0, 0])
        assert obb_intersects_obb(a, a)

    def test_far_apart_disjoint(self):
        assert not obb_intersects_obb(unit_obb([0, 0, 0]), unit_obb([10, 0, 0]))

    def test_face_touching_intersects(self):
        assert obb_intersects_obb(unit_obb([0, 0, 0]), unit_obb([2.0, 0, 0]))

    def test_just_separated(self):
        assert not obb_intersects_obb(unit_obb([0, 0, 0]), unit_obb([2.001, 0, 0]))

    def test_rotated_corner_overlap(self):
        # 45-degree rotated box reaches sqrt(2) along x: centres 2.4 apart overlap.
        r = rotation_from_euler(math.pi / 4)
        a = unit_obb([0, 0, 0])
        b = unit_obb([2.4, 0, 0], rotation=r)
        assert obb_intersects_obb(a, b)

    def test_rotated_diagonal_separation(self):
        # Same rotation but centres 2.5 apart: 1 + sqrt(2) = 2.414 < 2.5.
        r = rotation_from_euler(math.pi / 4)
        a = unit_obb([0, 0, 0])
        b = unit_obb([2.5, 0, 0], rotation=r)
        assert not obb_intersects_obb(a, b)

    def test_edge_cross_axis_case(self):
        # A classic case only resolvable via an edge-edge cross-product axis:
        # two long thin rods rotated to pass near each other.
        a = OBB(np.zeros(3), np.array([5.0, 0.1, 0.1]), np.eye(3))
        b = OBB(
            np.array([0.0, 0.0, 0.5]),
            np.array([5.0, 0.1, 0.1]),
            rotation_from_euler(math.pi / 2),
        )
        assert not obb_intersects_obb(a, b)
        b_touching = OBB(
            np.array([0.0, 0.0, 0.15]),
            np.array([5.0, 0.1, 0.1]),
            rotation_from_euler(math.pi / 2),
        )
        assert obb_intersects_obb(a, b_touching)

    def test_containment_counts_as_intersection(self):
        outer = OBB(np.zeros(3), np.full(3, 5.0), np.eye(3))
        inner = unit_obb([0.5, 0.5, 0.5], rotation=rotation_from_euler(1.0))
        assert obb_intersects_obb(outer, inner)

    def test_symmetry(self):
        rng = np.random.default_rng(11)
        for _ in range(30):
            a = OBB(rng.uniform(-3, 3, 3), rng.uniform(0.2, 2, 3), random_rotation_3d(rng))
            b = OBB(rng.uniform(-3, 3, 3), rng.uniform(0.2, 2, 3), random_rotation_3d(rng))
            assert obb_intersects_obb(a, b) == obb_intersects_obb(b, a)

    def test_dim_mismatch_raises(self):
        with pytest.raises(ValueError):
            obb_intersects_obb(unit_obb([0, 0, 0]), unit_obb([0, 0], dim=2))


class TestObbObb2D:
    def test_identical_boxes_intersect(self):
        a = unit_obb([0, 0], dim=2)
        assert obb_intersects_obb(a, a)

    def test_disjoint(self):
        assert not obb_intersects_obb(unit_obb([0, 0], dim=2), unit_obb([5, 5], dim=2))

    def test_rotated_diamond_gap(self):
        # Diamond (45 deg) next to a square: diagonal reach sqrt(2).
        a = unit_obb([0, 0], dim=2)
        b = unit_obb([2.5, 0], dim=2, rotation=rotation_2d(math.pi / 4))
        assert not obb_intersects_obb(a, b)
        b_close = unit_obb([2.3, 0], dim=2, rotation=rotation_2d(math.pi / 4))
        assert obb_intersects_obb(a, b_close)


class TestAabbObb:
    def test_matches_obb_obb_for_identity(self):
        rng = np.random.default_rng(5)
        for _ in range(40):
            aabb = AABB(rng.uniform(-4, 0, 3), rng.uniform(0.5, 4, 3))
            obb = OBB(rng.uniform(-3, 3, 3), rng.uniform(0.2, 2, 3), random_rotation_3d(rng))
            via_obb = obb_intersects_obb(
                OBB(aabb.center, aabb.half_extents, np.eye(3)), obb
            )
            assert aabb_intersects_obb(aabb, obb) == via_obb

    def test_2d_variant(self):
        aabb = AABB(np.array([0.0, 0.0]), np.array([2.0, 2.0]))
        inside = unit_obb([1.0, 1.0], dim=2, rotation=rotation_2d(0.3), half=0.2)
        outside = unit_obb([5.0, 5.0], dim=2, half=0.2)
        assert aabb_intersects_obb(aabb, inside)
        assert not aabb_intersects_obb(aabb, outside)

    def test_conservative_vs_obb_check(self):
        """An OBB intersecting an obstacle's OBB must intersect its AABB too."""
        rng = np.random.default_rng(9)
        for _ in range(50):
            obstacle = OBB(rng.uniform(-3, 3, 3), rng.uniform(0.2, 2, 3), random_rotation_3d(rng))
            robot = OBB(rng.uniform(-3, 3, 3), rng.uniform(0.2, 2, 3), random_rotation_3d(rng))
            if obb_intersects_obb(obstacle, robot):
                assert aabb_intersects_obb(obstacle.to_aabb(), robot)

    def test_dim_mismatch_raises(self):
        with pytest.raises(ValueError):
            aabb_intersects_obb(AABB(np.zeros(2), np.ones(2)), unit_obb([0, 0, 0]))


class TestAabbAabb:
    def test_agrees_with_method(self):
        a = AABB(np.zeros(3), np.ones(3))
        b = AABB(np.full(3, 0.5), np.full(3, 1.5))
        assert aabb_intersects_aabb(a, b) == a.intersects(b) is True


@st.composite
def random_obb_3d(draw):
    rng_seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(rng_seed)
    center = np.array([draw(st.floats(-3, 3)) for _ in range(3)])
    half = np.array([draw(st.floats(0.3, 2.0)) for _ in range(3)])
    return OBB(center, half, random_rotation_3d(rng))


@settings(max_examples=60, deadline=None)
@given(random_obb_3d(), random_obb_3d())
def test_sat_never_misses_sampled_overlap(a, b):
    """Property: if dense sampling finds a shared point, SAT must agree."""
    result = obb_intersects_obb(a, b)
    grid = np.linspace(-1.0, 1.0, 5)
    pts = np.array([[x, y, z] for x in grid for y in grid for z in grid])
    a_pts = a.center + (a.rotation @ (pts * a.half_extents).T).T
    b_pts = b.center + (b.rotation @ (pts * b.half_extents).T).T
    sampled_overlap = any(b.contains_point(p) for p in a_pts) or any(
        a.contains_point(p) for p in b_pts
    )
    if sampled_overlap:
        assert result


@settings(max_examples=60, deadline=None)
@given(random_obb_3d(), random_obb_3d())
def test_aabb_filter_is_conservative(a, b):
    """Property: the first-stage AABB check never rejects a true collision."""
    if obb_intersects_obb(a, b):
        assert aabb_intersects_obb(a.to_aabb(), b)
