"""Unit and property tests for MINDIST."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import AABB, mindist_point_to_rect, mindist_sq_point_to_rect
from repro.geometry.mindist import mindist_sq_point_to_rects


def rect(lo, hi):
    return AABB(np.asarray(lo, dtype=float), np.asarray(hi, dtype=float))


class TestMindistBasics:
    def test_zero_inside(self):
        assert mindist_sq_point_to_rect(np.array([0.5, 0.5]), rect([0, 0], [1, 1])) == 0.0

    def test_zero_on_boundary(self):
        assert mindist_sq_point_to_rect(np.array([1.0, 0.5]), rect([0, 0], [1, 1])) == 0.0

    def test_axis_gap(self):
        assert mindist_point_to_rect(np.array([3.0, 0.5]), rect([0, 0], [1, 1])) == pytest.approx(2.0)

    def test_corner_gap(self):
        d = mindist_point_to_rect(np.array([2.0, 2.0]), rect([0, 0], [1, 1]))
        assert d == pytest.approx(np.sqrt(2.0))

    def test_high_dimension(self):
        point = np.full(7, 2.0)
        r = rect(np.zeros(7), np.ones(7))
        assert mindist_point_to_rect(point, r) == pytest.approx(np.sqrt(7.0))

    def test_dim_mismatch_raises(self):
        with pytest.raises(ValueError):
            mindist_sq_point_to_rect(np.zeros(3), rect([0, 0], [1, 1]))


class TestVectorised:
    def test_matches_scalar(self):
        rng = np.random.default_rng(0)
        lo = rng.uniform(-5, 0, size=(20, 4))
        hi = lo + rng.uniform(0.1, 3, size=(20, 4))
        point = rng.uniform(-6, 6, size=4)
        batched = mindist_sq_point_to_rects(point, lo, hi)
        for i in range(20):
            scalar = mindist_sq_point_to_rect(point, AABB(lo[i], hi[i]))
            assert batched[i] == pytest.approx(scalar)


@st.composite
def point_and_rect(draw):
    dim = draw(st.integers(min_value=2, max_value=7))
    lo = np.array([draw(st.floats(-10, 10)) for _ in range(dim)])
    size = np.array([draw(st.floats(0.01, 5)) for _ in range(dim)])
    point = np.array([draw(st.floats(-15, 15)) for _ in range(dim)])
    return point, AABB(lo, lo + size)


@settings(max_examples=100, deadline=None)
@given(point_and_rect())
def test_mindist_lower_bounds_all_interior_points(data):
    """Property: MINDIST <= distance to every point in the rectangle.

    This is the invariant that makes SI-MBR-Tree subtree pruning exact
    (Section III-B).
    """
    point, box = data
    md_sq = mindist_sq_point_to_rect(point, box)
    rng = np.random.default_rng(0)
    samples = rng.uniform(box.lo, box.hi, size=(50, box.dim))
    dists_sq = np.sum((samples - point) ** 2, axis=1)
    assert md_sq <= dists_sq.min() + 1e-9


@settings(max_examples=100, deadline=None)
@given(point_and_rect())
def test_mindist_is_achieved_by_clamp(data):
    """Property: MINDIST equals the distance to the clamped point."""
    point, box = data
    clamped = np.clip(point, box.lo, box.hi)
    expected = float(np.sum((point - clamped) ** 2))
    assert mindist_sq_point_to_rect(point, box) == pytest.approx(expected)
