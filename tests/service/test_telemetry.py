"""Unit tests for telemetry records, percentiles, and the summary schema."""

import json

import pytest

from repro.service.request import PlanResponse
from repro.service.telemetry import (
    JobRecord,
    TelemetrySink,
    percentile,
    record_from_response,
)


class TestPercentile:
    def test_empty_is_none(self):
        assert percentile([], 50.0) is None

    def test_single_value(self):
        assert percentile([3.0], 95.0) == pytest.approx(3.0)

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == pytest.approx(2.5)

    def test_matches_numpy_linear(self):
        import numpy as np

        values = [0.3, 1.7, 0.1, 4.2, 2.8, 0.9, 3.3]
        for q in (0.0, 25.0, 50.0, 95.0, 100.0):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


def make_record(status="ok", cache_hit=False, plan=0.1, wait=0.0, **over):
    fields = dict(
        job_id=0, request_id="r", status=status, cache_hit=cache_hit,
        attempts=1, worker_id=0, queue_wait_s=wait, plan_seconds=plan,
        wall_seconds=plan + wait, success=status == "ok", path_cost=1.0,
        iterations=10, num_nodes=5, total_macs=100.0,
        collision_check_macs=60.0, neighbor_search_macs=30.0, samples=10,
    )
    fields.update(over)
    return JobRecord(**fields)


class TestSummary:
    def test_counts_and_failures(self):
        sink = TelemetrySink()
        sink.record(make_record())
        sink.record(make_record(status="timeout"))
        sink.record(make_record(status="crash"))
        summary = sink.summary()
        assert summary["jobs"] == 3 and summary["ok"] == 1
        assert summary["failed"] == {"timeout": 1, "crash": 1}

    def test_cache_hits_excluded_from_plan_latency(self):
        sink = TelemetrySink()
        sink.record(make_record(plan=1.0))
        sink.record(make_record(plan=1.0, cache_hit=True))
        latency = sink.summary()["latency_s"]["plan"]
        assert latency["max"] == pytest.approx(1.0)
        # ops count served work (hit included), ops_executed only real runs
        summary = sink.summary()
        assert summary["ops"]["total_macs"] == pytest.approx(200.0)
        assert summary["ops_executed"]["total_macs"] == pytest.approx(100.0)

    def test_percentile_block(self):
        sink = TelemetrySink()
        for plan in (0.1, 0.2, 0.3, 0.4):
            sink.record(make_record(plan=plan))
        block = sink.summary()["latency_s"]["plan"]
        assert block["p50"] == pytest.approx(0.25)
        assert block["p95"] == pytest.approx(0.385)
        assert block["max"] == pytest.approx(0.4)

    def test_summary_is_json_serialisable(self, tmp_path):
        sink = TelemetrySink()
        sink.record(make_record())
        path = tmp_path / "telemetry.json"
        sink.dump(path, cache_stats={"hits": 0}, pool_stats={"count": 1})
        payload = json.loads(path.read_text())
        assert payload["jobs"] == 1
        assert len(payload["records"]) == 1
        assert payload["records"][0]["status"] == "ok"

    def test_dump_is_schema_stamped(self, tmp_path):
        # Version + emitter identity let repro.obs.rca reject or upgrade
        # mismatched dumps instead of mis-parsing them.
        sink = TelemetrySink()
        sink.record(make_record())
        path = tmp_path / "telemetry.json"
        sink.dump(path)
        payload = json.loads(path.read_text())
        assert payload["schema"] == 1
        assert payload["emitter"] == "repro.service.telemetry"

    def test_empty_sink_summary(self):
        summary = TelemetrySink().summary()
        assert summary["jobs"] == 0
        assert summary["planning_success_rate"] is None
        assert summary["latency_s"]["plan"]["p50"] is None


class TestRecordFromResponse:
    def test_category_macs_extracted(self):
        response = PlanResponse(
            request_id="r", status="ok", success=True,
            op_events={"sample": 12, "dist": 5, "sat_obb_obb": 2},
            op_macs={"sample": 24.0, "dist": 15.0, "sat_obb_obb": 48.0},
            plan_seconds=0.5,
        )
        record = record_from_response(response, job_id=7, queue_wait_s=0.1)
        assert record.job_id == 7
        assert record.samples == 12
        assert record.neighbor_search_macs == pytest.approx(15.0)
        assert record.collision_check_macs == pytest.approx(48.0)
        assert record.total_macs == pytest.approx(87.0)
        assert record.attributes == {}  # no request in scope

    def test_request_attributes_flattened_onto_the_record(self):
        from repro.core.moped import config_for_variant
        from repro.service.request import PlanRequest
        from repro.service.telemetry import request_attributes
        from repro.workloads import random_task

        task = random_task("mobile2d", 4, seed=0)
        config = config_for_variant("full", max_samples=30, seed=0)
        request = PlanRequest(task=task, config=config)
        attrs = request_attributes(request)
        assert attrs["robot"] == "mobile2d"
        assert attrs["obstacles"] == "4"
        assert attrs["fault"] == "clean"
        assert attrs["mode"] in ("scalar", "wave")
        response = PlanResponse(request_id=request.request_id, status="ok",
                                success=True, plan_seconds=0.1)
        record = record_from_response(response, request=request)
        assert record.attributes == attrs
