"""Unit tests for job lifecycle bookkeeping and the eligibility queue."""

import pytest

from repro.service.jobs import PENDING, Job, JobQueue
from tests.service.test_request import make_request


class TestJobQueue:
    def test_fifo_among_eligible(self):
        queue = JobQueue()
        a = queue.submit(make_request(seed=0), now=10.0)
        b = queue.submit(make_request(seed=1), now=10.0)
        assert queue.pop_ready(10.0) is a
        assert queue.pop_ready(10.0) is b
        assert queue.pop_ready(10.0) is None

    def test_backoff_delays_eligibility(self):
        queue = JobQueue()
        job = queue.submit(make_request(seed=0), now=10.0)
        queue.pop_ready(10.0)
        queue.requeue(job, delay=0.5, now=10.0)
        assert job.state == PENDING
        assert queue.pop_ready(10.2) is None  # still backing off
        assert queue.next_eligible_in(10.2) == pytest.approx(0.3)
        assert queue.pop_ready(10.6) is job

    def test_delayed_job_yields_to_fresh_work(self):
        queue = JobQueue()
        delayed = queue.submit(make_request(seed=0), now=10.0)
        queue.pop_ready(10.0)
        queue.requeue(delayed, delay=1.0, now=10.0)
        fresh = queue.submit(make_request(seed=1), now=10.1)
        assert queue.pop_ready(10.2) is fresh
        assert queue.pop_ready(12.0) is delayed

    def test_len_counts_pending_only(self):
        queue = JobQueue()
        queue.submit(make_request(seed=0), now=0.0)
        job = queue.submit(make_request(seed=1), now=0.0)
        assert len(queue) == 2
        queue.pop_ready(0.0)
        assert len(queue) == 1
        queue.requeue(job, delay=5.0, now=0.0)
        assert len(queue) == 2  # delayed jobs still count as pending

    def test_next_eligible_empty(self):
        assert JobQueue().next_eligible_in(0.0) is None


class TestJobTimings:
    def test_queue_wait_and_wall(self):
        job = Job(job_id=0, request=make_request(), submitted_at=5.0)
        assert job.queue_wait_s == 0.0 and job.wall_seconds == 0.0
        job.dispatched_at = 5.25
        job.finished_at = 6.0
        assert job.queue_wait_s == pytest.approx(0.25)
        assert job.wall_seconds == pytest.approx(1.0)
