"""Pool robustness under injected faults: transport corruption, the
crash-after-send shutdown race, poison quarantine, the circuit breaker,
dispatch double-failure, and the retry/backoff arithmetic."""

import time
from dataclasses import replace

import pytest

from repro.faults import FaultPlan
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.service.jobs import JobQueue
from repro.service.pool import PoolConfig, WorkerPool, _Slot
from repro.service.request import PlanRequest
from tests.service.test_request import make_request

FAST = dict(default_timeout_s=20.0, max_retries=1,
            backoff_base_s=0.01, poll_interval_s=0.01)


def run_pool(requests, **config_overrides):
    config = PoolConfig(**{**dict(num_workers=2), **FAST, **config_overrides})
    queue = JobQueue()
    for request in requests:
        queue.submit(request, time.monotonic())
    with WorkerPool(config) as pool:
        done = pool.run(queue)
    return done, pool


def by_request_id(jobs):
    return {job.request.request_id: job for job in jobs}


class TestTransportFaults:
    def test_corrupt_payload_is_classified_as_crash_and_retried(self):
        # The worker pickles garbage onto the pipe every attempt; the
        # supervisor must discard the channel, classify as crash, retry,
        # and finally settle — never raise or hang.
        done, pool = run_pool(
            [make_request(seed=1, request_id="bad", fault="corrupt"),
             make_request(seed=2, request_id="good")],
            poison_threshold=0,
        )
        jobs = by_request_id(done)
        assert jobs["good"].response.status == "ok"
        assert jobs["bad"].response.status == "crash"
        assert jobs["bad"].attempts == 2  # initial + one retry
        assert pool.counters["corrupt_payloads"] == 2
        assert pool.counters["crashes"] == 2
        assert pool.restarts >= 2  # corrupted channel discarded wholesale

    def test_crash_after_send_does_not_lose_the_result(self):
        # Regression for the shutdown race: a worker killed between
        # writing its result and the supervisor reading it must not lose
        # the job — the buffered pipe message is still readable.
        done, pool = run_pool(
            [make_request(seed=1, request_id="kamikaze",
                          fault="crash_after_send")]
        )
        response = done[0].response
        assert response.status == "ok"
        assert response.success is not None
        assert done[0].attempts == 1  # the result, not a crash retry

    def test_wrong_id_message_is_dropped_and_deadline_reaps(self):
        done, pool = run_pool(
            [make_request(seed=1, request_id="mislabelled", fault="wrong_id",
                          timeout_s=0.5)]
        )
        assert done[0].response.status == "timeout"
        assert pool.counters["timeouts"] == 1

    def test_dropped_result_times_out(self):
        done, _ = run_pool(
            [make_request(seed=1, request_id="lost", fault="drop",
                          timeout_s=0.5)]
        )
        assert done[0].response.status == "timeout"

    def test_duplicate_send_settles_exactly_once(self):
        requests = [
            make_request(seed=1, request_id="twice", fault="duplicate"),
            make_request(seed=2, request_id="after"),
        ]
        done, _ = run_pool(requests, num_workers=1)  # same pipe serves both
        assert len(done) == 2
        jobs = by_request_id(done)
        assert jobs["twice"].response.status == "ok"
        assert jobs["after"].response.status == "ok"


class TestPoisonQuarantine:
    def test_worker_killing_job_is_dead_lettered(self):
        done, pool = run_pool(
            [make_request(seed=1, request_id="poison", fault="crash"),
             make_request(seed=2, request_id="healthy")],
            max_retries=5, poison_threshold=2,
        )
        jobs = by_request_id(done)
        assert jobs["healthy"].response.status == "ok"
        assert jobs["poison"].response.status == "poison"
        assert jobs["poison"].crash_count == 2  # quarantined at threshold
        assert len(pool.dead_letters) == 1
        assert pool.counters["poisoned"] == 1
        assert pool.stats()["dead_letters"] == 1

    def test_zero_threshold_disables_quarantine(self):
        done, pool = run_pool(
            [make_request(seed=1, request_id="crashy", fault="crash")],
            max_retries=2, poison_threshold=0,
        )
        assert done[0].response.status == "crash"  # retries exhausted
        assert done[0].attempts == 3
        assert not pool.dead_letters

    def test_quarantine_preempts_retry_only(self):
        # With max_retries=1 the retry policy gives up before the poison
        # threshold matters — existing behaviour is unchanged.
        done, pool = run_pool(
            [make_request(seed=1, request_id="crashy", fault="crash")],
            max_retries=1, poison_threshold=2,
        )
        assert done[0].response.status == "crash"
        assert not pool.dead_letters


class TestCircuitBreaker:
    def test_unit_state_machine(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=10.0)
        assert breaker.enabled
        assert breaker.state == CLOSED
        assert breaker.allow(0.0)
        breaker.record_failure(0.0)
        assert breaker.state == CLOSED
        breaker.record_failure(1.0)
        assert breaker.state == OPEN
        assert breaker.trips == 1
        assert not breaker.allow(5.0)       # cooling down
        assert breaker.allow(11.5)          # cooldown over -> half-open probe
        assert breaker.state == HALF_OPEN
        breaker.record_failure(12.0)        # probe failed -> open again
        assert breaker.state == OPEN
        assert breaker.trips == 2
        assert breaker.allow(23.0)
        breaker.record_success()            # probe succeeded -> closed
        assert breaker.state == CLOSED
        snapshot = breaker.snapshot()
        assert snapshot["state"] == CLOSED and snapshot["trips"] == 2

    def test_disabled_by_default(self):
        breaker = CircuitBreaker()
        assert not breaker.enabled
        for _ in range(50):
            breaker.record_failure(0.0)
        assert breaker.state == CLOSED
        assert breaker.allow(0.0)

    def test_tripped_breaker_delays_but_never_drops_jobs(self):
        # Two error jobs trip the breaker; the healthy jobs behind them
        # must still run to completion once the cooldown passes.
        requests = [
            make_request(seed=1, request_id="bad-0", fault="error"),
            make_request(seed=2, request_id="bad-1", fault="error"),
            make_request(seed=3, request_id="ok-0"),
            make_request(seed=4, request_id="ok-1"),
        ]
        done, pool = run_pool(
            requests, num_workers=1, max_retries=0,
            breaker_threshold=2, breaker_cooldown_s=0.05,
        )
        assert len(done) == 4
        jobs = by_request_id(done)
        assert jobs["ok-0"].response.status == "ok"
        assert jobs["ok-1"].response.status == "ok"
        assert pool.counters["breaker_trips"] >= 1
        assert pool.stats()["breaker"]["trips"] >= 1


class _DeadConn:
    """A pipe end whose sends always fail (worker died during handshake)."""

    def send(self, obj):
        raise BrokenPipeError

    def close(self):
        pass


class _DeadProcess:
    def is_alive(self):
        return False

    def terminate(self):
        pass

    def kill(self):
        pass

    def join(self, timeout=None):
        pass


class TestDispatchDoubleFailure:
    def test_job_is_requeued_not_lost(self, monkeypatch):
        # Both the original worker and its respawned replacement die
        # during the dispatch handshake: the attempt must be undone and
        # the job requeued (the every-job-terminal invariant), never
        # dropped on the floor.
        monkeypatch.setattr(
            WorkerPool, "_spawn",
            lambda self, worker_id: _Slot(worker_id, _DeadProcess(), _DeadConn()),
        )
        pool = WorkerPool(PoolConfig(num_workers=1, **FAST))
        queue = JobQueue()
        now = time.monotonic()
        queue.submit(make_request(seed=1, request_id="unlucky"), now)
        job = queue.pop_ready(now)
        slot = pool._slots[0]
        pool._dispatch(slot, job, now, queue)
        assert job.attempts == 0             # the attempt was undone
        assert slot.job is None              # the slot is free again
        assert len(queue) == 1               # the job is back in the queue
        assert pool.counters["dispatch_failures"] == 1
        requeued = queue.pop_ready(now + 1.0)
        assert requeued is job


class TestRetryArithmetic:
    def test_should_retry_respects_status_list(self):
        config = PoolConfig(num_workers=1, max_retries=2)
        assert config.should_retry("crash", 1)
        assert config.should_retry("error", 2)
        assert not config.should_retry("timeout", 1)   # excluded by default
        assert not config.should_retry("invalid", 1)
        assert not config.should_retry("ok", 1)

    def test_should_retry_attempt_boundary(self):
        config = PoolConfig(num_workers=1, max_retries=2)
        assert config.should_retry("crash", 2)      # attempts == max_retries
        assert not config.should_retry("crash", 3)  # budget spent

    def test_zero_retries_never_retries(self):
        config = PoolConfig(num_workers=1, max_retries=0)
        assert not config.should_retry("crash", 1)

    def test_custom_retry_statuses(self):
        config = PoolConfig(num_workers=1, max_retries=1,
                            retry_statuses=("timeout",))
        assert config.should_retry("timeout", 1)
        assert not config.should_retry("crash", 1)
        empty = PoolConfig(num_workers=1, retry_statuses=())
        assert not empty.should_retry("crash", 1)

    def test_backoff_doubles_per_attempt(self):
        config = PoolConfig(num_workers=1, backoff_base_s=0.05)
        assert config.backoff_delay(1) == pytest.approx(0.05)
        assert config.backoff_delay(2) == pytest.approx(0.10)
        assert config.backoff_delay(3) == pytest.approx(0.20)

    def test_backoff_clamps_degenerate_attempts(self):
        config = PoolConfig(num_workers=1, backoff_base_s=0.05)
        assert config.backoff_delay(0) == pytest.approx(0.05)
        assert config.backoff_delay(-3) == pytest.approx(0.05)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PoolConfig(num_workers=1, poison_threshold=-1)
        with pytest.raises(ValueError):
            PoolConfig(num_workers=1, breaker_threshold=-1)
        with pytest.raises(ValueError):
            PoolConfig(num_workers=1, breaker_cooldown_s=0.0)


class TestInstalledFaultPlan:
    def test_worker_scoped_injector_errors_then_recovers(self):
        # p=1, max_fires=1 per worker scope: the first attempt hits the
        # injected error deterministically, the retry (same worker, rule
        # exhausted) succeeds.
        plan = FaultPlan.from_spec("worker.plan:error:max=1", seed=5)
        done, pool = run_pool(
            [make_request(seed=1, request_id="transient")],
            num_workers=1, fault_plan=plan,
        )
        response = done[0].response
        assert response.status == "ok"
        assert done[0].attempts == 2
        assert pool.counters["errors"] == 1
        assert pool.counters["retries"] == 1

    def test_fault_counters_flow_into_metrics_registry(self, tmp_path):
        # The pool's counters bump repro_service_faults_total in the
        # ambient obs registry; the prometheus export and the obs report
        # both surface them.
        from repro import obs
        from repro.obs.report import build_report, render_report
        from repro.obs.metrics import parse_prometheus

        previous = obs.install(
            obs.Tracer(enabled=False), obs.MetricsRegistry(enabled=True)
        )
        try:
            done, pool = run_pool(
                [make_request(seed=1, request_id="crashy", fault="crash")],
                max_retries=1, poison_threshold=0,
            )
            assert done[0].response.status == "crash"
            text = obs.get_registry().to_prometheus()
        finally:
            obs.restore(previous)
        assert 'repro_service_faults_total{event="crashes"} 2' in text
        assert 'repro_service_faults_total{event="retries"} 1' in text
        report = build_report(metrics=parse_prometheus(text))
        assert report["service_faults"]["crashes"] == 2.0
        assert report["service_faults"]["retries"] == 1.0
        rendered = render_report(report)
        assert "service faults" in rendered
        assert "crashes" in rendered
