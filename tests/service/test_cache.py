"""Unit tests for the LRU plan cache."""

import pytest

from repro.service.cache import PlanCache
from repro.service.request import PlanResponse


def response(rid="r", cost=1.0):
    return PlanResponse(request_id=rid, status="ok", success=True, path_cost=cost)


class TestPlanCache:
    def test_miss_then_hit(self):
        cache = PlanCache(capacity=4)
        assert cache.get("k", "a") is None
        cache.put("k", response())
        hit = cache.get("k", "b")
        assert hit is not None and hit.cache_hit and hit.request_id == "b"
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_hit_is_a_copy(self):
        cache = PlanCache(capacity=4)
        cache.put("k", response())
        first = cache.get("k", "a")
        first.path_cost = 999.0
        assert cache.get("k", "b").path_cost == pytest.approx(1.0)

    def test_lru_eviction_order(self):
        cache = PlanCache(capacity=2)
        cache.put("a", response(cost=1.0))
        cache.put("b", response(cost=2.0))
        cache.get("a", "r")  # refresh a; b becomes LRU
        cache.put("c", response(cost=3.0))
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_put_refreshes_existing_key(self):
        cache = PlanCache(capacity=2)
        cache.put("a", response(cost=1.0))
        cache.put("b", response(cost=2.0))
        cache.put("a", response(cost=9.0))  # refresh, not duplicate
        cache.put("c", response(cost=3.0))
        assert "a" in cache and cache.get("a", "r").path_cost == pytest.approx(9.0)
        assert "b" not in cache

    def test_zero_capacity_never_stores(self):
        cache = PlanCache(capacity=0)
        cache.put("a", response())
        assert len(cache) == 0 and cache.get("a", "r") is None

    def test_stats_shape(self):
        cache = PlanCache(capacity=3)
        cache.get("missing", "r")
        stats = cache.stats()
        assert stats == {
            "hits": 0, "misses": 1, "hit_rate": 0.0,
            "size": 0, "capacity": 3, "evictions": 0,
        }

    def test_clear_keeps_counters(self):
        cache = PlanCache(capacity=3)
        cache.put("a", response())
        cache.get("a", "r")
        cache.clear()
        assert len(cache) == 0 and cache.hits == 1
