"""Worker-pool behaviour: fan-out, timeouts, crash recovery, retries."""

import time
from dataclasses import replace

import pytest

from repro.service.jobs import JobQueue
from repro.service.pool import PoolConfig, WorkerPool
from repro.service.request import PlanRequest
from repro.service.worker import execute_request
from tests.service.test_request import make_request

FAST = dict(default_timeout_s=20.0, max_retries=1,
            backoff_base_s=0.01, poll_interval_s=0.01)


def run_pool(requests, **config_overrides):
    config = PoolConfig(**{**dict(num_workers=2), **FAST, **config_overrides})
    queue = JobQueue()
    for request in requests:
        queue.submit(request, time.monotonic())
    with WorkerPool(config) as pool:
        done = pool.run(queue)
    return done, pool


class TestExecuteRequest:
    def test_plans_deterministically(self):
        a = execute_request(make_request(seed=1))
        b = execute_request(make_request(seed=1))
        assert a.status == "ok"
        assert a.path == b.path
        assert a.op_events == b.op_events
        assert a.iterations == b.iterations

    def test_lanes_use_batch_planner(self):
        wide = execute_request(make_request(seed=1, lanes=4))
        assert wide.status == "ok"
        assert wide.op_events["sample"] == 80  # full budget still drawn


class TestFanOut:
    def test_end_to_end_over_eight_tasks(self):
        requests = [make_request(seed=s, request_id=f"job-{s}") for s in range(8)]
        done, pool = run_pool(requests, num_workers=4)
        assert len(done) == 8
        assert all(job.response.status == "ok" for job in done)
        assert pool.restarts == 0
        # Work actually spread across the pool.
        assert len({job.response.worker_id for job in done}) > 1
        # Every job's timings are coherent.
        for job in done:
            assert job.attempts == 1
            assert job.queue_wait_s >= 0.0
            assert job.wall_seconds >= job.response.plan_seconds * 0.5

    def test_pool_results_match_inline_execution(self):
        request = make_request(seed=3)
        done, _ = run_pool([request], num_workers=1)
        pooled = done[0].response
        inline = execute_request(request)
        assert pooled.op_events == inline.op_events
        assert pooled.path == inline.path
        assert pooled.path_cost == inline.path_cost


class TestTimeouts:
    def test_hang_becomes_structured_timeout(self):
        hang = replace(make_request(seed=0, request_id="stuck"), fault="hang",
                       timeout_s=0.4)
        healthy = [make_request(seed=s) for s in (1, 2, 3)]
        done, pool = run_pool([hang] + healthy)
        by_id = {job.request.request_id: job for job in done}
        stuck = by_id["stuck"].response
        assert stuck.status == "timeout"
        assert stuck.success is False
        assert "budget" in stuck.error
        assert pool.restarts == 1  # the hung worker was replaced
        others = [j.response for j in done if j.request.request_id != "stuck"]
        assert all(r.status == "ok" for r in others)

    def test_timeouts_not_retried_by_default(self):
        hang = replace(make_request(seed=0), fault="hang", timeout_s=0.3)
        done, _ = run_pool([hang])
        assert done[0].attempts == 1
        assert done[0].response.status == "timeout"


class TestCrashes:
    def test_crash_exhausts_retries_then_structured_failure(self):
        crash = replace(make_request(seed=0, request_id="boom"), fault="crash")
        healthy = [make_request(seed=s) for s in (1, 2)]
        done, pool = run_pool([crash] + healthy, max_retries=1)
        by_id = {job.request.request_id: job for job in done}
        boom = by_id["boom"]
        assert boom.response.status == "crash"
        assert boom.attempts == 2  # first run + one retry
        assert len(boom.failures) == 2
        assert pool.restarts >= 2
        assert all(j.response.status == "ok"
                   for j in done if j.request.request_id != "boom")

    def test_flaky_crash_recovers_on_retry(self, tmp_path):
        flag = tmp_path / "crash-once"
        flag.touch()
        flaky = replace(make_request(seed=0, request_id="flaky"),
                        fault=f"flaky:{flag}")
        done, pool = run_pool([flaky, make_request(seed=1)])
        by_id = {job.request.request_id: job for job in done}
        assert by_id["flaky"].response.status == "ok"
        assert by_id["flaky"].attempts == 2
        assert not flag.exists()  # first attempt consumed the flag
        assert pool.restarts == 1

    def test_injected_error_is_structured_and_retried(self):
        bad = replace(make_request(seed=0, request_id="err"), fault="error")
        done, pool = run_pool([bad], max_retries=1)
        response = done[0].response
        assert response.status == "error"
        assert "injected worker error" in response.error
        assert done[0].attempts == 2
        assert pool.restarts == 0  # errors don't kill the worker


class TestPoolLifecycle:
    def test_close_is_idempotent_and_run_after_close_raises(self):
        pool = WorkerPool(PoolConfig(num_workers=1, **FAST))
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError):
            pool.run(JobQueue())

    def test_pool_reusable_across_batches(self):
        config = PoolConfig(num_workers=2, **FAST)
        with WorkerPool(config) as pool:
            for seed in (0, 5):
                queue = JobQueue()
                queue.submit(make_request(seed=seed), time.monotonic())
                done = pool.run(queue)
                assert done[0].response.status == "ok"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PoolConfig(num_workers=0)
        with pytest.raises(ValueError):
            PoolConfig(max_retries=-1)
        with pytest.raises(ValueError):
            PoolConfig(default_timeout_s=0.0)
