"""Degraded (anytime) results through the service layer: caching policy,
telemetry, wire round-trip, and the ``--deadline`` CLI plumbing."""

import json
from dataclasses import replace

import pytest

from repro.core.moped import config_for_variant
from repro.service import PlanningService, build_requests
from repro.service.request import PlanResponse
from repro.workloads import random_task
from tests.service.test_request import make_request


def degraded_request(seed=0, request_id=None, **config_overrides):
    # 50k samples cannot finish inside 50 ms: the deadline always expires.
    task = random_task("mobile2d", 6, seed=seed)
    config = config_for_variant(
        "full", max_samples=50_000, seed=seed, deadline_s=0.05,
        **config_overrides,
    )
    fields = dict(task=task, config=config)
    if request_id is not None:
        fields["request_id"] = request_id
    from repro.service.request import PlanRequest

    return PlanRequest(**fields)


class TestDegradedCachePolicy:
    def test_degraded_is_never_cached(self):
        service = PlanningService(num_workers=0)
        first = service.run_batch([degraded_request(seed=4, request_id="a")])[0]
        assert first.status == "degraded"
        assert len(service.cache) == 0
        second = service.run_batch([degraded_request(seed=4, request_id="b")])[0]
        assert second.status == "degraded"
        assert not second.cache_hit
        assert service.cache.stats()["hits"] == 0

    def test_degraded_followers_echo_the_leader(self):
        # Same cache key in one batch: the leader runs, the followers get
        # its degraded response echoed (never marked as cache hits).
        service = PlanningService(num_workers=0)
        batch = [degraded_request(seed=4, request_id=f"r{i}") for i in range(3)]
        responses = service.run_batch(batch)
        assert [r.request_id for r in responses] == ["r0", "r1", "r2"]
        assert all(r.status == "degraded" for r in responses)
        assert not any(r.cache_hit for r in responses)
        assert len(service.cache) == 0
        # The followers carry the leader's planning output verbatim (one
        # run, echoed), relabelled with their own request ids.
        assert responses[1].path == responses[0].path
        assert responses[2].iterations == responses[0].iterations
        assert responses[1].op_events == responses[0].op_events

    def test_complete_result_still_caches_next_to_degraded(self):
        service = PlanningService(num_workers=0)
        batch = [degraded_request(seed=4, request_id="slow"),
                 make_request(seed=5, request_id="fast")]
        responses = service.run_batch(batch)
        assert responses[0].status == "degraded"
        assert responses[1].status == "ok"
        assert len(service.cache) == 1  # only the ok response was stored


class TestDegradedWireFormat:
    def test_response_carries_anytime_fields(self):
        service = PlanningService(num_workers=0)
        response = service.run_batch([degraded_request(seed=4)])[0]
        assert response.status == "degraded"
        assert response.degraded_reason == "deadline"
        assert response.iterations < 50_000
        payload = response.to_dict()
        assert payload["status"] == "degraded"
        assert payload["degraded_reason"] == "deadline"
        back = PlanResponse.from_dict(json.loads(json.dumps(payload)))
        assert back.status == "degraded"
        assert back.degraded_reason == "deadline"
        assert back.best_goal_distance == response.best_goal_distance

    def test_telemetry_counts_degraded_status(self):
        service = PlanningService(num_workers=0)
        service.run_batch([degraded_request(seed=4), make_request(seed=5)])
        summary = service.summary()
        assert summary["degraded"] == 1
        assert summary["ok"] == 1
        assert summary["failed"] == {}


class TestBuildRequestsDeadline:
    def test_deadline_arms_every_config(self):
        requests = build_requests(jobs=3, samples=100, deadline_s=0.25)
        assert all(r.config.deadline_s == 0.25 for r in requests)

    def test_default_is_disarmed(self):
        requests = build_requests(jobs=2, samples=100)
        assert all(r.config.deadline_s is None for r in requests)


class TestCliDeadline:
    def test_single_plan_reports_degradation(self, capsys):
        from repro.cli import main

        code = main(["--robot", "mobile2d", "--obstacles", "6",
                     "--samples", "50000", "--seed", "1",
                     "--deadline", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert "degraded: deadline" in out

    def test_batch_deadline_exits_zero_with_degraded(self, capsys, tmp_path):
        from repro.cli import main

        out_file = tmp_path / "summary.json"
        code = main(["--jobs", "2", "--workers", "0", "--samples", "50000",
                     "--seed", "1", "--deadline", "0.05",
                     "--out", str(out_file)])
        assert code == 0
        data = json.loads(out_file.read_text())
        statuses = {r["status"] for r in data["responses"]}
        assert statuses == {"degraded"}
        assert all(r["degraded_reason"] == "deadline"
                   for r in data["responses"])
