"""Write-ahead job journal: CRC framing, tears, repair, replay folding.

The durability contract under test: trusted history ends at the first
torn record, a repaired journal accepts new appends on trusted ground,
and :func:`replay_state` resurrects exactly the admitted-but-unsettled
jobs — never settled ones, and never a quarantined crash-looper.
"""

import json
import pathlib
import tempfile
import unittest

from repro.faults import FaultPlan, clear, install_plan
from repro.net.wire import request_from_wire
from repro.service.journal import (
    JobJournal,
    TERMINAL_KINDS,
    replay_state,
    scan_journal,
)

SPEC = {"robot": "mobile2d", "obstacles": 4, "seed": 5, "samples": 40}


def _request(request_id="jr-1", seed=5):
    return request_from_wire(
        {"spec": dict(SPEC, seed=seed)}, request_id=request_id
    )


class _JournalCase(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.directory = pathlib.Path(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()
        clear()

    def journal(self, **kwargs) -> JobJournal:
        kwargs.setdefault("fsync", "off")
        return JobJournal(self.directory, **kwargs)


class TestAppendScan(_JournalCase):
    def test_round_trip_preserves_order_and_kinds(self):
        with self.journal() as journal:
            journal.start_epoch()
            journal.record_admit(_request())
            journal.record_dispatch("jr-1")
            journal.record_done("jr-1", "ok")
        records, torn = scan_journal(self.directory)
        self.assertFalse(torn)
        self.assertEqual(
            [r["kind"] for r in records],
            ["startup", "admit", "dispatch", "done"],
        )
        admit = records[1]
        self.assertEqual(admit["request_id"], "jr-1")
        self.assertIn("rhash", admit)
        self.assertIn("request", admit)

    def test_cancelled_status_uses_cancel_kind(self):
        with self.journal() as journal:
            journal.record_done("jr-1", "cancelled")
        records, _ = scan_journal(self.directory)
        self.assertEqual(records[0]["kind"], "cancel")
        self.assertIn("cancel", TERMINAL_KINDS)

    def test_every_line_is_crc_stamped(self):
        with self.journal() as journal:
            journal.record_dispatch("jr-1")
        for path in self.directory.glob("segment-*.jsonl"):
            for line in path.read_text().splitlines():
                self.assertIn("crc", json.loads(line))

    def test_segment_rotation(self):
        with self.journal(segment_bytes=128) as journal:
            for i in range(20):
                journal.record_dispatch(f"jr-{i}")
        segments = sorted(self.directory.glob("segment-*.jsonl"))
        self.assertGreater(len(segments), 1)
        records, torn = scan_journal(self.directory)
        self.assertFalse(torn)
        self.assertEqual(len(records), 20)

    def test_fsync_mode_validated(self):
        with self.assertRaises(ValueError):
            self.journal(fsync="sometimes")

    def test_scan_missing_directory_is_empty(self):
        records, torn = scan_journal(self.directory / "nope")
        self.assertEqual(records, [])
        self.assertFalse(torn)


class TestTornHistory(_JournalCase):
    def _write_then_tear(self, tail_bytes=b'{"half": '):
        with self.journal() as journal:
            journal.record_admit(_request())
            journal.record_done("jr-1", "ok")
            journal.record_dispatch("jr-after")
            path = journal.segment_path
        with open(path, "r+") as fh:
            lines = fh.read().splitlines(keepends=True)
            fh.seek(0)
            fh.truncate()
            fh.writelines(lines[:-1])
            fh.write(tail_bytes.decode())
        return path

    def test_scan_stops_at_torn_tail(self):
        self._write_then_tear()
        records, torn = scan_journal(self.directory)
        self.assertTrue(torn)
        self.assertEqual([r["kind"] for r in records], ["admit", "done"])

    def test_bad_crc_counts_as_torn(self):
        with self.journal() as journal:
            journal.record_dispatch("jr-1")
            path = journal.segment_path
        text = path.read_text()
        path.write_text(text.replace("jr-1", "jr-X"))  # payload != crc
        records, torn = scan_journal(self.directory)
        self.assertTrue(torn)
        self.assertEqual(records, [])

    def test_tear_in_early_segment_discards_later_segments(self):
        with self.journal(segment_bytes=1) as journal:  # 1 record/segment
            journal.record_dispatch("jr-1")
            journal.record_dispatch("jr-2")
            journal.record_dispatch("jr-3")
        segments = sorted(self.directory.glob("segment-*.jsonl"))
        self.assertGreaterEqual(len(segments), 3)
        segments[0].write_text("garbage\n")
        records, torn = scan_journal(self.directory)
        self.assertTrue(torn)
        self.assertEqual(records, [])

    def test_repair_truncates_and_new_appends_are_trusted(self):
        self._write_then_tear()
        journal = self.journal()
        self.assertTrue(journal.repair())
        records, torn = scan_journal(self.directory)
        self.assertFalse(torn)
        self.assertEqual(len(records), 2)
        # Post-repair appends extend trusted history instead of hiding
        # behind the (previously) torn bytes.
        journal.record_dispatch("jr-new")
        journal.close()
        records, torn = scan_journal(self.directory)
        self.assertFalse(torn)
        self.assertEqual(records[-1]["request_id"], "jr-new")

    def test_repair_unlinks_segments_past_the_tear(self):
        with self.journal(segment_bytes=1) as journal:
            journal.record_dispatch("jr-1")
            journal.record_dispatch("jr-2")
        segments = sorted(self.directory.glob("segment-*.jsonl"))
        segments[0].write_text("garbage\n")
        self.assertTrue(self.journal().repair())
        remaining = sorted(self.directory.glob("segment-*.jsonl"))
        self.assertEqual(remaining, [segments[0]])
        self.assertEqual(segments[0].read_text(), "")

    def test_repair_on_clean_journal_is_a_noop(self):
        with self.journal() as journal:
            journal.record_dispatch("jr-1")
        self.assertFalse(self.journal().repair())

    def test_recover_state_repairs_as_a_side_effect(self):
        self._write_then_tear()
        journal = self.journal()
        state = journal.recover_state()
        self.assertTrue(state.torn)
        _, torn = scan_journal(self.directory)
        self.assertFalse(torn)


class TestReplayFolding(_JournalCase):
    def _fold(self, **kwargs):
        records, torn = scan_journal(self.directory)
        return replay_state(records, torn=torn, **kwargs)

    def test_admit_without_terminal_is_pending(self):
        with self.journal() as journal:
            journal.record_admit(_request("jr-1", seed=1))
            journal.record_admit(_request("jr-2", seed=2))
            journal.record_dispatch("jr-1")
            journal.record_done("jr-1", "ok")
        state = self._fold()
        self.assertEqual(
            [r["request_id"] for r in state.pending], ["jr-2"]
        )

    def test_degraded_and_cancelled_are_terminal(self):
        # Settled is settled: neither a degraded nor a cancelled job may
        # be resurrected by recovery.
        with self.journal() as journal:
            journal.record_admit(_request("jr-1", seed=1))
            journal.record_done("jr-1", "degraded")
            journal.record_admit(_request("jr-2", seed=2))
            journal.record_done("jr-2", "cancelled")
        state = self._fold()
        self.assertEqual(state.pending, [])

    def test_clean_shutdown_replays_nothing(self):
        with self.journal() as journal:
            journal.record_admit(_request())
            journal.record_dispatch("jr-1")
            journal.record_done("jr-1", "ok")
            journal.mark_clean_shutdown()
        state = self._fold()
        self.assertTrue(state.clean)
        self.assertEqual(state.pending, [])
        self.assertEqual(state.quarantined, [])

    def test_interrupted_dispatches_quarantine_across_epochs(self):
        request = _request()
        with self.journal() as journal:
            journal.start_epoch()         # epoch 1: dispatch, crash
            journal.record_admit(request)
            journal.record_dispatch("jr-1")
            journal.start_epoch()         # epoch 2: replay dispatch, crash
            journal.record_dispatch("jr-1")
            journal.start_epoch()         # epoch 3: recovery judges
        state = self._fold(quarantine_threshold=2)
        self.assertEqual(state.pending, [])
        self.assertEqual(
            [r["request_id"] for r in state.quarantined], ["jr-1"]
        )
        self.assertEqual(
            state.interrupted[request.cache_key()], 2
        )

    def test_one_interruption_stays_below_threshold(self):
        with self.journal() as journal:
            journal.start_epoch()
            journal.record_admit(_request())
            journal.record_dispatch("jr-1")
            journal.start_epoch()
        state = self._fold(quarantine_threshold=2)
        self.assertEqual(
            [r["request_id"] for r in state.pending], ["jr-1"]
        )
        self.assertEqual(state.quarantined, [])


class TestAppendFaultSite(_JournalCase):
    def test_drop_loses_the_record_silently(self):
        install_plan(FaultPlan.from_spec("journal.append:drop:max=1"),
                     scope="test")
        with self.journal() as journal:
            journal.record_dispatch("jr-lost")
            journal.record_dispatch("jr-kept")
        records, torn = scan_journal(self.directory)
        self.assertFalse(torn)
        self.assertEqual([r["request_id"] for r in records], ["jr-kept"])

    def test_corrupt_writes_a_torn_half_line(self):
        install_plan(FaultPlan.from_spec("journal.append:corrupt:max=1"),
                     scope="test")
        with self.journal() as journal:
            journal.record_dispatch("jr-torn")
        records, torn = scan_journal(self.directory)
        self.assertTrue(torn)
        self.assertEqual(records, [])


if __name__ == "__main__":
    unittest.main()
