"""End-to-end service behaviour: caching, coalescing, telemetry, CLIs."""

import json
from dataclasses import replace

import pytest

from repro.service import PlanningService, build_requests
from repro.service.pool import PoolConfig
from tests.service.test_request import make_request

FAST_POOL = PoolConfig(num_workers=2, default_timeout_s=20.0, max_retries=1,
                       backoff_base_s=0.01, poll_interval_s=0.01)


class TestCachingDeterminism:
    def test_same_seed_and_config_hits_cache(self):
        with PlanningService(pool_config=FAST_POOL) as service:
            first = service.run_batch([make_request(seed=4, request_id="a")])[0]
            second = service.run_batch([make_request(seed=4, request_id="b")])[0]
        assert first.status == "ok" and not first.cache_hit
        assert second.cache_hit and second.request_id == "b"
        # The hit is the planner's deterministic output, byte for byte.
        assert second.path == first.path
        assert second.path_cost == first.path_cost
        assert second.op_events == first.op_events
        assert service.cache.stats()["hits"] == 1

    def test_different_seed_misses(self):
        service = PlanningService(num_workers=0)
        service.run_batch([make_request(seed=4)])
        miss = service.run_batch([make_request(seed=5)])[0]
        assert not miss.cache_hit
        assert service.cache.stats()["hits"] == 0

    def test_duplicates_within_batch_coalesce(self):
        service = PlanningService(num_workers=0)
        batch = [make_request(seed=4, request_id=f"r{i}") for i in range(3)]
        responses = service.run_batch(batch)
        assert [r.request_id for r in responses] == ["r0", "r1", "r2"]
        assert not responses[0].cache_hit
        assert responses[1].cache_hit and responses[2].cache_hit
        assert responses[1].path == responses[0].path
        # Only one planning run actually happened.
        executed = [r for r in service.telemetry.records if not r.cache_hit]
        assert len(executed) == 1
        stats = service.cache.stats()
        assert stats["hits"] == 2 and stats["misses"] == 1

    def test_failures_are_not_cached(self):
        service = PlanningService(num_workers=0)
        bad = replace(make_request(seed=4), fault="error")
        first = service.run_batch([bad])[0]
        assert first.status == "error"
        assert len(service.cache) == 0
        retry = service.run_batch([make_request(seed=4)])[0]
        assert retry.status == "ok" and not retry.cache_hit


class TestInlineMode:
    def test_inline_matches_pooled(self):
        request = make_request(seed=6)
        inline = PlanningService(num_workers=0).run_batch([request])[0]
        with PlanningService(pool_config=FAST_POOL) as service:
            pooled = service.run_batch([replace(request)])[0]
        assert inline.op_events == pooled.op_events
        assert inline.path == pooled.path

    def test_submit_drain(self):
        service = PlanningService(num_workers=0)
        service.submit(make_request(seed=1, request_id="x"))
        service.submit(make_request(seed=2, request_id="y"))
        responses = service.drain()
        assert [r.request_id for r in responses] == ["x", "y"]
        assert service.drain() == []


class TestServiceSummary:
    def test_summary_schema(self):
        service = PlanningService(num_workers=0)
        service.run_batch([make_request(seed=s) for s in (1, 1, 2)])
        summary = service.summary(include_records=True)
        assert summary["jobs"] == 3 and summary["ok"] == 3
        assert summary["cache"]["hits"] == 1
        for axis in ("plan", "queue_wait", "wall"):
            assert set(summary["latency_s"][axis]) == {"p50", "p95", "mean", "max"}
        assert len(summary["records"]) == 3
        json.dumps(summary)  # JSON-safe throughout


class TestBuildRequests:
    def test_generates_seeded_batch(self):
        requests = build_requests(jobs=4, seed=10, samples=50)
        assert len(requests) == 4
        seeds = [r.config.seed for r in requests]
        assert seeds == [10, 11, 12, 13]
        assert len({r.cache_key() for r in requests}) == 4

    def test_duplicate_repeats_work(self):
        requests = build_requests(jobs=2, seed=0, samples=50, duplicate=2)
        assert len(requests) == 4
        assert requests[0].cache_key() == requests[2].cache_key()
        assert requests[0].request_id != requests[2].request_id

    def test_inject_arms_one_fault(self):
        requests = build_requests(jobs=3, seed=0, samples=50, inject="hang:1")
        assert [r.fault for r in requests] == [None, "hang", None]
        with pytest.raises(ValueError):
            build_requests(jobs=2, seed=0, inject="hang:9")

    def test_tasks_override(self):
        from repro.workloads import random_task

        tasks = [random_task("mobile2d", 4, seed=77)]
        requests = build_requests(tasks=tasks, seed=3, samples=50)
        assert len(requests) == 1
        assert requests[0].task is tasks[0]
        assert requests[0].config.seed == 3


class TestCliBatchMode:
    def test_jobs_flag_routes_through_pool(self, capsys):
        from repro.cli import main

        code = main(["--jobs", "8", "--workers", "2", "--samples", "60",
                     "--obstacles", "6", "--duplicate", "2"])
        out = capsys.readouterr().out
        assert code == 0
        summary = json.loads(out[out.index("{"):])
        assert summary["jobs"] == 16 and summary["ok"] == 16
        assert summary["cache"]["hit_rate"] > 0.0
        assert summary["latency_s"]["plan"]["p50"] is not None
        assert summary["latency_s"]["plan"]["p95"] is not None
        assert "job-000: ok" in out

    def test_jobs_flag_survives_injected_timeout(self, capsys):
        from repro.cli import main

        code = main(["--jobs", "4", "--workers", "2", "--samples", "60",
                     "--obstacles", "6", "--inject", "hang:1",
                     "--job-timeout", "0.5"])
        out = capsys.readouterr().out
        assert code == 1  # failure reported, service survived
        summary = json.loads(out[out.index("{"):])
        assert summary["failed"] == {"timeout": 1}
        assert summary["ok"] == 3
        assert summary["workers"]["restarts"] == 1

    def test_one_shot_path_unchanged(self, capsys):
        from repro.cli import main

        code = main(["--robot", "mobile2d", "--obstacles", "8",
                     "--samples", "150", "--seed", "1", "--goal-bias", "0.2"])
        out = capsys.readouterr().out
        assert "2D Mobile" in out and code in (0, 1)


class TestServiceMain:
    def test_module_entry_prints_summary(self, capsys, tmp_path):
        from repro.service.__main__ import main

        out_file = tmp_path / "telemetry.json"
        code = main(["--jobs", "4", "--workers", "0", "--samples", "60",
                     "--obstacles", "6", "--duplicate", "2",
                     "--out", str(out_file)])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["jobs"] == 8
        assert summary["cache"]["hits"] == 4
        payload = json.loads(out_file.read_text())
        assert len(payload["records"]) == 8

    def test_module_entry_reports_failures(self, capsys):
        from repro.service.__main__ import main

        code = main(["--jobs", "2", "--workers", "2", "--samples", "60",
                     "--obstacles", "6", "--inject", "error:0",
                     "--retries", "0"])
        assert code == 2
        summary = json.loads(capsys.readouterr().out)
        assert summary["failed"] == {"error": 1}
