"""Unit tests for the service wire format and deterministic hashing."""

import json
from dataclasses import replace

import pytest

from repro.core.moped import config_for_variant
from repro.service.request import (
    PlanRequest,
    PlanResponse,
    config_fingerprint,
    failure_response,
    task_fingerprint,
)
from repro.workloads import random_task


def make_request(seed=0, **overrides):
    task = random_task("mobile2d", 6, seed=seed)
    config = config_for_variant("full", max_samples=80, seed=seed)
    fields = dict(task=task, config=config)
    fields.update(overrides)
    return PlanRequest(**fields)


class TestFingerprints:
    def test_task_fingerprint_deterministic(self):
        a = random_task("mobile2d", 6, seed=3)
        b = random_task("mobile2d", 6, seed=3)
        assert task_fingerprint(a) == task_fingerprint(b)

    def test_task_fingerprint_distinguishes_seeds(self):
        a = random_task("mobile2d", 6, seed=3)
        b = random_task("mobile2d", 6, seed=4)
        assert task_fingerprint(a) != task_fingerprint(b)

    def test_task_fingerprint_ignores_task_id(self):
        import dataclasses

        a = random_task("mobile2d", 6, seed=3)
        b = dataclasses.replace(a, task_id=9)  # same problem, new label
        assert task_fingerprint(a) == task_fingerprint(b)

    def test_task_fingerprint_survives_json_round_trip(self, tmp_path):
        from repro.io import load_task, save_task

        task = random_task("mobile2d", 6, seed=5)
        path = tmp_path / "task.json"
        save_task(task, path)
        assert task_fingerprint(load_task(path)) == task_fingerprint(task)

    def test_config_fingerprint_sensitive_to_every_knob(self):
        base = config_for_variant("full", max_samples=80, seed=0)
        assert config_fingerprint(base) == config_fingerprint(
            config_for_variant("full", max_samples=80, seed=0)
        )
        for change in (dict(seed=1), dict(max_samples=81), dict(goal_bias=0.3)):
            assert config_fingerprint(replace(base, **change)) != config_fingerprint(base)


class TestCacheKey:
    def test_same_work_same_key(self):
        assert make_request(seed=2).cache_key() == make_request(seed=2).cache_key()

    def test_key_changes_with_lanes_and_smooth(self):
        base = make_request(seed=2)
        assert replace(base, lanes=4).cache_key() != base.cache_key()
        assert replace(base, smooth=True).cache_key() != base.cache_key()

    def test_key_ignores_labels_and_timeout(self):
        base = make_request(seed=2)
        relabelled = replace(base, request_id="elsewhere", timeout_s=5.0)
        assert relabelled.cache_key() == base.cache_key()

    def test_validation(self):
        with pytest.raises(ValueError):
            make_request(lanes=0)
        with pytest.raises(ValueError):
            make_request(timeout_s=0.0)


class TestPlanResponse:
    def test_dict_round_trip(self):
        response = PlanResponse(
            request_id="r1", status="ok", success=True, path_cost=12.5,
            num_nodes=40, iterations=80, path=[[0.0, 0.0], [1.0, 2.0]],
            op_events={"dist": 10}, op_macs={"dist": 30.0}, plan_seconds=0.2,
        )
        clone = PlanResponse.from_dict(json.loads(json.dumps(response.to_dict())))
        assert clone == response

    def test_counter_rebuild(self):
        response = PlanResponse(
            request_id="r1", status="ok",
            op_events={"dist": 4}, op_macs={"dist": 12.0},
        )
        counter = response.counter()
        assert counter.events["dist"] == 4
        assert response.total_macs == pytest.approx(12.0)
        assert response.macs_by_category()["neighbor_search"] == pytest.approx(12.0)

    def test_as_cache_hit_relabels(self):
        response = PlanResponse(request_id="orig", status="ok", worker_id=3)
        hit = response.as_cache_hit("later")
        assert hit.cache_hit and hit.request_id == "later"
        assert hit.worker_id is None and hit.attempts == 0
        assert not response.cache_hit  # original untouched

    def test_failure_response_rejects_ok(self):
        request = make_request()
        with pytest.raises(ValueError):
            failure_response(request, "ok", "not a failure")
        failure = failure_response(request, "timeout", "budget blown")
        assert failure.status == "timeout" and not failure.success
