"""Crash recovery at the service level: replay, dedup, quarantine.

These tests fake the crash by writing journal state directly (admits
with no terminal record), then hand the directory to a fresh
:class:`PlanningService` — exactly what a restarted process sees.  The
full kill -9 version (real child processes, real ``os._exit``) lives in
``python -m repro.faults recovery``; here the focus is the replay
semantics: idempotent re-settlement, cache-served duplicates, poison
quarantine, and the exactly-once audit the harness gates on.
"""

import pathlib
import tempfile
import unittest

from repro.faults import FaultPlan, clear, install_plan
from repro.faults.recovery import verify_journal
from repro.net.wire import request_from_wire
from repro.service import PlanningService
from repro.service.journal import JobJournal, scan_journal

SPEC = {"robot": "mobile2d", "obstacles": 4, "seed": 9, "samples": 40}


def _request(request_id, seed=9):
    return request_from_wire(
        {"spec": dict(SPEC, seed=seed)}, request_id=request_id
    )


class _RecoveryCase(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.directory = pathlib.Path(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()
        clear()

    def service(self, **kwargs) -> PlanningService:
        return PlanningService(
            num_workers=0,
            journal=JobJournal(self.directory, fsync="off"),
            **kwargs,
        )


class TestRecover(_RecoveryCase):
    def test_no_journal_is_disabled(self):
        service = PlanningService(num_workers=0)
        self.assertEqual(service.recover()["enabled"], False)

    def test_replays_admitted_but_unsettled_jobs(self):
        with JobJournal(self.directory, fsync="off") as crashed:
            crashed.start_epoch()
            crashed.record_admit(_request("rc-1", seed=1))
            crashed.record_dispatch("rc-1")
            crashed.record_admit(_request("rc-2", seed=2))
        service = self.service()
        summary = service.recover()
        self.assertEqual(summary["replayed"], 2)
        self.assertEqual(summary["quarantined"], 0)
        responses = summary["responses"]
        self.assertEqual(
            sorted(r.request_id for r in responses), ["rc-1", "rc-2"]
        )
        self.assertTrue(all(r.status == "ok" for r in responses))
        service.close()
        violations, audit = verify_journal(self.directory)
        self.assertEqual(violations, [])
        self.assertEqual(audit["admits"], 2)

    def test_settled_jobs_are_not_resurrected(self):
        with JobJournal(self.directory, fsync="off") as crashed:
            crashed.record_admit(_request("rc-done", seed=1))
            crashed.record_done("rc-done", "ok")
            crashed.record_admit(_request("rc-degraded", seed=2))
            crashed.record_done("rc-degraded", "degraded")
            crashed.record_admit(_request("rc-cancelled", seed=3))
            crashed.record_done("rc-cancelled", "cancelled")
        service = self.service()
        summary = service.recover()
        self.assertEqual(summary["replayed"], 0)
        service.close()

    def test_replay_of_cached_result_is_served_from_cache(self):
        # The crash tore off the ``done`` record *after* the result
        # reached the cache tier: the replay must answer from the cache
        # (idempotent), not plan the same job twice.
        service1 = self.service()
        service1.recover()
        [response] = service1.run_batch([_request("rc-first")])
        self.assertEqual(response.status, "ok")
        service1.journal.record_admit(_request("rc-replayed"))
        service1.journal.sync()
        service1.close()
        service1.journal.close()
        # Same cache (the shared tier survives front-end restarts).
        service2 = PlanningService(
            num_workers=0,
            cache=service1.cache,
            journal=JobJournal(self.directory, fsync="off"),
        )
        summary = service2.recover()
        self.assertEqual(summary["replayed"], 1)
        [replayed] = summary["responses"]
        self.assertTrue(replayed.cache_hit)
        self.assertEqual(replayed.request_id, "rc-replayed")
        service2.close()
        violations, _ = verify_journal(self.directory)
        self.assertEqual(violations, [])

    def test_quarantined_job_is_poisoned_not_replayed(self):
        request = _request("rc-killer")
        with JobJournal(self.directory, fsync="off") as crashed:
            crashed.start_epoch()
            crashed.record_admit(request)
            crashed.record_dispatch("rc-killer")
            crashed.start_epoch()
            crashed.record_dispatch("rc-killer")
        service = self.service()
        summary = service.recover()
        self.assertEqual(summary["quarantined"], 1)
        self.assertEqual(summary["replayed"], 0)
        service.close()
        records, _ = scan_journal(self.directory)
        terminal = [r for r in records if r.get("request_id") == "rc-killer"
                    and r["kind"] == "done"]
        self.assertEqual(len(terminal), 1)
        self.assertEqual(terminal[0]["status"], "poison")
        violations, _ = verify_journal(self.directory)
        self.assertEqual(violations, [])

    def test_unparseable_admit_settles_invalid(self):
        with JobJournal(self.directory, fsync="off") as crashed:
            crashed.append("admit", request_id="rc-bad", rhash="x",
                           request={"spec": {"robot": "not-a-robot"}})
        service = self.service()
        summary = service.recover()
        self.assertEqual(summary["invalid"], 1)
        self.assertEqual(summary["replayed"], 0)
        service.close()
        violations, audit = verify_journal(self.directory)
        self.assertEqual(violations, [])
        self.assertEqual(audit["statuses"].get("invalid"), 1)

    def test_torn_tail_is_reported_and_repaired(self):
        with JobJournal(self.directory, fsync="off") as crashed:
            crashed.record_admit(_request("rc-torn"))
            path = crashed.segment_path
        with open(path, "a") as fh:
            fh.write('{"torn": ')
        service = self.service()
        summary = service.recover()
        self.assertTrue(summary["torn"])
        self.assertEqual(summary["replayed"], 1)
        service.close()
        violations, audit = verify_journal(self.directory)
        self.assertEqual(violations, [])
        self.assertFalse(audit["torn"])

    def test_recovered_requests_skip_re_admission(self):
        # A replayed job settles its *original* admit record — recovery
        # must not write a second admit (that would double-count it).
        with JobJournal(self.directory, fsync="off") as crashed:
            crashed.record_admit(_request("rc-once"))
        service = self.service()
        service.recover()
        service.close()
        records, _ = scan_journal(self.directory)
        admits = [r for r in records if r["kind"] == "admit"]
        self.assertEqual(len(admits), 1)


class TestRecoverUnderFaults(_RecoveryCase):
    def test_journal_fault_during_recovery_still_settles_replay(self):
        # A dropped append *during* recovery (the new journal.append site
        # armed while recovery itself writes) must not corrupt history —
        # at worst a record is missing, and the next recovery replays
        # idempotently.
        with JobJournal(self.directory, fsync="off") as crashed:
            crashed.record_admit(_request("rc-f1", seed=1))
        install_plan(
            FaultPlan.from_spec("journal.append:drop:max=1"), scope="test"
        )
        try:
            service = self.service()
            summary = service.recover()  # startup record is the one dropped
            self.assertEqual(summary["replayed"], 1)
            service.close()
        finally:
            clear()
        violations, _ = verify_journal(self.directory)
        self.assertEqual(violations, [])


if __name__ == "__main__":
    unittest.main()
