"""Portfolio racing: member expansion, winner policy, loser cancellation.

Covers the :mod:`repro.core.portfolio` vocabulary (entries, signatures,
win-rate learning) and the service-layer race orchestration in both inline
(``num_workers=0``) and pooled modes.  The load-bearing invariants:

* K=1 races are deterministic — the single member always wins.
* Every race member ends in a terminal status; losers are ``"cancelled"``.
* Races bypass the plan cache both ways (the race IS the measurement).
* Wins feed :class:`~repro.core.portfolio.PortfolioStats`, which drives
  the ``("auto",)`` learned default.
"""

import json
from dataclasses import replace

import pytest

from repro.core import portfolio
from repro.core.moped import config_for_variant
from repro.service import PlanningService, build_requests
from repro.service.pool import PoolConfig
from repro.service.request import TERMINAL_STATUSES, PlanRequest
from repro.workloads import random_task

FAST_POOL = PoolConfig(num_workers=2, default_timeout_s=60.0, max_retries=1,
                       backoff_base_s=0.01, poll_interval_s=0.01)


def race_request(names, seed=3, samples=400, request_id="race", robot="rozum",
                 obstacles=16):
    task = random_task(robot, obstacles, seed=seed)
    config = config_for_variant("full", max_samples=samples, seed=seed,
                                goal_bias=0.1)
    return PlanRequest(task=task, config=config, request_id=request_id,
                       portfolio=tuple(names))


class TestPortfolioModule:
    def test_member_config_keeps_seed_and_arms_deadline(self):
        base = config_for_variant("full", max_samples=200, seed=9)
        for name in portfolio.PLANNERS:
            member = portfolio.member_config(name, base)
            assert member.seed == base.seed
            assert member.max_samples == base.max_samples
            assert member.deadline_s == portfolio.DEFAULT_RACE_DEADLINE_S

    def test_member_config_respects_existing_deadline(self):
        base = config_for_variant("full", max_samples=200, seed=9,
                                  deadline_s=2.5)
        assert portfolio.member_config("connect", base).deadline_s == 2.5

    def test_member_config_modes(self):
        base = config_for_variant("full", max_samples=200, seed=9)
        assert portfolio.member_config("connect", base).mode == "connect"
        assert portfolio.member_config("wave", base).mode == "rrtstar"
        assert portfolio.member_config("wave", base).wave_width > 1
        assert portfolio.member_config("informed", base).informed

    def test_member_config_unknown_name(self):
        base = config_for_variant("full")
        with pytest.raises(KeyError, match="unknown portfolio planner"):
            portfolio.member_config("nope", base)

    def test_resolve_dedupes_preserving_order(self):
        assert portfolio.resolve(("wave", "connect", "wave")) == (
            "wave", "connect"
        )

    def test_resolve_auto_without_history(self):
        assert portfolio.resolve(("auto",)) == (portfolio.DEFAULT_PLANNER,)

    def test_resolve_auto_uses_learned_best(self):
        stats = portfolio.PortfolioStats()
        for _ in range(3):
            stats.record("rozum/16obs", "wave")
        stats.record("rozum/16obs", "connect")
        assert portfolio.resolve(("auto",), "rozum/16obs", stats) == ("wave",)
        # Unseen signature still falls back to the default.
        assert portfolio.resolve(("auto",), "xarm7/8obs", stats) == (
            portfolio.DEFAULT_PLANNER,
        )

    def test_resolve_rejects_unknown_and_empty(self):
        with pytest.raises(KeyError):
            portfolio.resolve(("bogus",))
        with pytest.raises(ValueError):
            portfolio.resolve(())

    def test_task_signature(self):
        task = random_task("rozum", 16, seed=0)
        assert portfolio.task_signature(task) == "rozum/16obs"

    def test_best_is_deterministic_on_ties(self):
        stats = portfolio.PortfolioStats()
        stats.record("s", "wave")
        stats.record("s", "connect")
        assert stats.best("s") == "connect"  # tie broken by name

    def test_stats_round_trip(self, tmp_path):
        path = str(tmp_path / "wins.json")
        stats = portfolio.PortfolioStats(path=path)
        stats.record("rozum/16obs", "connect")
        stats.record("rozum/16obs", "connect")
        data = json.loads((tmp_path / "wins.json").read_text())
        assert data == {"schema": 1,
                        "wins": {"rozum/16obs": {"connect": 2}}}
        reloaded = portfolio.PortfolioStats(path=path)
        assert reloaded.best("rozum/16obs") == "connect"

    def test_stats_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99, "wins": {}}))
        with pytest.raises(ValueError, match="schema"):
            portfolio.PortfolioStats(path=str(path))

    def test_save_is_atomic_no_temp_litter(self, tmp_path):
        # save() goes through a same-directory temp file + os.replace, so
        # the target is either the old snapshot or the new one — and on
        # success nothing else is left behind.
        path = tmp_path / "wins.json"
        stats = portfolio.PortfolioStats(path=str(path))
        for _ in range(5):
            stats.record("rozum/16obs", "connect")
        assert [p.name for p in tmp_path.iterdir()] == ["wins.json"]
        data = json.loads(path.read_text())
        assert data["wins"]["rozum/16obs"]["connect"] == 5

    def test_corrupt_stats_file_resets_with_warning(self, tmp_path):
        # Learned state: a truncated/corrupt snapshot (e.g. pre-atomic
        # crash damage) must warn and reset, never refuse to start.
        path = tmp_path / "wins.json"
        path.write_text('{"schema": 1, "wins": {"rozu')  # torn mid-write
        with pytest.warns(RuntimeWarning, match="corrupt or truncated"):
            stats = portfolio.PortfolioStats(path=str(path))
        assert stats.wins == {}
        # The instance is fully usable (and overwrites the damage).
        stats.record("s", "connect")
        assert portfolio.PortfolioStats(path=str(path)).best("s") == "connect"

    def test_non_object_stats_file_resets_with_warning(self, tmp_path):
        path = tmp_path / "wins.json"
        path.write_text("[1, 2, 3]")
        with pytest.warns(RuntimeWarning, match="does not hold an object"):
            stats = portfolio.PortfolioStats(path=str(path))
        assert stats.wins == {}


class TestInlineRace:
    def test_single_member_race_is_deterministic(self):
        """Portfolio K=1: the only member always wins, bit-identically."""
        runs = []
        for _ in range(2):
            service = PlanningService(num_workers=0)
            response = service.run_batch(
                [race_request(("connect",))]
            )[0]
            runs.append(response)
        a, b = runs
        assert a.status == "ok" and a.success
        assert a.planner == "connect"
        assert a.race["winner"] == "connect"
        assert a.race["planners"] == ["connect"]
        assert a.race["statuses"] == {"connect": "ok"}
        assert a.race["cancelled"] == 0
        assert a.path == b.path
        assert a.path_cost == b.path_cost
        assert a.op_events == b.op_events

    def test_inline_race_first_feasible_wins_and_losers_cancelled(self):
        service = PlanningService(num_workers=0)
        response = service.run_batch(
            [race_request(("connect", "wave"))]
        )[0]
        assert response.status == "ok" and response.success
        assert response.request_id == "race"
        assert response.race["winner"] in ("connect", "wave")
        statuses = response.race["statuses"]
        assert set(statuses) == {"connect", "wave"}
        for status in statuses.values():
            assert status in TERMINAL_STATUSES
        losers = [n for n, s in statuses.items() if s == "cancelled"]
        assert len(losers) == 1
        assert response.race["cancelled"] == 1
        assert response.race["signature"] == "rozum/16obs"

    def test_race_bypasses_cache(self):
        service = PlanningService(num_workers=0)
        first = service.run_batch([race_request(("connect",))])[0]
        second = service.run_batch(
            [race_request(("connect",), request_id="race2")]
        )[0]
        assert not first.cache_hit and not second.cache_hit
        assert len(service.cache) == 0

    def test_wins_feed_stats_and_auto(self, tmp_path):
        path = str(tmp_path / "wins.json")
        service = PlanningService(num_workers=0, portfolio_stats_path=path)
        response = service.run_batch([race_request(("connect",))])[0]
        winner = response.race["winner"]
        assert service.portfolio_stats.wins["rozum/16obs"] == {winner: 1}
        assert json.loads((tmp_path / "wins.json").read_text())["wins"]
        # "auto" now resolves to the recorded winner for this signature.
        auto = service.run_batch(
            [race_request(("auto",), request_id="race-auto")]
        )[0]
        assert auto.race["planners"] == [winner]

    def test_build_requests_portfolio_plumbing(self):
        requests = build_requests(jobs=2, seed=0, samples=50,
                                  portfolio=("connect", "wave"))
        assert all(r.portfolio == ("connect", "wave") for r in requests)
        requests = build_requests(jobs=1, seed=0, samples=50,
                                  mode="connect")
        assert requests[0].config.mode == "connect"

    def test_telemetry_sees_every_member(self):
        service = PlanningService(num_workers=0)
        service.run_batch([race_request(("connect", "wave"))])
        planners = sorted(
            r.attributes.get("planner") for r in service.telemetry.records
        )
        assert planners == ["connect", "wave"]


class TestPooledRace:
    def test_pooled_race_winner_and_terminal_losers(self):
        with PlanningService(pool_config=FAST_POOL) as service:
            response = service.run_batch(
                [race_request(("connect", "wave"))]
            )[0]
        assert response.status == "ok" and response.success
        assert response.planner == response.race["winner"]
        statuses = response.race["statuses"]
        assert set(statuses) == {"connect", "wave"}
        # The loser-cancellation all-terminal invariant: nobody is left
        # running or unaccounted for once the race resolves.
        for status in statuses.values():
            assert status in TERMINAL_STATUSES
        assert response.race["cancelled"] == sum(
            1 for s in statuses.values() if s == "cancelled"
        )

    def test_pooled_single_member_race_deterministic(self):
        responses = []
        for run in range(2):
            with PlanningService(pool_config=FAST_POOL) as service:
                responses.append(service.run_batch(
                    [race_request(("connect",))]
                )[0])
        a, b = responses
        assert a.race["winner"] == b.race["winner"] == "connect"
        assert a.path == b.path
        assert a.op_events == b.op_events

    def test_race_tokens_cleared_after_batch(self):
        with PlanningService(pool_config=FAST_POOL) as service:
            service.run_batch([race_request(("connect", "wave"))])
            pool = service._pool
            assert pool.cancel_flags.value == 0

    def test_mixed_batch_races_and_plain_jobs(self):
        plain = replace(race_request(("connect",), request_id="plain"),
                        portfolio=None)
        with PlanningService(pool_config=FAST_POOL) as service:
            responses = service.run_batch([
                race_request(("connect", "wave")),
                plain,
            ])
        assert [r.request_id for r in responses] == ["race", "plain"]
        assert responses[0].race["winner"] is not None
        assert responses[1].status == "ok" and not responses[1].race
