"""Unit tests for JSON persistence."""

import numpy as np
import pytest

from repro.io import (
    environment_from_dict,
    environment_to_dict,
    load_task,
    load_tasks,
    obb_from_dict,
    obb_to_dict,
    result_to_dict,
    save_result,
    save_task,
    save_tasks,
    task_from_dict,
    task_to_dict,
)
from repro.workloads import random_task, task_suite
from repro.geometry.obb import OBB
from repro.geometry.rotations import rotation_from_euler


class TestObbRoundTrip:
    def test_round_trip(self):
        obb = OBB(np.array([1.0, 2.0, 3.0]), np.array([4.0, 5.0, 6.0]),
                  rotation_from_euler(0.3, 0.2, 0.1))
        back = obb_from_dict(obb_to_dict(obb))
        np.testing.assert_allclose(back.center, obb.center)
        np.testing.assert_allclose(back.rotation, obb.rotation)

    def test_dict_is_json_safe(self):
        import json

        obb = OBB(np.zeros(2), np.ones(2), np.eye(2))
        json.dumps(obb_to_dict(obb))  # must not raise


class TestEnvironmentRoundTrip:
    def test_round_trip(self):
        task = random_task("mobile2d", 8, seed=0)
        env = task.environment
        back = environment_from_dict(environment_to_dict(env))
        assert back.num_obstacles == env.num_obstacles
        assert back.workspace_dim == env.workspace_dim
        for a, b in zip(env.obstacles, back.obstacles):
            np.testing.assert_allclose(a.center, b.center)


class TestTaskRoundTrip:
    def test_dict_round_trip(self):
        task = random_task("viperx300", 16, seed=1)
        back = task_from_dict(task_to_dict(task))
        assert back.robot_name == task.robot_name
        np.testing.assert_allclose(back.start, task.start)
        np.testing.assert_allclose(back.goal, task.goal)

    def test_file_round_trip(self, tmp_path):
        task = random_task("mobile2d", 8, seed=2)
        file_path = tmp_path / "task.json"
        save_task(task, file_path)
        back = load_task(file_path)
        np.testing.assert_allclose(back.start, task.start)
        assert back.environment.num_obstacles == 8

    def test_suite_round_trip(self, tmp_path):
        tasks = task_suite("mobile2d", 8, num_tasks=3, seed=3)
        file_path = tmp_path / "suite.json"
        save_tasks(tasks, file_path)
        back = load_tasks(file_path)
        assert len(back) == 3
        assert [t.task_id for t in back] == [0, 1, 2]

    def test_loaded_task_is_plannable(self, tmp_path):
        from repro import MopedEngine, get_robot

        task = random_task("mobile2d", 8, seed=4)
        file_path = tmp_path / "task.json"
        save_task(task, file_path)
        loaded = load_task(file_path)
        robot = get_robot(loaded.robot_name)
        result = MopedEngine(robot, loaded.environment, max_samples=100, seed=0).plan_task(loaded)
        assert result.iterations == 100


class TestResultSerialisation:
    @pytest.fixture(scope="class")
    def result(self):
        from repro import MopedEngine, get_robot

        task = random_task("mobile2d", 8, seed=5)
        robot = get_robot("mobile2d")
        return MopedEngine(robot, task.environment, max_samples=150, seed=0,
                           goal_bias=0.2).plan_task(task)

    def test_dict_fields(self, result):
        data = result_to_dict(result)
        assert data["iterations"] == 150
        assert data["total_macs"] > 0
        assert isinstance(data["events"], dict)

    def test_failure_cost_encoded_as_none(self):
        from repro.core.metrics import PlanResult
        from repro.core.counters import OpCounter

        failed = PlanResult(False, [], float("inf"), 1, 10, OpCounter())
        data = result_to_dict(failed)
        assert data["path_cost"] is None

    def test_save_result(self, result, tmp_path):
        import json

        file_path = tmp_path / "result.json"
        save_result(result, file_path)
        data = json.loads(file_path.read_text())
        assert data["success"] == result.success
