"""Span tracer: nesting, disabled path, shipping, Chrome export."""

import json

import pytest

from repro import obs
from repro.obs.trace import (
    _NULL_SPAN,
    Tracer,
    aggregate_spans,
    get_tracer,
    set_tracer,
    traced,
)


class FakeClock:
    """Deterministic, manually-advanced time source."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def tick(self, dt):
        self.t += dt


def make_tracer(**kwargs):
    clock = FakeClock()
    kwargs.setdefault("pid", 7)
    kwargs.setdefault("process_name", "test")
    return Tracer(enabled=True, clock=clock, **kwargs), clock


class TestNesting:
    def test_nested_spans_record_depth_and_close_order(self):
        tracer, clock = make_tracer()
        with tracer.span("outer"):
            clock.tick(0.001)
            with tracer.span("inner"):
                clock.tick(0.002)
            clock.tick(0.001)
        # Inner closes first, so it lands in the buffer first.
        assert [s["name"] for s in tracer.spans] == ["inner", "outer"]
        inner, outer = tracer.spans
        assert inner["depth"] == 1 and outer["depth"] == 0
        assert inner["ts"] == pytest.approx(0.001)
        assert inner["dur"] == pytest.approx(0.002)
        assert outer["ts"] == pytest.approx(0.0)
        assert outer["dur"] == pytest.approx(0.004)

    def test_sibling_spans_share_depth(self):
        tracer, clock = make_tracer()
        for name in ("a", "b"):
            with tracer.span(name):
                clock.tick(0.001)
        assert [s["depth"] for s in tracer.spans] == [0, 0]
        assert tracer.spans[1]["ts"] > tracer.spans[0]["ts"]

    def test_span_args_are_copied(self):
        tracer, clock = make_tracer()
        with tracer.span("job", job_id=3, request_id="r-1"):
            clock.tick(0.001)
        assert tracer.spans[0]["args"] == {"job_id": 3, "request_id": "r-1"}

    def test_span_at_records_external_interval(self):
        tracer, clock = make_tracer()
        start = tracer.now()
        clock.tick(0.5)
        tracer.span_at("service.job", start, tracer.now(), job_id=9)
        (span,) = tracer.spans
        assert span["dur"] == pytest.approx(0.5)
        assert span["args"] == {"job_id": 9}


class TestDisabledPath:
    def test_disabled_span_is_shared_null_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("x") is _NULL_SPAN
        assert tracer.span("y", arg=1) is _NULL_SPAN

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x"):
            pass
        tracer.span_at("y", 0.0, 1.0)
        assert tracer.spans == []

    def test_global_tracer_starts_disabled(self):
        assert get_tracer().enabled is False

    def test_traced_decorator_is_passthrough_when_disabled(self):
        calls = []

        @traced("work")
        def fn(x):
            calls.append(x)
            return x * 2

        assert fn(3) == 6
        assert calls == [3]
        assert get_tracer().spans == []


class TestShipping:
    def test_drain_detaches_buffer(self):
        tracer, clock = make_tracer()
        with tracer.span("a"):
            clock.tick(0.001)
        spans = tracer.drain()
        assert len(spans) == 1 and tracer.spans == []

    def test_absorb_tags_spans_and_keeps_pid(self):
        worker, wclock = make_tracer(pid=101)
        with worker.span("plan", seed=4):
            wclock.tick(0.01)
        supervisor, _ = make_tracer(pid=1)
        supervisor.absorb(worker.drain(), job_id=5, request_id="r-0")
        (span,) = supervisor.spans
        assert span["pid"] == 101  # worker keeps its own track
        assert span["args"] == {"seed": 4, "job_id": 5, "request_id": "r-0"}

    def test_reset_clears_and_restarts_timebase(self):
        tracer, clock = make_tracer()
        with tracer.span("a"):
            clock.tick(1.0)
        tracer.reset()
        assert tracer.spans == [] and tracer.now() == pytest.approx(0.0)


class TestChromeExport:
    def test_golden_chrome_document(self):
        tracer, clock = make_tracer()
        with tracer.span("outer", job=1):
            clock.tick(0.001)
            with tracer.span("inner"):
                clock.tick(0.002)
            clock.tick(0.001)
        assert tracer.to_chrome() == {
            "traceEvents": [
                {"name": "process_name", "ph": "M", "pid": 7, "tid": 0,
                 "args": {"name": "test"}},
                {"name": "outer", "cat": "repro", "ph": "X", "ts": 0.0,
                 "dur": 4000.0, "pid": 7, "tid": 0, "args": {"job": 1}},
                {"name": "inner", "cat": "repro", "ph": "X", "ts": 1000.0,
                 "dur": 2000.0, "pid": 7, "tid": 0, "args": {}},
            ],
            "displayTimeUnit": "ms",
        }

    def test_absorbed_pids_get_worker_track_names(self):
        tracer, clock = make_tracer()
        with tracer.span("local"):
            clock.tick(0.001)
        tracer.absorb([{"name": "remote", "ts": 0.0, "dur": 0.5,
                        "pid": 42, "tid": 0, "depth": 0, "args": {}}])
        meta = [e for e in tracer.to_chrome()["traceEvents"] if e["ph"] == "M"]
        assert {m["args"]["name"] for m in meta} == {"test", "test-worker-42"}

    def test_export_chrome_writes_loadable_json(self, tmp_path):
        tracer, clock = make_tracer()
        with tracer.span("a"):
            clock.tick(0.001)
        path = tmp_path / "trace.json"
        tracer.export_chrome(path)
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"] == ["a"]


class TestHelpers:
    def test_traced_decorator_records_span_when_enabled(self):
        previous = set_tracer(Tracer(enabled=True, clock=FakeClock()))
        try:
            @traced(kind="unit")
            def helper():
                return 1

            helper()
            (span,) = get_tracer().spans
            assert span["name"].endswith("helper")
            assert span["args"] == {"kind": "unit"}
        finally:
            set_tracer(previous)

    def test_aggregate_spans_orders_and_filters(self):
        spans = [
            {"name": "a", "dur": 0.1},
            {"name": "b", "dur": 0.5},
            {"name": "a", "dur": 0.2},
        ]
        agg = aggregate_spans(spans)
        assert list(agg) == ["b", "a"]
        assert agg["a"] == {"calls": 2, "total_s": pytest.approx(0.3)}
        only_a = aggregate_spans(spans, names=("a", "missing"))
        assert list(only_a) == ["a"]


class TestPhaseRecorder:
    def test_inactive_recorder_is_noop(self):
        rec = obs.PhaseRecorder()
        assert rec.active is False
        first = rec.phase("sample")
        assert rec.phase("collision") is first  # shared null object
        with first:
            pass

    def test_records_spans_and_counters_when_enabled(self):
        clock = FakeClock()
        previous = obs.install(
            Tracer(enabled=True, clock=clock), obs.MetricsRegistry(enabled=True)
        )
        try:
            from repro.core.counters import OpCounter

            counter = OpCounter()
            rec = obs.PhaseRecorder()
            with rec.phase("collision", counter):
                clock.tick(0.25)
                counter.record("sat_obb_obb", n=2)
            (span,) = obs.get_tracer().spans
            assert span["name"] == "collision"
            assert span["dur"] == pytest.approx(0.25)
            reg = obs.get_registry()
            assert reg.get("repro_phase_seconds_total").value(
                phase="collision"
            ) == pytest.approx(0.25)
            assert reg.get("repro_phase_calls_total").value(phase="collision") == 1
            assert reg.get("repro_phase_macs_total").value(
                phase="collision"
            ) == pytest.approx(counter.total_macs())
        finally:
            obs.restore(previous)

    def test_metrics_only_mode_still_times_phases(self):
        clock = FakeClock()
        previous = obs.install(
            Tracer(enabled=False, clock=clock), obs.MetricsRegistry(enabled=True)
        )
        try:
            rec = obs.PhaseRecorder()
            with rec.phase("sample"):
                clock.tick(0.125)
            assert obs.get_tracer().spans == []
            assert obs.get_registry().get("repro_phase_seconds_total").value(
                phase="sample"
            ) == pytest.approx(0.125)
        finally:
            obs.restore(previous)
