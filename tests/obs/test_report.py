"""The ``python -m repro.obs report`` profile builder and CLI."""

import json

import pytest

from repro.obs.__main__ import main as obs_main
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import build_report, report_from_files
from repro.obs.trace import Tracer
from tests.obs.test_trace import FakeClock


def synthetic_artifacts(tmp_path):
    """One deterministic traced 'run': 2 sample + 1 collision phases."""
    clock = FakeClock()
    tracer = Tracer(enabled=True, clock=clock, pid=7, process_name="test")
    for _ in range(2):
        with tracer.span("sample"):
            clock.tick(0.001)
    with tracer.span("collision"):
        clock.tick(0.003)
    with tracer.span("plan"):  # not a phase: lands in other_spans
        clock.tick(0.010)
    trace_path = tmp_path / "t.json"
    tracer.export_chrome(trace_path)

    reg = MetricsRegistry()
    macs = reg.counter("repro_phase_macs_total")
    macs.inc(100, phase="sample")
    macs.inc(900, phase="collision")
    reg.counter("repro_macs_total").inc(1000, category="collision_check")
    metrics_path = tmp_path / "m.prom"
    reg.export(metrics_path)
    return trace_path, metrics_path


class TestBuildReport:
    def test_merges_trace_time_with_metric_macs(self, tmp_path):
        trace, metrics = synthetic_artifacts(tmp_path)
        report = report_from_files(trace=str(trace), metrics=str(metrics))
        rows = {p["phase"]: p for p in report["phases"]}
        assert list(rows) == ["sample", "collision"]  # canonical phase order
        assert rows["sample"]["calls"] == 2
        assert rows["sample"]["total_ms"] == pytest.approx(2.0)
        assert rows["sample"]["mean_us"] == pytest.approx(1000.0)
        assert rows["collision"]["time_pct"] == pytest.approx(60.0)
        assert rows["collision"]["mac_pct"] == pytest.approx(90.0)
        assert report["other_spans"]["plan"]["calls"] == 1
        assert report["categories"] == {"collision_check": 1000.0}

    def test_metrics_alone_provide_phase_times(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("repro_phase_seconds_total").inc(0.5, phase="sample")
        reg.counter("repro_phase_calls_total").inc(5, phase="sample")
        path = tmp_path / "m.prom"
        reg.export(path)
        report = report_from_files(metrics=str(path))
        (row,) = report["phases"]
        assert row["phase"] == "sample"
        assert row["total_ms"] == pytest.approx(500.0)
        assert row["calls"] == 5

    def test_json_registry_export_is_accepted(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("repro_phase_macs_total").inc(10, phase="rewire")
        reg.histogram("repro_plan_seconds", buckets=(1.0,)).observe(0.5)
        path = tmp_path / "m.json"
        reg.export(path)
        report = report_from_files(metrics=str(path))
        assert report["phases"][0]["phase"] == "rewire"

    def test_events_digest(self):
        events = [
            {"event": "batch.start", "run_id": "r1", "ts": 10.0},
            {"event": "job.done", "run_id": "r1", "ts": 11.5},
        ]
        report = build_report(events=events)
        assert report["events"]["count"] == 2
        assert report["events"]["run_ids"] == ["r1"]
        assert report["events"]["span_s"] == pytest.approx(1.5)
        assert report["events"]["by_kind"] == {"batch.start": 1, "job.done": 1}


class TestCli:
    def test_report_renders_table(self, tmp_path, capsys):
        trace, metrics = synthetic_artifacts(tmp_path)
        assert obs_main(["report", "--trace", str(trace),
                         "--metrics", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "per-phase breakdown" in out
        assert "collision" in out and "MACs by category" in out

    def test_report_json_output(self, tmp_path, capsys):
        trace, metrics = synthetic_artifacts(tmp_path)
        assert obs_main(["report", "--trace", str(trace), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert {p["phase"] for p in doc["phases"]} == {"sample", "collision"}

    def test_report_without_inputs_fails(self, capsys):
        assert obs_main(["report"]) == 2
        assert "need --trace" in capsys.readouterr().err


class TestCacheSection:
    """Cache hit/miss/evict counters flow export -> report -> rendering."""

    def _cache_metrics(self, tmp_path, as_json=False):
        reg = MetricsRegistry()
        events = reg.counter("repro_cache_events_total")
        events.inc(30, cache="collision", event="hit")
        events.inc(10, cache="collision", event="miss")
        events.inc(2, cache="collision", event="evict")
        events.inc(5, cache="neighborhood", event="hit")
        events.inc(15, cache="neighborhood", event="miss")
        path = tmp_path / ("m.json" if as_json else "m.prom")
        reg.export(path)
        return path

    @pytest.mark.parametrize("as_json", [False, True])
    def test_caches_golden_export_round_trip(self, tmp_path, as_json):
        """Golden schema: both export formats yield the same caches block."""
        path = self._cache_metrics(tmp_path, as_json=as_json)
        report = report_from_files(metrics=str(path))
        assert report["caches"] == {
            "collision": {
                "hit": 30.0, "miss": 10.0, "evict": 2.0, "hit_rate": 0.75,
            },
            "neighborhood": {
                "hit": 5.0, "miss": 15.0, "evict": 0.0, "hit_rate": 0.25,
            },
        }

    def test_caches_rendered_as_table(self, tmp_path, capsys):
        path = self._cache_metrics(tmp_path)
        assert obs_main(["report", "--metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "software caches" in out
        assert "collision" in out and "neighborhood" in out
        assert "75" in out  # collision hit_%

    def test_no_cache_metrics_no_section(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("repro_phase_seconds_total").inc(0.5, phase="sample")
        path = tmp_path / "m.prom"
        reg.export(path)
        report = report_from_files(metrics=str(path))
        assert report["caches"] == {}

    def test_planner_run_populates_cache_metrics(self, tmp_path):
        """End to end: a wavefront run's exported metrics carry cache events."""
        from repro import obs
        from repro.core.moped import config_for_variant
        from repro.core.robots import get_robot
        from repro.core.rrtstar import plan
        from repro.workloads.generator import random_task

        previous = obs.install(
            obs.Tracer(enabled=False), obs.MetricsRegistry(enabled=True)
        )
        try:
            task = random_task("mobile2d", 12, seed=6)
            config = config_for_variant("v1", max_samples=80, seed=6,
                                        wave_width=8)
            plan(get_robot("mobile2d"), task, config)
            path = tmp_path / "run.prom"
            obs.get_registry().export(path)
        finally:
            obs.restore(previous)
        report = report_from_files(metrics=str(path))
        # The wavefront planner validates edges whole, so its cache traffic
        # lands on the whole-edge cache (the per-configuration cache still
        # serves the config_results entry point).
        edge = report["caches"]["edge"]
        assert edge["hit"] + edge["miss"] > 0
        assert 0.0 <= edge["hit_rate"] <= 1.0
        validation = report["edge_validation"]
        assert validation["motion_checks"] > 0
        assert validation["by_path"].get("edge_kernel", 0) > 0
        assert validation["ladders_observed"] > 0
        assert validation["ladder_steps_mean"] > 1.0
