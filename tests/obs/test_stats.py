"""Edge cases for the shared stats helpers and registry merging.

``percentile`` is the single implementation behind the service latency
axes, the bench reports, the traffic reports, and the RCA counterfactuals
— its edge behaviour (empty, single-element, duplicate-heavy inputs) is a
contract all of them rely on.  ``MetricsRegistry.merge_dict`` is how
workers ship deltas across the process boundary, so disjoint and
overlapping label sets must fold correctly.
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.stats import axis_summary, percentile


class TestPercentileEdges:
    def test_empty_returns_none(self):
        assert percentile([], 50.0) is None
        assert percentile([], 0.0) is None
        assert percentile([], 100.0) is None

    def test_single_element_is_every_percentile(self):
        for q in (0.0, 1.0, 50.0, 95.0, 99.9, 100.0):
            assert percentile([7.5], q) == 7.5

    def test_duplicate_heavy_input(self):
        values = [3.0] * 97 + [9.0] * 3
        assert percentile(values, 50.0) == 3.0
        assert percentile(values, 95.0) == 3.0
        assert percentile(values, 100.0) == 9.0
        # All-identical input: flat at every q.
        flat = [2.0] * 10
        for q in (0.0, 25.0, 50.0, 99.0, 100.0):
            assert percentile(flat, q) == 2.0

    def test_endpoints_are_min_and_max(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 5.0

    def test_linear_interpolation_between_order_stats(self):
        # numpy-default linear interpolation: p25 of [1..4] sits at rank
        # 0.75 -> 1 + 0.75*(2-1).
        assert percentile([1.0, 2.0, 3.0, 4.0], 25.0) == pytest.approx(1.75)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)
        with pytest.raises(ValueError):
            percentile([1.0], 100.1)

    def test_input_order_is_irrelevant_and_preserved(self):
        values = [9.0, 1.0, 5.0]
        assert percentile(values, 50.0) == 5.0
        assert values == [9.0, 1.0, 5.0]  # no in-place sort

    def test_axis_summary_of_empty_axis(self):
        summary = axis_summary([])
        assert summary == {"p50": None, "p95": None, "mean": None, "max": None}


class TestMergeDictLabelSets:
    def test_disjoint_label_sets_coexist(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total").inc(2, robot="xarm7")
        reg.merge_dict({
            "metrics": [{
                "name": "jobs_total", "type": "counter", "help": "",
                "series": [{"labels": {"robot": "rozum"}, "value": 5.0}],
            }]
        })
        c = reg.counter("jobs_total")
        assert c.value(robot="xarm7") == 2
        assert c.value(robot="rozum") == 5

    def test_overlapping_label_sets_add(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total")
        c.inc(2, robot="xarm7", mode="wave")
        reg.merge_dict({
            "metrics": [{
                "name": "jobs_total", "type": "counter", "help": "",
                "series": [
                    {"labels": {"robot": "xarm7", "mode": "wave"}, "value": 3},
                    {"labels": {"robot": "xarm7", "mode": "scalar"}, "value": 1},
                ],
            }]
        })
        assert c.value(robot="xarm7", mode="wave") == 5
        assert c.value(robot="xarm7", mode="scalar") == 1

    def test_label_order_does_not_split_series(self):
        # {a,b} and {b,a} are the same label set: keys are sorted.
        reg = MetricsRegistry()
        reg.counter("jobs_total").inc(1, a="1", b="2")
        reg.merge_dict({
            "metrics": [{
                "name": "jobs_total", "type": "counter", "help": "",
                "series": [{"labels": {"b": "2", "a": "1"}, "value": 4}],
            }]
        })
        assert reg.counter("jobs_total").value(a="1", b="2") == 5

    def test_merge_roundtrip_disjoint_and_overlapping_histograms(self):
        a = MetricsRegistry()
        h = a.histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05, robot="xarm7")
        h.observe(0.5, robot="xarm7")
        b = MetricsRegistry()
        hb = b.histogram("lat", buckets=(0.1, 1.0))
        hb.observe(0.05, robot="xarm7")   # overlapping label set
        hb.observe(2.0, robot="rozum")    # disjoint label set
        a.merge_dict(b.to_dict())
        merged = {tuple(s["labels"].items()): s
                  for entry in a.to_dict()["metrics"]
                  for s in entry["series"]}
        xarm = merged[(("robot", "xarm7"),)]
        rozum = merged[(("robot", "rozum"),)]
        assert xarm["count"] == 3 and xarm["counts"][0] == 2
        assert rozum["count"] == 1 and rozum["counts"][-1] == 1

    def test_gauges_overwrite_on_merge(self):
        reg = MetricsRegistry()
        reg.gauge("depth").set(3, queue="main")
        reg.merge_dict({
            "metrics": [{
                "name": "depth", "type": "gauge", "help": "",
                "series": [{"labels": {"queue": "main"}, "value": 9}],
            }]
        })
        assert reg.gauge("depth").value(queue="main") == 9
