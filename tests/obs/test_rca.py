"""Root-cause drill-down analytics: loaders, search core, CLI, smoke.

The acceptance contract for ``repro.obs.rca``: on a fixture with a known
planted regression slice, the analyzer ranks exactly that attribute
combination #1, deterministically; dumps with mismatched schema/emitter
stamps are rejected instead of mis-parsed; and the CLI round-trips the
machine report.
"""

import json

import pytest

from repro.obs.rca import (
    DimensionalRecord,
    analyze,
    analyze_bench_reports,
    load_dump,
    rca_smoke,
    records_from_bench,
    records_from_chaos,
    records_from_telemetry,
    records_from_traffic,
    render_smoke_fixture,
    split_records,
)


def _cell(attrs, value, n, measure="latency_s"):
    return [DimensionalRecord(dict(attrs), {measure: v})
            for v in [value] * n]


class TestAnalyzeCore:
    def test_planted_slice_ranks_first_and_deterministically(self):
        baseline, candidate = render_smoke_fixture()
        expected = {"robot": "xarm7", "wave_width": "16", "cache_hit": "miss"}
        results = [
            analyze(baseline, candidate, measure="plan_seconds", metric="p95")
            for _ in range(3)
        ]
        for result in results:
            assert result.findings[0].attributes == expected
        # Deterministic: identical machine reports across repeated runs.
        dumps = {json.dumps(r.to_dict(), sort_keys=True) for r in results}
        assert len(dumps) == 1

    def test_additive_metric_decomposes_exactly(self):
        baseline = _cell({"robot": "a"}, 1.0, 4) + _cell({"robot": "b"}, 1.0, 4)
        candidate = _cell({"robot": "a"}, 2.0, 4) + _cell({"robot": "b"}, 1.0, 4)
        result = analyze(baseline, candidate, measure="latency_s", metric="sum")
        top = result.findings[0]
        assert top.attributes == {"robot": "a"}
        assert top.explained_fraction == pytest.approx(1.0)

    def test_mean_metric_uses_counterfactual(self):
        baseline = _cell({"robot": "a"}, 1.0, 5) + _cell({"robot": "b"}, 1.0, 5)
        candidate = _cell({"robot": "a"}, 3.0, 5) + _cell({"robot": "b"}, 1.0, 5)
        result = analyze(baseline, candidate, measure="latency_s", metric="mean")
        top = result.findings[0]
        assert top.attributes == {"robot": "a"}
        assert top.explained_fraction == pytest.approx(1.0, abs=1e-6)

    def test_refinement_pruned_when_ancestor_explains_it(self):
        # The regression covers ALL of robot=a (both modes); the refined
        # robot=a × mode=x slices add no power and must be pruned.
        baseline = (_cell({"robot": "a", "mode": "x"}, 1.0, 4)
                    + _cell({"robot": "a", "mode": "y"}, 1.0, 4)
                    + _cell({"robot": "b", "mode": "x"}, 1.0, 4))
        candidate = (_cell({"robot": "a", "mode": "x"}, 2.0, 4)
                     + _cell({"robot": "a", "mode": "y"}, 2.0, 4)
                     + _cell({"robot": "b", "mode": "x"}, 1.0, 4))
        result = analyze(baseline, candidate, measure="latency_s",
                         metric="mean", top=10)
        assert result.findings[0].attributes == {"robot": "a"}
        labels = [f.label() for f in result.findings]
        assert "mode=x × robot=a" not in labels
        assert "mode=y × robot=a" not in labels

    def test_no_delta_reports_nothing(self):
        records = _cell({"robot": "a"}, 1.0, 4)
        result = analyze(records, list(records), measure="latency_s",
                         metric="p95")
        assert result.findings == []
        assert "no material delta" in result.note

    def test_missing_measure_noted(self):
        baseline = _cell({"robot": "a"}, 1.0, 2)
        candidate = [DimensionalRecord({"robot": "a"}, {"other": 2.0})]
        result = analyze(baseline, candidate, measure="latency_s")
        assert result.findings == []
        assert result.candidate_records == 0

    def test_unknown_metric_rejected(self):
        records = _cell({"robot": "a"}, 1.0, 2)
        with pytest.raises(ValueError):
            analyze(records, records, measure="latency_s", metric="p33")

    def test_vanished_slice_surfaces_for_improvements(self):
        # A slice present only in the baseline: its disappearance explains
        # a *negative* delta (candidate faster).
        baseline = _cell({"robot": "a"}, 5.0, 3) + _cell({"robot": "b"}, 1.0, 3)
        candidate = _cell({"robot": "b"}, 1.0, 3)
        result = analyze(baseline, candidate, measure="latency_s", metric="sum")
        assert result.findings[0].attributes == {"robot": "a"}
        assert result.findings[0].support_cand == 0

    def test_render_names_the_top_slice(self):
        baseline = _cell({"robot": "a"}, 1.0, 4) + _cell({"robot": "b"}, 1.0, 4)
        candidate = _cell({"robot": "a"}, 3.0, 4) + _cell({"robot": "b"}, 1.0, 4)
        result = analyze(baseline, candidate, measure="latency_s", metric="sum")
        text = result.render()
        assert "top finding: robot=a explains" in text
        assert "sum(latency_s)" in text


class TestSplit:
    def test_split_matching_side_is_baseline(self):
        records = (_cell({"fault": "clean"}, 1.0, 3)
                   + _cell({"fault": "armed"}, 2.0, 3))
        baseline, candidate = split_records(records, "fault=clean")
        assert all(r.attributes["fault"] == "clean" for r in baseline)
        assert all(r.attributes["fault"] == "armed" for r in candidate)

    def test_negated_split(self):
        records = (_cell({"fault": "clean"}, 1.0, 3)
                   + _cell({"fault": "armed"}, 2.0, 3))
        baseline, candidate = split_records(records, "fault!=armed")
        assert all(r.attributes["fault"] == "clean" for r in baseline)

    def test_empty_side_rejected(self):
        records = _cell({"fault": "clean"}, 1.0, 3)
        with pytest.raises(ValueError):
            split_records(records, "fault=clean")

    def test_malformed_predicate_rejected(self):
        with pytest.raises(ValueError):
            split_records(_cell({"a": "b"}, 1.0, 2), "nonsense")


class TestLoaders:
    def _telemetry_payload(self, schema=1):
        payload = {
            "emitter": "repro.service.telemetry",
            "jobs": 2,
            "records": [
                {"status": "ok", "cache_hit": False, "plan_seconds": 0.5,
                 "wall_seconds": 0.6, "queue_wait_s": 0.01,
                 "attributes": {"robot": "xarm7", "wave_width": "8"}},
                {"status": "ok", "cache_hit": True, "plan_seconds": 0.0,
                 "wall_seconds": 0.001,
                 "attributes": {"robot": "rozum", "wave_width": "1"}},
            ],
        }
        if schema is not None:
            payload["schema"] = schema
        return payload

    def test_telemetry_rows_carry_attributes_and_measures(self):
        records = records_from_telemetry(self._telemetry_payload())
        assert len(records) == 2
        assert records[0].attributes["robot"] == "xarm7"
        assert records[0].attributes["cache_hit"] == "miss"
        assert records[1].attributes["cache_hit"] == "hit"
        assert records[0].measures["plan_seconds"] == 0.5

    def test_newer_schema_rejected(self):
        with pytest.raises(ValueError, match="schema 99"):
            records_from_telemetry(self._telemetry_payload(schema=99))

    def test_legacy_unstamped_dump_accepted(self):
        payload = self._telemetry_payload(schema=None)
        del payload["emitter"]
        assert len(records_from_telemetry(payload)) == 2

    def test_wrong_emitter_rejected(self):
        payload = self._telemetry_payload()
        payload["emitter"] = "repro.net.traffic"
        with pytest.raises(ValueError, match="traffic"):
            records_from_telemetry(payload)

    def test_records_required(self):
        with pytest.raises(ValueError, match="records"):
            records_from_telemetry({"schema": 1, "jobs": 3})

    def test_bench_sections_flatten_to_time_s(self):
        payload = {
            "schema": 1, "mode": "quick",
            "kernels": [{"kernel": "k", "dim": 3, "size": "64",
                         "batch_s": 0.001, "reference_s": 0.01}],
            "end_to_end": [{"case": "c", "robot": "rozum", "obstacles": 32,
                            "variant": "v", "batch_s": 1.0,
                            "reference_s": 4.0}],
            "wave": [{"case": "c", "robot": "rozum", "obstacles": 32,
                      "variant": "v", "wave_width": 8, "wave_s": 0.5,
                      "scalar_s": 1.0}],
        }
        records = records_from_bench(payload)
        assert [r.attributes["section"] for r in records] == \
            ["kernel", "e2e", "wave"]
        assert [r.measures["time_s"] for r in records] == [0.001, 1.0, 0.5]

    def test_traffic_rows_get_outcome_and_workload_attrs(self):
        payload = {
            "schema": 1, "emitter": "repro.net.traffic", "mix": "smoke",
            "arrival": "burst", "by_code": {}, "shed_rate": 0.0,
            "records": [
                {"code": 200, "status": "ok", "latency_s": 0.05,
                 "cache_hit": True, "robot": "mobile2d", "samples": 60},
                {"code": 429, "status": None, "latency_s": 0.001},
                {"code": 500, "status": "error", "latency_s": 0.2},
            ],
        }
        records = records_from_traffic(payload)
        assert records[0].attributes["outcome"] == "served"
        assert records[0].attributes["robot"] == "mobile2d"
        assert records[0].attributes["mix"] == "smoke"
        assert records[1].attributes["outcome"] == "shed"
        assert records[2].attributes["outcome"] == "error"
        assert records[2].measures["error"] == 1.0

    def test_chaos_rows_split_armed_vs_clean(self):
        payload = {
            "schema": 1, "emitter": "repro.faults.chaos",
            "records": [
                {"category": "healthy", "status": "ok", "cache_hit": False,
                 "wall_seconds": 0.1, "attributes": {"robot": "mobile2d"}},
                {"category": "hang", "status": "timeout", "cache_hit": False,
                 "wall_seconds": 0.5, "attributes": {"robot": "mobile2d"}},
            ],
        }
        records = records_from_chaos(payload)
        assert records[0].attributes["fault"] == "clean"
        assert records[1].attributes["fault"] == "armed"
        baseline, candidate = split_records(records, "fault=clean")
        assert len(baseline) == len(candidate) == 1

    def test_load_dump_sniffs_each_kind(self, tmp_path):
        dumps = {
            "telemetry": self._telemetry_payload(),
            "bench": {"schema": 1, "mode": "quick", "host": {},
                      "kernels": [], "end_to_end": [], "wave": []},
            "chaos": {"schema": 1, "emitter": "repro.faults.chaos",
                      "digest": "x", "categories": {}, "records": []},
            "traffic": {"schema": 1, "emitter": "repro.net.traffic",
                        "by_code": {}, "shed_rate": 0.0, "records": []},
        }
        for kind, payload in dumps.items():
            path = tmp_path / f"{kind}.json"
            path.write_text(json.dumps(payload))
            sniffed, _ = load_dump(path)
            assert sniffed == kind

    def test_load_dump_rejects_unidentifiable(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"foo": 1}))
        with pytest.raises(ValueError, match="cannot identify"):
            load_dump(path)


class TestBenchBridge:
    def test_bench_gate_failure_names_the_cell(self):
        def report(slow):
            kernels = []
            for kernel in ("a", "b"):
                for dim in (2, 3):
                    t = 0.001
                    if slow and kernel == "b" and dim == 3:
                        t = 0.003
                    kernels.append({"kernel": kernel, "dim": dim,
                                    "size": "64", "batch_s": t,
                                    "reference_s": 0.01})
            return {"schema": 1, "kernels": kernels,
                    "end_to_end": [], "wave": []}

        result = analyze_bench_reports(report(False), report(True))
        top = result.findings[0]
        assert top.attributes.get("kernel") == "b"
        assert top.attributes.get("dim") == "3"
        assert top.explained_fraction == pytest.approx(1.0)


class TestCliAndSmoke:
    def test_rca_smoke_passes_and_writes_artifact(self, tmp_path):
        out = tmp_path / "rca-report.json"
        assert rca_smoke(out=str(out), log=lambda *_: None) == 0
        payload = json.loads(out.read_text())
        assert payload["passed"] is True
        top = payload["telemetry_case"]["findings"][0]["attributes"]
        assert top == {"robot": "xarm7", "wave_width": "16",
                       "cache_hit": "miss"}

    def test_cli_two_dump_run(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        baseline, candidate = render_smoke_fixture(per_cell=4)

        def dump(records, name):
            rows = []
            for r in records:
                rows.append({"status": "ok", "cache_hit": False,
                             "plan_seconds": r.measures["plan_seconds"],
                             "attributes": r.attributes})
            path = tmp_path / name
            path.write_text(json.dumps({
                "schema": 1, "emitter": "repro.service.telemetry",
                "jobs": len(rows), "records": rows,
            }))
            return str(path)

        out = tmp_path / "rca.json"
        code = main(["rca", dump(baseline, "base.json"),
                     dump(candidate, "cand.json"),
                     "--metric", "p95", "--top", "3", "--out", str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "top finding:" in text
        machine = json.loads(out.read_text())
        assert machine["emitter"] == "repro.obs.rca"
        assert machine["findings"][0]["attributes"]["robot"] == "xarm7"

    def test_cli_split_mode(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        # Fault-armed jobs are slow only on mobile2d: the drill-down must
        # name the robot, not the (whole-side, uninformative) fault attr.
        rows = []
        for fault, robot, latency in (
            ("clean", "mobile2d", 0.1), ("clean", "xarm7", 0.1),
            ("armed", "mobile2d", 0.4), ("armed", "xarm7", 0.1),
        ):
            for _ in range(4):
                rows.append({"status": "ok", "cache_hit": False,
                             "wall_seconds": latency,
                             "attributes": {"fault": fault, "robot": robot}})
        path = tmp_path / "dump.json"
        path.write_text(json.dumps({
            "schema": 1, "emitter": "repro.service.telemetry",
            "jobs": len(rows), "records": rows,
        }))
        code = main(["rca", str(path), "--split", "fault=clean",
                     "--measure", "wall_seconds", "--metric", "mean"])
        assert code == 0
        out = capsys.readouterr().out
        assert "top finding: robot=mobile2d" in out

    def test_cli_rejects_both_candidate_and_split(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        code = main(["rca", "a.json", "b.json", "--split", "x=y"])
        assert code == 2

    def test_cli_rejects_mismatched_kinds(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        t = tmp_path / "t.json"
        t.write_text(json.dumps({
            "schema": 1, "emitter": "repro.service.telemetry",
            "jobs": 0, "records": [],
        }))
        b = tmp_path / "b.json"
        b.write_text(json.dumps({"schema": 1, "mode": "quick", "host": {},
                                 "kernels": [], "end_to_end": [],
                                 "wave": []}))
        code = main(["rca", str(t), str(b)])
        assert code == 2
        assert "kinds differ" in capsys.readouterr().err
