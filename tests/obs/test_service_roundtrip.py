"""Observability through the service: worker spans ship back, tagged.

The round trip under test: a traced request plans inside a worker under a
private tracer/registry, the drained buffers cross the pipe as plain data,
and the supervisor absorbs them into the ambient instruments tagged with
the job id that ran them.
"""

import pytest

from repro import obs
from repro.service import PlanningService, build_requests
from repro.service.pool import PoolConfig


@pytest.fixture
def ambient():
    """Fresh enabled tracer+registry installed as the process globals."""
    previous = obs.install(
        obs.Tracer(enabled=True), obs.MetricsRegistry(enabled=True)
    )
    yield obs.get_tracer(), obs.get_registry()
    obs.restore(previous)


def run_traced_batch(num_workers: int, jobs: int = 2):
    requests = build_requests(jobs=jobs, samples=120, trace=True)
    pool_config = None
    if num_workers:
        pool_config = PoolConfig(num_workers=num_workers, default_timeout_s=30.0,
                                 poll_interval_s=0.01)
    with PlanningService(num_workers=num_workers, pool_config=pool_config) as svc:
        responses = svc.run_batch(requests)
        summary = svc.summary()
    return requests, responses, summary, svc


class TestInlineRoundTrip:
    def test_worker_spans_arrive_tagged_with_job_id(self, ambient):
        tracer, _ = ambient
        _, responses, _, _ = run_traced_batch(num_workers=0)
        assert all(r.status == "ok" for r in responses)
        job_spans = [s for s in tracer.spans if s["name"] == "job"]
        assert len(job_spans) == 2
        # job ids are assigned in submission order; request ids must match.
        tags = sorted(
            (s["args"]["job_id"], s["args"]["request_id"]) for s in job_spans
        )
        assert tags == [(0, "job-000"), (1, "job-001")]
        # Phase spans inherit the same tag (absorb merges into every span).
        for name in ("sample", "collision"):
            phase = [s for s in tracer.spans if s["name"] == name]
            assert phase and all("job_id" in s["args"] for s in phase)

    def test_metric_deltas_merge_into_ambient_registry(self, ambient):
        _, registry = ambient
        _, responses, _, _ = run_traced_batch(num_workers=0)
        seconds = registry.get("repro_phase_seconds_total")
        assert seconds is not None
        assert seconds.value(phase="sample") > 0
        plans = registry.get("repro_plans_total")
        assert sum(plans.series.values()) == len(responses)

    def test_phase_seconds_reach_telemetry_axes(self, ambient):
        _, _, summary, _ = run_traced_batch(num_workers=0)
        phases = summary["latency_s"]["phases"]
        assert "sample" in phases and "collision" in phases
        assert phases["collision"]["max"] > 0

    def test_response_payloads_are_plain_data(self, ambient):
        import json

        _, responses, _, _ = run_traced_batch(num_workers=0, jobs=1)
        (response,) = responses
        assert response.trace_spans and response.metric_deltas
        json.dumps(response.trace_spans)  # pipe-safe: pure JSON types
        json.dumps(response.metric_deltas)
        assert set(response.phase_seconds) <= set(obs.PHASES)

    def test_traced_requests_bypass_cache(self, ambient):
        requests = build_requests(jobs=1, samples=120, trace=True, duplicate=2)
        with PlanningService(num_workers=0) as svc:
            responses = svc.run_batch(requests)
        assert not any(r.cache_hit for r in responses)
        assert svc.cache.stats()["hits"] == 0


class TestPooledRoundTrip:
    def test_spans_cross_the_process_boundary_tagged(self, ambient):
        tracer, registry = ambient
        _, responses, _, _ = run_traced_batch(num_workers=1)
        assert all(r.status == "ok" for r in responses)
        job_spans = [s for s in tracer.spans if s["name"] == "job"]
        assert sorted(s["args"]["job_id"] for s in job_spans) == [0, 1]
        # Worker spans keep the worker's pid: a separate Perfetto track.
        assert all(s["pid"] != tracer.pid for s in job_spans)
        # The supervisor adds its own service.job span per settled job.
        svc_spans = [s for s in tracer.spans if s["name"] == "service.job"]
        assert sorted(s["args"]["job_id"] for s in svc_spans) == [0, 1]
        assert all(s["pid"] == tracer.pid for s in svc_spans)
        assert registry.get("repro_phase_seconds_total") is not None

    def test_untraced_batch_ships_no_buffers(self, ambient):
        tracer, _ = ambient
        requests = build_requests(jobs=1, samples=120)  # trace=False
        with PlanningService(num_workers=1,
                             pool_config=PoolConfig(num_workers=1,
                                                    poll_interval_s=0.01)) as svc:
            (response,) = svc.run_batch(requests)
        assert response.status == "ok"
        assert response.trace_spans == [] and response.metric_deltas == {}
        assert [s["name"] for s in tracer.spans if s["name"] == "job"] == []


class TestDisabledDefaults:
    def test_untraced_plan_leaves_global_instruments_empty(self):
        # No fixture: the real (disabled) globals must stay untouched.
        requests = build_requests(jobs=1, samples=120)
        with PlanningService(num_workers=0) as svc:
            (response,) = svc.run_batch(requests)
        assert response.status == "ok"
        assert obs.get_tracer().spans == []
        assert len(obs.get_registry()) == 0
