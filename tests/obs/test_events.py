"""Structured JSONL event log: correlation ids, ordering, round trip."""

from repro.obs.events import EventLog, new_run_id, read_events
from repro.obs.stats import axis_summary, percentile


class TestEventLog:
    def test_run_id_is_short_hex(self):
        rid = new_run_id()
        assert len(rid) == 12
        int(rid, 16)  # parses as hex

    def test_events_carry_run_id_and_sequence(self):
        log = EventLog(run_id="abc123abc123")
        log.emit("batch.start", requests=3)
        log.emit("job.done", job_id=0, status="ok")
        first, second = list(log)
        assert first["run_id"] == second["run_id"] == "abc123abc123"
        assert (first["seq"], second["seq"]) == (0, 1)
        assert first["event"] == "batch.start" and first["requests"] == 3
        assert "ts" in first

    def test_jsonl_round_trip(self, tmp_path):
        log = EventLog()
        log.emit("a", x=1)
        log.emit("b", y=[1, 2])
        path = tmp_path / "events.jsonl"
        log.dump(path)
        events = read_events(path)
        assert len(events) == len(log) == 2
        assert events[1]["y"] == [1, 2]


class TestSharedStats:
    def test_percentile_matches_linear_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == 2.5
        assert percentile([], 50) is None

    def test_percentile_is_the_single_shared_impl(self):
        from repro.analysis import suite
        from repro.obs import stats
        from repro.service import telemetry

        assert telemetry.percentile is stats.percentile
        assert suite.percentile is stats.percentile

    def test_axis_summary_shape(self):
        summary = axis_summary([1.0, 2.0, 3.0])
        assert set(summary) == {"p50", "p95", "mean", "max"}
        assert summary["max"] == 3.0
