"""Metrics registry: kinds, bucket edges, exports, cross-process merge."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    bump,
    get_registry,
    parse_prometheus,
    set_registry,
)


class TestCounterAndGauge:
    def test_counter_accumulates_per_labelset(self):
        c = Counter("x_total")
        c.inc(2, phase="sample")
        c.inc(phase="sample")
        c.inc(5, phase="steer")
        assert c.value(phase="sample") == 3
        assert c.value(phase="steer") == 5
        assert c.value(phase="missing") == 0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x_total").inc(-1)

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(10)
        g.dec(3)
        g.inc(1)
        assert g.value() == 8

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")


class TestHistogramBucketEdges:
    def test_value_equal_to_bound_lands_in_that_bucket(self):
        h = Histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.1)  # le semantics: == bound -> that bucket
        assert h.snapshot()["counts"] == [1, 0, 0]

    def test_value_just_above_bound_spills_to_next(self):
        h = Histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.1000001)
        assert h.snapshot()["counts"] == [0, 1, 0]

    def test_value_above_top_bound_lands_in_inf(self):
        h = Histogram("lat", buckets=(0.1, 1.0))
        h.observe(99.0)
        assert h.snapshot()["counts"] == [0, 0, 1]

    def test_sum_and_count_track_observations(self):
        h = Histogram("lat", buckets=(0.5,))
        h.observe(0.25)
        h.observe(0.75)
        snap = h.snapshot()
        assert snap["sum"] == pytest.approx(1.0) and snap["count"] == 2

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=())
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(0.1, 0.1))


def golden_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    c = reg.counter("repro_x_total", "Things done")
    c.inc(2, phase="sample")
    c.inc(1, phase="steer")
    reg.gauge("repro_depth").set(3)
    h = reg.histogram("repro_lat_seconds", "Latency", buckets=(0.5, 2.0))
    h.observe(0.25)
    h.observe(0.5)
    h.observe(5.0)
    return reg


GOLDEN_PROM = """\
# TYPE repro_depth gauge
repro_depth 3
# HELP repro_lat_seconds Latency
# TYPE repro_lat_seconds histogram
repro_lat_seconds_bucket{le="0.5"} 2
repro_lat_seconds_bucket{le="2"} 2
repro_lat_seconds_bucket{le="+Inf"} 3
repro_lat_seconds_sum 5.75
repro_lat_seconds_count 3
# HELP repro_x_total Things done
# TYPE repro_x_total counter
repro_x_total{phase="sample"} 2
repro_x_total{phase="steer"} 1
"""


class TestExports:
    def test_golden_prometheus_text(self):
        assert golden_registry().to_prometheus() == GOLDEN_PROM

    def test_parse_prometheus_round_trip(self):
        parsed = parse_prometheus(GOLDEN_PROM)
        assert parsed["repro_x_total"] == [
            ({"phase": "sample"}, 2.0),
            ({"phase": "steer"}, 1.0),
        ]
        assert parsed["repro_depth"] == [({}, 3.0)]
        # Histogram buckets come back cumulative, keyed by le.
        assert ({"le": "+Inf"}, 3.0) in parsed["repro_lat_seconds_bucket"]
        assert parsed["repro_lat_seconds_sum"] == [({}, 5.75)]

    def test_export_picks_format_by_suffix(self, tmp_path):
        reg = golden_registry()
        prom, js = tmp_path / "m.prom", tmp_path / "m.json"
        reg.export(prom)
        reg.export(js)
        assert prom.read_text() == GOLDEN_PROM
        names = [m["name"] for m in json.loads(js.read_text())["metrics"]]
        assert names == ["repro_depth", "repro_lat_seconds", "repro_x_total"]


class TestMerge:
    def test_merge_adds_counters_sets_gauges_adds_histograms(self):
        a, b = golden_registry(), golden_registry()
        b.gauge("repro_depth").set(7)
        a.merge_dict(b.to_dict())
        assert a.get("repro_x_total").value(phase="sample") == 4
        assert a.get("repro_depth").value() == 7  # gauge: last write wins
        snap = a.get("repro_lat_seconds").snapshot()
        assert snap["count"] == 6 and snap["sum"] == pytest.approx(11.5)

    def test_merge_into_empty_registry_recreates_metrics(self):
        fresh = MetricsRegistry()
        fresh.merge_dict(golden_registry().to_dict())
        assert fresh.to_prometheus() == GOLDEN_PROM

    def test_histogram_bucket_mismatch_raises(self):
        a = MetricsRegistry()
        a.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        snapshot = a.to_dict()
        b = MetricsRegistry()
        b.histogram("lat", buckets=(0.5,))
        with pytest.raises(ValueError):
            b.merge_dict(snapshot)


class TestGlobals:
    def test_global_registry_starts_disabled_and_bump_is_noop(self):
        assert get_registry().enabled is False
        bump("repro_test_noop_total")
        assert get_registry().get("repro_test_noop_total") is None

    def test_bump_records_against_enabled_registry(self):
        previous = set_registry(MetricsRegistry(enabled=True))
        try:
            bump("repro_test_total", 2, kind="unit")
            bump("repro_test_total", kind="unit")
            assert get_registry().get("repro_test_total").value(kind="unit") == 3
        finally:
            set_registry(previous)
