#!/usr/bin/env python3
"""Hardware simulation: run a task through the modelled MOPED accelerator.

Executes one planning task on the functional model of the Fig 11 engine —
LFSR sampling, speculate-and-repair pipelining, three-level caching — and
compares latency/energy/area efficiency against the paper's baselines
(EPYC 7601 CPU, RRT\\* ASIC, RRT\\* ASIC + CODAcc).

Run:  python examples/hardware_simulation.py
"""

from repro import get_robot
from repro.core.config import baseline_config, moped_config
from repro.hardware import (
    MopedAccelerator,
    MopedEventSimulator,
    asic_report,
    codacc_report,
    cpu_report,
    format_comparison,
    format_timeline,
)
from repro.core.rrtstar import RRTStarPlanner
from repro.workloads import random_task

SAMPLES = 600


def main() -> None:
    task = random_task("viperx300", num_obstacles=32, seed=9)
    robot = get_robot("viperx300")
    print(f"task: {robot.label}, {task.environment.num_obstacles} obstacles, "
          f"{SAMPLES} sampling rounds\n")

    accelerator = MopedAccelerator()
    hw = accelerator.run(
        robot, task, moped_config("v4", max_samples=SAMPLES, seed=0, sampler="lfsr")
    )
    print("--- MOPED engine ---")
    print(f"plan: {hw.plan.summary()}")
    print(f"pipeline: serialized {hw.pipeline.serial_cycles:.0f} cycles -> "
          f"S&R {hw.pipeline.snr_cycles:.0f} cycles "
          f"({hw.pipeline.speedup:.2f}x overlap speedup)")
    print(f"buffers: peak FIFO {hw.pipeline.max_fifo_occupancy}/20, "
          f"peak missing neighbors {hw.pipeline.max_missing_neighbors}/5")
    print(f"caches: top NS hit rate {hw.cache.top_cache_hit_rate:.1%}, "
          f"trace hits {hw.cache.trace_hits}, "
          f"neighborhood hand-offs {hw.cache.neighbor_cache_reads}")
    print(f"latency: {hw.latency_ms:.4f} ms at 1 GHz, 0.62 mm^2, 137.5 mW\n")

    print("--- baselines (original RRT*, same task/seed) ---")
    base_plan = RRTStarPlanner(
        robot, task, baseline_config(max_samples=SAMPLES, seed=0)
    ).plan()
    grid_plan = RRTStarPlanner(
        robot, task, baseline_config(checker="grid", max_samples=SAMPLES, seed=0)
    ).plan()
    reports = {
        "MOPED": hw.perf,
        "CPU": cpu_report(base_plan),
        "RRT* ASIC": asic_report(base_plan, robot),
        "ASIC+CODAcc": codacc_report(grid_plan, robot),
    }
    print(format_comparison(reports, reference="MOPED"))
    print("\n(ratio columns: MOPED's improvement over each row's platform)")

    print("\n--- pipeline timeline (discrete-event simulation) ---")
    des = MopedEventSimulator().run(hw.plan.rounds)
    print(format_timeline(des, first=100, count=10))
    print("N = neighbor search (+ tree ops), C = collision check; consecutive")
    print("rounds overlap thanks to speculate-and-repair (Fig 12).")


if __name__ == "__main__":
    main()
