#!/usr/bin/env python3
"""Robot-arm manipulation: the paper's high-DoF motivation workload.

Plans joint-space motions for the 5-DoF ViperX 300 stand-in among random
obstacles and walks the Fig 16 ablation ladder (baseline -> V1 -> ... -> V4),
showing where each of MOPED's algorithmic ideas saves computation:

* V1 — two-stage collision processing (R-tree filter + exact OBB check)
* V2 — SI-MBR-Tree neighbor search
* V3 — steering-informed approximated neighborhoods
* V4 — low-cost O(1) tree insertion (= full MOPED)

Run:  python examples/arm_manipulation.py
"""

import numpy as np

from repro import MopedEngine, get_robot
from repro.workloads import random_task

VARIANTS = [
    ("baseline", "original RRT*"),
    ("v1", "+ two-stage collision check (TSPS)"),
    ("v2", "+ SI-MBR-Tree neighbor search (STNS)"),
    ("v3", "+ approximated neighborhoods (SIAS)"),
    ("v4", "+ low-cost insertion (LCI) = full MOPED"),
]


def main() -> None:
    task = random_task("viperx300", num_obstacles=16, seed=11)
    robot = get_robot("viperx300")
    print(f"robot: {robot.label} ({robot.dof} joints, {robot.num_body_obbs} body OBBs)")
    print(f"obstacles: {task.environment.num_obstacles}")
    print(f"start joints: {np.round(task.start, 2)}")
    print(f"goal joints:  {np.round(task.goal, 2)}\n")

    previous = None
    for variant, description in VARIANTS:
        engine = MopedEngine(robot, task.environment, variant=variant,
                             max_samples=400, seed=1, goal_bias=0.15)
        result = engine.plan_task(task)
        change = ""
        if previous is not None:
            change = f"  ({100 * (result.total_macs / previous - 1):+.1f}% vs prev)"
        outcome = f"cost={result.path_cost:.2f}" if result.success else "(no path yet)"
        print(f"{variant:>8}  {result.total_macs:>12.3g} MACs{change}  {outcome}")
        print(f"{'':>8}  {description}")
        previous = result.total_macs


if __name__ == "__main__":
    main()
