#!/usr/bin/env python3
"""Quickstart: plan a collision-free path with the MOPED engine.

Builds a random 2D environment (Section V protocol), plans with the full
MOPED algorithm, and compares against the original RRT\\* baseline — same
task, same seed, same sampling budget.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import MopedEngine, get_robot
from repro.analysis import render_environment
from repro.workloads import random_environment, random_start_goal


def main() -> None:
    robot = get_robot("mobile2d")
    environment = random_environment(workspace_dim=2, num_obstacles=16, seed=7)
    rng = np.random.default_rng(7)
    start, goal = random_start_goal(robot, environment, rng)
    print(f"robot: {robot.label} ({robot.dof} DoF)")
    print(f"environment: {environment.num_obstacles} obstacles in "
          f"{environment.size:.0f}x{environment.size:.0f} workspace")
    print(f"start: {np.round(start, 2)}")
    print(f"goal:  {np.round(goal, 2)}\n")

    moped_result = None
    for variant in ("full", "baseline"):
        engine = MopedEngine(robot, environment, variant=variant,
                             max_samples=800, seed=0, goal_bias=0.1)
        result = engine.plan(start, goal)
        if variant == "full":
            moped_result = result
        name = "MOPED" if variant == "full" else "RRT* baseline"
        print(f"{name:>14}: {result.summary()}")
        if result.success:
            print(f"{'':>14}  waypoints: {len(result.path)}, "
                  f"first solution at iteration {result.first_solution_iteration}")

    print("\nThe 'macs' column is the MAC-equivalent arithmetic the hardware")
    print("executes: MOPED needs a small fraction of the baseline's work.")
    print("On 2D tasks at small budgets MOPED's approximated neighborhoods can")
    print("cost some path quality; the high-DoF workloads the paper targets")
    print("show parity (see EXPERIMENTS.md and examples/arm_manipulation.py).")

    if moped_result is not None and moped_result.success:
        print("\nMOPED's path (S=start, G=goal, #=obstacles):")
        print(render_environment(environment, path=moped_result.path,
                                 width=60, height=24))


if __name__ == "__main__":
    main()
