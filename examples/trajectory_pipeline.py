#!/usr/bin/env python3
"""Full pipeline: plan -> smooth -> time-parameterize -> execute.

A downstream user rarely stops at the raw RRT\\* path: the zig-zag is
shortcut-smoothed, then time-parameterized under the robot's velocity and
acceleration limits, and finally sampled for execution.  This example runs
the complete pipeline on the 6-DoF ROZUM arm stand-in and shows how much
execution time the post-processing recovers — the paper's motivation that
path cost translates directly into actuation time and energy (§III-A).

Run:  python examples/trajectory_pipeline.py
"""

import numpy as np

from repro import MopedEngine, get_robot
from repro.core.collision import BruteOBBChecker
from repro.core.smoothing import shortcut_smooth
from repro.core.trajectory import time_parameterize
from repro.workloads import random_task

MAX_JOINT_SPEED = 1.2   # rad/s in C-space norm
MAX_JOINT_ACCEL = 2.5   # rad/s^2


def main() -> None:
    task = random_task("rozum", num_obstacles=16, seed=13)
    robot = get_robot("rozum")
    print(f"robot: {robot.label} ({robot.dof} joints)")

    engine = MopedEngine(robot, task.environment, max_samples=600, seed=2,
                         goal_bias=0.15)
    result = engine.plan_task(task)
    if not result.success:
        print("planning failed — try a different seed")
        return
    print(f"planned: {result.summary()}")

    checker = BruteOBBChecker(robot, task.environment,
                              motion_resolution=robot.step_size / 4.0)
    smoothed, smoothed_cost = shortcut_smooth(result.path, checker,
                                              iterations=200, seed=0)
    print(f"smoothed: cost {result.path_cost:.3f} -> {smoothed_cost:.3f} "
          f"({len(result.path)} -> {len(smoothed)} waypoints)")

    raw_traj = time_parameterize(result.path, MAX_JOINT_SPEED, MAX_JOINT_ACCEL)
    smooth_traj = time_parameterize(smoothed, MAX_JOINT_SPEED, MAX_JOINT_ACCEL)
    saving = 100 * (1 - smooth_traj.duration / raw_traj.duration)
    print(f"execution time: {raw_traj.duration:.2f}s raw -> "
          f"{smooth_traj.duration:.2f}s smoothed ({saving:.0f}% faster)")

    print("\nexecuting (sampled joint states):")
    for t in np.linspace(0.0, smooth_traj.duration, 8):
        q = smooth_traj.state_at(float(t))
        print(f"  t={t:5.2f}s  q={np.round(q, 2)}")

    print("\nShorter paths mean less actuation time — the reason the paper")
    print("treats path cost as an energy metric (propellers/motors draw far")
    print("more power than the planner itself; Section III-A).")


if __name__ == "__main__":
    main()
