#!/usr/bin/env python3
"""Narrow passage: where bounding-box accuracy decides the route.

Two long bars rotated 45 degrees form a diagonal channel (Fig 5's
motivating scenario).  The channel is genuinely wide enough for the robot,
but each bar's AABB is a huge square that covers the channel completely:
an AABB-only checker believes the direct route is blocked and must detour
around the bar ends, while the exact OBB second stage drives straight
through -- lower path cost, and in tighter variants the difference between
success and failure.

Run:  python examples/narrow_passage.py
"""

import numpy as np

from repro import MopedEngine, get_robot
from repro.workloads import narrow_passage_environment


def main() -> None:
    robot = get_robot("mobile2d")
    environment = narrow_passage_environment(workspace_dim=2, gap=26.0)
    start = np.array([60.0, 60.0, np.pi / 4])
    goal = np.array([240.0, 240.0, np.pi / 4])
    print("scenario: diagonal channel between two 45-degree bars")
    print("channel width: 26 units; robot footprint: 16x10 units\n")

    results = {}
    for checker, label in (("two_stage", "OBB two-stage"), ("aabb", "AABB only")):
        engine = MopedEngine(
            robot,
            environment,
            variant="full",
            checker=checker,
            max_samples=1500,
            seed=5,
            goal_bias=0.15,
        )
        result = engine.plan(start, goal)
        results[checker] = result
        if result.success:
            print(f"{label:>14}: SUCCESS  cost={result.path_cost:.1f} "
                  f"({len(result.path)} waypoints)")
        else:
            print(f"{label:>14}: FAILED after {result.iterations} samples")

    obb, aabb = results["two_stage"], results["aabb"]
    if obb.success and aabb.success:
        extra = 100 * (aabb.path_cost / obb.path_cost - 1)
        print(f"\nThe AABB planner detoured around the bars: {extra:.0f}% longer path.")
    elif obb.success:
        print("\nThe AABB planner found no route at all; only exact OBB checking")
        print("keeps the channel open.")
    print("\nA 45-degree bar maximises AABB over-approximation -- this is the")
    print("false-positive problem MOPED's second-stage OBB check eliminates")
    print("(Section III-A, Fig 5).")


if __name__ == "__main__":
    main()
