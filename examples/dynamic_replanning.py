#!/usr/bin/env python3
"""Dynamic replanning: moving obstacles and cheap environment updates.

Section VI contrasts MOPED with accelerators whose state bakes in the
environment: the MICRO'16 precomputed-collision design "needs hours of
offline reset if obstacles change" and CODAcc must re-rasterise its
multi-megabyte occupancy grid.  MOPED only rebuilds its obstacle R-tree —
an STR bulk load over a few dozen boxes.

This example drives the 2D mobile robot through a field of drifting
obstacles with an execute-and-replan loop, prints per-epoch progress with
an ASCII rendering of the final snapshot, and compares the per-epoch
environment-preparation cost of the three approaches.

Run:  python examples/dynamic_replanning.py
"""

import numpy as np

from repro import get_robot
from repro.analysis import render_environment
from repro.core.config import moped_config
from repro.core.replan import ReplanningSession, environment_prep_macs
from repro.workloads import random_dynamic_scenario


def main() -> None:
    scenario = random_dynamic_scenario(2, num_obstacles=12, seed=3, max_speed=8.0)
    robot = get_robot("mobile2d")
    start = np.array([30.0, 30.0, 0.0])
    goal = np.array([270.0, 270.0, 0.0])

    print("per-epoch environment preparation cost (MAC-equivalents):")
    env0 = scenario.environment_at(0.0)
    for method, label in (
        ("rtree", "MOPED: STR R-tree rebuild"),
        ("grid", "CODAcc: occupancy-grid re-rasterisation"),
        ("precomputed", "MICRO'16: re-run collision precomputation"),
    ):
        print(f"  {label:>42}: {environment_prep_macs(env0, method):>12.3g}")

    session = ReplanningSession(
        robot,
        scenario,
        config=moped_config("v4", max_samples=250, goal_bias=0.2, seed=0),
        execute_distance=60.0,
    )
    outcome = session.run(start, goal, max_epochs=12)

    print(f"\nreplanning: {'reached goal' if outcome.reached_goal else 'did not finish'} "
          f"in {len(outcome.epochs)} epochs")
    for epoch in outcome.epochs:
        pos = epoch.executed_to
        status = "ok" if epoch.plan.success else "blocked"
        print(f"  t={epoch.time:>4.1f}  at ({pos[0]:6.1f}, {pos[1]:6.1f})  "
              f"plan {status}, {epoch.plan.total_macs:.3g} MACs")
    print(f"\ntotal planning work: {outcome.total_plan_macs:.3g} MACs; "
          f"environment prep: {outcome.total_prep_macs:.3g} MACs "
          f"({100 * outcome.total_prep_macs / outcome.total_plan_macs:.2f}% overhead)")

    final_env = scenario.environment_at(outcome.epochs[-1].time)
    print("\nfinal obstacle snapshot (robot path not shown; obstacles move):")
    print(render_environment(final_env, width=60, height=24))


if __name__ == "__main__":
    main()
