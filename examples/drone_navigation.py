#!/usr/bin/env python3
"""Drone navigation: 6-DoF planning in a cluttered 3D workspace.

Demonstrates the OBB-vs-AABB trade-off of Section III-A / Fig 18: the cheap
AABB obstacle representation over-approximates rotated obstacles, producing
longer paths (or outright failures); MOPED's two-stage checker keeps the
cheap filter but restores exact OBB decisions in the second stage.

Run:  python examples/drone_navigation.py
"""

import numpy as np

from repro import MopedEngine, get_robot, path_length
from repro.workloads import random_environment, random_start_goal


def main() -> None:
    robot = get_robot("drone3d")
    environment = random_environment(workspace_dim=3, num_obstacles=32, seed=21)
    rng = np.random.default_rng(21)
    start, goal = random_start_goal(robot, environment, rng)
    print(f"robot: {robot.label} ({robot.dof} DoF)")
    print(f"environment: {environment.num_obstacles} rotated OBB obstacles\n")

    results = {}
    for checker, label in (("two_stage", "OBB (two-stage)"), ("aabb", "AABB only")):
        engine = MopedEngine(robot, environment, variant="full",
                             checker=checker, max_samples=900, seed=3, goal_bias=0.15)
        result = engine.plan(start, goal)
        results[checker] = result
        status = f"cost={result.path_cost:.1f}" if result.success else "FAILED"
        print(f"{label:>18}: {status}  ({result.total_macs:.3g} MACs)")

    obb, aabb = results["two_stage"], results["aabb"]
    if obb.success and aabb.success:
        saving = 100 * (1 - obb.path_cost / aabb.path_cost)
        print(f"\nOBB-exact checking found a path {saving:.1f}% shorter —")
        print("the Fig 18 (left) effect: tighter bounding boxes, better paths.")
    elif obb.success and not aabb.success:
        print("\nAABB over-approximation blocked every corridor the drone needed;")
        print("the exact OBB second stage found a path anyway (Fig 5's false-positive effect).")


if __name__ == "__main__":
    main()
