"""Worker-side job execution: runs in the pool's child processes.

Everything here must be importable and picklable from a fresh interpreter
(``spawn`` start method) — no closures, no references to supervisor state.
The worker loop is deliberately dumb: pull ``(job_id, request)`` pairs off
the inbox, plan, push ``(worker_id, job_id, response)`` onto the shared
result queue.  All scheduling intelligence (timeouts, retries, respawn)
lives in :mod:`repro.service.pool` on the supervisor side, which is what
lets a hung or crashed worker be killed without losing the service.
"""

from __future__ import annotations

import os
import time
import traceback
from typing import Optional

from repro.core.metrics import PlanResult
from repro.service.request import PlanRequest, PlanResponse

#: Exit code a deliberately crashed worker dies with (tests assert on the
#: *structured* response, but the code makes post-mortems unambiguous).
CRASH_EXIT_CODE = 87

#: How long the "hang" fault sleeps — effectively forever next to any
#: realistic per-job timeout.
_HANG_SECONDS = 3600.0


def apply_fault(fault: Optional[str]) -> None:
    """Honour a request's chaos hook (see :class:`PlanRequest.fault`)."""
    if not fault:
        return
    if fault == "hang":
        time.sleep(_HANG_SECONDS)
    elif fault == "crash":
        os._exit(CRASH_EXIT_CODE)
    elif fault == "error":
        raise RuntimeError("injected worker error")
    elif fault.startswith("flaky:"):
        flag = fault.split(":", 1)[1]
        if os.path.exists(flag):
            # Consume the flag first so the retry takes the healthy path.
            os.unlink(flag)
            os._exit(CRASH_EXIT_CODE)
    else:
        raise ValueError(f"unknown fault spec {fault!r}")


def response_from_result(
    request: PlanRequest, result: PlanResult, plan_seconds: float
) -> PlanResponse:
    """Flatten a :class:`PlanResult` into the plain-data wire response."""
    brief = result.brief()
    return PlanResponse(
        request_id=request.request_id,
        status="ok",
        success=brief["success"],
        path_cost=brief["path_cost"],
        num_nodes=brief["num_nodes"],
        iterations=brief["iterations"],
        first_solution_iteration=brief["first_solution_iteration"],
        path=[p.tolist() for p in result.path],
        op_events=dict(result.counter.events),
        op_macs=dict(result.counter.macs),
        plan_seconds=plan_seconds,
    )


def execute_request(request: PlanRequest) -> PlanResponse:
    """Plan one request to completion (the body of a worker job).

    Also usable inline (no pool) — :class:`PlanningService` falls back to
    this for ``num_workers == 0``, and tests exercise planner behaviour
    through it without multiprocessing.

    Traced requests (``request.trace``) run under a *private* tracer and
    metrics registry installed as the process globals for the duration of
    the job; the drained span buffer and registry snapshot ship back in the
    response as plain data, ready to cross the pool pipe.  The supervisor
    absorbs them tagged with the job id (:mod:`repro.service.runner`).
    """
    from repro import obs
    from repro.core.robots import get_robot
    from repro.core.rrtstar import RRTStarPlanner

    apply_fault(request.fault)
    robot = get_robot(request.task.robot_name)

    observing = bool(request.trace)
    if observing:
        tracer = obs.Tracer(enabled=True)
        registry = obs.MetricsRegistry(enabled=True)
        previous = obs.install(tracer, registry)
    try:
        start = time.perf_counter()
        with obs.get_tracer().span(
            "job", request_id=request.request_id, lanes=request.lanes
        ):
            if request.lanes > 1:
                from repro.core.batch import BatchRRTStarPlanner

                planner = BatchRRTStarPlanner(
                    robot, request.task, request.config, batch_size=request.lanes
                )
            else:
                planner = RRTStarPlanner(robot, request.task, request.config)
            result = planner.plan()

            if request.smooth and result.success:
                from repro.core.collision import BruteOBBChecker
                from repro.core.smoothing import shortcut_smooth

                checker = BruteOBBChecker(
                    robot, request.task.environment,
                    motion_resolution=robot.step_size / 4.0,
                )
                smoothed, cost = shortcut_smooth(
                    result.path, checker, iterations=150, seed=request.config.seed
                )
                result.path = smoothed
                result.path_cost = cost
        elapsed = time.perf_counter() - start
    finally:
        if observing:
            obs.restore(previous)

    response = response_from_result(request, result, elapsed)
    if observing:
        response.trace_spans = tracer.drain()
        response.metric_deltas = registry.to_dict()
        response.phase_seconds = {
            name: round(entry["total_s"], 9)
            for name, entry in obs.aggregate_spans(
                response.trace_spans, names=obs.PHASES
            ).items()
        }
    return response


def worker_main(worker_id: int, conn) -> None:
    """Child-process loop: serve jobs over the private duplex pipe.

    Runs until the ``None`` sentinel arrives or the supervisor end of the
    pipe disappears.  ``worker_id`` only labels the process; the pipe
    itself identifies the worker to the supervisor.
    """
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            return  # supervisor went away
        if item is None:
            return
        job_id, request = item
        try:
            response = execute_request(request)
        except Exception as exc:  # structured, never fatal to the loop
            response = PlanResponse(
                request_id=request.request_id,
                status="error",
                error="".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip(),
            )
        try:
            conn.send((job_id, response))
        except (BrokenPipeError, OSError):
            return
