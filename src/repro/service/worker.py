"""Worker-side job execution: runs in the pool's child processes.

Everything here must be importable and picklable from a fresh interpreter
(``spawn`` start method) — no closures, no references to supervisor state.
The worker loop is deliberately dumb: pull ``(job_id, request)`` pairs off
the inbox, plan, push ``(worker_id, job_id, response)`` onto the shared
result queue.  All scheduling intelligence (timeouts, retries, respawn)
lives in :mod:`repro.service.pool` on the supervisor side, which is what
lets a hung or crashed worker be killed without losing the service.
"""

from __future__ import annotations

import os
import time
import traceback
from typing import Optional

from repro.core.metrics import PlanResult
from repro.errors import InvalidRequest
from repro.faults import FaultPlan, install_plan
from repro.service.request import PlanRequest, PlanResponse

#: Exit code a deliberately crashed worker dies with (tests assert on the
#: *structured* response, but the code makes post-mortems unambiguous).
CRASH_EXIT_CODE = 87

#: How long the "hang" fault sleeps — effectively forever next to any
#: realistic per-job timeout.
_HANG_SECONDS = 3600.0

#: Shared-memory race-cancellation bitmask (a ``multiprocessing.Value``
#: of 64 bits, one per active race token modulo 64).  ``worker_main``
#: installs the pool's flag here at start-up; inline execution leaves it
#: None and the service cancels inline races without it.
_RACE_CANCEL = None


def apply_fault(fault: Optional[str]) -> None:
    """Honour a request's chaos hook (see :class:`PlanRequest.fault`)."""
    if not fault:
        return
    if fault == "hang":
        time.sleep(_HANG_SECONDS)
    elif fault == "crash":
        os._exit(CRASH_EXIT_CODE)
    elif fault == "error":
        raise RuntimeError("injected worker error")
    elif fault.startswith("slow:"):
        time.sleep(float(fault.split(":", 1)[1]))
    elif fault.startswith("flaky:"):
        flag = fault.split(":", 1)[1]
        if os.path.exists(flag):
            # Consume the flag first so the retry takes the healthy path.
            os.unlink(flag)
            os._exit(CRASH_EXIT_CODE)
    elif fault in ("corrupt", "duplicate", "wrong_id", "crash_after_send", "drop"):
        pass  # transport faults: honoured at send time by worker_main
    else:
        raise ValueError(f"unknown fault spec {fault!r}")


def response_from_result(
    request: PlanRequest, result: PlanResult, plan_seconds: float
) -> PlanResponse:
    """Flatten a :class:`PlanResult` into the plain-data wire response.

    A planner run that expired its deadline/op budget ships as
    ``status="degraded"`` (carrying the best-so-far path and the remaining
    goal distance); a run stopped by race cancellation
    (``degraded_reason == "cancelled"``) ships as the terminal
    ``"cancelled"``; only a complete run is ``"ok"`` — the distinction is
    load-bearing because the plan cache stores nothing but ``"ok"``.
    """
    brief = result.brief()
    if result.status == "complete":
        status = "ok"
    elif result.degraded_reason == "cancelled":
        status = "cancelled"
    else:
        status = "degraded"
    return PlanResponse(
        request_id=request.request_id,
        status=status,
        success=brief["success"],
        path_cost=brief["path_cost"],
        num_nodes=brief["num_nodes"],
        iterations=brief["iterations"],
        first_solution_iteration=brief["first_solution_iteration"],
        path=[p.tolist() for p in result.path],
        op_events=dict(result.counter.events),
        op_macs=dict(result.counter.macs),
        plan_seconds=plan_seconds,
        degraded_reason=result.degraded_reason,
        best_goal_distance=result.best_goal_distance,
        planner=request.planner,
    )


def execute_request(request: PlanRequest) -> PlanResponse:
    """Plan one request to completion (the body of a worker job).

    Also usable inline (no pool) — :class:`PlanningService` falls back to
    this for ``num_workers == 0``, and tests exercise planner behaviour
    through it without multiprocessing.

    Traced requests (``request.trace``) run under a *private* tracer and
    metrics registry installed as the process globals for the duration of
    the job; the drained span buffer and registry snapshot ship back in the
    response as plain data, ready to cross the pool pipe.  The supervisor
    absorbs them tagged with the job id (:mod:`repro.service.runner`).
    """
    from repro import obs
    from repro.core import cancel as _cancel
    from repro.core.planners import make_planner
    from repro.core.robots import get_robot
    from repro.faults import get_injector

    apply_fault(request.fault)
    request.validate()
    injector = get_injector()
    if injector is not None:
        injector.fire("worker.plan", detail=request.request_id)
    robot = get_robot(request.task.robot_name)

    # Race members poll the pool's shared cancel flag through the planner's
    # budget check; non-race requests keep the zero-overhead no-predicate
    # path.  The predicate is installed per job and always removed.
    previous_cancel = None
    race_armed = request.race_token is not None and _RACE_CANCEL is not None
    if race_armed:
        flag, bit = _RACE_CANCEL, request.race_token % 64
        previous_cancel = _cancel.install(lambda: bool((flag.value >> bit) & 1))

    observing = bool(request.trace)
    if observing:
        tracer = obs.Tracer(enabled=True)
        registry = obs.MetricsRegistry(enabled=True)
        previous = obs.install(tracer, registry)
    try:
        start = time.perf_counter()
        with obs.get_tracer().span(
            "job", request_id=request.request_id, lanes=request.lanes
        ):
            if request.lanes > 1 and request.config.mode == "rrtstar":
                from repro.core.batch import BatchRRTStarPlanner

                planner = BatchRRTStarPlanner(
                    robot, request.task, request.config, batch_size=request.lanes
                )
            else:
                planner = make_planner(robot, request.task, request.config)
            result = planner.plan()

            if request.smooth and result.success:
                from repro.core.collision import BruteOBBChecker
                from repro.core.smoothing import shortcut_smooth

                checker = BruteOBBChecker(
                    robot, request.task.environment,
                    motion_resolution=robot.step_size / 4.0,
                )
                smoothed, cost = shortcut_smooth(
                    result.path, checker, iterations=150, seed=request.config.seed
                )
                result.path = smoothed
                result.path_cost = cost
        elapsed = time.perf_counter() - start
    finally:
        if observing:
            obs.restore(previous)
        if race_armed:
            _cancel.install(previous_cancel)

    response = response_from_result(request, result, elapsed)
    if observing:
        response.trace_spans = tracer.drain()
        response.metric_deltas = registry.to_dict()
        response.phase_seconds = {
            name: round(entry["total_s"], 9)
            for name, entry in obs.aggregate_spans(
                response.trace_spans, names=obs.PHASES
            ).items()
        }
    return response


def _send_with_faults(conn, job_id: int, response: PlanResponse, kind: Optional[str]) -> None:
    """Send a result, honouring a transport-fault kind on this one send.

    ``kind`` comes either from the request's own ``fault`` hook or from an
    installed :class:`~repro.faults.FaultInjector` firing at
    ``"worker.send"``.  The supervisor must survive every one of these:
    garbage bytes, an unknown job id, the same result twice, a worker that
    dies right after (or instead of) writing.
    """
    if kind == "drop":
        return  # result lost in transit; the supervisor's deadline reaps it
    if kind == "corrupt":
        conn.send_bytes(b"\x80\x04 not a pickle \x00\xff")
        return
    if kind == "wrong_id":
        conn.send((job_id + 1_000_000, response))
        return
    conn.send((job_id, response))
    if kind == "duplicate":
        conn.send((job_id, response))
    elif kind == "crash_after_send":
        os._exit(CRASH_EXIT_CODE)


def worker_main(worker_id: int, conn, fault_plan: Optional[FaultPlan] = None,
                cancel_flags=None) -> None:
    """Child-process loop: serve jobs over the private duplex pipe.

    Runs until the ``None`` sentinel arrives or the supervisor end of the
    pipe disappears.  ``worker_id`` only labels the process; the pipe
    itself identifies the worker to the supervisor.  When the pool carries
    a :class:`~repro.faults.FaultPlan`, an injector scoped to this worker
    is installed process-globally so planner-loop sites fire here too.
    ``cancel_flags`` is the pool's shared race-cancellation bitmask;
    installing it process-globally lets :func:`execute_request` arm the
    per-job cancel predicate for portfolio race members.
    """
    global _RACE_CANCEL
    if cancel_flags is not None:
        _RACE_CANCEL = cancel_flags
    injector = install_plan(fault_plan, scope=f"worker{worker_id}")
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            return  # supervisor went away
        if item is None:
            return
        job_id, request = item
        if injector is not None:
            injector.fire("worker.recv", detail=f"job {job_id}")
        try:
            response = execute_request(request)
        except InvalidRequest as exc:
            response = PlanResponse(
                request_id=request.request_id,
                status="invalid",
                error=str(exc),
            )
        except Exception as exc:  # structured, never fatal to the loop
            response = PlanResponse(
                request_id=request.request_id,
                status="error",
                error="".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip(),
            )
        send_kind = None
        if request.fault in ("corrupt", "duplicate", "wrong_id",
                             "crash_after_send", "drop"):
            send_kind = request.fault
        elif injector is not None:
            send_kind = injector.fire("worker.send", detail=f"job {job_id}")
        try:
            _send_with_faults(conn, job_id, response, send_kind)
        except (BrokenPipeError, OSError):
            return
