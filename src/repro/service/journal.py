"""Durable job journal: an append-only write-ahead log for the service.

Every request the service accepts is recorded *before* it is worked on, so
a crash — a kill -9, an OOM kill, a power cut — loses at most in-memory
state, never accepted work.  The journal is deliberately boring: one JSONL
record per line, each stamped with a CRC32 of its canonical JSON, written
to numbered segment files that rotate by size.  Recovery reads the
segments back, truncates at the first torn record (write-ahead semantics:
nothing after a tear is trusted), and rebuilds the set of admitted jobs
that never reached a terminal status.

Record kinds:

* ``admit`` — a request was accepted; carries the full wire payload
  (:func:`repro.net.wire.request_to_wire`) plus the request hash, so the
  job can be rebuilt and deduplicated after a crash.
* ``dispatch`` — the request was handed to the execution layer.  A
  dispatch with no matching terminal record before the journal ends is an
  *interrupted* dispatch; a request hash that accumulates too many of
  them across restarts is quarantined (it keeps killing the process).
* ``done`` / ``cancel`` — the job reached a terminal status.  Any
  terminal status counts: ``degraded`` and ``cancelled`` results are
  settled outcomes and are never resurrected by recovery.
* ``startup`` — written by :meth:`JobJournal.start_epoch` when a process
  (re)opens the journal; an epoch boundary for interrupted-dispatch
  accounting.
* ``clean_shutdown`` — the drain path finished with nothing in flight;
  recovery after this marker replays nothing.

Durability policy (``fsync``): ``"always"`` fsyncs every append (maximum
durability, slowest), ``"batch"`` (the default) fsyncs when the caller
invokes :meth:`sync` — the service calls it once per batch, bounding loss
to one batch of terminal records — and ``"off"`` leaves flushing to the
OS.  With no journal configured the service pays a single ``is not None``
check per hook, mirroring the fault-injection zero-overhead contract.

The ``journal.append`` fault site fires before each record is written:
``crash`` simulates kill -9 mid-append (the recovery harness's bread and
butter), ``drop`` loses the record, ``corrupt`` writes a torn half-line.
"""

from __future__ import annotations

import json
import os
import pathlib
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs import bump

__all__ = [
    "JOURNAL_SCHEMA",
    "JobJournal",
    "ReplayState",
    "TERMINAL_KINDS",
    "scan_journal",
]

#: Version stamp carried by every record so a newer reader can reject or
#: upgrade an older journal instead of mis-parsing it.
JOURNAL_SCHEMA = 1

#: Record kinds that settle a request (recovery replays nothing for them).
TERMINAL_KINDS = ("done", "cancel")

#: Segment file name pattern: ``segment-000001.jsonl``.
_SEGMENT_FMT = "segment-{:06d}.jsonl"
_SEGMENT_PREFIX = "segment-"

#: Interrupted dispatches (same request hash, across restarts) after which
#: recovery quarantines the job instead of replaying it again — the
#: journal-level analogue of the pool's poison threshold.
DEFAULT_QUARANTINE_THRESHOLD = 2


def _canonical(payload: Dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _stamp(record: Dict) -> str:
    """Serialise ``record`` with a CRC32 over its canonical payload."""
    body = _canonical(record)
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return _canonical({**record, "crc": crc})


def _verify(line: str) -> Optional[Dict]:
    """Decode one journal line; ``None`` when torn/corrupt/mis-stamped."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(record, dict):
        return None
    crc = record.pop("crc", None)
    if crc is None:
        return None
    expected = zlib.crc32(_canonical(record).encode("utf-8")) & 0xFFFFFFFF
    if crc != expected:
        return None
    return record


@dataclass
class ReplayState:
    """What recovery learned from scanning the journal.

    Attributes:
        pending: admit records (in admission order) with no terminal
            record — the jobs a crash lost; recovery re-enqueues them.
        quarantined: admit records whose request hash crossed the
            interrupted-dispatch threshold — recovery dead-letters them
            with a terminal ``"poison"`` instead of replaying a job that
            keeps killing the process.
        interrupted: interrupted-dispatch count per request hash.
        records: total verified records scanned.
        torn: a torn/corrupt tail record was found and truncated.
        clean: the journal ends in a ``clean_shutdown`` epoch (nothing to
            replay, by construction).
    """

    pending: List[Dict] = field(default_factory=list)
    quarantined: List[Dict] = field(default_factory=list)
    interrupted: Dict[str, int] = field(default_factory=dict)
    records: int = 0
    torn: bool = False
    clean: bool = False


def _segment_paths(directory: pathlib.Path) -> List[pathlib.Path]:
    return sorted(
        p for p in directory.glob(_SEGMENT_PREFIX + "*.jsonl") if p.is_file()
    )


def scan_journal(directory) -> Tuple[List[Dict], bool]:
    """Read every record back, truncating at the first torn line.

    Returns ``(records, torn)``.  Write-ahead semantics: a record that
    fails its CRC (or fails to parse) marks the end of trustworthy
    history — everything after it is discarded, even in later segments,
    because ordering across the tear can no longer be established.
    """
    records: List[Dict] = []
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        return records, False
    for path in _segment_paths(directory):
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                record = _verify(line)
                if record is None:
                    return records, True
                records.append(record)
    return records, False


def replay_state(
    records: List[Dict],
    torn: bool = False,
    quarantine_threshold: int = DEFAULT_QUARANTINE_THRESHOLD,
) -> ReplayState:
    """Fold scanned records into the recovery work list.

    Admitted requests stay pending until a terminal record or a
    ``clean_shutdown`` marker; ``startup`` markers bound the epochs used
    to count interrupted dispatches (a dispatch whose terminal record
    never arrived before the process died).
    """
    state = ReplayState(torn=torn)
    admits: "Dict[str, Dict]" = {}
    open_dispatch: Dict[str, str] = {}  # request_id -> request hash

    def _close_epoch() -> None:
        for rhash in open_dispatch.values():
            state.interrupted[rhash] = state.interrupted.get(rhash, 0) + 1
        open_dispatch.clear()

    for record in records:
        state.records += 1
        kind = record.get("kind")
        rid = str(record.get("request_id", ""))
        if kind == "admit":
            admits[rid] = record
            state.clean = False
        elif kind == "dispatch":
            admit = admits.get(rid)
            if admit is not None:
                open_dispatch[rid] = str(admit.get("rhash", rid))
            state.clean = False
        elif kind in TERMINAL_KINDS:
            admits.pop(rid, None)
            open_dispatch.pop(rid, None)
            state.clean = False
        elif kind == "startup":
            _close_epoch()
        elif kind == "clean_shutdown":
            _close_epoch()
            admits.clear()
            state.clean = True
    # The journal simply ends here: if it did not end cleanly, every
    # still-open dispatch was interrupted by the crash being recovered.
    if not state.clean:
        _close_epoch()
    for record in admits.values():
        rhash = str(record.get("rhash", record.get("request_id", "")))
        if state.interrupted.get(rhash, 0) >= quarantine_threshold:
            state.quarantined.append(record)
        else:
            state.pending.append(record)
    return state


class JobJournal:
    """Append-only, CRC-stamped, segment-rotated JSONL write-ahead log.

    Args:
        directory: where segments live (created if missing).
        fsync: ``"always"`` | ``"batch"`` | ``"off"`` (see module doc).
        segment_bytes: rotate to a fresh segment once the current one
            grows past this size.
        quarantine_threshold: interrupted-dispatch count after which
            recovery quarantines a request hash.
    """

    def __init__(
        self,
        directory,
        fsync: str = "batch",
        segment_bytes: int = 4 * 1024 * 1024,
        quarantine_threshold: int = DEFAULT_QUARANTINE_THRESHOLD,
    ) -> None:
        if fsync not in ("always", "batch", "off"):
            raise ValueError("fsync must be 'always', 'batch', or 'off'")
        if segment_bytes < 1:
            raise ValueError("segment_bytes must be >= 1")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.segment_bytes = segment_bytes
        self.quarantine_threshold = quarantine_threshold
        self.appended = 0
        self._seq = 0
        self._dirty = False
        self._fh = None
        existing = _segment_paths(self.directory)
        self._segment_index = (
            int(existing[-1].name[len(_SEGMENT_PREFIX):-len(".jsonl")])
            if existing else 1
        )

    # ------------------------------------------------------------- plumbing

    @property
    def segment_path(self) -> pathlib.Path:
        return self.directory / _SEGMENT_FMT.format(self._segment_index)

    def _file(self):
        if self._fh is None:
            self._fh = open(self.segment_path, "a", encoding="utf-8")
        return self._fh

    def _rotate_if_needed(self) -> None:
        if self._fh is None:
            return
        if self._fh.tell() < self.segment_bytes:
            return
        self._sync_file()
        self._fh.close()
        self._fh = None
        self._segment_index += 1

    def _sync_file(self) -> None:
        if self._fh is None or not self._dirty:
            return
        self._fh.flush()
        if self.fsync != "off":
            os.fsync(self._fh.fileno())
        self._dirty = False

    def sync(self) -> None:
        """Flush (and fsync, unless ``fsync="off"``) buffered appends."""
        self._sync_file()

    def close(self) -> None:
        if self._fh is not None:
            self._sync_file()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------------- writing

    def append(self, kind: str, **fields) -> None:
        """Stamp and append one record (the one write path).

        The ``journal.append`` fault site fires first: ``crash`` kills the
        process before the write lands (kill -9 mid-append), ``drop``
        loses the record silently, ``corrupt`` writes a torn half-line —
        exactly the failure shapes :func:`scan_journal` must absorb.
        """
        from repro.faults import get_injector

        self._seq += 1
        record = {"schema": JOURNAL_SCHEMA, "seq": self._seq, "kind": kind}
        record.update(fields)
        line = _stamp(record) + "\n"
        injector = get_injector()
        if injector is not None:
            fired = injector.fire("journal.append", detail=kind)
            if fired == "drop":
                return
            if fired == "corrupt":
                line = line[: max(1, len(line) // 2)]
        fh = self._file()
        fh.write(line)
        self._dirty = True
        self.appended += 1
        bump("repro_journal_records_total",
             help="Journal records appended by kind", kind=kind)
        if self.fsync == "always":
            self._sync_file()
        self._rotate_if_needed()

    def record_admit(self, request) -> None:
        """Journal an accepted request (wire payload + request hash)."""
        from repro.net.wire import request_to_wire

        self.append(
            "admit",
            request_id=request.request_id,
            rhash=request.cache_key(),
            request=request_to_wire(request),
        )

    def record_dispatch(self, request_id: str) -> None:
        self.append("dispatch", request_id=request_id)

    def record_done(self, request_id: str, status: str) -> None:
        kind = "cancel" if status == "cancelled" else "done"
        self.append(kind, request_id=request_id, status=status)

    def start_epoch(self, **fields) -> None:
        """Mark a process (re)start; closes the interrupted-dispatch epoch."""
        self.append("startup", **fields)
        self.sync()

    def mark_clean_shutdown(self) -> None:
        """Journal the drained-clean marker (recovery then replays nothing)."""
        self.append("clean_shutdown")
        self.sync()

    # ------------------------------------------------------------- recovery

    def scan(self) -> Tuple[List[Dict], bool]:
        """Read history back (see :func:`scan_journal`)."""
        return scan_journal(self.directory)

    def repair(self) -> bool:
        """Truncate the torn tail so new appends extend trusted history.

        Without this, a reopened journal would append *after* the torn
        bytes and :func:`scan_journal` — which stops at the first bad
        line — would discard every post-recovery record forever (and a
        half-line without a newline would even swallow the next append
        into itself).  Truncating at the tear is the standard WAL move:
        the damaged suffix was never trusted, so removing it loses
        nothing that recovery would have used.  Later segments are
        deleted outright (ordering across the tear is unprovable).
        Returns True when something was repaired.
        """
        paths = _segment_paths(self.directory)
        for index, path in enumerate(paths):
            offset = 0
            bad_at: Optional[int] = None
            with open(path, "rb") as fh:
                for raw in fh:
                    text = raw.decode("utf-8", "replace").strip()
                    if text and _verify(text) is None:
                        bad_at = offset
                        break
                    offset += len(raw)
            if bad_at is None:
                continue
            self.close()
            with open(path, "r+b") as fh:
                fh.truncate(bad_at)
            for later in paths[index + 1:]:
                later.unlink()
            self._segment_index = int(
                path.name[len(_SEGMENT_PREFIX):-len(".jsonl")]
            )
            return True
        return False

    def recover_state(self) -> ReplayState:
        """Scan + fold: the work list recovery executes.

        A torn tail is repaired (truncated) as a side effect, so the
        records this epoch appends land on trustworthy history.
        """
        records, torn = self.scan()
        if torn:
            self.repair()
        return replay_state(
            records, torn=torn,
            quarantine_threshold=self.quarantine_threshold,
        )

    def stats(self) -> Dict[str, object]:
        return {
            "directory": str(self.directory),
            "segments": len(_segment_paths(self.directory)),
            "appended": self.appended,
            "fsync": self.fsync,
        }
