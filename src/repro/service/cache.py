"""LRU plan cache keyed by request digest, with hit/miss accounting.

The request-level analogue of MOPED's multi-level caching: planning is
deterministic given (task, config, lanes, smooth) — that tuple's digest
(:meth:`PlanRequest.cache_key`) therefore fully identifies the response,
and a repeat request is a dictionary lookup instead of a planning run.

Only ``status == "ok"`` responses are worth remembering (failures are
scheduling accidents, not properties of the work), so the service layer
never inserts failures; the cache itself stays policy-free and stores what
it is given.

Hit/miss/evict events are also bumped into ``repro_cache_events_total``
(label ``cache="plan"``) when the metrics registry is on, so the plan
cache appears in the ``repro.obs report`` software-cache table through
the same path as the collision-result and neighborhood caches — and as
the sharded tier, which reports under ``cache="plan_shard"``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from repro.obs import bump
from repro.service.request import PlanResponse


class PlanCache:
    """Bounded LRU mapping cache keys to :class:`PlanResponse` objects."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._store: "OrderedDict[str, PlanResponse]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def get(self, key: str, request_id: str = "") -> Optional[PlanResponse]:
        """Look up a response; counts a hit or a miss either way.

        Hits are returned as an :meth:`~PlanResponse.as_cache_hit` copy
        relabelled for ``request_id``, so callers can hand the object out
        without aliasing the stored entry.
        """
        entry = self._store.get(key)
        if entry is None:
            self.misses += 1
            bump("repro_cache_events_total", cache="plan", event="miss")
            return None
        self._store.move_to_end(key)
        self.hits += 1
        bump("repro_cache_events_total", cache="plan", event="hit")
        return entry.as_cache_hit(request_id)

    def put(self, key: str, response: PlanResponse) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail if full."""
        if self.capacity == 0:
            return
        if key in self._store:
            self._store.move_to_end(key)
        self._store[key] = response
        while len(self._store) > self.capacity:
            self._store.popitem(last=False)
            self.evictions += 1
            bump("repro_cache_events_total", cache="plan", event="evict")

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> Dict[str, object]:
        """Counters for the telemetry summary."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "size": len(self._store),
            "capacity": self.capacity,
            "evictions": self.evictions,
        }

    def keys(self) -> list:
        """Current cache keys, LRU-oldest first (anti-entropy enumeration).

        Used by the sharded tier's backfill: a rejoining shard asks its
        ring successor for the keys it should own.  No accounting — this
        is introspection, not a lookup.
        """
        return list(self._store)

    def peek(self, key: str) -> Optional[PlanResponse]:
        """Raw entry for ``key`` with no hit/miss accounting or relabel.

        Backfill reads must not skew the hit-rate counters or reorder the
        LRU chain, so this bypasses :meth:`get` entirely.
        """
        return self._store.get(key)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self._store.clear()
