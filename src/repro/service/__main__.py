"""Batch service entry point: plan many tasks through the worker pool.

Usage::

    python -m repro.service --jobs 8 --workers 4 --samples 400
    python -m repro.service --jobs 8 --duplicate 2          # show cache hits
    python -m repro.service --jobs 8 --inject hang:2 --timeout 1.0
    python -m repro.service --tasks suite.json --out telemetry.json
    python -m repro.service --jobs 4 --trace trace.json --metrics m.prom

Generates ``--jobs`` seeded tasks (or loads a suite from ``--tasks``), runs
them through :class:`~repro.service.runner.PlanningService`, and prints the
telemetry summary as JSON: job/status counts, cache hit-rate, p50/p95 plan
latency and queue wait, and MAC-level op totals.  Exit code 0 when every
job finished ``ok``, 2 when some jobs failed (the service itself survives
worker timeouts and crashes by design).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.core.moped import VARIANTS
from repro.core.robots import ROBOT_FACTORIES
from repro.service.pool import PoolConfig
from repro.service.runner import PlanningService, build_requests


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.service", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--robot", default="mobile2d",
                        choices=sorted(ROBOT_FACTORIES))
    parser.add_argument("--obstacles", type=int, default=8)
    parser.add_argument("--variant", default="full", choices=VARIANTS)
    parser.add_argument("--samples", type=int, default=400,
                        help="sampling budget per job")
    parser.add_argument("--goal-bias", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument("--jobs", type=int, default=8,
                        help="number of generated tasks (seeds seed..seed+N-1)")
    parser.add_argument("--tasks", default=None,
                        help="plan a task suite from this JSON file instead")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes (0 = inline, no pool)")
    parser.add_argument("--lanes", type=int, default=1,
                        help="in-job spatial lanes (BatchRRTStarPlanner)")
    parser.add_argument("--smooth", action="store_true")
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="per-job wall budget in seconds")
    parser.add_argument("--retries", type=int, default=1,
                        help="max retry attempts for crashed/errored jobs")
    parser.add_argument("--deadline", type=float, default=None, metavar="S",
                        help="anytime-planning deadline per job; expired "
                             "budgets return 'degraded' best-so-far results")
    parser.add_argument("--fault-plan", default=None, metavar="SPEC",
                        help="repro.faults plan installed in every worker, "
                             "e.g. 'worker.plan:error@0.2;worker.send:corrupt"
                             ":max=1' (seeded by --seed, deterministic)")
    parser.add_argument("--duplicate", type=int, default=1,
                        help="submit the batch N times (exercises the cache)")
    parser.add_argument("--inject", default=None, metavar="KIND[:INDEX]",
                        help="arm a fault on one request: hang|crash|error")
    parser.add_argument("--cache-capacity", type=int, default=128)
    parser.add_argument("--records", action="store_true",
                        help="include per-job records in the printed summary")
    parser.add_argument("--out", default=None,
                        help="also write the summary (with records) here")
    obs_group = parser.add_argument_group("observability (repro.obs)")
    obs_group.add_argument("--trace", default=None, metavar="PATH",
                           help="trace every job; workers ship span buffers "
                                "back and the merged Chrome trace_event JSON "
                                "is written here (open in Perfetto)")
    obs_group.add_argument("--metrics", default=None, metavar="PATH",
                           help="collect planner metrics across workers; "
                                "write Prometheus text (or JSON if PATH ends "
                                "in .json) here")
    obs_group.add_argument("--events", default=None, metavar="PATH",
                           help="write the service's structured JSONL event "
                                "log here")
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)

    observing = bool(args.trace or args.metrics)
    if observing:
        from repro import obs

        obs.configure(trace=args.trace is not None,
                      metrics=args.metrics is not None)

    tasks = None
    if args.tasks is not None:
        from repro.io import load_tasks

        tasks = load_tasks(args.tasks)

    requests = build_requests(
        robot=args.robot,
        obstacles=args.obstacles,
        jobs=args.jobs,
        seed=args.seed,
        variant=args.variant,
        samples=args.samples,
        goal_bias=args.goal_bias,
        lanes=args.lanes,
        smooth=args.smooth,
        timeout_s=args.timeout,
        duplicate=args.duplicate,
        inject=args.inject,
        tasks=tasks,
        trace=observing,
        deadline_s=args.deadline,
    )

    fault_plan = None
    if args.fault_plan:
        from repro.faults import FaultPlan

        fault_plan = FaultPlan.from_spec(args.fault_plan, seed=max(1, args.seed))

    pool_config = None
    if args.workers > 0:
        pool_config = PoolConfig(
            num_workers=args.workers,
            default_timeout_s=args.timeout,
            max_retries=args.retries,
            fault_plan=fault_plan,
        )
    with PlanningService(
        num_workers=args.workers,
        cache_capacity=args.cache_capacity,
        pool_config=pool_config,
    ) as service:
        responses = service.run_batch(requests)
        summary = service.summary(include_records=args.records)
        if args.out is not None:
            service.telemetry.dump(
                args.out,
                cache_stats=service.cache.stats(),
            )
        if args.events is not None:
            service.events.dump(args.events)

    if observing:
        from repro import obs

        if args.trace:
            obs.get_tracer().export_chrome(args.trace)
        if args.metrics:
            obs.get_registry().export(args.metrics)

    print(json.dumps(summary, indent=2))
    return 0 if all(r.status in ("ok", "degraded") for r in responses) else 2


if __name__ == "__main__":
    sys.exit(main())
