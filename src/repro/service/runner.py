"""The service facade: cache -> coalesce -> pool -> telemetry.

:class:`PlanningService` is the object callers hold.  ``run_batch`` takes a
list of :class:`PlanRequest` and returns one :class:`PlanResponse` per
request, in order, after routing each through:

1. **Cache lookup** — a previously-planned (task, config, lanes, smooth)
   digest is answered immediately with the stored response.
2. **Single-flight coalescing** — duplicate keys *within* a batch plan
   once; the followers are answered from the leader's freshly-cached
   result (and count as cache hits, which is what they are).
3. **The worker pool** — misses fan out across processes with timeouts,
   retries, and crash isolation (:mod:`repro.service.pool`).
4. **Telemetry** — every response (hit, miss, or structured failure)
   becomes a :class:`~repro.service.telemetry.JobRecord`, is appended to
   the service's JSONL :class:`~repro.obs.EventLog`, and — for traced
   requests — has its worker-side span buffer and metric deltas absorbed
   into the ambient ``repro.obs`` tracer/registry, tagged with the job id.

The pool is created lazily and reused across batches, so worker start-up
cost is amortised over the service lifetime — the request-level analogue of
the engine's amortised setup.  ``num_workers=0`` selects *inline* mode
(plan sequentially in-process, no timeout enforcement): handy for tests
and for environments where ``multiprocessing`` is unwelcome.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import portfolio as portfolio_mod
from repro.core.moped import config_for_variant
from repro.core.world import PlanningTask
from repro.obs import EventLog, bump, get_registry, get_tracer
from repro.service.cache import PlanCache
from repro.service.jobs import DONE, FAILED, Job, JobQueue
from repro.service.journal import JobJournal
from repro.service.pool import PoolConfig, WorkerPool
from repro.service.request import PlanRequest, PlanResponse, failure_response
from repro.service.telemetry import (
    TelemetrySink,
    record_from_job,
    record_from_response,
)
from repro.service.worker import execute_request


class PlanningService:
    """Accepts planning jobs; caches, schedules, and observes them."""

    def __init__(
        self,
        num_workers: int = 2,
        cache_capacity: int = 128,
        pool_config: Optional[PoolConfig] = None,
        telemetry: Optional[TelemetrySink] = None,
        cache: Optional[PlanCache] = None,
        portfolio_stats: Optional[portfolio_mod.PortfolioStats] = None,
        portfolio_stats_path: Optional[str] = None,
        journal: Optional[JobJournal] = None,
    ) -> None:
        if pool_config is not None:
            num_workers = pool_config.num_workers
        self.inline = num_workers == 0
        self.pool_config = (
            pool_config
            if pool_config is not None
            else (None if self.inline else PoolConfig(num_workers=num_workers))
        )
        #: The plan cache: the in-process LRU by default, or any object
        #: with the same ``get``/``put``/``stats``/``clear`` surface — the
        #: network layer injects its consistent-hash sharded tier here
        #: (:class:`repro.net.shard.ShardedPlanCache`), which is how N
        #: front-end processes share cached plans.
        self.cache = cache if cache is not None else PlanCache(cache_capacity)
        self.telemetry = telemetry if telemetry is not None else TelemetrySink()
        #: Structured JSONL event log; every event carries this service
        #: instance's ``run_id`` so traces, telemetry records, and events
        #: from one run correlate.
        self.events = EventLog()
        #: Learned portfolio win-rate table driving ``portfolio=("auto",)``.
        #: Pass an instance to share across services, or a path to persist.
        self.portfolio_stats = (
            portfolio_stats
            if portfolio_stats is not None
            else portfolio_mod.PortfolioStats(path=portfolio_stats_path)
        )
        #: Durable write-ahead job journal (:mod:`repro.service.journal`).
        #: ``None`` (the default) costs each hook one ``is not None`` check;
        #: with a journal, every admission, dispatch, and terminal status is
        #: logged so :meth:`recover` can replay work a crash lost.
        self.journal = journal
        self._pool: Optional[WorkerPool] = None
        self._pending: List[PlanRequest] = []

    # ----------------------------------------------------------- lifecycle

    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None:
            self._pool = WorkerPool(self.pool_config)
        return self._pool

    @property
    def breaker(self):
        """The live pool's circuit breaker, or ``None`` before it exists.

        The network front end reads this to shed load at the edge while
        the breaker is open (429 + Retry-After instead of queueing jobs
        into a sick pool).
        """
        return self._pool.breaker if self._pool is not None else None

    def close(self) -> None:
        """Shut down the worker pool (idempotent; service stays queryable)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self.journal is not None:
            self.journal.sync()

    def __enter__(self) -> "PlanningService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- serving

    def submit(self, request: PlanRequest) -> int:
        """Queue a request for the next :meth:`drain`; returns its index."""
        self._pending.append(request)
        return len(self._pending) - 1

    def drain(self) -> List[PlanResponse]:
        """Run everything :meth:`submit` queued since the last drain."""
        pending, self._pending = self._pending, []
        return self.run_batch(pending)

    def recover(self) -> Dict:
        """Replay the journal after a crash: settle every admitted job.

        Scans the journal (truncating a torn tail), then for every admit
        record with no terminal status since the last clean shutdown:

        * **quarantined** hashes (too many interrupted dispatches across
          restarts — the job keeps killing the process) are dead-lettered
          with a terminal ``"poison"`` instead of replayed;
        * admit payloads that no longer parse are settled ``"invalid"``;
        * everything else is rebuilt from its wire payload, marked
          ``recovered=True``, and re-run through :meth:`run_batch` —
          idempotently: duplicates coalesce by request hash, and a job
          whose result already reached the cache tier (its ``done`` record
          was the one torn off) is answered from the cache without
          re-planning.

        Degraded and cancelled results are terminal statuses, so they are
        never resurrected.  Returns the recovery summary (counts plus the
        replayed responses).
        """
        if self.journal is None:
            return {"enabled": False, "replayed": 0, "quarantined": 0,
                    "invalid": 0}
        from repro.errors import InvalidRequest
        from repro.net.wire import request_from_wire

        state = self.journal.recover_state()
        self.journal.start_epoch(
            pending=len(state.pending),
            quarantined=len(state.quarantined),
            torn=state.torn,
        )
        for record in state.quarantined:
            rid = str(record.get("request_id", ""))
            self.journal.record_done(rid, "poison")
            self._observe_response(
                PlanResponse(
                    request_id=rid, status="poison",
                    error="quarantined by recovery: job repeatedly "
                          "interrupted the process mid-dispatch",
                ),
                job_id=None,
            )
            bump("repro_recovery_replayed_total",
                 help="Journal admits settled by crash recovery",
                 outcome="quarantined")
        requests: List[PlanRequest] = []
        invalid = 0
        for record in state.pending:
            rid = str(record.get("request_id", ""))
            try:
                request = request_from_wire(
                    record.get("request") or {}, request_id=rid
                )
            except InvalidRequest as exc:
                invalid += 1
                self.journal.record_done(rid, "invalid")
                self._observe_response(
                    PlanResponse(request_id=rid, status="invalid",
                                 error=f"unreplayable admit record: {exc}"),
                    job_id=None,
                )
                bump("repro_recovery_replayed_total",
                     help="Journal admits settled by crash recovery",
                     outcome="invalid")
                continue
            requests.append(replace(request, recovered=True))
            bump("repro_recovery_replayed_total",
                 help="Journal admits settled by crash recovery",
                 outcome="replayed")
        responses = self.run_batch(requests) if requests else []
        self.journal.sync()
        self.events.emit(
            "recovery.done",
            replayed=len(requests),
            quarantined=len(state.quarantined),
            invalid=invalid,
            torn=state.torn,
            records=state.records,
        )
        return {
            "enabled": True,
            "replayed": len(requests),
            "quarantined": len(state.quarantined),
            "invalid": invalid,
            "torn": state.torn,
            "records": state.records,
            "responses": responses,
        }

    def run_batch(self, requests: Sequence[PlanRequest]) -> List[PlanResponse]:
        """Plan a batch; one response per request, original order."""
        tracer = get_tracer()
        with tracer.span(
            "service.batch", run_id=self.events.run_id, requests=len(requests)
        ):
            self.events.emit("batch.start", requests=len(requests))
            responses = self._run_batch_inner(requests)
            self.events.emit(
                "batch.end",
                requests=len(requests),
                ok=sum(1 for r in responses if r.status == "ok"),
            )
        return responses

    def _run_batch_inner(self, requests: Sequence[PlanRequest]) -> List[PlanResponse]:
        responses: List[Optional[PlanResponse]] = [None] * len(requests)
        queue = JobQueue()
        job_index: Dict[int, Tuple[int, Optional[str]]] = {}
        leaders: Dict[str, int] = {}
        followers: Dict[str, List[int]] = {}
        races: Dict[int, Dict] = {}  # request index -> race bookkeeping
        race_jobs: Dict[int, int] = {}  # member job_id -> request index

        journal = self.journal
        for i, request in enumerate(requests):
            if journal is not None and not getattr(request, "recovered", False):
                # Write-ahead: admission is durable before any work starts.
                # Recovered requests are already in the journal — their
                # original admit record is the one being settled.
                journal.record_admit(request)
            if request.portfolio:
                # Portfolio race: expand into K member jobs sharing a race
                # token.  Races bypass the cache both ways — each race is a
                # fresh controlled experiment, and the parent response is a
                # synthesis, not a single planner's cacheable answer.
                if journal is not None:
                    journal.record_dispatch(request.request_id)
                self._start_race(i, request, queue, races, race_jobs)
                continue
            # Faulted and traced requests always execute (chaos hooks and
            # observability runs both want a real execution, not a replay).
            key = None if (request.fault or request.trace) else request.cache_key()
            if key is not None:
                if key in leaders:  # coalesce before a (miss-counting) lookup
                    followers.setdefault(key, []).append(i)
                    continue
                cached = self.cache.get(key, request.request_id)
                if cached is not None:
                    responses[i] = cached
                    self._observe_response(cached, job_id=None, request=request)
                    continue
            if journal is not None:
                journal.record_dispatch(request.request_id)
            job = queue.submit(request, time.monotonic())
            job_index[job.job_id] = (i, key)
            if key is not None:
                leaders[key] = job.job_id

        if self.inline:
            jobs = self._run_inline(queue)
        else:
            pool = self._ensure_pool()
            on_settle = None
            if races:
                def on_settle(job: Job) -> None:
                    # First feasible member wins; flip the shared bit so the
                    # losers degrade out through the cancel -> deadline path.
                    idx = race_jobs.get(job.job_id)
                    if idx is None:
                        return
                    race = races[idx]
                    race["jobs"][job.job_id] = job
                    response = job.response
                    if (race["winner_job"] is None and response is not None
                            and response.status == "ok" and response.success):
                        race["winner_job"] = job.job_id
                        pool.cancel_race(race["token"])
            try:
                jobs = pool.run(queue, on_settle=on_settle)
            finally:
                for race in races.values():
                    pool.clear_race(race["token"])

        for job in jobs:
            if job.job_id in race_jobs:
                races[race_jobs[job.job_id]]["jobs"][job.job_id] = job
                continue
            i, key = job_index[job.job_id]
            response = job.response
            assert response is not None
            responses[i] = response
            self._absorb_job_obs(job.job_id, response)
            self.telemetry.record(record_from_job(job), counter=response.counter())
            self.events.emit(
                "job.done",
                job_id=job.job_id,
                request_id=response.request_id,
                status=response.status,
                cache_hit=False,
                worker_id=response.worker_id,
                attempts=job.attempts,
                plan_seconds=response.plan_seconds,
            )
            if key is not None and response.status == "ok":
                self.cache.put(key, replace(response))

        for i, race in races.items():
            responses[i] = self._finalise_race(race)

        for key, indices in followers.items():
            leader_i = job_index[leaders[key]][0]
            leader = responses[leader_i]
            assert leader is not None
            for i in indices:
                hit = self.cache.get(key, requests[i].request_id)
                if hit is None:  # leader failed; echo its failure (miss counted)
                    hit = replace(leader, request_id=requests[i].request_id)
                responses[i] = hit
                self._observe_response(hit, job_id=None, request=requests[i])

        if journal is not None:
            # Terminal records for the whole batch, then one sync: in
            # fsync="batch" mode at most one batch of terminal statuses is
            # at risk, and a lost ``done`` only means a redundant (and
            # idempotent, cache-served) replay after the next crash.
            for request, response in zip(requests, responses):
                assert response is not None
                journal.record_done(request.request_id, response.status)
            journal.sync()

        assert all(r is not None for r in responses)
        return responses  # type: ignore[return-value]

    # ------------------------------------------------------------- racing

    def _start_race(
        self,
        i: int,
        request: PlanRequest,
        queue: JobQueue,
        races: Dict[int, Dict],
        race_jobs: Dict[int, int],
    ) -> None:
        """Expand one portfolio request into member jobs sharing a token.

        Each member is an ordinary job carrying ``planner=name``, the
        member's derived config (:func:`repro.core.portfolio.member_config`)
        and the shared ``race_token`` that the supervisor's cancel bit and
        the worker's cancel predicate meet on.  ``"auto"`` entries resolve
        through :attr:`portfolio_stats` here, so the learned default is
        whatever the stats file said at submit time.
        """
        signature = portfolio_mod.task_signature(request.task)
        names = portfolio_mod.resolve(
            request.portfolio, signature, self.portfolio_stats
        )
        # Inline mode has no shared bitmask; the token only needs to be a
        # unique race key, and the request index already is one.
        token = i if self.inline else self._ensure_pool().new_race_token()
        members: List[Tuple[str, int]] = []
        for name in names:
            member = replace(
                request,
                request_id=f"{request.request_id}#{name}",
                planner=name,
                portfolio=None,
                race_token=token,
                config=portfolio_mod.member_config(name, request.config),
            )
            job = queue.submit(member, time.monotonic())
            race_jobs[job.job_id] = i
            members.append((name, job.job_id))
        races[i] = {
            "token": token,
            "signature": signature,
            "names": names,
            "members": members,
            "request": request,
            "winner_job": None,
            "jobs": {},
        }
        self.events.emit(
            "race.start",
            request_id=request.request_id,
            planners=list(names),
            signature=signature,
            token=token,
        )

    def _finalise_race(self, race: Dict) -> PlanResponse:
        """Pick the race winner, account for the losers, learn from the win.

        Winner policy: the first-feasible member recorded at settle time;
        otherwise (no ``ok`` arrived while racing — e.g. inline mode, or
        every member degraded) the cheapest feasible response, then the
        first member that answered at all, in member order.  The parent
        response is the winner's response re-labelled with the parent
        request id plus a ``race`` summary; every member is observed as its
        own job so telemetry/RCA see the losers' terminal statuses too.
        """
        request: PlanRequest = race["request"]
        members = [(name, race["jobs"].get(job_id))
                   for name, job_id in race["members"]]

        winner_name: Optional[str] = None
        winner_job: Optional[Job] = None
        if race["winner_job"] is not None:
            winner_job = race["jobs"][race["winner_job"]]
            winner_name = next(
                name for name, job_id in race["members"]
                if job_id == race["winner_job"]
            )
        else:
            answered = [(n, j) for n, j in members
                        if j is not None and j.response is not None]
            feasible = [(n, j) for n, j in answered if j.response.success]
            best = [(n, j) for n, j in feasible if j.response.status == "ok"]
            candidates = best or feasible
            if candidates:
                winner_name, winner_job = min(
                    candidates, key=lambda nj: nj[1].response.path_cost
                )
            elif answered:
                winner_name, winner_job = answered[0]

        statuses: Dict[str, str] = {}
        cancelled = 0
        for name, job in members:
            if job is None or job.response is None:
                statuses[name] = "lost"
                continue
            response = job.response
            statuses[name] = response.status
            if response.status == "cancelled":
                cancelled += 1
            self._absorb_job_obs(job.job_id, response)
            self.telemetry.record(
                record_from_job(job), counter=response.counter()
            )
            self.events.emit(
                "job.done",
                job_id=job.job_id,
                request_id=response.request_id,
                status=response.status,
                cache_hit=False,
                worker_id=response.worker_id,
                attempts=job.attempts,
                plan_seconds=response.plan_seconds,
            )

        summary = {
            "planners": list(race["names"]),
            "winner": winner_name,
            "statuses": statuses,
            "cancelled": cancelled,
            "signature": race["signature"],
        }
        if winner_job is not None:
            parent = replace(
                winner_job.response,
                request_id=request.request_id,
                planner=winner_name,
                race=summary,
            )
        else:
            parent = failure_response(
                request, "error", "portfolio race produced no responses"
            )
            parent.race = summary

        won = (winner_job is not None
               and winner_job.response.status == "ok"
               and winner_job.response.success)
        if won:
            bump(
                "repro_portfolio_wins_total",
                help="Portfolio race wins by planner.",
                planner=winner_name,
                robot=request.task.robot_name,
            )
            self.portfolio_stats.record(race["signature"], winner_name)
        self.events.emit(
            "race.done",
            request_id=request.request_id,
            winner=winner_name,
            won=won,
            planners=list(race["names"]),
            statuses=statuses,
            cancelled=cancelled,
        )
        return parent

    def _observe_response(
        self,
        response: PlanResponse,
        job_id: Optional[int],
        request: Optional[PlanRequest] = None,
    ) -> None:
        """Telemetry + event for a response that did not run through a job."""
        self.telemetry.record(
            record_from_response(response, request=request),
            counter=response.counter(),
        )
        self.events.emit(
            "job.done",
            job_id=job_id,
            request_id=response.request_id,
            status=response.status,
            cache_hit=response.cache_hit,
            worker_id=response.worker_id,
            attempts=response.attempts,
            plan_seconds=response.plan_seconds,
        )

    def _absorb_job_obs(self, job_id: int, response: PlanResponse) -> None:
        """Fold a traced job's shipped-back buffers into the ambient
        tracer/registry, tagging every span with the job's identity."""
        if response.trace_spans:
            tracer = get_tracer()
            if tracer.enabled:
                tracer.absorb(
                    response.trace_spans,
                    job_id=job_id,
                    request_id=response.request_id,
                )
        if response.metric_deltas:
            registry = get_registry()
            if registry.enabled:
                registry.merge_dict(response.metric_deltas)

    def _run_inline(self, queue: JobQueue) -> List[Job]:
        """Sequential in-process execution (no pool, no timeouts).

        Portfolio races degenerate gracefully here: members run in member
        order and the first feasible win marks the race token, so later
        members of the same race settle ``"cancelled"`` without executing —
        sequential first-feasible, the one-worker limit of the race.
        """
        from repro.errors import InvalidRequest

        won_races: set = set()
        done: List[Job] = []
        while True:
            job = queue.pop_ready(time.monotonic())
            if job is None:
                break
            token = job.request.race_token
            if token is not None and token in won_races:
                job.attempts = 1
                job.response = failure_response(
                    job.request, "cancelled", "portfolio race already won"
                )
                job.response.planner = job.request.planner
                job.response.attempts = 1
                job.state = FAILED
                job.finished_at = time.monotonic()
                done.append(job)
                continue
            job.attempts = 1
            job.dispatched_at = time.monotonic()
            try:
                job.response = execute_request(job.request)
            except InvalidRequest as exc:
                job.response = PlanResponse(
                    request_id=job.request.request_id,
                    status="invalid",
                    error=str(exc),
                )
            except Exception as exc:
                job.response = PlanResponse(
                    request_id=job.request.request_id,
                    status="error",
                    error=f"{type(exc).__name__}: {exc}",
                )
            job.response.attempts = 1
            job.state = DONE if job.response.status in ("ok", "degraded") else FAILED
            job.finished_at = time.monotonic()
            done.append(job)
            if (token is not None and job.response.status == "ok"
                    and job.response.success):
                won_races.add(token)
        return done

    # ----------------------------------------------------------- telemetry

    def summary(self, include_records: bool = False) -> Dict:
        """Aggregate telemetry: counts, cache stats, latency percentiles."""
        pool_stats = (
            self._pool.stats()
            if self._pool is not None
            else {"count": 0 if self.inline else self.pool_config.num_workers,
                  "restarts": 0}
        )
        return self.telemetry.summary(
            cache_stats=self.cache.stats(),
            pool_stats=pool_stats,
            include_records=include_records,
        )


def build_requests(
    robot: str = "mobile2d",
    obstacles: int = 8,
    jobs: int = 8,
    seed: int = 0,
    variant: str = "full",
    samples: int = 500,
    goal_bias: float = 0.1,
    lanes: int = 1,
    smooth: bool = False,
    timeout_s: Optional[float] = None,
    duplicate: int = 1,
    inject: Optional[str] = None,
    tasks: Optional[Sequence[PlanningTask]] = None,
    trace: bool = False,
    deadline_s: Optional[float] = None,
    mode: str = "rrtstar",
    portfolio: Optional[Sequence[str]] = None,
) -> List[PlanRequest]:
    """Seeded request batch for the CLIs and tests.

    Without ``tasks``, generates ``jobs`` tasks with seeds ``seed .. seed +
    jobs - 1`` (each task's planner config uses the matching seed, so the
    whole request is deterministic).  ``duplicate=k`` repeats the batch k
    times — duplicates coalesce or hit the cache, which is how the CLIs
    demonstrate a non-zero hit rate.  ``inject="kind"`` or ``"kind:index"``
    arms the fault hook on one request (default index 0); ``kind`` is any
    :class:`PlanRequest.fault` spec (``hang`` / ``crash`` / ``error`` /
    ``slow:<s>`` / transport kinds).  ``trace=True`` marks every request
    for the observability layer (workers ship spans/metrics back).
    ``deadline_s`` arms anytime planning on every request's config (expired
    budgets return ``status="degraded"`` best-so-far results).
    ``mode="connect"`` plans every request with the bidirectional
    RRT-Connect planner; ``portfolio=("connect", "wave")`` turns every
    request into a planner race instead (``mode`` is then the base config
    the members derive from).
    """
    if jobs < 1 and tasks is None:
        raise ValueError("jobs must be >= 1")
    if duplicate < 1:
        raise ValueError("duplicate must be >= 1")
    base: List[PlanRequest] = []
    if tasks is not None:
        source = [(t, seed) for t in tasks]
    else:
        from repro.workloads import random_task

        source = [
            (random_task(robot, obstacles, seed=seed + i, task_id=i), seed + i)
            for i in range(jobs)
        ]
    for i, (task, task_seed) in enumerate(source):
        config = config_for_variant(
            variant, max_samples=samples, seed=task_seed, goal_bias=goal_bias,
            deadline_s=deadline_s, mode=mode,
        )
        base.append(
            PlanRequest(
                task=task,
                config=config,
                lanes=lanes,
                smooth=smooth,
                timeout_s=timeout_s,
                request_id=f"job-{i:03d}",
                trace=trace,
                portfolio=tuple(portfolio) if portfolio else None,
            )
        )
    requests: List[PlanRequest] = []
    for k in range(duplicate):
        for req in base:
            rid = req.request_id if k == 0 else f"{req.request_id}-dup{k}"
            requests.append(replace(req, request_id=rid))
    if inject:
        kind, _, index_str = inject.partition(":")
        index = int(index_str) if index_str else 0
        if not 0 <= index < len(requests):
            raise ValueError(f"inject index {index} out of range")
        requests[index] = replace(requests[index], fault=kind)
    return requests
