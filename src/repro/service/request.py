"""The service wire format: :class:`PlanRequest` / :class:`PlanResponse`.

A request bundles everything one planning job needs (task, planner config,
in-job lane parallelism, post-processing flags) and hashes deterministically
so identical work is recognisable across processes and sessions — the cache
key mirrors MOPED's multi-level caching idea at the *request* level: the
same (task, config) pair always maps to the same digest, so a repeat
request is a pure cache lookup.

A response is deliberately plain data (lists / dicts / scalars only): it
must cross a ``multiprocessing`` boundary, survive a worker crash on the
supervisor side, and serialise to JSON for telemetry dumps without custom
encoders.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.config import PlannerConfig
from repro.core.counters import OpCounter
from repro.core.world import PlanningTask
from repro.errors import InvalidRequest

#: Terminal job statuses a response can carry.  ``"degraded"`` is the
#: anytime-planning outcome (deadline/op budget expired, best-so-far result
#: attached); ``"cancelled"`` is a portfolio-race loser stopped after a
#: sibling won; ``"invalid"`` is a rejected malformed request; ``"poison"``
#: is a dead-lettered job that crashed too many workers.
STATUSES = ("ok", "degraded", "cancelled", "error", "timeout", "crash",
            "poison", "invalid")

#: Statuses that mean "the job is settled and will not be retried".  Every
#: submitted job must end in one of these (the chaos harness asserts it).
TERMINAL_STATUSES = STATUSES


def _digest(payload: object) -> str:
    """SHA-256 of the canonical (sorted-key, compact) JSON of ``payload``."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def task_fingerprint(task: PlanningTask) -> str:
    """Deterministic digest of a planning task (robot, world, start, goal).

    Built on :func:`repro.io.task_to_dict`, so anything that round-trips
    through the JSON persistence layer hashes identically before and after.
    """
    from repro.io import task_to_dict

    payload = task_to_dict(task)
    # task_id is bookkeeping, not geometry: two tasks that differ only in
    # their id describe the same planning problem.
    payload.pop("task_id", None)
    return _digest(payload)


def config_fingerprint(config: PlannerConfig) -> str:
    """Deterministic digest of a planner configuration (all knobs)."""
    return _digest(asdict(config))


@dataclass(frozen=True)
class PlanRequest:
    """One unit of work for the planning service.

    Attributes:
        task: the planning problem.
        config: full planner configuration (includes the seed, so the job
            is deterministic and therefore cacheable).
        lanes: in-job spatial parallelism — ``>1`` plans with
            :class:`~repro.core.batch.BatchRRTStarPlanner` using this many
            lanes per round, composing with the pool's job parallelism.
        smooth: shortcut-smooth the path after a successful plan.
        timeout_s: per-job wall-clock budget; ``None`` uses the pool
            default.
        request_id: caller-chosen label echoed back in the response.
        fault: testing/chaos hook honoured by the worker before planning:
            ``"hang"`` sleeps past any timeout, ``"crash"`` hard-exits the
            worker process, ``"error"`` raises, ``"flaky:<path>"`` crashes
            once while ``<path>`` exists (the worker deletes it first, so
            the retry succeeds).  Faulted requests bypass the cache.
        trace: run the job under the observability layer — the worker plans
            with a private span tracer and metrics registry and ships the
            drained buffers back in the response (``trace_spans`` /
            ``metric_deltas``).  Traced requests always execute (they bypass
            the cache): an observability run wants fresh measurements, not a
            replayed result.
        portfolio: race these named planners (see
            :data:`repro.core.portfolio.PLANNERS`, plus ``"auto"`` for the
            learned default) on this task and answer with the winner.  The
            service expands the request into one member job per entry —
            each a copy of this request with the entry's config — and the
            first feasible ``ok`` response wins; losers are cancelled into
            terminal ``"cancelled"`` / ``"degraded"`` states.  Portfolio
            requests bypass the cache (the race *is* the measurement).
        planner: portfolio-member label (set by the service on expanded
            member requests; callers leave it None).
        race_token: shared cancellation token of the member's race (set by
            the service; callers leave it None).
        recovered: this request was rebuilt from the job journal by
            crash recovery (set by :meth:`PlanningService.recover`;
            callers leave it False).  Recovered requests are not
            re-admitted to the journal — their original admit record is
            the one being settled — and telemetry tags them so RCA can
            attribute post-recovery latency.
    """

    task: PlanningTask
    config: PlannerConfig
    lanes: int = 1
    smooth: bool = False
    timeout_s: Optional[float] = None
    request_id: str = ""
    fault: Optional[str] = None
    trace: bool = False
    portfolio: Optional[Tuple[str, ...]] = None
    planner: Optional[str] = None
    race_token: Optional[int] = None
    recovered: bool = False

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise ValueError("lanes must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.portfolio is not None:
            entries = tuple(self.portfolio)
            if not entries:
                raise ValueError("portfolio must name at least one planner")
            from repro.core.portfolio import AUTO, PLANNERS

            for name in entries:
                if name != AUTO and name not in PLANNERS:
                    raise ValueError(
                        f"unknown portfolio planner {name!r}; available: "
                        f"{sorted(PLANNERS)} (or {AUTO!r})"
                    )
            object.__setattr__(self, "portfolio", entries)
        self.validate()

    def validate(self) -> None:
        """Reject malformed planning input with :class:`InvalidRequest`.

        Construction already runs this, but the worker and the inline
        runner call it again at the execution boundary: a request that
        crossed a pickle/pipe hop (or was built by hostile/buggy code that
        bypassed ``__init__``) is untrusted until revalidated.
        """
        import numpy as np

        from repro.core.robots import ROBOT_FACTORIES, get_robot

        task = self.task
        if task.robot_name not in ROBOT_FACTORIES:
            raise InvalidRequest(
                f"unknown robot {task.robot_name!r}; "
                f"available: {sorted(ROBOT_FACTORIES)}"
            )
        start = np.asarray(task.start, dtype=float)
        goal = np.asarray(task.goal, dtype=float)
        if not (np.isfinite(start).all() and np.isfinite(goal).all()):
            raise InvalidRequest("start and goal configurations must be finite")
        robot = get_robot(task.robot_name)
        if start.shape != (robot.dof,) or goal.shape != (robot.dof,):
            raise InvalidRequest(
                f"start/goal must be {robot.dof}-dimensional for {robot.name}"
            )
        margin = 1e-9
        for label, config in (("start", start), ("goal", goal)):
            if ((config < robot.config_lo - margin).any()
                    or (config > robot.config_hi + margin).any()):
                raise InvalidRequest(
                    f"{label} configuration outside {robot.name} C-space bounds"
                )

    def cache_key(self) -> str:
        """Digest identifying the *work* (not the labels) of this request.

        Two requests with equal keys produce byte-identical responses, so
        the plan cache may answer one with the other's result.  The id and
        timeout are excluded (labels / scheduling, not work); the fault
        hook is excluded too because faulted requests never touch the
        cache.  Portfolio requests never touch the cache either (pool
        completion order makes the winner non-deterministic), but the
        entries still contribute to the digest for any caller hashing
        requests generically.
        """
        payload = {
            "task": task_fingerprint(self.task),
            "config": config_fingerprint(self.config),
            "lanes": self.lanes,
            "smooth": self.smooth,
        }
        if self.portfolio is not None:
            payload["portfolio"] = list(self.portfolio)
        return _digest(payload)


@dataclass
class PlanResponse:
    """Outcome of one service job — always produced, even on failure.

    ``status`` is one of :data:`STATUSES`: ``"ok"`` means the planner ran
    to completion (``success`` then reports whether a path was found);
    ``"timeout"`` / ``"crash"`` / ``"error"`` are structured failures the
    pool synthesises so a sick worker never takes the service down.
    """

    request_id: str
    status: str
    success: bool = False
    path_cost: Optional[float] = None
    num_nodes: int = 0
    iterations: int = 0
    first_solution_iteration: Optional[int] = None
    path: List[List[float]] = field(default_factory=list)
    #: Per-kind operation counts / MAC-equivalents shipped back across the
    #: process boundary as plain dicts (see :meth:`OpCounter.to_dict`).
    op_events: Dict[str, int] = field(default_factory=dict)
    op_macs: Dict[str, float] = field(default_factory=dict)
    #: Worker-measured planning wall time (excludes queueing/transport).
    plan_seconds: float = 0.0
    #: Anytime-planning fields: why a ``"degraded"`` response stopped early
    #: (``"deadline"`` / ``"op_budget"``) and how far the returned path's
    #: endpoint remains from the goal (0.0 when solved).
    degraded_reason: Optional[str] = None
    best_goal_distance: Optional[float] = None
    error: Optional[str] = None
    cache_hit: bool = False
    worker_id: Optional[int] = None
    attempts: int = 1
    #: Served by a non-primary replica of the sharded cache tier after a
    #: read failover (set by :class:`repro.net.shard.ShardedPlanCache`).
    via_replica: bool = False
    #: Portfolio fields: which planner produced this response (the member
    #: label, or the winner's label on a race's answer) and the race
    #: summary a portfolio request's answer carries (``planners`` raced,
    #: ``winner``, per-member ``statuses``, loser accounting).
    planner: Optional[str] = None
    race: Dict = field(default_factory=dict)
    #: Observability payloads (populated only for traced requests): the
    #: worker-side span buffer, the worker registry snapshot, and the
    #: per-phase wall-time aggregate the telemetry axes consume.
    trace_spans: List[Dict] = field(default_factory=list)
    metric_deltas: Dict = field(default_factory=dict)
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    def counter(self) -> OpCounter:
        """Rebuild an :class:`OpCounter` from the shipped dicts."""
        return OpCounter.from_dict({"events": self.op_events, "macs": self.op_macs})

    @property
    def total_macs(self) -> float:
        """Total MAC-equivalents the job consumed."""
        return sum(self.op_macs.values())

    def macs_by_category(self) -> Dict[str, float]:
        """MAC totals per breakdown category (collision_check, ...)."""
        return self.counter().macs_by_category()

    def as_cache_hit(self, request_id: str) -> "PlanResponse":
        """Copy of this response relabelled as a cache hit for ``request_id``."""
        return replace(self, request_id=request_id, cache_hit=True,
                       worker_id=None, attempts=0)

    def to_dict(self, include_path: bool = True) -> Dict:
        """Plain-dict form for JSON persistence."""
        out = {
            "request_id": self.request_id,
            "status": self.status,
            "success": self.success,
            "path_cost": self.path_cost,
            "num_nodes": self.num_nodes,
            "iterations": self.iterations,
            "first_solution_iteration": self.first_solution_iteration,
            "op_events": dict(self.op_events),
            "op_macs": dict(self.op_macs),
            "plan_seconds": self.plan_seconds,
            "degraded_reason": self.degraded_reason,
            "best_goal_distance": self.best_goal_distance,
            "error": self.error,
            "cache_hit": self.cache_hit,
            "worker_id": self.worker_id,
            "attempts": self.attempts,
            "via_replica": self.via_replica,
            "phase_seconds": dict(self.phase_seconds),
            "planner": self.planner,
            "race": dict(self.race),
        }
        if include_path:
            out["path"] = [list(p) for p in self.path]
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "PlanResponse":
        """Inverse of :meth:`to_dict`."""
        return cls(
            request_id=data["request_id"],
            status=data["status"],
            success=bool(data.get("success", False)),
            path_cost=data.get("path_cost"),
            num_nodes=int(data.get("num_nodes", 0)),
            iterations=int(data.get("iterations", 0)),
            first_solution_iteration=data.get("first_solution_iteration"),
            path=[list(p) for p in data.get("path", [])],
            op_events=dict(data.get("op_events", {})),
            op_macs=dict(data.get("op_macs", {})),
            plan_seconds=float(data.get("plan_seconds", 0.0)),
            degraded_reason=data.get("degraded_reason"),
            best_goal_distance=data.get("best_goal_distance"),
            error=data.get("error"),
            cache_hit=bool(data.get("cache_hit", False)),
            worker_id=data.get("worker_id"),
            attempts=int(data.get("attempts", 1)),
            via_replica=bool(data.get("via_replica", False)),
            phase_seconds=dict(data.get("phase_seconds", {})),
            planner=data.get("planner"),
            race=dict(data.get("race", {})),
        )


def failure_response(request: PlanRequest, status: str, error: str) -> PlanResponse:
    """Structured failure the supervisor synthesises for a sick job."""
    if status not in STATUSES or status == "ok":
        raise ValueError(f"not a failure status: {status!r}")
    return PlanResponse(request_id=request.request_id, status=status, error=error)
