"""Supervised ``multiprocessing`` worker pool with timeouts and retries.

The supervisor owns N long-lived worker processes, each connected by a
*private duplex pipe* — deliberately not a shared queue.  A shared
``multiprocessing.Queue`` has a write lock all workers contend on, and a
worker killed (or crashing) at the wrong instant can die holding it,
deadlocking every sibling's result delivery.  With one pipe per worker a
sick worker can only corrupt its own channel, which the supervisor discards
wholesale on respawn; crash detection comes free as end-of-file on the
pipe.

The dispatch loop interleaves four duties:

1. hand eligible jobs from the :class:`~repro.service.jobs.JobQueue` to
   idle workers (one in-flight job per worker, so ownership is always
   unambiguous);
2. wait on the busy workers' pipes and drain results;
3. detect workers that died mid-job (pipe EOF) and synthesise a structured
   ``"crash"`` failure;
4. kill-and-respawn any worker past its job deadline, synthesising a
   structured ``"timeout"`` failure.

Failures whose status is in ``retry_statuses`` are requeued with
exponential backoff up to ``max_retries`` extra attempts; everything else
finalises immediately.  The invariant the service layer relies on: *every
submitted job reaches a terminal state with a structured response* — a sick
worker can cost latency, never the batch.

Job ids disambiguate results as a second line of defence: a message that
does not match the slot's current job is dropped on the floor.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Dict, List, Optional, Tuple

from repro.faults import FaultPlan, get_injector
from repro.obs import bump, get_tracer
from repro.service.breaker import CircuitBreaker
from repro.service.jobs import DONE, FAILED, RUNNING, Job, JobQueue
from repro.service.request import PlanResponse, failure_response
from repro.service.worker import worker_main


@dataclass(frozen=True)
class PoolConfig:
    """Scheduling knobs of the worker pool.

    Attributes:
        num_workers: worker process count.
        default_timeout_s: per-job wall budget when the request does not
            carry its own ``timeout_s``.
        max_retries: extra attempts after the first (2 means up to 3 runs).
        backoff_base_s: retry ``k`` waits ``backoff_base_s * 2**(k-1)``.
        retry_statuses: failure statuses eligible for retry.  Timeouts are
            excluded by default — a job that blew its wall budget once will
            blow it again.
        poll_interval_s: supervisor wait granularity; bounds how stale
            deadline enforcement can be.
        start_method: ``multiprocessing`` start method; ``None`` keeps the
            platform default (``fork`` on Linux, ``spawn`` elsewhere).
        poison_threshold: a job whose worker crashes this many times is
            quarantined as ``"poison"`` in the dead-letter list instead of
            being retried again (0 disables).  Quarantine preempts retry,
            so it only matters when ``max_retries`` would keep a
            worker-killing job alive.
        breaker_threshold: consecutive worker-side failures that trip the
            dispatch circuit breaker (0 — the default — disables it).
        breaker_cooldown_s: how long a tripped breaker pauses dispatch.
        fault_plan: optional :class:`~repro.faults.FaultPlan` installed in
            every worker (scoped per worker id) and honoured at the
            supervisor's own ``pool.*`` sites.  ``None`` (default) keeps
            the zero-overhead no-op path.
    """

    num_workers: int = 2
    default_timeout_s: float = 60.0
    max_retries: int = 1
    backoff_base_s: float = 0.05
    retry_statuses: Tuple[str, ...] = ("crash", "error")
    poll_interval_s: float = 0.02
    start_method: Optional[str] = None
    poison_threshold: int = 3
    breaker_threshold: int = 0
    breaker_cooldown_s: float = 1.0
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.default_timeout_s <= 0:
            raise ValueError("default_timeout_s must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if self.poison_threshold < 0:
            raise ValueError("poison_threshold must be >= 0")
        if self.breaker_threshold < 0:
            raise ValueError("breaker_threshold must be >= 0")
        if self.breaker_cooldown_s <= 0:
            raise ValueError("breaker_cooldown_s must be positive")

    # The retry arithmetic lives in two pure helpers so the policy is
    # testable without a live pool (and reusable by the inline runner).

    def should_retry(self, status: str, attempts: int) -> bool:
        """Is a failure with ``status`` after ``attempts`` runs retryable?"""
        return status in self.retry_statuses and attempts <= self.max_retries

    def backoff_delay(self, attempts: int) -> float:
        """Backoff before retry number ``attempts`` (exponential, base 2)."""
        return self.backoff_base_s * (2.0 ** (max(1, attempts) - 1))


class _Slot:
    """Supervisor-side view of one worker process and its pipe."""

    def __init__(self, worker_id: int, process, conn) -> None:
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        self.job: Optional[Job] = None
        self.deadline: Optional[float] = None


class WorkerPool:
    """Fixed-size pool of planner processes driven by :meth:`run`."""

    def __init__(self, config: Optional[PoolConfig] = None) -> None:
        self.config = config if config is not None else PoolConfig()
        self._ctx = multiprocessing.get_context(self.config.start_method)
        #: Shared race-cancellation bitmask (bit ``token % 64`` per active
        #: race).  Single writer (the supervisor), many readers (workers
        #: poll it through the planner budget check), so no lock is needed.
        self.cancel_flags = self._ctx.Value("Q", 0, lock=False)
        self._race_seq = 0
        self._cancelled_races: set = set()
        self._on_settle = None
        self._slots: List[_Slot] = [
            self._spawn(i) for i in range(self.config.num_workers)
        ]
        self.restarts = 0
        self._closed = False
        #: Tracer timestamp of each in-flight job's first dispatch, so the
        #: supervisor can emit a ``service.job`` span (dispatch -> settle)
        #: tagged with the job id.  Keyed by job_id; only populated while
        #: the ambient tracer is enabled.
        self._span_starts: Dict[int, float] = {}
        self.breaker = CircuitBreaker(
            self.config.breaker_threshold, self.config.breaker_cooldown_s
        )
        #: Jobs quarantined as poison (terminal ``"poison"`` responses).
        self.dead_letters: List[Job] = []
        #: Fault/retry event counters (also bumped into the obs registry as
        #: ``repro_service_faults_total{event=...}`` when metrics are on).
        self.counters: Dict[str, int] = {
            "retries": 0, "crashes": 0, "timeouts": 0, "errors": 0,
            "invalid": 0, "poisoned": 0, "corrupt_payloads": 0,
            "dispatch_failures": 0, "breaker_trips": 0,
        }

    def _count(self, event: str, amount: int = 1) -> None:
        self.counters[event] = self.counters.get(event, 0) + amount
        bump("repro_service_faults_total", amount,
             help="Worker-pool fault and retry events", event=event)

    # ------------------------------------------------------------ lifecycle

    def _spawn(self, worker_id: int) -> _Slot:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, child_conn, self.config.fault_plan,
                  self.cancel_flags),
            daemon=True,
            name=f"repro-service-worker-{worker_id}",
        )
        process.start()
        # Drop the parent's copy of the child end so the worker's death
        # surfaces as EOF on ``parent_conn``.
        child_conn.close()
        return _Slot(worker_id, process, parent_conn)

    def _replace(self, slot: _Slot, kill: bool) -> None:
        """Retire a slot's process and pipe (killing if alive) and respawn."""
        if kill and slot.process.is_alive():
            slot.process.terminate()
        slot.process.join(timeout=2.0)
        if slot.process.is_alive():  # terminate ignored; escalate
            slot.process.kill()
            slot.process.join(timeout=2.0)
        slot.conn.close()
        fresh = self._spawn(slot.worker_id)
        slot.process, slot.conn = fresh.process, fresh.conn
        slot.job, slot.deadline = None, None
        self.restarts += 1

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for slot in self._slots:
            try:
                slot.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for slot in self._slots:
            slot.process.join(timeout=1.0)
            if slot.process.is_alive():
                slot.process.terminate()
                slot.process.join(timeout=1.0)
            slot.conn.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ---------------------------------------------------------------- races

    def new_race_token(self) -> int:
        """Fresh token for one portfolio race (bit ``token % 64``).

        Tokens are never reused within a batch; with 64 bits, collisions
        require 64 concurrently *active* races, far beyond any batch the
        service runs.
        """
        self._race_seq += 1
        return self._race_seq

    def cancel_race(self, token: int) -> None:
        """Cancel every member of race ``token``: flip the shared bit (in-
        flight members degrade out at their next budget poll) and mark the
        race so still-queued members settle as ``"cancelled"`` without
        dispatching."""
        self.cancel_flags.value |= 1 << (token % 64)
        self._cancelled_races.add(token)

    def clear_race(self, token: int) -> None:
        """Retire a finished race's token so its bit can be reused."""
        self.cancel_flags.value &= ~(1 << (token % 64))
        self._cancelled_races.discard(token)

    # ------------------------------------------------------------- dispatch

    def _dispatch(self, slot: _Slot, job: Job, now: float, queue: JobQueue) -> None:
        injector = get_injector()
        if injector is not None and injector.fire(
            "pool.dispatch", detail=f"job {job.job_id}"
        ) == "drop":
            # Simulated lost dispatch: the worker never sees the job, so
            # the per-job deadline reaps it (terminal, never silent).
            job.state = RUNNING
            job.attempts += 1
            slot.job = job
            slot.deadline = now + self._timeout_for(job)
            return
        job.state = RUNNING
        job.attempts += 1
        if job.dispatched_at is None:
            job.dispatched_at = now
            tracer = get_tracer()
            if tracer.enabled:
                self._span_starts[job.job_id] = tracer.now()
        timeout = self._timeout_for(job)
        slot.job = job
        slot.deadline = now + timeout
        try:
            slot.conn.send((job.job_id, job.request))
        except (BrokenPipeError, OSError):
            # The worker died while idle; that is no fault of the job —
            # respawn and hand it to the fresh process.
            self._replace(slot, kill=False)
            slot.job = job
            slot.deadline = now + timeout
            try:
                slot.conn.send((job.job_id, job.request))
            except (BrokenPipeError, OSError):
                # The fresh worker died during the handshake too.  Undo
                # this attempt (the job never ran) and put it back in the
                # queue so it is handed to whichever worker survives —
                # dropping it here would violate the every-job-terminal
                # invariant.
                self._count("dispatch_failures")
                job.attempts -= 1
                slot.job, slot.deadline = None, None
                queue.requeue(job, self.config.poll_interval_s, now)

    def _timeout_for(self, job: Job) -> float:
        return (
            job.request.timeout_s
            if job.request.timeout_s is not None
            else self.config.default_timeout_s
        )

    def _settle(
        self,
        queue: JobQueue,
        job: Job,
        response: PlanResponse,
        done: List[Job],
        now: float,
    ) -> None:
        """Finalise, quarantine, or requeue a job that just produced ``response``."""
        response.attempts = job.attempts
        status = response.status
        if status == "crash":
            job.crash_count += 1
            self._count("crashes")
        elif status == "timeout":
            self._count("timeouts")
        elif status == "error":
            self._count("errors")
        elif status == "invalid":
            self._count("invalid")
        if status in ("crash", "timeout", "error"):
            trips_before = self.breaker.trips
            self.breaker.record_failure(now)
            if self.breaker.trips > trips_before:
                self._count("breaker_trips")
        elif status in ("ok", "degraded"):
            self.breaker.record_success()
        if status not in ("ok", "degraded"):
            job.failures.append(f"{status}: {response.error}")
        retryable = self.config.should_retry(status, job.attempts)
        if retryable and self.config.poison_threshold > 0 \
                and job.crash_count >= self.config.poison_threshold:
            # Quarantine: this job keeps killing workers; retrying it again
            # would grind the pool down one respawn at a time.
            response = failure_response(
                job.request, "poison",
                f"quarantined after crashing {job.crash_count} workers",
            )
            response.attempts = job.attempts
            self.dead_letters.append(job)
            self._count("poisoned")
            retryable = False
        if retryable:
            self._count("retries")
            queue.requeue(job, self.config.backoff_delay(job.attempts), now)
            return
        job.response = response
        job.state = DONE if response.status in ("ok", "degraded") else FAILED
        job.finished_at = now
        done.append(job)
        if self._on_settle is not None:
            # Settlement hook (portfolio racing): the service watches for
            # race winners here and calls cancel_race() while the batch is
            # still running.
            self._on_settle(job)
        start = self._span_starts.pop(job.job_id, None)
        if start is not None:
            tracer = get_tracer()
            if tracer.enabled:
                tracer.span_at(
                    "service.job", start, tracer.now(),
                    job_id=job.job_id,
                    request_id=job.request.request_id,
                    status=response.status,
                    worker_id=response.worker_id,
                    attempts=job.attempts,
                )

    def run(self, queue: JobQueue, on_settle=None) -> List[Job]:
        """Drive every job in ``queue`` to a terminal state.

        Returns the finished jobs in completion order; each carries a
        :class:`PlanResponse` (structured failure included).
        ``on_settle(job)`` is invoked synchronously as each job reaches a
        terminal state — the hook portfolio racing uses to cancel losers
        the moment a winner settles.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        done: List[Job] = []
        injector = get_injector()
        self._on_settle = on_settle
        try:
            return self._run_loop(queue, done, injector)
        finally:
            self._on_settle = None

    def _run_loop(self, queue: JobQueue, done: List[Job], injector) -> List[Job]:
        while len(queue) or any(slot.job is not None for slot in self._slots):
            now = time.monotonic()
            # 0. Settle still-queued members of cancelled races without
            # dispatching them (their siblings' race already has a winner).
            if self._cancelled_races:
                cancelled = self._cancelled_races
                for job in queue.purge(
                    lambda request: request.race_token in cancelled
                ):
                    job.attempts = max(job.attempts, 1)
                    self._settle(
                        queue, job,
                        failure_response(job.request, "cancelled",
                                         "portfolio race already won"),
                        done, now,
                    )
            # 1. Feed idle workers (unless the circuit breaker is open:
            # jobs then stay queued — delayed, never dropped or failed).
            if self.breaker.allow(now):
                for slot in self._slots:
                    if slot.job is None:
                        job = queue.pop_ready(now)
                        if job is None:
                            break
                        self._dispatch(slot, job, now, queue)
            # 2. Wait on busy pipes (doubles as the loop's sleep).
            busy = {slot.conn: slot for slot in self._slots if slot.job is not None}
            if busy:
                ready = mp_connection.wait(
                    list(busy), timeout=self.config.poll_interval_s
                )
            else:
                # Only backoff-delayed jobs remain; nap until one matures.
                delay = queue.next_eligible_in(now)
                time.sleep(min(delay, self.config.poll_interval_s)
                           if delay else self.config.poll_interval_s)
                ready = []
            for conn in ready:
                slot = busy[conn]
                job = slot.job
                if job is None:  # settled earlier this iteration
                    continue
                try:
                    message = slot.conn.recv()
                except (EOFError, OSError):
                    # 3. Pipe EOF: the worker died mid-job.
                    self._replace(slot, kill=False)
                    self._settle(
                        queue, job,
                        failure_response(job.request, "crash",
                                         "worker process died mid-job"),
                        done, time.monotonic(),
                    )
                    continue
                except Exception as exc:
                    # Corrupted payload (unpickling error, truncated
                    # frame): the channel can no longer be trusted —
                    # discard worker and pipe wholesale, classify the job
                    # as a crash (retryable).
                    self._count("corrupt_payloads")
                    self._replace(slot, kill=True)
                    self._settle(
                        queue, job,
                        failure_response(
                            job.request, "crash",
                            f"corrupted result payload: {exc!r}",
                        ),
                        done, time.monotonic(),
                    )
                    continue
                if injector is not None:
                    injector.fire("pool.recv", detail=f"job {job.job_id}")
                if (
                    not isinstance(message, tuple)
                    or len(message) != 2
                    or not isinstance(message[1], PlanResponse)
                ):
                    # Pickled fine but violates the (job_id, response)
                    # protocol: same trust failure as a corrupt payload.
                    self._count("corrupt_payloads")
                    self._replace(slot, kill=True)
                    self._settle(
                        queue, job,
                        failure_response(job.request, "crash",
                                         "malformed result message"),
                        done, time.monotonic(),
                    )
                    continue
                job_id, response = message
                if job_id != job.job_id:  # stale/foreign message; drop
                    continue
                slot.job, slot.deadline = None, None
                response.worker_id = slot.worker_id
                self._settle(queue, job, response, done, time.monotonic())
            # 4. Deadline enforcement.
            now = time.monotonic()
            for slot in self._slots:
                job = slot.job
                if job is None or slot.deadline is None or now <= slot.deadline:
                    continue
                self._replace(slot, kill=True)
                self._settle(
                    queue, job,
                    failure_response(
                        job.request, "timeout",
                        f"exceeded per-job budget after "
                        f"{job.attempts} attempt(s)",
                    ),
                    done, now,
                )
        return done

    def stats(self) -> Dict[str, object]:
        """Counters for the telemetry summary."""
        return {
            "count": self.config.num_workers,
            "restarts": self.restarts,
            "faults": dict(self.counters),
            "dead_letters": len(self.dead_letters),
            "breaker": self.breaker.snapshot(),
        }
