"""Planning service layer: queueing, pooling, caching, and telemetry.

``repro.service`` turns the one-shot planner into a *serving* substrate: a
:class:`PlanningService` accepts many :class:`PlanRequest` jobs, answers
repeats from an LRU :class:`PlanCache`, fans misses out across a
:class:`WorkerPool` of planner processes (per-job timeouts, bounded retries
with backoff, crash isolation), and emits structured per-job telemetry with
aggregate percentiles.

Layering: the service sits *above* ``repro.core`` / ``repro.io`` — it never
changes planning semantics, it only schedules and observes planning runs.
Spatial lane parallelism (``core.batch``) composes *inside* a job
(``PlanRequest.lanes``); the pool provides job parallelism *across* cores.

Quickstart::

    from repro.service import PlanningService, build_requests

    requests = build_requests(robot="mobile2d", obstacles=8, jobs=8, seed=0)
    service = PlanningService(num_workers=4)
    responses = service.run_batch(requests)
    print(service.summary()["latency_s"]["plan"])
"""

from repro.service.cache import PlanCache
from repro.service.jobs import Job, JobQueue
from repro.service.pool import PoolConfig, WorkerPool
from repro.service.request import (
    PlanRequest,
    PlanResponse,
    config_fingerprint,
    task_fingerprint,
)
from repro.service.runner import PlanningService, build_requests
from repro.service.telemetry import JobRecord, TelemetrySink, percentile
from repro.service.worker import execute_request

__all__ = [
    "Job",
    "JobQueue",
    "JobRecord",
    "PlanCache",
    "PlanRequest",
    "PlanResponse",
    "PlanningService",
    "PoolConfig",
    "TelemetrySink",
    "WorkerPool",
    "build_requests",
    "config_fingerprint",
    "execute_request",
    "percentile",
    "task_fingerprint",
]
