"""Job bookkeeping and the ready queue feeding the worker pool.

A :class:`Job` wraps one :class:`~repro.service.request.PlanRequest` with
its scheduling lifecycle (pending -> running -> done/failed), timing marks
(submit, dispatch, finish) and the retry trail.  The :class:`JobQueue` is a
min-heap keyed by *eligibility time*, which is how retry backoff works: a
requeued job simply becomes eligible ``delay`` seconds in the future and the
pool's dispatch loop skips it until then.  Among eligible jobs the order is
FIFO by job id.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.service.request import PlanRequest, PlanResponse

#: Lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


@dataclass
class Job:
    """One request plus its scheduling lifecycle inside the pool."""

    job_id: int
    request: PlanRequest
    submitted_at: float
    state: str = PENDING
    #: Dispatch attempts so far (1 on first dispatch).
    attempts: int = 0
    #: Monotonic time before which the job must not be dispatched (backoff).
    eligible_at: float = 0.0
    #: Monotonic time of the *first* dispatch (queue-wait endpoint).
    dispatched_at: Optional[float] = None
    finished_at: Optional[float] = None
    response: Optional[PlanResponse] = None
    #: Human-readable note per failed attempt, e.g. ``"crash: worker died"``.
    failures: List[str] = field(default_factory=list)
    #: How many worker processes this job has taken down (feeds the
    #: poison-job quarantine: see ``PoolConfig.poison_threshold``).
    crash_count: int = 0

    @property
    def queue_wait_s(self) -> float:
        """Seconds between submission and first dispatch (0 if never run)."""
        if self.dispatched_at is None:
            return 0.0
        return max(0.0, self.dispatched_at - self.submitted_at)

    @property
    def wall_seconds(self) -> float:
        """Seconds between submission and the terminal state."""
        if self.finished_at is None:
            return 0.0
        return max(0.0, self.finished_at - self.submitted_at)


class JobQueue:
    """Eligibility-ordered ready queue (FIFO among currently-eligible jobs)."""

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._ids = itertools.count()
        self._pending = 0

    def __len__(self) -> int:
        return self._pending

    def submit(self, request: PlanRequest, now: float) -> Job:
        """Enqueue a new job, eligible immediately."""
        job = Job(job_id=next(self._ids), request=request, submitted_at=now)
        heapq.heappush(self._heap, (job.eligible_at, job.job_id, job))
        self._pending += 1
        return job

    def requeue(self, job: Job, delay: float, now: float) -> None:
        """Put a failed job back with ``delay`` seconds of backoff."""
        job.state = PENDING
        job.eligible_at = now + max(0.0, delay)
        heapq.heappush(self._heap, (job.eligible_at, job.job_id, job))
        self._pending += 1

    def pop_ready(self, now: float) -> Optional[Job]:
        """Next eligible job, or ``None`` if none is eligible yet."""
        if not self._heap or self._heap[0][0] > now:
            return None
        _, _, job = heapq.heappop(self._heap)
        self._pending -= 1
        return job

    def next_eligible_in(self, now: float) -> Optional[float]:
        """Seconds until the head job becomes eligible (0 if ready now)."""
        if not self._heap:
            return None
        return max(0.0, self._heap[0][0] - now)

    def purge(self, predicate) -> List[Job]:
        """Remove and return every queued job whose request matches.

        Used by portfolio racing to pull a cancelled race's still-pending
        members out of the queue so they settle as ``"cancelled"`` instead
        of dispatching.  Order of the returned jobs follows queue order.
        """
        matched = [entry for entry in self._heap if predicate(entry[2].request)]
        if matched:
            kept = [entry for entry in self._heap
                    if not predicate(entry[2].request)]
            heapq.heapify(kept)
            self._heap = kept
            self._pending -= len(matched)
        return [job for _, _, job in sorted(matched, key=lambda e: e[1])]
