"""Structured per-job telemetry and aggregate summaries.

Each finished job becomes one :class:`JobRecord` — flat, JSON-ready, with
the scheduling timings (queue wait, plan latency, wall time), the planning
outcome, and the operation-cost counters pulled from the worker's
:class:`~repro.core.counters.OpCounter` snapshot (collision-check and
neighbor-search MACs, sample count).  The :class:`TelemetrySink` collects
records and reduces them to the summary the CLIs print: status counts,
cache hit-rate, and p50/p95/mean/max percentiles for the latency axes.

Percentiles come from :mod:`repro.obs.stats` — one shared implementation
(linear interpolation between order statistics, the numpy default) serves
the service axes, the analysis suites, and the observability reports, and
keeps the records plain Python.  When jobs ran traced, each record also
carries the per-phase wall-time split the worker's span buffer produced,
and the sink folds every job's :class:`~repro.core.counters.OpCounter` into
one run-level counter via :meth:`OpCounter.merge`.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.core.counters import OpCounter
from repro.obs.stats import axis_summary as _axis_summary
from repro.obs.stats import percentile  # re-export: the one shared impl
from repro.service.jobs import Job
from repro.service.request import PlanResponse

__all__ = [
    "JobRecord",
    "TELEMETRY_EMITTER",
    "TELEMETRY_SCHEMA",
    "TelemetrySink",
    "percentile",
    "record_from_job",
    "record_from_response",
    "request_attributes",
]

#: Version stamp written into every dump so downstream consumers (e.g.
#: ``repro.obs.rca``) can reject or upgrade mismatched dumps instead of
#: mis-parsing them.  Bump when the dump shape changes incompatibly.
TELEMETRY_SCHEMA = 1
TELEMETRY_EMITTER = "repro.service.telemetry"


def request_attributes(request) -> Dict[str, str]:
    """Drill-down attributes for a :class:`~repro.service.request.PlanRequest`.

    The flat string→string map every job record carries so RCA tooling can
    slice telemetry by robot × planner mode × wave width × fault state
    without re-deriving anything from the request hash.
    """
    config = request.config
    wave_width = getattr(config, "wave_width", 1)
    deadline_armed = bool(
        getattr(config, "deadline_s", None) or getattr(config, "op_budget", None)
    )
    if getattr(config, "mode", "rrtstar") == "connect":
        mode = "connect"
    else:
        mode = "wave" if wave_width > 1 else "scalar"
    attributes = {
        "robot": request.task.robot_name,
        "obstacles": str(request.task.environment.num_obstacles),
        "mode": mode,
        "wave_width": str(wave_width),
        "kernels": str(getattr(config, "kernels", "batch")),
        "deadline": "armed" if deadline_armed else "none",
        "fault": str(request.fault) if request.fault else "clean",
        # Crash-recovery provenance: jobs replayed from the journal carry
        # recovered=1 so RCA can attribute post-recovery tail latency.
        # getattr, not attribute access: the chaos harness builds hostile
        # requests via object.__new__ that predate the field.
        "recovered": "1" if getattr(request, "recovered", False) else "0",
    }
    planner = getattr(request, "planner", None)
    if planner:
        # Portfolio race members: which entry this job raced as.
        attributes["planner"] = str(planner)
    return attributes


@dataclass
class JobRecord:
    """One job's flattened telemetry row."""

    job_id: int
    request_id: str
    status: str
    cache_hit: bool
    attempts: int
    worker_id: Optional[int]
    queue_wait_s: float
    plan_seconds: float
    wall_seconds: float
    success: bool
    path_cost: Optional[float]
    iterations: int
    num_nodes: int
    total_macs: float
    collision_check_macs: float
    neighbor_search_macs: float
    samples: int
    error: Optional[str] = None
    #: Per-phase wall seconds (sample/nearest/...) for traced jobs; empty
    #: otherwise.  Feeds the summary's per-phase latency axes.
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Drill-down dimensions (robot, planner mode, wave width, fault
    #: state, ...) from :func:`request_attributes` — the axes RCA tooling
    #: slices on.  Empty when the request wasn't available at record time.
    attributes: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return asdict(self)


def record_from_job(job: Job, request=None) -> JobRecord:
    """Telemetry row for a pool-executed job (response must be set)."""
    assert job.response is not None
    return record_from_response(
        job.response,
        job_id=job.job_id,
        queue_wait_s=job.queue_wait_s,
        wall_seconds=job.wall_seconds,
        request=request if request is not None else job.request,
    )


def record_from_response(
    response: PlanResponse,
    job_id: int = -1,
    queue_wait_s: float = 0.0,
    wall_seconds: float = 0.0,
    request=None,
) -> JobRecord:
    """Telemetry row straight from a response (cache hits never queue)."""
    categories = response.macs_by_category()
    attributes = request_attributes(request) if request is not None else {}
    if getattr(response, "via_replica", False):
        # Served by a cache-shard replica after a read failover: tagged so
        # RCA can split replica-served hits from primary hits.
        attributes["replica_read"] = "1"
    return JobRecord(
        job_id=job_id,
        request_id=response.request_id,
        status=response.status,
        cache_hit=response.cache_hit,
        attempts=response.attempts,
        worker_id=response.worker_id,
        queue_wait_s=round(queue_wait_s, 6),
        plan_seconds=round(response.plan_seconds, 6),
        wall_seconds=round(wall_seconds, 6),
        success=response.success,
        path_cost=response.path_cost,
        iterations=response.iterations,
        num_nodes=response.num_nodes,
        total_macs=response.total_macs,
        collision_check_macs=categories.get("collision_check", 0.0),
        neighbor_search_macs=categories.get("neighbor_search", 0.0),
        samples=response.op_events.get("sample", 0),
        error=response.error,
        phase_seconds=dict(response.phase_seconds),
        attributes=attributes,
    )


class TelemetrySink:
    """Accumulates job records and reduces them to the service summary."""

    def __init__(self) -> None:
        self.records: List[JobRecord] = []
        #: Run-level operation counter: every job's shipped-back OpCounter
        #: folded in-place (no dict round trips) via :meth:`OpCounter.merge`.
        self.op_totals = OpCounter()

    def record(self, record: JobRecord, counter: Optional[OpCounter] = None) -> None:
        self.records.append(record)
        if counter is not None:
            self.op_totals.merge(counter)

    def __len__(self) -> int:
        return len(self.records)

    def summary(
        self,
        cache_stats: Optional[Dict] = None,
        pool_stats: Optional[Dict] = None,
        include_records: bool = False,
    ) -> Dict:
        """Aggregate view: status counts, latency percentiles, op totals.

        Cache hits are excluded from the ``plan`` latency axis (they would
        report the *original* run's latency again) but included in job
        counts and the op totals count real work only once because hits
        carry the cached counters — so ``ops`` reports *served* work, and
        ``ops_executed`` the subset actually planned.
        """
        rows = self.records
        executed = [r for r in rows if not r.cache_hit]
        ok = [r for r in rows if r.status == "ok"]
        degraded = [r for r in rows if r.status == "degraded"]
        failures: Dict[str, int] = {}
        for r in rows:
            if r.status not in ("ok", "degraded"):
                failures[r.status] = failures.get(r.status, 0) + 1
        out: Dict[str, object] = {
            "jobs": len(rows),
            "ok": len(ok),
            "degraded": len(degraded),
            "failed": failures,
            "planning_success_rate": round(
                sum(1 for r in ok if r.success) / len(ok), 4
            ) if ok else None,
            "attempts": sum(r.attempts for r in rows),
            "latency_s": {
                "plan": _axis_summary(
                    [r.plan_seconds for r in executed if r.status == "ok"]
                ),
                "queue_wait": _axis_summary([r.queue_wait_s for r in executed]),
                "wall": _axis_summary([r.wall_seconds for r in executed]),
                "phases": self._phase_axes(executed),
            },
            "ops": {
                "total_macs": sum(r.total_macs for r in rows),
                "collision_check_macs": sum(r.collision_check_macs for r in rows),
                "neighbor_search_macs": sum(r.neighbor_search_macs for r in rows),
                "samples": sum(r.samples for r in rows),
                "by_kind_macs": dict(self.op_totals.macs),
            },
            "ops_executed": {
                "total_macs": sum(r.total_macs for r in executed),
                "samples": sum(r.samples for r in executed),
            },
        }
        if cache_stats is not None:
            out["cache"] = cache_stats
        if pool_stats is not None:
            out["workers"] = pool_stats
        if include_records:
            out["records"] = [r.to_dict() for r in rows]
        return out

    @staticmethod
    def _phase_axes(records: List[JobRecord]) -> Dict[str, Dict[str, Optional[float]]]:
        """Per-phase latency axes over the jobs that ran traced."""
        names: List[str] = []
        for record in records:
            for name in record.phase_seconds:
                if name not in names:
                    names.append(name)
        return {
            name: _axis_summary(
                [r.phase_seconds[name] for r in records if name in r.phase_seconds]
            )
            for name in names
        }

    def dump(self, path, **summary_kwargs) -> None:
        """Write the summary (plus records) to a versioned JSON file.

        The ``schema`` / ``emitter`` stamps let consumers such as
        ``repro.obs.rca`` verify they are parsing the dump shape they
        expect and reject newer or foreign dumps outright.
        """
        summary_kwargs.setdefault("include_records", True)
        payload = {"schema": TELEMETRY_SCHEMA, "emitter": TELEMETRY_EMITTER}
        payload.update(self.summary(**summary_kwargs))
        pathlib.Path(path).write_text(json.dumps(payload, indent=2))
