"""Circuit breaker guarding the worker pool's dispatch path.

Classic three-state breaker (closed → open → half-open), adapted to the
pool's invariant that *every submitted job reaches a terminal state*: an
open breaker never fails jobs, it pauses dispatch.  Jobs stay queued, the
supervisor keeps draining in-flight results, and after ``cooldown_s`` the
breaker goes half-open and lets one probe job through — a success closes
it, another failure re-opens it for a fresh cooldown.

This protects against pathologies where the pool itself is sick (a bad
deploy crashing every worker on startup, an environment poisoning every
job): instead of burning through respawn-crash cycles at full dispatch
rate, the pool backs off to one probe per cooldown until workers hold.
"""

from __future__ import annotations

from typing import Dict

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker over worker-job outcomes.

    Args:
        threshold: consecutive failures (crash/timeout/error) that trip
            the breaker.  ``0`` disables it entirely — :meth:`allow`
            always returns True and no state is kept hot.
        cooldown_s: how long dispatch stays paused once tripped.
    """

    def __init__(self, threshold: int = 0, cooldown_s: float = 1.0) -> None:
        if threshold < 0:
            raise ValueError("breaker threshold must be >= 0")
        if cooldown_s <= 0:
            raise ValueError("breaker cooldown_s must be positive")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.trips = 0

    @property
    def enabled(self) -> bool:
        return self.threshold > 0

    def allow(self, now: float) -> bool:
        """May the pool dispatch a job right now?

        In the open state this flips to half-open once the cooldown has
        elapsed, admitting exactly one probe dispatch (subsequent calls
        stay half-open and admit more probes only as results settle —
        with one in-flight job per worker the exposure is bounded by the
        worker count).
        """
        if not self.enabled or self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now - self.opened_at < self.cooldown_s:
                return False
            self.state = HALF_OPEN
        return True  # half-open: admit the probe

    def record_success(self) -> None:
        if not self.enabled:
            return
        self.consecutive_failures = 0
        self.state = CLOSED

    def record_failure(self, now: float) -> None:
        """A worker-side failure settled (crash, timeout, or error)."""
        if not self.enabled:
            return
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or self.consecutive_failures >= self.threshold:
            if self.state != OPEN:
                self.trips += 1
            self.state = OPEN
            self.opened_at = now
            self.consecutive_failures = 0

    def snapshot(self) -> Dict[str, object]:
        """Plain-data state for pool stats / telemetry."""
        return {
            "enabled": self.enabled,
            "state": self.state,
            "trips": self.trips,
            "consecutive_failures": self.consecutive_failures,
        }
