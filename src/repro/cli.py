"""Command-line interface: plan a task end to end from the shell.

Usage::

    python -m repro.cli --robot viperx300 --obstacles 16 --samples 600
    python -m repro.cli --robot mobile2d --variant baseline --render
    python -m repro.cli --task task.json --out result.json
    python -m repro.cli --jobs 8 --workers 4 --samples 400
    python -m repro.cli --trace trace.json --metrics metrics.prom

Plans one task (randomly generated from a seed, or loaded from JSON),
prints the outcome, optionally smooths / time-parameterizes the path,
renders 2D workspaces as ASCII, and archives the result as JSON.

With ``--jobs N`` the CLI switches to batch mode: N seeded tasks (seeds
``seed .. seed+N-1``) are routed through the :mod:`repro.service` worker
pool instead of a Python for-loop, and a telemetry JSON summary (cache
hit-rate, p50/p95 plan latency, MAC totals) is printed at the end.  See
``python -m repro.service --help`` for the full service front end.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.core.moped import VARIANTS, config_for_variant
from repro.core.planners import make_planner
from repro.core.robots import ROBOT_FACTORIES, get_robot


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--robot", default="mobile2d", choices=sorted(ROBOT_FACTORIES),
                        help="robot model (ignored with --task)")
    parser.add_argument("--obstacles", type=int, default=16,
                        help="obstacle count for the generated environment")
    parser.add_argument("--seed", type=int, default=0, help="workload + planner seed")
    parser.add_argument("--samples", type=int, default=500, help="sampling budget")
    parser.add_argument("--variant", default="full", choices=VARIANTS,
                        help="MOPED ablation variant or 'baseline'")
    parser.add_argument("--goal-bias", type=float, default=0.1)
    parser.add_argument("--kernels", default="batch", choices=("batch", "reference"),
                        help="collision kernel backend: vectorized 'batch' "
                             "(default) or the scalar 'reference' baseline; "
                             "both give bit-identical plans")
    parser.add_argument("--wave", type=int, default=1, metavar="W",
                        help="wavefront planner width: evaluate W samples per "
                             "round through batched kernels; bit-identical to "
                             "the scalar loop at speculation_depth=W "
                             "(default: %(default)s = scalar loop)")
    parser.add_argument("--mode", default="rrtstar",
                        choices=("rrtstar", "connect"),
                        help="planning algorithm: optimizing RRT* (default) "
                             "or bidirectional RRT-Connect (feasibility "
                             "only, first path wins)")
    parser.add_argument("--deadline", type=float, default=None, metavar="S",
                        help="anytime-planning wall deadline in seconds; an "
                             "expired deadline returns the best-so-far result "
                             "with status 'degraded' instead of running the "
                             "full sampling budget")
    parser.add_argument("--task", default=None, help="plan a task from this JSON file")
    parser.add_argument("--out", default=None, help="write the result JSON here")
    parser.add_argument("--smooth", action="store_true",
                        help="shortcut-smooth the path after planning")
    parser.add_argument("--render", action="store_true",
                        help="ASCII-render 2D workspaces with the path")
    batch = parser.add_argument_group(
        "batch mode (repro.service worker pool)"
    )
    batch.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="plan N seeded tasks through the service pool")
    batch.add_argument("--workers", type=int, default=2,
                       help="worker processes for --jobs (0 = inline)")
    batch.add_argument("--job-timeout", type=float, default=60.0,
                       help="per-job wall budget in seconds for --jobs")
    batch.add_argument("--duplicate", type=int, default=1,
                       help="submit the --jobs batch N times (cache demo)")
    batch.add_argument("--inject", default=None, metavar="KIND[:INDEX]",
                       help="fault-inject one batch job: hang|crash|error")
    batch.add_argument("--portfolio", default=None, metavar="NAMES",
                       help="race each batch job across a comma-separated "
                            "planner portfolio (connect,rrtstar,wave,"
                            "informed or 'auto'); first feasible answer "
                            "wins, losers are cancelled")
    obs_group = parser.add_argument_group("observability (repro.obs)")
    obs_group.add_argument("--trace", default=None, metavar="PATH",
                           help="record phase spans; write a Chrome trace_event "
                                "JSON here (open in Perfetto)")
    obs_group.add_argument("--metrics", default=None, metavar="PATH",
                           help="record planner metrics; write Prometheus text "
                                "(or JSON if PATH ends in .json) here")
    return parser


def configure_observability(args) -> bool:
    """Enable the global instruments per ``--trace``/``--metrics``."""
    if not (args.trace or args.metrics):
        return False
    from repro import obs

    obs.configure(trace=args.trace is not None, metrics=args.metrics is not None)
    return True


def export_observability(args) -> None:
    """Write the files the observability flags asked for."""
    from repro import obs

    if args.trace:
        obs.get_tracer().export_chrome(args.trace)
        print(f"trace written to {args.trace} (load in Perfetto or "
              f"chrome://tracing; report: python -m repro.obs report "
              f"--trace {args.trace})")
    if args.metrics:
        obs.get_registry().export(args.metrics)
        print(f"metrics written to {args.metrics}")


def run_batch(args) -> int:
    """The ``--jobs N`` path: fan tasks out across the service pool."""
    import json

    from repro.service import PlanningService, build_requests
    from repro.service.pool import PoolConfig

    observing = configure_observability(args)
    requests = build_requests(
        robot=args.robot,
        obstacles=args.obstacles,
        jobs=args.jobs,
        seed=args.seed,
        variant=args.variant,
        samples=args.samples,
        goal_bias=args.goal_bias,
        smooth=args.smooth,
        timeout_s=args.job_timeout,
        duplicate=args.duplicate,
        inject=args.inject,
        trace=observing,
        deadline_s=args.deadline,
        mode=args.mode,
        portfolio=(
            tuple(name.strip() for name in args.portfolio.split(",") if name.strip())
            if args.portfolio else None
        ),
    )
    pool_config = None
    if args.workers > 0:
        pool_config = PoolConfig(
            num_workers=args.workers, default_timeout_s=args.job_timeout
        )
    with PlanningService(
        num_workers=args.workers, pool_config=pool_config
    ) as service:
        responses = service.run_batch(requests)
        summary = service.summary()
    for response in responses:
        cost = "-" if response.path_cost is None else f"{response.path_cost:.2f}"
        tag = " cache" if response.cache_hit else ""
        if response.race:
            tag += (f" race[{'+'.join(response.race['planners'])}] "
                    f"winner={response.race['winner']} "
                    f"cancelled={response.race['cancelled']}")
        print(f"{response.request_id}: {response.status} "
              f"success={response.success} cost={cost}{tag}")
    print(json.dumps(summary, indent=2))
    if args.out is not None:
        import pathlib

        summary["responses"] = [r.to_dict(include_path=False) for r in responses]
        pathlib.Path(args.out).write_text(json.dumps(summary, indent=2))
        print(f"telemetry written to {args.out}")
    if observing:
        export_observability(args)
    return 0 if all(r.status in ("ok", "degraded") for r in responses) else 1


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.jobs is not None:
        return run_batch(args)

    if args.task is not None:
        from repro.io import load_task

        task = load_task(args.task)
    else:
        from repro.workloads import random_task

        task = random_task(args.robot, args.obstacles, seed=args.seed)

    observing = configure_observability(args)
    robot = get_robot(task.robot_name)
    config = config_for_variant(
        args.variant,
        max_samples=args.samples,
        seed=args.seed,
        goal_bias=args.goal_bias,
        kernels=args.kernels,
        wave_width=args.wave,
        deadline_s=args.deadline,
        mode=args.mode,
    )
    planner = make_planner(robot, task, config)
    result = planner.plan()
    if observing:
        export_observability(args)
    print(f"robot={robot.label} obstacles={task.environment.num_obstacles} "
          f"variant={args.variant} samples={args.samples}"
          + (f" wave={args.wave}" if args.wave > 1 else ""))
    print(result.summary())
    if result.degraded:
        gap = result.best_goal_distance
        print(f"degraded: {result.degraded_reason} expired after "
              f"{result.iterations}/{args.samples} samples"
              + (f", {gap:.2f} from goal" if gap is not None else ""))
    if args.wave > 1:
        occupancy = result.brief().get("wave_occupancy")
        caches = planner.cache_stats()
        rates = " ".join(
            f"{name}:{stats['hits']}/{stats['hits'] + stats['misses']}"
            for name, stats in sorted(caches.items())
        )
        print(f"wave: width={args.wave} occupancy="
              f"{occupancy if occupancy is None else round(occupancy, 3)}"
              + (f" cache-hits {rates}" if rates else ""))

    if args.smooth and result.success:
        from repro.core.collision import BruteOBBChecker
        from repro.core.smoothing import shortcut_smooth

        checker = BruteOBBChecker(
            robot, task.environment, motion_resolution=robot.step_size / 4.0
        )
        smoothed, cost = shortcut_smooth(result.path, checker, iterations=150,
                                         seed=args.seed)
        print(f"smoothed: cost {result.path_cost:.2f} -> {cost:.2f} "
              f"({len(result.path)} -> {len(smoothed)} waypoints)")
        result.path = smoothed
        result.path_cost = cost

    if args.render and task.environment.workspace_dim == 2:
        from repro.analysis.render import render_environment

        print(render_environment(task.environment,
                                 path=result.path if result.success else None))

    if args.out is not None:
        from repro.io import save_result

        save_result(result, args.out)
        print(f"result written to {args.out}")

    return 0 if result.success else 1


if __name__ == "__main__":
    sys.exit(main())
