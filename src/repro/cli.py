"""Command-line interface: plan a task end to end from the shell.

Usage::

    python -m repro.cli --robot viperx300 --obstacles 16 --samples 600
    python -m repro.cli --robot mobile2d --variant baseline --render
    python -m repro.cli --task task.json --out result.json

Plans one task (randomly generated from a seed, or loaded from JSON),
prints the outcome, optionally smooths / time-parameterizes the path,
renders 2D workspaces as ASCII, and archives the result as JSON.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.core.config import PlannerConfig
from repro.core.moped import VARIANTS, config_for_variant
from repro.core.robots import ROBOT_FACTORIES, get_robot
from repro.core.rrtstar import RRTStarPlanner


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--robot", default="mobile2d", choices=sorted(ROBOT_FACTORIES),
                        help="robot model (ignored with --task)")
    parser.add_argument("--obstacles", type=int, default=16,
                        help="obstacle count for the generated environment")
    parser.add_argument("--seed", type=int, default=0, help="workload + planner seed")
    parser.add_argument("--samples", type=int, default=500, help="sampling budget")
    parser.add_argument("--variant", default="full", choices=VARIANTS,
                        help="MOPED ablation variant or 'baseline'")
    parser.add_argument("--goal-bias", type=float, default=0.1)
    parser.add_argument("--task", default=None, help="plan a task from this JSON file")
    parser.add_argument("--out", default=None, help="write the result JSON here")
    parser.add_argument("--smooth", action="store_true",
                        help="shortcut-smooth the path after planning")
    parser.add_argument("--render", action="store_true",
                        help="ASCII-render 2D workspaces with the path")
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.task is not None:
        from repro.io import load_task

        task = load_task(args.task)
    else:
        from repro.workloads import random_task

        task = random_task(args.robot, args.obstacles, seed=args.seed)

    robot = get_robot(task.robot_name)
    config = config_for_variant(
        args.variant,
        max_samples=args.samples,
        seed=args.seed,
        goal_bias=args.goal_bias,
    )
    result = RRTStarPlanner(robot, task, config).plan()
    print(f"robot={robot.label} obstacles={task.environment.num_obstacles} "
          f"variant={args.variant} samples={args.samples}")
    print(result.summary())

    if args.smooth and result.success:
        from repro.core.collision import BruteOBBChecker
        from repro.core.smoothing import shortcut_smooth

        checker = BruteOBBChecker(
            robot, task.environment, motion_resolution=robot.step_size / 4.0
        )
        smoothed, cost = shortcut_smooth(result.path, checker, iterations=150,
                                         seed=args.seed)
        print(f"smoothed: cost {result.path_cost:.2f} -> {cost:.2f} "
              f"({len(result.path)} -> {len(smoothed)} waypoints)")
        result.path = smoothed
        result.path_cost = cost

    if args.render and task.environment.workspace_dim == 2:
        from repro.analysis.render import render_environment

        print(render_environment(task.environment,
                                 path=result.path if result.success else None))

    if args.out is not None:
        from repro.io import save_result

        save_result(result, args.out)
        print(f"result written to {args.out}")

    return 0 if result.success else 1


if __name__ == "__main__":
    sys.exit(main())
