"""Replanning in dynamic environments.

A simple execute-and-replan loop over a :class:`~repro.workloads.dynamic.DynamicScenario`:
at every epoch the robot snapshots the moving obstacles, (re)plans from its
current configuration, executes a bounded portion of the path, and repeats.
This is the deployment pattern Section VI argues MOPED suits: per-epoch
environment preparation is just an STR bulk load of the obstacle AABBs,
instead of re-rasterising a multi-megabyte occupancy grid (CODAcc) or hours
of offline collision precomputation (MICRO'16).

:func:`environment_prep_macs` quantifies that per-epoch preparation cost
for the three approaches in the same MAC-equivalent currency as everything
else.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.config import PlannerConfig, moped_config
from repro.core.metrics import PlanResult
from repro.core.robots import RobotModel
from repro.core.rrtstar import RRTStarPlanner
from repro.core.world import Environment, PlanningTask


def environment_prep_macs(environment: Environment, method: str) -> float:
    """Per-epoch environment-preparation cost in MAC-equivalents.

    * ``"rtree"`` (MOPED): STR bulk load — sort the n obstacle AABBs
      (n log2 n comparisons) plus one 2d-word MBR reduction per node.
    * ``"grid"`` (CODAcc): re-rasterise every obstacle — ~3 MACs per voxel
      covered by an obstacle's AABB at 1-unit resolution.
    * ``"precomputed"`` (MICRO'16): re-run the offline collision check for a
      representative precomputed roadmap (100k edges x 16 poses per edge)
      against every obstacle.
    """
    n = environment.num_obstacles
    dim = environment.workspace_dim
    if method == "rtree":
        if n == 0:
            return 0.0
        sort_cost = n * max(1.0, math.log2(n)) * dim
        mbr_cost = 2.0 * dim * max(1, math.ceil(n / 8)) * 2
        return sort_cost + mbr_cost
    if method == "grid":
        voxels = 0.0
        for box in environment.obstacle_aabbs:
            voxels += float(np.prod(np.maximum(box.extents, 1.0)))
        return 3.0 * voxels
    if method == "precomputed":
        edges, poses = 100_000.0, 16.0
        sat_cost = 150.0 if dim == 3 else 24.0
        return edges * poses * n * sat_cost
    raise KeyError(f"unknown prep method {method!r}; use rtree/grid/precomputed")


@dataclass
class ReplanEpoch:
    """Telemetry for one plan-execute cycle."""

    time: float
    plan: PlanResult
    executed_to: np.ndarray
    prep_macs: float


@dataclass
class ReplanOutcome:
    """Result of a full replanning session."""

    reached_goal: bool
    epochs: List[ReplanEpoch] = field(default_factory=list)

    @property
    def total_plan_macs(self) -> float:
        return sum(e.plan.total_macs for e in self.epochs)

    @property
    def total_prep_macs(self) -> float:
        return sum(e.prep_macs for e in self.epochs)


class ReplanningSession:
    """Execute-and-replan against a dynamic scenario.

    Args:
        robot: the robot model.
        scenario: the moving-obstacle world.
        config: planner configuration per epoch (default: full MOPED with a
            small budget, since each epoch only needs a local plan).
        epoch_duration: simulated time between snapshots.
        execute_distance: how much C-space path is executed per epoch.
        prep_method: which environment-preparation cost to charge.
    """

    def __init__(
        self,
        robot: RobotModel,
        scenario,
        config: Optional[PlannerConfig] = None,
        epoch_duration: float = 1.0,
        execute_distance: Optional[float] = None,
        prep_method: str = "rtree",
    ):
        if epoch_duration <= 0:
            raise ValueError("epoch_duration must be positive")
        self.robot = robot
        self.scenario = scenario
        self.config = config if config is not None else moped_config(
            "v4", max_samples=250, goal_bias=0.2
        )
        self.epoch_duration = epoch_duration
        self.execute_distance = (
            execute_distance if execute_distance is not None else 3.0 * robot.step_size
        )
        self.prep_method = prep_method

    def run(self, start: np.ndarray, goal: np.ndarray, max_epochs: int = 10) -> ReplanOutcome:
        """Drive the robot from ``start`` toward ``goal``."""
        if max_epochs < 1:
            raise ValueError("max_epochs must be >= 1")
        current = np.asarray(start, dtype=float).copy()
        goal = np.asarray(goal, dtype=float)
        goal_tolerance = self.config.resolved_goal_tolerance(self.robot.step_size)
        outcome = ReplanOutcome(reached_goal=False)
        for epoch in range(max_epochs):
            t = epoch * self.epoch_duration
            environment = self.scenario.environment_at(t)
            prep = environment_prep_macs(environment, self.prep_method)
            task = PlanningTask(self.robot.name, environment, current, goal, task_id=epoch)
            plan = RRTStarPlanner(self.robot, task, self.config).plan()
            if plan.success:
                current = self._execute(plan.path)
            outcome.epochs.append(
                ReplanEpoch(time=t, plan=plan, executed_to=current.copy(), prep_macs=prep)
            )
            if float(np.linalg.norm(current - goal)) <= goal_tolerance:
                outcome.reached_goal = True
                break
        return outcome

    def _execute(self, path: List[np.ndarray]) -> np.ndarray:
        """Advance along ``path`` by at most ``execute_distance``."""
        remaining = self.execute_distance
        position = path[0].copy()
        for waypoint in path[1:]:
            segment = float(np.linalg.norm(waypoint - position))
            if segment <= remaining:
                position = waypoint.copy()
                remaining -= segment
            else:
                position = position + (remaining / segment) * (waypoint - position)
                break
        return position
