"""Fixed-point quantization: validating the paper's 16-bit data layout.

Section IV-A stores *every* spatial value — EXP-tree node coordinates,
SI-MBR MBRs, obstacle centres/halfwidths/rotation entries — as 16-bit
words.  That is a design decision with a precision consequence: the
hardware plans on a 2^16-level grid over each value's range, not on
float64.  This module provides the quantization model so the choice can be
validated (and stress-tested at narrower widths):

* :func:`quantize_values` snaps floats to a ``bits``-wide uniform grid
  over a given range — the exact rounding a 16-bit SRAM word implies;
* :func:`quantize_obb` / :func:`quantize_environment` apply it to the
  obstacle records (coordinates over the workspace range, rotation matrix
  entries over [-1, 1]);
* :func:`quantize_task` quantizes a whole planning problem;
* :class:`QuantizingSampler` wraps any sampler so drawn configurations
  land on the grid, as the LFSR bank's 16-bit outputs do.

The accompanying benchmark (``benchmarks/test_quantization.py``) shows
16 bits is quality-neutral across the evaluation robots while 8 bits
visibly degrades — the quantitative backing for the paper's word width.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.world import Environment, PlanningTask
from repro.geometry.obb import OBB


def quantize_values(
    values: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    bits: int = 16,
) -> np.ndarray:
    """Snap ``values`` to the ``bits``-wide uniform grid over ``[lo, hi]``.

    Values are clipped into the range first (the hardware cannot represent
    anything outside it).
    """
    if bits < 2 or bits > 32:
        raise ValueError("bits must be in [2, 32]")
    values = np.asarray(values, dtype=float)
    lo = np.broadcast_to(np.asarray(lo, dtype=float), values.shape)
    hi = np.broadcast_to(np.asarray(hi, dtype=float), values.shape)
    if np.any(lo >= hi):
        raise ValueError("lo must be < hi")
    levels = (1 << bits) - 1
    clipped = np.clip(values, lo, hi)
    codes = np.round((clipped - lo) / (hi - lo) * levels)
    return lo + codes / levels * (hi - lo)


def quantize_obb(obb: OBB, size: float, bits: int = 16) -> OBB:
    """Quantize an obstacle record per the Section IV-A layout.

    Centre and halfwidths use the workspace range ``[0, size]`` /
    ``[0, size/2]``; rotation entries use ``[-1, 1]``.  The rotation matrix
    is re-orthonormalised after rounding (polar projection) so the record
    stays a valid OBB — mirroring how a fixed-point datapath would treat
    the stored matrix as exact.
    """
    dim = obb.dim
    center = quantize_values(obb.center, np.zeros(dim), np.full(dim, size), bits)
    half = quantize_values(
        obb.half_extents, np.zeros(dim), np.full(dim, size / 2.0), bits
    )
    rot = quantize_values(obb.rotation, -np.ones((dim, dim)), np.ones((dim, dim)), bits)
    u, _, vt = np.linalg.svd(rot)
    rot = u @ vt
    if np.linalg.det(rot) < 0:
        u[:, -1] = -u[:, -1]
        rot = u @ vt
    return OBB(center, half, rot)


def quantize_environment(environment: Environment, bits: int = 16) -> Environment:
    """Quantize every obstacle record of an environment."""
    return Environment(
        environment.workspace_dim,
        environment.size,
        [quantize_obb(o, environment.size, bits) for o in environment.obstacles],
    )


def quantize_config(
    config: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    bits: int = 16,
) -> np.ndarray:
    """Quantize a configuration over the robot's C-space bounds."""
    return quantize_values(config, lo, hi, bits)


def quantize_task(task: PlanningTask, robot, bits: int = 16) -> PlanningTask:
    """Quantize a whole planning problem (environment + start + goal)."""
    return PlanningTask(
        robot_name=task.robot_name,
        environment=quantize_environment(task.environment, bits),
        start=quantize_config(task.start, robot.config_lo, robot.config_hi, bits),
        goal=quantize_config(task.goal, robot.config_lo, robot.config_hi, bits),
        task_id=task.task_id,
    )


class QuantizingSampler:
    """Wrap a sampler so every draw lands on the fixed-point grid."""

    def __init__(self, base, bits: int = 16):
        if bits < 2 or bits > 32:
            raise ValueError("bits must be in [2, 32]")
        self.base = base
        self.bits = bits
        self.lo = base.lo
        self.hi = base.hi
        self.dim = base.dim

    def sample(self, counter=None) -> np.ndarray:
        return quantize_values(self.base.sample(counter=counter), self.lo, self.hi, self.bits)

    def sample_biased(self, goal, bias, counter=None) -> np.ndarray:
        draw = self.base.sample_biased(goal, bias, counter=counter)
        return quantize_values(draw, self.lo, self.hi, self.bits)


def quantization_step(lo: float, hi: float, bits: int = 16) -> float:
    """The grid resolution one word of ``bits`` provides over ``[lo, hi]``.

    For the paper's 300-unit workspace at 16 bits: ~0.0046 units — far
    below any obstacle or robot dimension, which is why 16 bits suffices.
    """
    return (hi - lo) / ((1 << bits) - 1)
