"""Batch (spatially parallel) RRT\\*: the [39]/[47] composition point.

Section VI distinguishes MOPED's *temporal* parallelism (overlapping
consecutive samplings on one engine via speculate-and-repair) from the
*spatial* parallelism of prior work (multiple samples processed by
parallel threads/lanes per round) and argues the two compose.  This module
implements the spatial side so the claim is measurable:

:class:`BatchRRTStarPlanner` processes ``batch_size`` samples per round.
Like parallel threads sharing the exploration tree, every lane's
nearest-neighbor search reads the tree *snapshot from the round start* —
nodes inserted by sibling lanes in the same round are invisible (stale
reads).  Stale nearest neighbors are still valid tree nodes, so the planner
remains correct; the cost is mild redundancy, which is exactly the
behaviour of lock-free parallel RRT\\* implementations.

A ``batch_size``-lane engine then executes each round's lanes concurrently;
:func:`multilane_latency_cycles` models that by scaling the unit capacities,
so benchmarks can combine lane-parallelism with the S&R schedule.
"""

from __future__ import annotations

from typing import List, Optional, Set

import numpy as np

from repro.core.config import PlannerConfig
from repro.core.counters import OpCounter
from repro.core.metrics import PlanResult, RoundRecord
from repro.core.robots import RobotModel
from repro.core.rrtstar import RRTStarPlanner
from repro.core.world import PlanningTask
from repro.hardware.params import MopedHardwareParams
from repro.hardware.pipeline import PipelineReport, snr_latency_cycles


class BatchRRTStarPlanner(RRTStarPlanner):
    """RRT\\* processing ``batch_size`` samples per round with stale reads."""

    def __init__(
        self,
        robot: RobotModel,
        task: PlanningTask,
        config: PlannerConfig,
        batch_size: int = 4,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        super().__init__(robot, task, config)
        self.batch_size = batch_size

    def plan(self) -> PlanResult:
        """Run the batched sampling loop."""
        config, robot, task = self.config, self.robot, self.task
        dim = robot.dof
        counter = OpCounter()
        from repro.core.tree import ExpTree

        tree = ExpTree(task.start)
        self.strategy.insert(tree.root, task.start, counter=counter)
        self.tree = tree
        self._neighborhood_macs = 0.0

        goal_nodes: List[int] = []
        first_solution: Optional[int] = None
        rounds: List[RoundRecord] = []
        samples_drawn = 0

        while samples_drawn < config.max_samples:
            snapshot = counter.snapshot()
            lanes = min(self.batch_size, config.max_samples - samples_drawn)
            inserted_this_round: Set[int] = set()
            accepted_any = False
            for _ in range(lanes):
                samples_drawn += 1
                x_rand = self.sampler.sample_biased(
                    task.goal, config.goal_bias, counter=counter
                )
                # Stale read: sibling-lane insertions are invisible.
                found = self.strategy.nearest(
                    x_rand, counter=counter,
                    exclude=inserted_this_round or None,
                )
                nearest_key, nearest_point, nearest_dist = found
                if nearest_dist <= 1e-12:
                    continue
                counter.record("steer", dim=dim)
                x_new = self._steer(nearest_point, x_rand, nearest_dist)
                if self.checker.motion_in_collision(
                    nearest_point, x_new, counter=counter
                ):
                    continue
                node_id = self._extend(tree, x_new, nearest_key, nearest_point, counter)
                inserted_this_round.add(node_id)
                accepted_any = True
                if float(np.linalg.norm(x_new - task.goal)) <= self.goal_tolerance:
                    goal_nodes.append(node_id)
                    if first_solution is None:
                        first_solution = samples_drawn - 1
            rounds.append(
                self._round_record(counter.diff(snapshot), accepted_any, 0, False)
            )
            if config.stop_on_goal and first_solution is not None:
                break

        return self._result(tree, goal_nodes, first_solution, counter, rounds, len(rounds))


def multilane_latency_cycles(
    rounds: List[RoundRecord],
    params: Optional[MopedHardwareParams] = None,
    lanes: int = 4,
    use_snr: bool = True,
) -> PipelineReport:
    """Latency of a ``lanes``-wide engine executing batched round records.

    Each round record aggregates the work of ``lanes`` concurrent lanes, so
    a ``lanes``-replicated engine provides ``lanes`` times the unit MACs per
    round.  ``use_snr=False`` serialises consecutive rounds (spatial
    parallelism only); with S&R the two parallelism levels compose.
    """
    if lanes < 1:
        raise ValueError("lanes must be >= 1")
    params = params if params is not None else MopedHardwareParams()
    scaled = MopedHardwareParams(
        num_macs=params.num_macs * lanes,
        sram_kbytes=params.sram_kbytes * lanes,
        area_mm2=params.area_mm2 * lanes,
        power_w=params.power_w * lanes,
        ns_unit_macs=params.ns_unit_macs * lanes,
        cc_unit_macs=params.cc_unit_macs * lanes,
        refine_unit_macs=params.refine_unit_macs * lanes,
        tree_op_macs=params.tree_op_macs * lanes,
        fifo_depth=params.fifo_depth,
        missing_buffer_entries=params.missing_buffer_entries,
    )
    report = snr_latency_cycles(rounds, scaled)
    if use_snr:
        return report
    return PipelineReport(
        serial_cycles=report.serial_cycles,
        snr_cycles=report.serial_cycles,
        max_fifo_occupancy=0,
        max_missing_neighbors=0,
        fifo_stall_cycles=0.0,
        repair_cycles=0.0,
    )
