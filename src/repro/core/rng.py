"""Configuration-space samplers.

The MOPED hardware samples with a bank of linear-feedback shift registers
(LFSRs), one per configuration dimension (Section IV-A, Fig 11).  We expose
two interchangeable samplers:

* :class:`LFSRSampler` — bit-exact model of a 16-bit Fibonacci LFSR bank,
  matching what the Tree Extension Module's RNG produces; and
* :class:`NumpySampler` — a numpy PCG64 sampler for software-only runs.

Both draw points uniformly inside the configuration-space bounds and can be
asked for goal-biased samples, the standard RRT\\* practical refinement of
occasionally sampling the goal configuration to pull the tree toward it.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

# Taps for a maximal-length 16-bit Fibonacci LFSR: x^16 + x^14 + x^13 + x^11 + 1.
_LFSR16_TAPS = (15, 13, 12, 10)
_LFSR16_PERIOD = (1 << 16) - 1


class LFSR16:
    """A 16-bit maximal-length Fibonacci LFSR (period 65535)."""

    def __init__(self, seed: int = 0xACE1):
        seed &= 0xFFFF
        if seed == 0:
            raise ValueError("LFSR seed must be non-zero")
        self.state = seed

    def next_word(self) -> int:
        """Advance 16 steps and return the 16-bit state word."""
        state = self.state
        for _ in range(16):
            bit = 0
            for tap in _LFSR16_TAPS:
                bit ^= (state >> tap) & 1
            state = ((state << 1) | bit) & 0xFFFF
        self.state = state
        return state

    def next_unit(self) -> float:
        """A draw in [0, 1) with 16-bit resolution."""
        return self.next_word() / 65536.0


class LFSRSampler:
    """Bank of per-dimension LFSRs sampling a box in configuration space.

    Args:
        lo: per-dimension lower bounds.
        hi: per-dimension upper bounds.
        seed: integer seed; each dimension's LFSR is seeded differently so
            the bank does not produce correlated coordinates.
    """

    def __init__(self, lo: Sequence[float], hi: Sequence[float], seed: int = 1):
        self.lo = np.asarray(lo, dtype=float)
        self.hi = np.asarray(hi, dtype=float)
        if self.lo.shape != self.hi.shape or self.lo.ndim != 1:
            raise ValueError("bounds must be matching 1-D arrays")
        if np.any(self.lo >= self.hi):
            raise ValueError("lo must be < hi in every dimension")
        self.dim = self.lo.shape[0]
        self._lfsrs = [
            LFSR16(seed=((seed * 2654435761 + 0x9E37 * (i + 1)) & 0xFFFF) or 0xACE1)
            for i in range(self.dim)
        ]

    def sample(self, counter=None) -> np.ndarray:
        """Draw one uniform configuration; records one ``sample`` event."""
        if counter is not None:
            counter.record("sample", dim=self.dim)
        units = np.array([lfsr.next_unit() for lfsr in self._lfsrs])
        return self.lo + units * (self.hi - self.lo)

    def sample_biased(self, goal: np.ndarray, bias: float, counter=None) -> np.ndarray:
        """Draw a configuration, returning ``goal`` with probability ``bias``.

        The bias coin also comes from the LFSR bank (dimension 0) so the
        whole sampler stays deterministic for a given seed.
        """
        if not 0.0 <= bias < 1.0:
            raise ValueError("bias must be in [0, 1)")
        coin = self._lfsrs[0].next_unit()
        if coin < bias:
            if counter is not None:
                counter.record("sample", dim=self.dim)
            return np.asarray(goal, dtype=float).copy()
        return self.sample(counter=counter)


class NumpySampler:
    """PCG64-backed sampler with the same interface as :class:`LFSRSampler`."""

    def __init__(self, lo: Sequence[float], hi: Sequence[float], seed: Optional[int] = None):
        self.lo = np.asarray(lo, dtype=float)
        self.hi = np.asarray(hi, dtype=float)
        if self.lo.shape != self.hi.shape or self.lo.ndim != 1:
            raise ValueError("bounds must be matching 1-D arrays")
        if np.any(self.lo >= self.hi):
            raise ValueError("lo must be < hi in every dimension")
        self.dim = self.lo.shape[0]
        self._rng = np.random.default_rng(seed)

    def sample(self, counter=None) -> np.ndarray:
        """Draw one uniform configuration; records one ``sample`` event."""
        if counter is not None:
            counter.record("sample", dim=self.dim)
        return self._rng.uniform(self.lo, self.hi)

    def sample_biased(self, goal: np.ndarray, bias: float, counter=None) -> np.ndarray:
        """Draw a configuration, returning ``goal`` with probability ``bias``."""
        if not 0.0 <= bias < 1.0:
            raise ValueError("bias must be in [0, 1)")
        if self._rng.random() < bias:
            if counter is not None:
                counter.record("sample", dim=self.dim)
            return np.asarray(goal, dtype=float).copy()
        return self.sample(counter=counter)
