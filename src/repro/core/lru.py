"""Value-storing LRU map with hit/miss/eviction accounting.

The software analogue of the hardware caching levels of Section IV-C
(:class:`repro.hardware.memory.LRUCache` models *presence* for the energy
accounting; this map additionally stores a payload so the planner can reuse
computed results).  Two engine-level caches are built on it:

* the collision-result cache of :mod:`repro.core.collision` — quantized
  configurations map to their (verdict, counter events) so repeated
  configurations skip forward kinematics and the SAT kernels entirely;
* the reused-neighborhood cache of :mod:`repro.spatial.simbr` — a leaf's
  entry list is handed back without touching the tree when the leaf is
  unchanged since it was last read.

Counts are exported through ``repro_cache_events_total`` by the call sites,
which is how cache hit rates reach ``python -m repro.obs report``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional


class LRUMap:
    """Least-recently-used key/value store with bounded capacity.

    ``get`` counts a hit (and refreshes recency) or a miss; ``put`` inserts
    or refreshes, evicting the least recently used entry when the map is
    over capacity.  ``None`` is not a storable value — ``get`` uses it as
    the miss sentinel.
    """

    __slots__ = ("capacity", "_entries", "hits", "misses", "evictions")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[Any]:
        """Stored value for ``key`` (refreshing recency), or None on miss."""
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``; evicts the LRU entry when over capacity."""
        if value is None:
            raise ValueError("LRUMap cannot store None (reserved as miss sentinel)")
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def stats(self) -> Dict[str, float]:
        """Plain-data counters for telemetry and benchmark reports."""
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def clear(self) -> None:
        """Drop all entries (statistics are kept)."""
        self._entries.clear()
