"""Planner results and round-level telemetry.

Besides the usual planning outputs (success, path, path cost), every planner
run records a :class:`RoundRecord` per sampling round with the MAC load each
hardware unit would carry that round.  The hardware pipeline model
(:mod:`repro.hardware.pipeline`) replays these records to compute serialized
vs speculate-and-repair latencies (Section IV-B), and the missing-neighbor
telemetry sizes the FIFO / Missing Neighbors Buffer (0.75 KB claim).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.counters import OpCounter


@dataclass(frozen=True)
class RoundRecord:
    """Per-sampling-round unit loads in MAC-equivalents.

    Attributes:
        ns_macs: neighbor-search component load (dist/MINDIST/KD ops).
        cc_macs: collision-checker load (SAT/grid ops).
        maint_macs: SI-MBR-Tree operator load (insertion, splits, MBR).
        other_macs: sampling, steering, cost updates, buffer traffic.
        accepted: whether the round inserted a node into the EXP-tree.
        missing_used: entries read from the missing-neighbors buffer during
            the repair step (speculative mode only).
        repaired: whether the repair step changed the speculated nearest
            neighbor.
        wave_width: width of the wave this round was committed in (1 for
            the scalar loop).
        repaired_in_wave: the round's speculative wave result was discarded
            at commit time (an intra-wave conflict forced a scalar redo) —
            the wave-lane equivalent of a pipeline bubble.
    """

    ns_macs: float
    cc_macs: float
    maint_macs: float
    other_macs: float
    accepted: bool
    missing_used: int = 0
    repaired: bool = False
    #: Per-kind event counts of the round (one SAT check, one MINDIST, ...);
    #: consumed by the memory bank-conflict model (Section IV-C).
    events: Optional[Dict[str, int]] = None
    wave_width: int = 1
    repaired_in_wave: bool = False

    @property
    def total_macs(self) -> float:
        return self.ns_macs + self.cc_macs + self.maint_macs + self.other_macs

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe archival form; inverse of :meth:`from_dict`."""
        return {
            "ns_macs": self.ns_macs,
            "cc_macs": self.cc_macs,
            "maint_macs": self.maint_macs,
            "other_macs": self.other_macs,
            "accepted": self.accepted,
            "missing_used": self.missing_used,
            "repaired": self.repaired,
            "events": dict(self.events) if self.events is not None else None,
            "wave_width": self.wave_width,
            "repaired_in_wave": self.repaired_in_wave,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RoundRecord":
        """Rebuild a record saved by :meth:`to_dict`."""
        events = data.get("events")
        return cls(
            ns_macs=float(data["ns_macs"]),
            cc_macs=float(data["cc_macs"]),
            maint_macs=float(data["maint_macs"]),
            other_macs=float(data["other_macs"]),
            accepted=bool(data["accepted"]),
            missing_used=int(data.get("missing_used", 0)),
            repaired=bool(data.get("repaired", False)),
            events=dict(events) if events is not None else None,
            wave_width=int(data.get("wave_width", 1)),
            repaired_in_wave=bool(data.get("repaired_in_wave", False)),
        )


def wave_occupancy(rounds: List["RoundRecord"]) -> Optional[float]:
    """Fraction of wave-committed rounds whose speculation was usable.

    Rounds with ``wave_width > 1`` are the wave lanes; a lane counts as
    occupied when its speculative result survived to commit
    (``repaired_in_wave`` False).  Returns None when no wave rounds exist
    (scalar runs), keeping the telemetry field JSON-safe.
    """
    wave_rounds = [r for r in rounds if r.wave_width > 1]
    if not wave_rounds:
        return None
    useful = sum(1 for r in wave_rounds if not r.repaired_in_wave)
    return useful / len(wave_rounds)


@dataclass
class PlanResult:
    """Outcome of one planning run."""

    success: bool
    path: List[np.ndarray]
    path_cost: float
    num_nodes: int
    iterations: int
    counter: OpCounter
    rounds: List[RoundRecord] = field(default_factory=list)
    goal_node: Optional[int] = None
    first_solution_iteration: Optional[int] = None
    #: MACs spent in the second (neighborhood) search of each round — the
    #: operation SIAS eliminates (Fig 8 right measures exactly this).
    neighborhood_macs: float = 0.0
    #: Anytime-convergence telemetry: (iteration, best path cost) pairs
    #: recorded whenever the best known solution improved.  The Tree
    #: Refinement stage keeps improving the solution after it is first
    #: found — the error-tolerance argument of Section III-B.
    cost_history: List[tuple] = field(default_factory=list)
    #: ``"complete"`` when the full sampling budget ran; ``"degraded"``
    #: when a deadline or op budget expired first and the result is the
    #: best found so far (anytime planning).
    status: str = "complete"
    #: Why the run degraded (``"deadline"`` / ``"op_budget"``), or None.
    degraded_reason: Optional[str] = None
    #: C-space distance from the path's final waypoint to the goal: 0.0
    #: for solved runs, the remaining gap for a degraded prefix path, and
    #: None when no path at all was produced.
    best_goal_distance: Optional[float] = None

    @property
    def degraded(self) -> bool:
        return self.status == "degraded"

    @property
    def total_macs(self) -> float:
        """Total MAC-equivalents the run consumed."""
        return self.counter.total_macs()

    def brief(self) -> Dict[str, object]:
        """Plain-data outcome summary (no arrays, no counter object).

        The transport-friendly core of the result: everything scalar a
        service or log line needs, with non-finite costs mapped to None so
        the dict is JSON-safe.  Paths and round records are deliberately
        excluded — use :func:`repro.io.result_to_dict` for full archival.
        """
        cost = float(self.path_cost)
        return {
            "success": self.success,
            "path_cost": cost if np.isfinite(cost) else None,
            "num_nodes": self.num_nodes,
            "iterations": self.iterations,
            "first_solution_iteration": self.first_solution_iteration,
            "total_macs": self.total_macs,
            "wave_occupancy": wave_occupancy(self.rounds),
            "status": self.status,
            "degraded_reason": self.degraded_reason,
            "best_goal_distance": self.best_goal_distance,
        }

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "success" if self.success else "failure"
        if self.degraded:
            status += f" (degraded: {self.degraded_reason})"
        return (
            f"{status}: cost={self.path_cost:.2f} nodes={self.num_nodes} "
            f"iters={self.iterations} macs={self.total_macs:.3g}"
        )


def path_length(path: List[np.ndarray]) -> float:
    """Total C-space length of a waypoint path."""
    if len(path) < 2:
        return 0.0
    return float(
        sum(np.linalg.norm(b - a) for a, b in zip(path[:-1], path[1:]))
    )
