"""Planner portfolio racing: entries, task signatures, and win statistics.

OMPL 2.0 popularised racing a *portfolio* of planners on the same problem
and taking the first feasible answer; pRRTC showed bidirectional
RRT-Connect usually wins that race on feasibility queries while RRT\\*
variants win when solution cost matters.  This module defines the shared
vocabulary:

* :data:`PLANNERS` — the named portfolio entries.  Each maps a base
  :class:`~repro.core.config.PlannerConfig` to the member's config (same
  task, same seed, same budgets — only the algorithmic knobs change), so a
  race is a controlled experiment: K planners, identical inputs.
* :func:`task_signature` — the scenario bucket used for win-rate learning
  (``robot/NNobs``): coarse enough to accumulate counts, fine enough that
  "which planner wins" is stable within a bucket.
* :class:`PortfolioStats` — persisted win counters per (signature,
  planner).  ``best()`` is the *learned default*: ``portfolio=("auto",)``
  resolves to the historically best planner for the task's signature.

The racing itself lives in the service layer
(:mod:`repro.service.runner`): members fan out across the worker pool as
ordinary jobs carrying a shared ``race_token``; the first feasible ``ok``
response wins and the supervisor flips the token's bit in a shared-memory
flag so every loser degrades out through the
:mod:`repro.core.cancel` -> deadline path with a terminal ``"cancelled"``
status.  Wins are counted both here (persistable, drives ``"auto"``) and
in the metrics registry as ``repro_portfolio_wins_total{planner,robot}``.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import warnings
from dataclasses import replace
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.core.config import PlannerConfig

#: Wall deadline armed on every race member whose base config has none:
#: the race budget that guarantees losers (and a winnerless race) terminate.
DEFAULT_RACE_DEADLINE_S = 30.0

#: Wave width given to members that benefit from batching when the base
#: config is scalar.
_RACE_WAVE_WIDTH = 8


def _connect(base: PlannerConfig) -> PlannerConfig:
    return replace(
        base, mode="connect", informed=False, speculation_depth=0,
        wave_width=base.wave_width if base.wave_width > 1 else _RACE_WAVE_WIDTH,
    )


def _rrtstar(base: PlannerConfig) -> PlannerConfig:
    return replace(
        base, mode="rrtstar", wave_width=1, speculation_depth=0,
        informed=False, stop_on_goal=True,
    )


def _wave(base: PlannerConfig) -> PlannerConfig:
    return replace(
        base, mode="rrtstar", informed=False, speculation_depth=0,
        wave_width=base.wave_width if base.wave_width > 1 else _RACE_WAVE_WIDTH,
        stop_on_goal=True,
    )


def _informed(base: PlannerConfig) -> PlannerConfig:
    # The cost-refining entry: runs its full budget (no stop_on_goal) and
    # focuses sampling once a first solution exists.  It loses every
    # first-feasible race on purpose — it is the best-cost-within-deadline
    # candidate when the race policy falls back to cost.
    return replace(
        base, mode="rrtstar", wave_width=1, speculation_depth=0,
        informed=True, stop_on_goal=False,
    )


#: Named portfolio entries: name -> base-config transformer.
PLANNERS: Dict[str, Callable[[PlannerConfig], PlannerConfig]] = {
    "connect": _connect,
    "rrtstar": _rrtstar,
    "wave": _wave,
    "informed": _informed,
}

#: The sentinel entry resolved through :class:`PortfolioStats`.
AUTO = "auto"

#: Race composition used when a caller asks for ``("auto",)`` with no
#: history, and the fallback pick for unseen signatures.
DEFAULT_PLANNER = "connect"


def member_config(name: str, base: PlannerConfig) -> PlannerConfig:
    """The config planner ``name`` races with, derived from ``base``.

    Every member keeps the base seed/budgets/checker knobs; a member whose
    base has no wall deadline gets :data:`DEFAULT_RACE_DEADLINE_S` so the
    race always terminates.
    """
    try:
        transform = PLANNERS[name]
    except KeyError:
        raise KeyError(
            f"unknown portfolio planner {name!r}; available: {sorted(PLANNERS)}"
        ) from None
    config = transform(base)
    if config.deadline_s is None:
        config = replace(config, deadline_s=DEFAULT_RACE_DEADLINE_S)
    return config


def task_signature(task) -> str:
    """Scenario bucket for win-rate learning: ``robot/NNobs``."""
    return f"{task.robot_name}/{task.environment.num_obstacles}obs"


class PortfolioStats:
    """Per-signature win counters with optional JSON persistence.

    The file format is versioned and append-free: each :meth:`save`
    rewrites the whole snapshot atomically (same-directory temp file,
    fsync, ``os.replace``), so readers — and a process restarting after
    a crash — always see a consistent snapshot::

        {"schema": 1, "wins": {"rozum/24obs": {"connect": 17, "wave": 3}}}
    """

    SCHEMA = 1

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self.wins: Dict[str, Dict[str, int]] = {}
        if path is not None and pathlib.Path(path).exists():
            self.load(path)

    def record(self, signature: str, planner: str) -> None:
        """Count one race win; persists immediately when a path is set."""
        table = self.wins.setdefault(signature, {})
        table[planner] = table.get(planner, 0) + 1
        if self.path is not None:
            self.save(self.path)

    def best(self, signature: str, default: str = DEFAULT_PLANNER) -> str:
        """The historically winningest planner for ``signature``.

        Deterministic: highest win count, ties broken by planner name, and
        ``default`` for unseen signatures.
        """
        table = self.wins.get(signature)
        if not table:
            return default
        return min(table.items(), key=lambda kv: (-kv[1], kv[0]))[0]

    def to_dict(self) -> Dict:
        return {
            "schema": self.SCHEMA,
            "wins": {sig: dict(table) for sig, table in sorted(self.wins.items())},
        }

    def save(self, path: Optional[str] = None) -> None:
        """Atomically rewrite the stats file (write temp + fsync + rename).

        A crash — even a kill -9 mid-write — leaves either the old file
        or the new one, never a truncated hybrid: the bytes are fsynced
        into a same-directory temp file and swapped in with
        ``os.replace``, which POSIX guarantees is atomic.
        """
        target = path if path is not None else self.path
        if target is None:
            raise ValueError("no path to save portfolio stats to")
        target_path = pathlib.Path(target)
        fd, tmp_name = tempfile.mkstemp(
            prefix=target_path.name + ".", suffix=".tmp",
            dir=str(target_path.parent) or ".",
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(self.to_dict(), indent=2))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def load(self, path: str) -> None:
        """Load a snapshot; a corrupt/truncated file resets to empty.

        Damage (unparseable JSON, or a non-object payload) is survivable
        — the table is *learned* state, so losing it costs a few races of
        re-learning, not correctness — and is reported with a warning
        instead of refusing to start.  A well-formed file with an
        *unsupported schema* still raises ``ValueError``: that is a
        version skew the operator must resolve, not damage to absorb.
        """
        try:
            data = json.loads(pathlib.Path(path).read_text())
        except (json.JSONDecodeError, UnicodeDecodeError):
            warnings.warn(
                f"portfolio stats file {path!r} is corrupt or truncated; "
                f"resetting to empty (win rates will be re-learned)",
                RuntimeWarning,
                stacklevel=2,
            )
            self.wins = {}
            return
        if not isinstance(data, dict):
            warnings.warn(
                f"portfolio stats file {path!r} does not hold an object; "
                f"resetting to empty (win rates will be re-learned)",
                RuntimeWarning,
                stacklevel=2,
            )
            self.wins = {}
            return
        if data.get("schema") != self.SCHEMA:
            raise ValueError(
                f"unsupported portfolio stats schema {data.get('schema')!r}"
            )
        self.wins = {
            str(sig): {str(name): int(count) for name, count in table.items()}
            for sig, table in data.get("wins", {}).items()
        }


def resolve(
    names: Sequence[str],
    signature: str = "",
    stats: Optional[PortfolioStats] = None,
) -> Tuple[str, ...]:
    """Expand ``"auto"`` entries and dedupe, preserving order.

    ``("auto",)`` becomes the learned best planner for ``signature`` (or
    :data:`DEFAULT_PLANNER` with no history); unknown names raise
    ``KeyError``.
    """
    out = []
    for name in names:
        if name == AUTO:
            name = stats.best(signature) if stats is not None else DEFAULT_PLANNER
        if name not in PLANNERS:
            raise KeyError(
                f"unknown portfolio planner {name!r}; available: "
                f"{sorted(PLANNERS)} (or {AUTO!r})"
            )
        if name not in out:
            out.append(name)
    if not out:
        raise ValueError("portfolio resolved to no planners")
    return tuple(out)
