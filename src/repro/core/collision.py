"""Collision checkers: brute OBB, AABB-only, two-stage, and occupancy grid.

Four interchangeable checkers cover the paper's design space:

* :class:`BruteOBBChecker` — the vanilla RRT\\* checker: every body OBB is
  SAT-tested against every obstacle OBB at every interpolated configuration
  of a movement (the Section II-C cost bottleneck).
* :class:`BruteAABBChecker` — obstacles represented by their AABBs and
  checked with the cheaper AABB-OBB SAT.  Conservative: clear means clear,
  but its false positives degrade path quality (Section III-A, Fig 5/18).
* :class:`TwoStageChecker` — MOPED's contribution (Section III-A): an
  R-tree traversal of AABB-OBB checks filters the obstacle set, and only the
  surviving candidates receive the accurate OBB-OBB second stage.  Decisions
  are *identical* to :class:`BruteOBBChecker` (the filter is conservative
  and the second stage exact) at a fraction of the cost.
* :class:`OccupancyGridChecker` — the CODAcc baseline (ISCA'22, ref [4]):
  the workspace is discretised at one unit per cell and a configuration is
  checked by probing the voxels covered by the robot body.  Conservative by
  construction (voxels are outer approximations).

All checkers share one interface: ``config_in_collision`` for a single
configuration and ``motion_in_collision`` for a movement, which walks the
interpolated configurations from the tree side so collisions are found with
the fewest checks.

Whole-edge validation
---------------------

A movement check is the planner's unit of work, and VAMP ("Motions in
Microseconds") shows that validating the *entire* interpolated edge as one
wide batched operation — instead of looping per intermediate configuration
— is where sampling-based planners find their orders of magnitude.  The
checkers therefore expose :meth:`CollisionChecker.motion_results_batch`:
given a batch of edges, the full interpolation ladder of every edge is
built in one vectorized pass (:func:`repro.geometry.motion.
interpolate_edges`), forward kinematics runs once over all ladder rows
(``body_frames_batch``), and the (configs x links x obstacles) SAT grids
are evaluated in a single stacked kernel invocation whose per-edge
early-exit statistics come from segment reductions
(:func:`repro.kernels.batch.segment_first_hit` and friends) — preserving
the start-side first-collision semantics and the exact per-phase
:class:`~repro.core.counters.OpCounter` totals of the scalar reference.
``motion_in_collision`` is the single-edge special case of the same path,
and the wavefront planner feeds a whole wave of speculative edges through
one ``motion_results_batch`` call.

With ``edge_cache_size > 0`` results are additionally memoised per
*edge* (keyed on both endpoint configurations): a cached edge skips
ladder construction, FK, and the kernels entirely, replaying the stored
verdict and counter events — bit-identical to recomputation, like the
per-configuration cache below.

Kernel backends
---------------

Each checker runs on one of two interchangeable backends
(:data:`repro.kernels.KERNEL_BACKENDS`):

* ``"reference"`` — the original scalar code path: one Python-level SAT
  call per (configuration, body, obstacle), early-exiting exactly where the
  hardware would.
* ``"batch"`` (default) — the geometry for a whole movement (every
  interpolated waypoint x every body x every obstacle) is evaluated in a
  few stacked ndarray passes (:mod:`repro.kernels.batch`), and the scalar
  control flow is then *replayed* over the precomputed boolean masks.  The
  replay visits checks in the scalar order and stops at the scalar early
  exits, recording aggregated :class:`~repro.core.counters.OpCounter`
  events — so decisions *and* operation counts are bit-identical to the
  reference backend while the arithmetic runs at ndarray speed.

The occupancy-grid checker's inner loop is already an ndarray pass per
body, so it has no separate batch path.

Collision-result cache
----------------------

With ``cache_size > 0`` every checker keeps a quantized-configuration LRU
(:class:`repro.core.lru.LRUMap`, the software rendition of the Section IV-C
multi-level caching): each configuration's verdict *and* the counter events
its scalar check records are stored under the configuration's key, and a
hit replays the stored events instead of recomputing — so cached runs stay
bit-identical to uncached ones in both decisions and operation counts.
The cache serves the batched :meth:`CollisionChecker.config_results` entry
point (the wavefront planner's per-wave collision call); only cache misses
touch forward kinematics and the SAT kernels (in one batched pass per
call).  ``cache_quantum = 0``
(default) keys on exact float bytes; a positive quantum buckets nearby
configurations together, a documented approximation.  Registry metrics
(``repro_cc_*``, ``repro_cache_events_total``) count *executed* work, while
OpCounters always report the modeled hardware cost — the distinction that
makes the cache observable without perturbing the cost model.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.core.counters import OpCounter
from repro.core.lru import LRUMap
from repro.core.robots import RobotModel
from repro.core.world import Environment
from repro.geometry.motion import interpolate_configs, interpolate_edges
from repro.kernels import KERNEL_BACKENDS, batch as kernels_batch
from repro.kernels.tensors import BodyBatch
from repro.obs import bump, observe
from repro.geometry.obb import OBB
from repro.geometry.sat import aabb_intersects_obb, obb_intersects_obb

#: Ladder-length histogram buckets for ``repro_cc_edge_ladder_steps``:
#: steered planner edges sit in the single digits (resolution = step / 4),
#: rewire-radius edges in the tens, workspace-scale probes beyond.
LADDER_STEP_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0)


class CollisionChecker:
    """Base class wiring a robot model to an environment.

    Args:
        kernels: ``"batch"`` evaluates movement checks through the
            vectorized kernels with exact count replay; ``"reference"``
            keeps the original scalar per-object loops.
        cache_size: capacity of the quantized-configuration collision
            result cache; 0 (default) disables caching.
        cache_quantum: configuration quantisation step for cache keys;
            0.0 keys on exact float bytes (bit-identical planning).
        edge_cache_size: capacity of the whole-edge result cache (keyed on
            both endpoint configurations, quantised with the same
            ``cache_quantum``); 0 (default) disables it.
    """

    #: Subclasses with a vectorized movement check set this True; others
    #: (the grid checker) always run the scalar per-configuration loop.
    _has_batch_kernels = False

    def __init__(
        self,
        robot: RobotModel,
        environment: Environment,
        motion_resolution: float,
        kernels: str = "batch",
        cache_size: int = 0,
        cache_quantum: float = 0.0,
        edge_cache_size: int = 0,
    ):
        if robot.workspace_dim != environment.workspace_dim:
            raise ValueError(
                f"robot workspace dim {robot.workspace_dim} != "
                f"environment dim {environment.workspace_dim}"
            )
        if motion_resolution <= 0:
            raise ValueError("motion_resolution must be positive")
        if kernels not in KERNEL_BACKENDS:
            raise ValueError(
                f"unknown kernel backend {kernels!r}; available: {KERNEL_BACKENDS}"
            )
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if cache_quantum < 0:
            raise ValueError("cache_quantum must be >= 0")
        if edge_cache_size < 0:
            raise ValueError("edge_cache_size must be >= 0")
        self.robot = robot
        self.environment = environment
        self.motion_resolution = motion_resolution
        self.kernels = kernels
        self._config_cache = LRUMap(cache_size) if cache_size > 0 else None
        self._edge_cache = LRUMap(edge_cache_size) if edge_cache_size > 0 else None
        self._cache_quantum = cache_quantum
        # ``edge.validate`` fault hook: bound once (checkers are built per
        # plan, after any injector install) and refreshed by the planner at
        # plan() time; None in the steady state, one is-None check per edge.
        from repro.faults import get_injector

        self._injector = get_injector()

    @property
    def config_cache(self) -> Optional[LRUMap]:
        """The collision-result cache (None when caching is disabled)."""
        return self._config_cache

    @property
    def edge_cache(self) -> Optional[LRUMap]:
        """The whole-edge result cache (None when disabled)."""
        return self._edge_cache

    def config_in_collision(self, config: np.ndarray, counter=None) -> bool:
        """True when the robot at ``config`` intersects any obstacle."""
        config = np.asarray(config, dtype=float)
        return self._check_configs(config[None, :], counter)

    def motion_in_collision(self, start: np.ndarray, end: np.ndarray, counter=None) -> bool:
        """True when the movement from ``start`` to ``end`` hits an obstacle.

        The straight C-space segment is discretised at ``motion_resolution``
        and each configuration checked from the ``start`` side, stopping at
        the first collision.  This is the single-edge case of
        :meth:`motion_results_batch`: whole-ladder FK + one stacked kernel
        pass (batch backend), the edge cache when enabled, and the captured
        events merged into ``counter`` — bit-identical to the scalar
        per-configuration walk.
        """
        bump("repro_cc_motion_checks_total",
             help="Motion (edge) collision queries issued")
        start = np.asarray(start, dtype=float)
        end = np.asarray(end, dtype=float)
        if self._edge_cache is None:
            # Single uncached edge: the per-movement path (whole-ladder FK
            # + one kernel pass, events recorded straight into ``counter``)
            # is the same stacked computation without the multi-edge
            # reduction machinery, whose fixed costs only pay off across a
            # wave.  Totals are identical either way (integer cost
            # weights), which the whole-edge property tests pin.
            injector = self._injector
            if injector is not None:
                injector.fire("edge.validate")
            configs = interpolate_configs(start, end, self.motion_resolution)
            observe("repro_cc_edge_ladder_steps", len(configs) - 1,
                    help="Interpolation ladder length per validated edge",
                    buckets=LADDER_STEP_BUCKETS)
            bump("repro_cc_edge_validations_total",
                 path="edge_kernel" if self._edge_batchable() else "scalar",
                 help="Edge validations by execution path")
            return self._check_configs(configs, counter)
        verdict, events = self.motion_results_batch(start[None, :], end[None, :])[0]
        if counter is not None:
            counter.merge(events)
        return verdict

    # ----------------------------------------------------- whole-edge results

    def motion_results_batch(self, starts, ends) -> List[tuple]:
        """Whole-edge ``(verdict, events)`` for a batch of movements.

        For each edge ``e`` the returned verdict and captured
        :class:`OpCounter` equal what the scalar reference's start-side
        early-exit walk of ``interpolate_configs(starts[e], ends[e])``
        decides and records.  All cache-missing edges share one ladder
        construction, one forward-kinematics batch, and one stacked kernel
        pass; with ``edge_cache_size > 0`` previously seen edges replay
        their stored result and skip the kernels entirely.

        The wavefront planner calls this once per wave with every
        speculative edge; ``motion_in_collision`` routes through it with a
        single edge.  Counter events are *captured* (not recorded into a
        caller counter) so one computation can serve cache replays and the
        planner's per-round sub-counters; integer cost weights make the
        merged totals bitwise equal to direct recording.
        """
        starts = np.asarray(starts, dtype=float)
        ends = np.asarray(ends, dtype=float)
        count = len(starts)
        results: List[tuple] = [None] * count
        injector = self._injector
        if injector is not None:
            for e in range(count):
                injector.fire("edge.validate")
        cache = self._edge_cache
        if cache is None:
            computed = self._compute_motion_results(starts, ends)
            for e, (verdict, events, steps) in enumerate(computed):
                results[e] = (verdict, events)
                observe("repro_cc_edge_ladder_steps", steps,
                        help="Interpolation ladder length per validated edge",
                        buckets=LADDER_STEP_BUCKETS)
            if count:
                bump("repro_cc_edge_validations_total", count,
                     path="edge_kernel" if self._edge_batchable() else "scalar",
                     help="Edge validations by execution path")
            return results
        keys: List[bytes] = [b""] * count
        miss_idx: List[int] = []
        evictions_before = cache.evictions
        for e in range(count):
            key = self._cache_key(starts[e]) + self._cache_key(ends[e])
            keys[e] = key
            entry = cache.get(key)
            if entry is not None:
                verdict, events, steps = entry
                results[e] = (verdict, events)
                observe("repro_cc_edge_ladder_steps", steps,
                        help="Interpolation ladder length per validated edge",
                        buckets=LADDER_STEP_BUCKETS)
            else:
                miss_idx.append(e)
        if miss_idx:
            computed = self._compute_motion_results(starts[miss_idx], ends[miss_idx])
            for e, (verdict, events, steps) in zip(miss_idx, computed):
                results[e] = (verdict, events)
                cache.put(keys[e], (verdict, events, steps))
                observe("repro_cc_edge_ladder_steps", steps,
                        help="Interpolation ladder length per validated edge",
                        buckets=LADDER_STEP_BUCKETS)
            bump("repro_cc_edge_validations_total", len(miss_idx),
                 path="edge_kernel" if self._edge_batchable() else "scalar",
                 help="Edge validations by execution path")
            bump("repro_cache_events_total", len(miss_idx), cache="edge",
                 event="miss", help="Software cache events by cache and outcome")
        hit_count = count - len(miss_idx)
        if hit_count:
            bump("repro_cc_edge_validations_total", hit_count, path="cache",
                 help="Edge validations by execution path")
            bump("repro_cache_events_total", hit_count, cache="edge",
                 event="hit", help="Software cache events by cache and outcome")
        evicted = cache.evictions - evictions_before
        if evicted:
            bump("repro_cache_events_total", evicted, cache="edge",
                 event="evict", help="Software cache events by cache and outcome")
        return results

    def _edge_batchable(self) -> bool:
        """True when movement checks run through the stacked edge kernels."""
        return bool(
            self.kernels == "batch"
            and self._has_batch_kernels
            and self.environment.num_obstacles
        )

    def _compute_motion_results(self, starts: np.ndarray, ends: np.ndarray):
        """Uncached whole-edge results: ``(verdict, events, steps)`` rows.

        One vectorized ladder construction and (on the batch backend) one
        FK batch + one stacked kernel pass cover *all* edges; the reference
        backend and the grid checker keep the scalar per-configuration walk
        per edge, captured into fresh counters.
        """
        configs, offsets = interpolate_edges(starts, ends, self.motion_resolution)
        steps_list = np.diff(offsets) - 1
        if self._edge_batchable():
            bodies = BodyBatch.from_frames(*self.robot.body_frames_batch(configs))
            pairs = self._batch_motion_results(bodies, offsets)
        else:
            pairs = []
            for e in range(len(starts)):
                captured = OpCounter()
                verdict = False
                for config in configs[offsets[e]:offsets[e + 1]]:
                    if self._config_scalar(config, captured):
                        verdict = True
                        break
                pairs.append((verdict, captured))
        return [
            (verdict, events, int(steps_list[e]))
            for e, (verdict, events) in enumerate(pairs)
        ]

    def _batch_motion_results(self, bodies: BodyBatch, offsets: np.ndarray):
        """Per-edge ``(verdict, events)`` over stacked ladder body rows.

        ``offsets`` bounds each edge's configuration block (body rows are
        ``bodies_per_config`` times that).  Implemented per checker from
        the :mod:`repro.kernels.batch` edge entry points.
        """
        raise NotImplementedError

    @staticmethod
    def _edge_replay(hits, visited, kind: str, dim: int) -> List[tuple]:
        """Per-edge replay of segment early-exit statistics.

        ``visited[e]`` SAT tests of ``kind`` are what the scalar loop
        records for edge ``e`` before its early exit; one aggregated record
        per edge reproduces those totals exactly (integer cost weights).
        """
        pairs = []
        for hit, n in zip(hits.tolist(), visited.tolist()):
            captured = OpCounter()
            if n:
                captured.record(kind, dim=dim, n=int(n))
            pairs.append((bool(hit), captured))
        return pairs

    # ----------------------------------------------------------- dispatch

    def _check_configs(self, configs: np.ndarray, counter) -> bool:
        """Collision verdict over ordered configurations (first hit wins).

        The batch path computes every waypoint's geometry wholesale, then
        replays the scalar waypoint/body/obstacle iteration over the masks;
        configurations past the first colliding one therefore contribute no
        counter events, exactly like the scalar early exit.

        Note the collision cache is deliberately NOT consulted here: the
        per-configuration bookkeeping it needs costs more than it saves on
        a single short movement.  Cached results flow through
        :meth:`config_results`, where the wavefront planner amortises the
        bookkeeping over a whole wave of edges; per-configuration event
        sums equal the aggregate replay (integer cost weights), so both
        entry points produce identical counters.
        """
        if (
            self.kernels == "batch"
            and self._has_batch_kernels
            and self.environment.num_obstacles
        ):
            bodies = BodyBatch.from_frames(*self.robot.body_frames_batch(configs))
            return self._batch_check(bodies, counter)
        for config in configs:
            if self._config_scalar(config, counter):
                return True
        return False

    @staticmethod
    def _replay_config_results(verdicts, events, counter) -> bool:
        """Scalar early-exit scan over per-configuration results.

        Merges each configuration's stored counter events in order and stops
        at the first collision — the exact event stream the scalar loop
        produces for the same movement.
        """
        for verdict, captured in zip(verdicts, events):
            if counter is not None:
                counter.merge(captured)
            if verdict:
                return True
        return False

    # --------------------------------------------- per-configuration results

    def _cache_key(self, config: np.ndarray) -> bytes:
        if self._cache_quantum > 0.0:
            return np.round(config / self._cache_quantum).astype(np.int64).tobytes()
        return config.tobytes()

    def config_results(self, configs: np.ndarray):
        """Per-configuration ``(verdicts, events)`` with cache reuse.

        Returns a boolean verdict and an :class:`OpCounter` of the events the
        scalar check of that configuration records, for every row of
        ``configs``.  Cache misses are computed in one batched kernel pass
        (or the scalar loop on the reference backend) and inserted; hits
        return the stored pair.  The wavefront planner calls this once per
        wave with every speculative edge's waypoints concatenated, then
        replays per-edge slices at commit time.
        """
        configs = np.asarray(configs, dtype=float)
        cache = self._config_cache
        if cache is None:
            return self._compute_config_results(configs)
        count = len(configs)
        verdicts: List = [None] * count
        events: List = [None] * count
        missing: "dict" = {}
        for i in range(count):
            key = self._cache_key(configs[i])
            entry = cache.get(key)
            if entry is not None:
                verdicts[i], events[i] = entry
            else:
                missing.setdefault(key, []).append(i)
        hit_count = count - sum(len(rows) for rows in missing.values())
        evictions_before = cache.evictions
        if missing:
            order = list(missing)
            miss_configs = configs[[missing[key][0] for key in order]]
            miss_verdicts, miss_events = self._compute_config_results(miss_configs)
            for key, verdict, captured in zip(order, miss_verdicts, miss_events):
                cache.put(key, (verdict, captured))
                for i in missing[key]:
                    verdicts[i], events[i] = verdict, captured
        if hit_count:
            bump("repro_cache_events_total", hit_count, cache="collision",
                 event="hit", help="Software cache events by cache and outcome")
        if missing:
            bump("repro_cache_events_total", len(missing), cache="collision",
                 event="miss", help="Software cache events by cache and outcome")
        evicted = cache.evictions - evictions_before
        if evicted:
            bump("repro_cache_events_total", evicted, cache="collision",
                 event="evict", help="Software cache events by cache and outcome")
        return verdicts, events

    def _compute_config_results(self, configs: np.ndarray):
        """Uncached per-configuration results (batched when possible)."""
        if (
            self.kernels == "batch"
            and self._has_batch_kernels
            and self.environment.num_obstacles
        ):
            bodies = BodyBatch.from_frames(*self.robot.body_frames_batch(configs))
            return self._batch_config_results(bodies, len(configs))
        verdicts, events = [], []
        for config in configs:
            captured = OpCounter()
            verdicts.append(self._config_scalar(config, captured))
            events.append(captured)
        return verdicts, events

    def _batch_config_results(self, bodies: BodyBatch, count: int):
        """Vectorized per-configuration verdicts + events (batch backend)."""
        raise NotImplementedError

    @staticmethod
    def _per_config_replay(mask: np.ndarray, kind: str, dim: int, count: int):
        """Per-configuration replay of a flat SAT mask.

        ``mask`` rows follow the scalar order (configuration-major,
        body-minor, obstacle-innermost); each configuration's block gets its
        own early-exit event count, so merging the blocks in order
        reproduces the aggregate :meth:`_replay_flat` totals exactly.
        """
        flat = mask.reshape(count, -1)
        block = flat.shape[1]
        hit_any = flat.any(axis=1)
        firsts = np.argmax(flat, axis=1)
        verdicts, events = [], []
        for i in range(count):
            hit = bool(hit_any[i])
            n = int(firsts[i]) + 1 if hit else block
            captured = OpCounter()
            if n:
                captured.record(kind, dim=dim, n=n)
            verdicts.append(hit)
            events.append(captured)
        return verdicts, events

    def _config_scalar(self, config: np.ndarray, counter) -> bool:
        """Scalar single-configuration check (the reference code path)."""
        raise NotImplementedError

    def _batch_check(self, bodies: BodyBatch, counter) -> bool:
        """Vectorized check over a :class:`BodyBatch` of waypoint rows."""
        raise NotImplementedError

    @staticmethod
    def _replay_flat(mask: np.ndarray, kind: str, dim: int, counter) -> bool:
        """Replay a scalar early-exit scan over a flattened boolean mask.

        ``mask`` rows follow the scalar iteration order (row-major over the
        (configuration, body, obstacle) nest).  The scalar loop records one
        ``kind`` event per test and returns at the first hit; the replay
        records the same number of events in one aggregated call.
        """
        flat = mask.ravel()
        hit = bool(flat.any())
        if counter is not None:
            n = int(np.argmax(flat)) + 1 if hit else flat.size
            if n:
                counter.record(kind, dim=dim, n=n)
        return hit


class BruteOBBChecker(CollisionChecker):
    """Exhaustive OBB-OBB checking (vanilla RRT\\*)."""

    _has_batch_kernels = True

    def _config_scalar(self, config: np.ndarray, counter) -> bool:
        dim = self.environment.workspace_dim
        for body in self.robot.body_obbs(config):
            for obstacle in self.environment.obstacles:
                if counter is not None:
                    counter.record("sat_obb_obb", dim=dim)
                if obb_intersects_obb(body, obstacle):
                    return True
        return False

    def _batch_check(self, bodies: BodyBatch, counter) -> bool:
        obs = self.environment.obstacle_tensors
        mask = kernels_batch.obb_obb_grid(
            bodies.centers, bodies.half_extents, bodies.rotations,
            obs.centers, obs.half_extents, obs.rotations,
        )
        # The scalar nest iterates waypoint-major, body-minor, obstacle-
        # innermost: exactly the row-major flattening of ``mask``.
        return self._replay_flat(mask, "sat_obb_obb", obs.dim, counter)

    def _batch_config_results(self, bodies: BodyBatch, count: int):
        obs = self.environment.obstacle_tensors
        mask = kernels_batch.obb_obb_grid(
            bodies.centers, bodies.half_extents, bodies.rotations,
            obs.centers, obs.half_extents, obs.rotations,
        )
        return self._per_config_replay(mask, "sat_obb_obb", obs.dim, count)

    def _batch_motion_results(self, bodies: BodyBatch, offsets: np.ndarray):
        obs = self.environment.obstacle_tensors
        bpc = bodies.rows // int(offsets[-1])
        lo, hi = bodies.aabb_corners()
        hits, visited = kernels_batch.edge_obb_obb_grid(
            bodies.centers, bodies.half_extents, bodies.rotations, lo, hi,
            obs.centers, obs.half_extents, obs.rotations,
            obs.aabb_lo, obs.aabb_hi,
            np.asarray(offsets, dtype=np.intp) * bpc,
        )
        return self._edge_replay(hits, visited, "sat_obb_obb", obs.dim)


class BruteAABBChecker(CollisionChecker):
    """Exhaustive AABB-OBB checking with AABB-represented obstacles.

    Cheaper per query than :class:`BruteOBBChecker` but over-approximates
    obstacles, so it may flag collision-free movements as colliding.
    """

    _has_batch_kernels = True

    def _config_scalar(self, config: np.ndarray, counter) -> bool:
        dim = self.environment.workspace_dim
        for body in self.robot.body_obbs(config):
            for box in self.environment.obstacle_aabbs:
                if counter is not None:
                    counter.record("sat_aabb_obb", dim=dim)
                if aabb_intersects_obb(box, body):
                    return True
        return False

    def _batch_check(self, bodies: BodyBatch, counter) -> bool:
        obs = self.environment.obstacle_tensors
        mask = kernels_batch.aabb_obb_grid(
            obs.aabb_lo, obs.aabb_hi,
            bodies.centers, bodies.half_extents, bodies.rotations,
        )
        return self._replay_flat(mask, "sat_aabb_obb", obs.dim, counter)

    def _batch_config_results(self, bodies: BodyBatch, count: int):
        obs = self.environment.obstacle_tensors
        mask = kernels_batch.aabb_obb_grid(
            obs.aabb_lo, obs.aabb_hi,
            bodies.centers, bodies.half_extents, bodies.rotations,
        )
        return self._per_config_replay(mask, "sat_aabb_obb", obs.dim, count)

    def _batch_motion_results(self, bodies: BodyBatch, offsets: np.ndarray):
        obs = self.environment.obstacle_tensors
        bpc = bodies.rows // int(offsets[-1])
        lo, hi = bodies.aabb_corners()
        hits, visited = kernels_batch.edge_aabb_obb_grid(
            obs.aabb_lo, obs.aabb_hi,
            bodies.centers, bodies.half_extents, bodies.rotations, lo, hi,
            np.asarray(offsets, dtype=np.intp) * bpc,
        )
        return self._edge_replay(hits, visited, "sat_aabb_obb", obs.dim)


class TwoStageChecker(CollisionChecker):
    """MOPED's two-stage processing scheme (Section III-A).

    First stage: walk the obstacle R-tree with cheap AABB-OBB checks; clear
    subtrees are skipped wholesale.  Second stage: the surviving leaf
    candidates get the accurate OBB-OBB check.

    With ``fine_stage=False`` the checker stops after the first stage and
    treats every surviving candidate as a collision — the AABB-only MOPED
    variant of Fig 18 (right).

    The batch backend keeps the funnel: stage-1 masks are computed for
    every (waypoint row, R-tree unit) pair in two stacked passes, but the
    exact OBB-OBB SAT is evaluated *only* for the (row, obstacle) pairs
    whose leaf entry passes both stage-1 masks — the same pairs the scalar
    traversal would forward to the second stage.
    """

    _has_batch_kernels = True

    def __init__(
        self,
        robot: RobotModel,
        environment: Environment,
        motion_resolution: float,
        fine_stage: bool = True,
        kernels: str = "batch",
        cache_size: int = 0,
        cache_quantum: float = 0.0,
        edge_cache_size: int = 0,
    ):
        super().__init__(
            robot, environment, motion_resolution, kernels=kernels,
            cache_size=cache_size, cache_quantum=cache_quantum,
            edge_cache_size=edge_cache_size,
        )
        self.fine_stage = fine_stage
        self._rtree = environment.rtree

    def _config_scalar(self, config: np.ndarray, counter) -> bool:
        dim = self.environment.workspace_dim
        for body in self.robot.body_obbs(config):
            if counter is not None:
                counter.record("aabb_derive", dim=dim)
            candidates = self._rtree.query_obb(
                body, counter=counter, prefilter_aabb=body.to_aabb()
            )
            # Filter-efficiency metrics: how many obstacles survive the
            # cheap first stage and reach the exact OBB-OBB second stage.
            bump("repro_cc_stage1_queries_total",
                 help="Two-stage first-stage (R-tree AABB filter) queries")
            if candidates:
                bump("repro_cc_stage1_survivors_total", len(candidates),
                     help="Obstacles surviving the first-stage AABB filter")
            if not self.fine_stage:
                if candidates:
                    return True
                continue
            for idx in candidates:
                if counter is not None:
                    counter.record("sat_obb_obb", dim=dim)
                bump("repro_cc_stage2_checks_total",
                     help="Exact OBB-OBB checks run in the second stage")
                if obb_intersects_obb(body, self.environment.obstacles[idx]):
                    return True
        return False

    def _stage2_hits(self, bodies: BodyBatch, entry_pass: np.ndarray) -> np.ndarray:
        """Exact OBB-OBB verdicts for the stage-1 surviving (row, obstacle)
        pairs, scattered back into an ``(R, M)`` boolean matrix."""
        obs = self.environment.obstacle_tensors
        hits = np.zeros(entry_pass.shape, dtype=bool)
        rows, cols = np.nonzero(entry_pass)
        if rows.size:
            hits[rows, cols] = kernels_batch.obb_obb_pairs(
                bodies.centers[rows], bodies.half_extents[rows],
                bodies.rotations[rows],
                obs.centers[cols], obs.half_extents[cols], obs.rotations[cols],
            )
        return hits

    def _batch_check(self, bodies: BodyBatch, counter) -> bool:
        env = self.environment
        ftree = env.flat_rtree
        dim = env.workspace_dim
        lo, hi = bodies.aabb_corners()
        # Stage-1 masks against every traversal unit (node MBRs, then leaf
        # entry boxes) in two stacked passes, then the per-row traversal
        # statistics via ndarray reductions over the static tree structure.
        aabb_mask = kernels_batch.aabb_aabb_grid(lo, hi, ftree.unit_lo, ftree.unit_hi)
        obb_mask = kernels_batch.aabb_obb_grid(
            ftree.unit_lo, ftree.unit_hi,
            bodies.centers, bodies.half_extents, bodies.rotations,
        )
        split = ftree.num_nodes
        n_aabb, n_obb, candidates = ftree.batch_query_counts(
            aabb_mask[:, :split], obb_mask[:, :split],
            aabb_mask[:, split:], obb_mask[:, split:],
        )
        survivors = candidates.sum(axis=1)

        if not self.fine_stage:
            # A row with any surviving candidate is a collision; rows after
            # the first such row are never reached by the scalar loop.
            hit_rows = survivors > 0
            hit = bool(hit_rows.any())
            done = int(np.argmax(hit_rows)) + 1 if hit else bodies.rows
            self._record_stage1(counter, dim, done, n_aabb, n_obb, survivors)
            return hit

        # Second stage, funnelled: the exact SAT runs only on the candidate
        # pairs.  Columns are then permuted into the traversal's static
        # visit order so per-row early-exit counts are cumulative sums.
        stage2 = self._stage2_hits(bodies, candidates)
        order = ftree.entry_order
        cand_ord = candidates[:, order]
        hits_ord = stage2[:, order]
        row_hit = hits_ord.any(axis=1)
        hit = bool(row_hit.any())
        if hit:
            row = int(np.argmax(row_hit))
            done = row + 1
            # Checks in the hitting row stop at the hitting candidate; the
            # candidate's position in visit order is its cumulative count.
            first = int(np.argmax(hits_ord[row]))
            checks = int(survivors[:row].sum()) + int(
                np.count_nonzero(cand_ord[row, : first + 1])
            )
        else:
            done = bodies.rows
            checks = int(survivors.sum())
        self._record_stage1(counter, dim, done, n_aabb, n_obb, survivors)
        if checks:
            if counter is not None:
                counter.record("sat_obb_obb", dim=dim, n=checks)
            bump("repro_cc_stage2_checks_total", checks,
                 help="Exact OBB-OBB checks run in the second stage")
        return hit

    def _batch_config_results(self, bodies: BodyBatch, count: int):
        """Per-configuration two-stage results from one stacked kernel pass.

        The stage-1/stage-2 tensors are computed exactly as in
        :meth:`_batch_check`; each configuration's contiguous block of body
        rows is then replayed independently, so a block's events equal what
        the scalar loop records for that configuration alone.
        """
        env = self.environment
        ftree = env.flat_rtree
        dim = env.workspace_dim
        lo, hi = bodies.aabb_corners()
        aabb_mask = kernels_batch.aabb_aabb_grid(lo, hi, ftree.unit_lo, ftree.unit_hi)
        obb_mask = kernels_batch.aabb_obb_grid(
            ftree.unit_lo, ftree.unit_hi,
            bodies.centers, bodies.half_extents, bodies.rotations,
        )
        split = ftree.num_nodes
        n_aabb, n_obb, candidates = ftree.batch_query_counts(
            aabb_mask[:, :split], obb_mask[:, :split],
            aabb_mask[:, split:], obb_mask[:, split:],
        )
        survivors = candidates.sum(axis=1)
        bpc = bodies.rows // count
        rng = np.arange(count)
        # Per-configuration traversal statistics as (config, body) blocks;
        # cumulative sums give each block's "first done rows" totals without
        # per-config slicing.
        na_cum = n_aabb.reshape(count, bpc).cumsum(axis=1)
        no_cum = n_obb.reshape(count, bpc).cumsum(axis=1)
        su_cum = survivors.reshape(count, bpc).cumsum(axis=1)

        if not self.fine_stage:
            block_hit = survivors.reshape(count, bpc) > 0
            hit_any = block_hit.any(axis=1)
            dones = np.where(hit_any, np.argmax(block_hit, axis=1) + 1, bpc)
            checks_arr = np.zeros(count, dtype=np.int64)
        else:
            stage2 = self._stage2_hits(bodies, candidates)
            order = ftree.entry_order
            cand_ord = candidates[:, order]
            hits_ord = stage2[:, order]
            block_hit = hits_ord.any(axis=1).reshape(count, bpc)
            hit_any = block_hit.any(axis=1)
            rels = np.argmax(block_hit, axis=1)
            dones = np.where(hit_any, rels + 1, bpc)
            # Misses run the SAT on every surviving candidate; hits stop at
            # the hitting candidate of the hitting row.
            checks_arr = su_cum[:, -1].astype(np.int64)
            for k in np.nonzero(hit_any)[0]:
                rel = int(rels[k])
                row = k * bpc + rel
                first = int(np.argmax(hits_ord[row]))
                before = int(su_cum[k, rel - 1]) if rel else 0
                checks_arr[k] = before + int(
                    np.count_nonzero(cand_ord[row, : first + 1])
                )

        aabb_tot = na_cum[rng, dones - 1]
        obb_tot = no_cum[rng, dones - 1]
        sur_tot = su_cum[rng, dones - 1]
        # Python lists: the per-config loop below indexes every entry once,
        # and list indexing is several times cheaper than ndarray scalars.
        dones_l = dones.tolist()
        aabb_l = aabb_tot.tolist()
        obb_l = obb_tot.tolist()
        checks_l = checks_arr.tolist()
        verdicts: List[bool] = [bool(h) for h in hit_any.tolist()]
        events: List[OpCounter] = []
        for k in range(count):
            captured = OpCounter()
            captured.record("aabb_derive", dim=dim, n=dones_l[k])
            if aabb_l[k]:
                captured.record("sat_aabb_aabb", dim=dim, n=int(aabb_l[k]))
            if obb_l[k]:
                captured.record("sat_aabb_obb", dim=dim, n=int(obb_l[k]))
            if checks_l[k]:
                captured.record("sat_obb_obb", dim=dim, n=checks_l[k])
            events.append(captured)
        bump("repro_cc_stage1_queries_total", int(dones.sum()),
             help="Two-stage first-stage (R-tree AABB filter) queries")
        if int(sur_tot.sum()):
            bump("repro_cc_stage1_survivors_total", int(sur_tot.sum()),
                 help="Obstacles surviving the first-stage AABB filter")
        if int(checks_arr.sum()):
            bump("repro_cc_stage2_checks_total", int(checks_arr.sum()),
                 help="Exact OBB-OBB checks run in the second stage")
        return verdicts, events

    def _batch_motion_results(self, bodies: BodyBatch, offsets: np.ndarray):
        """Whole-edge two-stage results from one stacked traversal pass.

        Stage-1 masks and (for ``fine_stage``) the funnelled exact SAT are
        computed exactly as in :meth:`_batch_check` over *all* edges' body
        rows at once; :func:`repro.kernels.batch.edge_two_stage_counts`
        then reduces each edge's contiguous row block to the scalar loop's
        early-exit totals, so an edge's events equal what the scalar
        reference records for that movement alone.
        """
        env = self.environment
        ftree = env.flat_rtree
        dim = env.workspace_dim
        lo, hi = bodies.aabb_corners()
        aabb_mask = kernels_batch.aabb_aabb_grid(lo, hi, ftree.unit_lo, ftree.unit_hi)
        # The traversal only ever consumes the OBB mask conjoined with the
        # AABB mask (node descent, candidate funnel), so the exact AABB-OBB
        # SAT need only run where the cheap interval test already passed.
        obb_mask = kernels_batch.masked_aabb_obb_grid(
            ftree.unit_lo, ftree.unit_hi,
            bodies.centers, bodies.half_extents, bodies.rotations,
            aabb_mask,
        )
        split = ftree.num_nodes
        n_aabb, n_obb, candidates = ftree.batch_query_counts(
            aabb_mask[:, :split], obb_mask[:, :split],
            aabb_mask[:, split:], obb_mask[:, split:],
        )
        survivors = candidates.sum(axis=1)
        count = len(offsets) - 1
        bpc = bodies.rows // int(offsets[-1])
        row_offsets = np.asarray(offsets, dtype=np.intp) * bpc

        if not self.fine_stage:
            hits, dones, aabb_tot, obb_tot, sur_tot, _ = (
                kernels_batch.edge_two_stage_counts(
                    survivors > 0, n_aabb, n_obb, survivors, row_offsets
                )
            )
            checks_arr = np.zeros(count, dtype=np.int64)
        else:
            stage2 = self._stage2_hits(bodies, candidates)
            order = ftree.entry_order
            cand_ord = candidates[:, order]
            hits_ord = stage2[:, order]
            hits, dones, aabb_tot, obb_tot, sur_tot, last_rows = (
                kernels_batch.edge_two_stage_counts(
                    hits_ord.any(axis=1), n_aabb, n_obb, survivors, row_offsets
                )
            )
            # Misses run the exact SAT on every surviving candidate; hits
            # stop inside the hitting row at the hitting candidate (its
            # position in the traversal's static visit order).
            checks_arr = sur_tot.astype(np.int64).copy()
            for e in np.nonzero(hits)[0]:
                row = int(last_rows[e])
                first = int(np.argmax(hits_ord[row]))
                before = int(sur_tot[e]) - int(survivors[row])
                checks_arr[e] = before + int(
                    np.count_nonzero(cand_ord[row, : first + 1])
                )

        pairs = []
        dones_l = dones.tolist()
        aabb_l = aabb_tot.tolist()
        obb_l = obb_tot.tolist()
        checks_l = checks_arr.tolist()
        for e, hit in enumerate(hits.tolist()):
            captured = OpCounter()
            captured.record("aabb_derive", dim=dim, n=int(dones_l[e]))
            if aabb_l[e]:
                captured.record("sat_aabb_aabb", dim=dim, n=int(aabb_l[e]))
            if obb_l[e]:
                captured.record("sat_aabb_obb", dim=dim, n=int(obb_l[e]))
            if checks_l[e]:
                captured.record("sat_obb_obb", dim=dim, n=int(checks_l[e]))
            pairs.append((bool(hit), captured))
        bump("repro_cc_stage1_queries_total", int(dones.sum()),
             help="Two-stage first-stage (R-tree AABB filter) queries")
        total_survivors = int(sur_tot.sum())
        if total_survivors:
            bump("repro_cc_stage1_survivors_total", total_survivors,
                 help="Obstacles surviving the first-stage AABB filter")
        total_checks = int(checks_arr.sum())
        if total_checks:
            bump("repro_cc_stage2_checks_total", total_checks,
                 help="Exact OBB-OBB checks run in the second stage")
        return pairs

    @staticmethod
    def _record_stage1(counter, dim: int, done: int, n_aabb, n_obb, survivors) -> None:
        """Record the stage-1 work of the first ``done`` rows (the rows the
        scalar loop processes before returning)."""
        if counter is not None:
            counter.record("aabb_derive", dim=dim, n=done)
            total_aabb = int(n_aabb[:done].sum())
            if total_aabb:
                counter.record("sat_aabb_aabb", dim=dim, n=total_aabb)
            total_obb = int(n_obb[:done].sum())
            if total_obb:
                counter.record("sat_aabb_obb", dim=dim, n=total_obb)
        bump("repro_cc_stage1_queries_total", done,
             help="Two-stage first-stage (R-tree AABB filter) queries")
        total_survivors = int(survivors[:done].sum())
        if total_survivors:
            bump("repro_cc_stage1_survivors_total", total_survivors,
                 help="Obstacles surviving the first-stage AABB filter")


class OccupancyGridChecker(CollisionChecker):
    """CODAcc-style occupancy-grid checking (baseline of Section V-B).

    The grid is built offline by rasterising every obstacle OBB at
    ``resolution`` units per cell (paper setting: 1.0).  A configuration is
    in collision when any grid cell covered by a body OBB is occupied.  The
    checker is conservative: cells partially covered by an obstacle are
    marked occupied, so clear means clear.

    Attributes:
        grid: boolean occupancy array.
        grid_bytes: storage the grid needs at one bit per cell — with the
            paper's 300^3 workspace this exceeds 3.2 MB, the on-chip memory
            pressure the paper charges against the CODAcc baseline.
    """

    def __init__(
        self,
        robot: RobotModel,
        environment: Environment,
        motion_resolution: float,
        resolution: float = 1.0,
        kernels: str = "batch",
        cache_size: int = 0,
        cache_quantum: float = 0.0,
        edge_cache_size: int = 0,
    ):
        super().__init__(
            robot, environment, motion_resolution, kernels=kernels,
            cache_size=cache_size, cache_quantum=cache_quantum,
            edge_cache_size=edge_cache_size,
        )
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        self.resolution = resolution
        self._cells = int(math.ceil(environment.size / resolution))
        # Cell-centre coordinates per axis, computed once for the whole
        # obstacle batch (and reused by every query); rasterisation slices
        # this instead of rebuilding per-obstacle centre grids.
        self._axis_centers = (np.arange(self._cells) + 0.5) * resolution
        shape = (self._cells,) * environment.workspace_dim
        self.grid = np.zeros(shape, dtype=bool)
        for obstacle in environment.obstacles:
            self._rasterise(obstacle)

    @property
    def grid_bytes(self) -> int:
        """Grid storage at one bit per cell."""
        return int(math.ceil(self.grid.size / 8))

    def _index_range(self, box) -> Optional[Tuple[slice, ...]]:
        """Grid index slices covering an AABB, clipped to the workspace."""
        lo_idx = np.clip(np.floor(box.lo / self.resolution).astype(int), 0, self._cells)
        hi_idx = np.clip(np.ceil(box.hi / self.resolution).astype(int), 0, self._cells)
        if np.any(lo_idx >= hi_idx):
            return None
        return tuple(slice(int(lo_idx[d]), int(hi_idx[d])) for d in range(box.dim))

    def _region_inside(self, region: Tuple[slice, ...], obb: OBB, pad: float = 0.0):
        """Mask of region cells whose centres fall inside the (padded) OBB.

        Returned flat (C-order raveled over the region), matching how
        ``grid[region]`` ravels.
        """
        mesh = np.meshgrid(*(self._axis_centers[s] for s in region), indexing="ij")
        centers = np.stack([m.ravel() for m in mesh], axis=1)
        local = (centers - obb.center) @ obb.rotation
        return np.all(np.abs(local) <= obb.half_extents + pad, axis=1)

    def _rasterise(self, obstacle: OBB) -> None:
        """Mark every cell whose centre region intersects ``obstacle``.

        Cells are tested at their centres with the obstacle's half-extents
        padded by half a cell diagonal, a conservative cover.
        """
        region = self._index_range(obstacle.to_aabb())
        if region is None:
            return
        pad = 0.5 * self.resolution * math.sqrt(obstacle.dim)
        inside = self._region_inside(region, obstacle, pad=pad)
        self.grid[region] |= inside.reshape(self.grid[region].shape)

    def _config_scalar(self, config: np.ndarray, counter) -> bool:
        for body in self.robot.body_obbs(config):
            region = self._index_range(body.to_aabb())
            if region is None:
                continue
            inside = self._region_inside(region, body)
            probes = int(np.count_nonzero(inside))
            if counter is not None and probes:
                counter.record(
                    "grid_lookup", dim=self.environment.workspace_dim, n=probes
                )
            if probes and bool(np.any(self.grid[region].reshape(-1)[inside])):
                return True
        return False


CHECKERS = {
    "obb": BruteOBBChecker,
    "aabb": BruteAABBChecker,
    "two_stage": TwoStageChecker,
    "grid": OccupancyGridChecker,
}


def make_checker(
    name: str, robot: RobotModel, environment: Environment, motion_resolution: float, **kwargs
) -> CollisionChecker:
    """Factory over the checker registry."""
    try:
        cls = CHECKERS[name]
    except KeyError:
        raise KeyError(f"unknown checker {name!r}; available: {sorted(CHECKERS)}") from None
    return cls(robot, environment, motion_resolution, **kwargs)
