"""Collision checkers: brute OBB, AABB-only, two-stage, and occupancy grid.

Four interchangeable checkers cover the paper's design space:

* :class:`BruteOBBChecker` — the vanilla RRT\\* checker: every body OBB is
  SAT-tested against every obstacle OBB at every interpolated configuration
  of a movement (the Section II-C cost bottleneck).
* :class:`BruteAABBChecker` — obstacles represented by their AABBs and
  checked with the cheaper AABB-OBB SAT.  Conservative: clear means clear,
  but its false positives degrade path quality (Section III-A, Fig 5/18).
* :class:`TwoStageChecker` — MOPED's contribution (Section III-A): an
  R-tree traversal of AABB-OBB checks filters the obstacle set, and only the
  surviving candidates receive the accurate OBB-OBB second stage.  Decisions
  are *identical* to :class:`BruteOBBChecker` (the filter is conservative
  and the second stage exact) at a fraction of the cost.
* :class:`OccupancyGridChecker` — the CODAcc baseline (ISCA'22, ref [4]):
  the workspace is discretised at one unit per cell and a configuration is
  checked by probing the voxels covered by the robot body.  Conservative by
  construction (voxels are outer approximations).

All checkers share one interface: ``config_in_collision`` for a single
configuration and ``motion_in_collision`` for a movement, which walks the
interpolated configurations from the tree side so collisions are found with
the fewest checks.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.core.robots import RobotModel
from repro.core.world import Environment
from repro.geometry.motion import interpolate_configs
from repro.obs import bump
from repro.geometry.obb import OBB
from repro.geometry.sat import aabb_intersects_obb, obb_intersects_obb


class CollisionChecker:
    """Base class wiring a robot model to an environment."""

    def __init__(self, robot: RobotModel, environment: Environment, motion_resolution: float):
        if robot.workspace_dim != environment.workspace_dim:
            raise ValueError(
                f"robot workspace dim {robot.workspace_dim} != "
                f"environment dim {environment.workspace_dim}"
            )
        if motion_resolution <= 0:
            raise ValueError("motion_resolution must be positive")
        self.robot = robot
        self.environment = environment
        self.motion_resolution = motion_resolution

    def config_in_collision(self, config: np.ndarray, counter=None) -> bool:
        """True when the robot at ``config`` intersects any obstacle."""
        raise NotImplementedError

    def motion_in_collision(self, start: np.ndarray, end: np.ndarray, counter=None) -> bool:
        """True when the movement from ``start`` to ``end`` hits an obstacle.

        The straight C-space segment is discretised at ``motion_resolution``
        and each configuration checked from the ``start`` side, stopping at
        the first collision.
        """
        bump("repro_cc_motion_checks_total",
             help="Motion (edge) collision queries issued")
        for config in interpolate_configs(start, end, self.motion_resolution):
            if self.config_in_collision(config, counter=counter):
                return True
        return False


class BruteOBBChecker(CollisionChecker):
    """Exhaustive OBB-OBB checking (vanilla RRT\\*)."""

    def config_in_collision(self, config: np.ndarray, counter=None) -> bool:
        dim = self.environment.workspace_dim
        for body in self.robot.body_obbs(config):
            for obstacle in self.environment.obstacles:
                if counter is not None:
                    counter.record("sat_obb_obb", dim=dim)
                if obb_intersects_obb(body, obstacle):
                    return True
        return False


class BruteAABBChecker(CollisionChecker):
    """Exhaustive AABB-OBB checking with AABB-represented obstacles.

    Cheaper per query than :class:`BruteOBBChecker` but over-approximates
    obstacles, so it may flag collision-free movements as colliding.
    """

    def config_in_collision(self, config: np.ndarray, counter=None) -> bool:
        dim = self.environment.workspace_dim
        for body in self.robot.body_obbs(config):
            for box in self.environment.obstacle_aabbs:
                if counter is not None:
                    counter.record("sat_aabb_obb", dim=dim)
                if aabb_intersects_obb(box, body):
                    return True
        return False


class TwoStageChecker(CollisionChecker):
    """MOPED's two-stage processing scheme (Section III-A).

    First stage: walk the obstacle R-tree with cheap AABB-OBB checks; clear
    subtrees are skipped wholesale.  Second stage: the surviving leaf
    candidates get the accurate OBB-OBB check.

    With ``fine_stage=False`` the checker stops after the first stage and
    treats every surviving candidate as a collision — the AABB-only MOPED
    variant of Fig 18 (right).
    """

    def __init__(
        self,
        robot: RobotModel,
        environment: Environment,
        motion_resolution: float,
        fine_stage: bool = True,
    ):
        super().__init__(robot, environment, motion_resolution)
        self.fine_stage = fine_stage
        self._rtree = environment.rtree

    def config_in_collision(self, config: np.ndarray, counter=None) -> bool:
        dim = self.environment.workspace_dim
        for body in self.robot.body_obbs(config):
            if counter is not None:
                counter.record("aabb_derive", dim=dim)
            candidates = self._rtree.query_obb(
                body, counter=counter, prefilter_aabb=body.to_aabb()
            )
            # Filter-efficiency metrics: how many obstacles survive the
            # cheap first stage and reach the exact OBB-OBB second stage.
            bump("repro_cc_stage1_queries_total",
                 help="Two-stage first-stage (R-tree AABB filter) queries")
            if candidates:
                bump("repro_cc_stage1_survivors_total", len(candidates),
                     help="Obstacles surviving the first-stage AABB filter")
            if not self.fine_stage:
                if candidates:
                    return True
                continue
            for idx in candidates:
                if counter is not None:
                    counter.record("sat_obb_obb", dim=dim)
                bump("repro_cc_stage2_checks_total",
                     help="Exact OBB-OBB checks run in the second stage")
                if obb_intersects_obb(body, self.environment.obstacles[idx]):
                    return True
        return False


class OccupancyGridChecker(CollisionChecker):
    """CODAcc-style occupancy-grid checking (baseline of Section V-B).

    The grid is built offline by rasterising every obstacle OBB at
    ``resolution`` units per cell (paper setting: 1.0).  A configuration is
    in collision when any grid cell covered by a body OBB is occupied.  The
    checker is conservative: cells partially covered by an obstacle are
    marked occupied, so clear means clear.

    Attributes:
        grid: boolean occupancy array.
        grid_bytes: storage the grid needs at one bit per cell — with the
            paper's 300^3 workspace this exceeds 3.2 MB, the on-chip memory
            pressure the paper charges against the CODAcc baseline.
    """

    def __init__(
        self,
        robot: RobotModel,
        environment: Environment,
        motion_resolution: float,
        resolution: float = 1.0,
    ):
        super().__init__(robot, environment, motion_resolution)
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        self.resolution = resolution
        self._cells = int(math.ceil(environment.size / resolution))
        shape = (self._cells,) * environment.workspace_dim
        self.grid = np.zeros(shape, dtype=bool)
        for obstacle in environment.obstacles:
            self._rasterise(obstacle)

    @property
    def grid_bytes(self) -> int:
        """Grid storage at one bit per cell."""
        return int(math.ceil(self.grid.size / 8))

    def _cell_centers(self, box) -> Optional[List[np.ndarray]]:
        """Integer cell index ranges covering an AABB, clipped to the grid."""
        lo_idx = np.floor(box.lo / self.resolution).astype(int)
        hi_idx = np.ceil(box.hi / self.resolution).astype(int)
        lo_idx = np.clip(lo_idx, 0, self._cells)
        hi_idx = np.clip(hi_idx, 0, self._cells)
        if np.any(lo_idx >= hi_idx):
            return None
        axes = [np.arange(lo_idx[d], hi_idx[d]) for d in range(box.dim)]
        return axes

    def _covered_cells(self, obb: OBB):
        """Indices and centre points of grid cells inside the OBB's AABB."""
        axes = self._cell_centers(obb.to_aabb())
        if axes is None:
            return None, None
        mesh = np.meshgrid(*axes, indexing="ij")
        idx = np.stack([m.ravel() for m in mesh], axis=1)
        centers = (idx + 0.5) * self.resolution
        return idx, centers

    def _rasterise(self, obstacle: OBB) -> None:
        """Mark every cell whose centre region intersects ``obstacle``.

        Cells are tested at their centres with the obstacle's half-extents
        padded by half a cell diagonal, a conservative cover.
        """
        idx, centers = self._covered_cells(obstacle)
        if idx is None:
            return
        pad = 0.5 * self.resolution * math.sqrt(obstacle.dim)
        local = (centers - obstacle.center) @ obstacle.rotation
        inside = np.all(np.abs(local) <= obstacle.half_extents + pad, axis=1)
        occupied = idx[inside]
        if occupied.size:
            self.grid[tuple(occupied.T)] = True

    def config_in_collision(self, config: np.ndarray, counter=None) -> bool:
        for body in self.robot.body_obbs(config):
            idx, centers = self._covered_cells(body)
            if idx is None:
                continue
            local = (centers - body.center) @ body.rotation
            inside = np.all(np.abs(local) <= body.half_extents, axis=1)
            probes = idx[inside]
            if counter is not None and len(probes):
                counter.record("grid_lookup", dim=self.environment.workspace_dim, n=len(probes))
            if len(probes) and bool(np.any(self.grid[tuple(probes.T)])):
                return True
        return False


CHECKERS = {
    "obb": BruteOBBChecker,
    "aabb": BruteAABBChecker,
    "two_stage": TwoStageChecker,
    "grid": OccupancyGridChecker,
}


def make_checker(
    name: str, robot: RobotModel, environment: Environment, motion_resolution: float, **kwargs
) -> CollisionChecker:
    """Factory over the checker registry."""
    try:
        cls = CHECKERS[name]
    except KeyError:
        raise KeyError(f"unknown checker {name!r}; available: {sorted(CHECKERS)}") from None
    return cls(robot, environment, motion_resolution, **kwargs)
