"""Collision checkers: brute OBB, AABB-only, two-stage, and occupancy grid.

Four interchangeable checkers cover the paper's design space:

* :class:`BruteOBBChecker` — the vanilla RRT\\* checker: every body OBB is
  SAT-tested against every obstacle OBB at every interpolated configuration
  of a movement (the Section II-C cost bottleneck).
* :class:`BruteAABBChecker` — obstacles represented by their AABBs and
  checked with the cheaper AABB-OBB SAT.  Conservative: clear means clear,
  but its false positives degrade path quality (Section III-A, Fig 5/18).
* :class:`TwoStageChecker` — MOPED's contribution (Section III-A): an
  R-tree traversal of AABB-OBB checks filters the obstacle set, and only the
  surviving candidates receive the accurate OBB-OBB second stage.  Decisions
  are *identical* to :class:`BruteOBBChecker` (the filter is conservative
  and the second stage exact) at a fraction of the cost.
* :class:`OccupancyGridChecker` — the CODAcc baseline (ISCA'22, ref [4]):
  the workspace is discretised at one unit per cell and a configuration is
  checked by probing the voxels covered by the robot body.  Conservative by
  construction (voxels are outer approximations).

All checkers share one interface: ``config_in_collision`` for a single
configuration and ``motion_in_collision`` for a movement, which walks the
interpolated configurations from the tree side so collisions are found with
the fewest checks.

Kernel backends
---------------

Each checker runs on one of two interchangeable backends
(:data:`repro.kernels.KERNEL_BACKENDS`):

* ``"reference"`` — the original scalar code path: one Python-level SAT
  call per (configuration, body, obstacle), early-exiting exactly where the
  hardware would.
* ``"batch"`` (default) — the geometry for a whole movement (every
  interpolated waypoint x every body x every obstacle) is evaluated in a
  few stacked ndarray passes (:mod:`repro.kernels.batch`), and the scalar
  control flow is then *replayed* over the precomputed boolean masks.  The
  replay visits checks in the scalar order and stops at the scalar early
  exits, recording aggregated :class:`~repro.core.counters.OpCounter`
  events — so decisions *and* operation counts are bit-identical to the
  reference backend while the arithmetic runs at ndarray speed.

The occupancy-grid checker's inner loop is already an ndarray pass per
body, so it has no separate batch path.

Collision-result cache
----------------------

With ``cache_size > 0`` every checker keeps a quantized-configuration LRU
(:class:`repro.core.lru.LRUMap`, the software rendition of the Section IV-C
multi-level caching): each configuration's verdict *and* the counter events
its scalar check records are stored under the configuration's key, and a
hit replays the stored events instead of recomputing — so cached runs stay
bit-identical to uncached ones in both decisions and operation counts.
The cache serves the batched :meth:`CollisionChecker.config_results` entry
point (the wavefront planner's per-wave collision call); only cache misses
touch forward kinematics and the SAT kernels (in one batched pass per
call).  ``cache_quantum = 0``
(default) keys on exact float bytes; a positive quantum buckets nearby
configurations together, a documented approximation.  Registry metrics
(``repro_cc_*``, ``repro_cache_events_total``) count *executed* work, while
OpCounters always report the modeled hardware cost — the distinction that
makes the cache observable without perturbing the cost model.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.core.counters import OpCounter
from repro.core.lru import LRUMap
from repro.core.robots import RobotModel
from repro.core.world import Environment
from repro.geometry.motion import interpolate_configs
from repro.kernels import KERNEL_BACKENDS, batch as kernels_batch
from repro.kernels.tensors import BodyBatch
from repro.obs import bump
from repro.geometry.obb import OBB
from repro.geometry.sat import aabb_intersects_obb, obb_intersects_obb


class CollisionChecker:
    """Base class wiring a robot model to an environment.

    Args:
        kernels: ``"batch"`` evaluates movement checks through the
            vectorized kernels with exact count replay; ``"reference"``
            keeps the original scalar per-object loops.
        cache_size: capacity of the quantized-configuration collision
            result cache; 0 (default) disables caching.
        cache_quantum: configuration quantisation step for cache keys;
            0.0 keys on exact float bytes (bit-identical planning).
    """

    #: Subclasses with a vectorized movement check set this True; others
    #: (the grid checker) always run the scalar per-configuration loop.
    _has_batch_kernels = False

    def __init__(
        self,
        robot: RobotModel,
        environment: Environment,
        motion_resolution: float,
        kernels: str = "batch",
        cache_size: int = 0,
        cache_quantum: float = 0.0,
    ):
        if robot.workspace_dim != environment.workspace_dim:
            raise ValueError(
                f"robot workspace dim {robot.workspace_dim} != "
                f"environment dim {environment.workspace_dim}"
            )
        if motion_resolution <= 0:
            raise ValueError("motion_resolution must be positive")
        if kernels not in KERNEL_BACKENDS:
            raise ValueError(
                f"unknown kernel backend {kernels!r}; available: {KERNEL_BACKENDS}"
            )
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if cache_quantum < 0:
            raise ValueError("cache_quantum must be >= 0")
        self.robot = robot
        self.environment = environment
        self.motion_resolution = motion_resolution
        self.kernels = kernels
        self._config_cache = LRUMap(cache_size) if cache_size > 0 else None
        self._cache_quantum = cache_quantum

    @property
    def config_cache(self) -> Optional[LRUMap]:
        """The collision-result cache (None when caching is disabled)."""
        return self._config_cache

    def config_in_collision(self, config: np.ndarray, counter=None) -> bool:
        """True when the robot at ``config`` intersects any obstacle."""
        config = np.asarray(config, dtype=float)
        return self._check_configs(config[None, :], counter)

    def motion_in_collision(self, start: np.ndarray, end: np.ndarray, counter=None) -> bool:
        """True when the movement from ``start`` to ``end`` hits an obstacle.

        The straight C-space segment is discretised at ``motion_resolution``
        and each configuration checked from the ``start`` side, stopping at
        the first collision.
        """
        bump("repro_cc_motion_checks_total",
             help="Motion (edge) collision queries issued")
        configs = interpolate_configs(start, end, self.motion_resolution)
        return self._check_configs(configs, counter)

    # ----------------------------------------------------------- dispatch

    def _check_configs(self, configs: np.ndarray, counter) -> bool:
        """Collision verdict over ordered configurations (first hit wins).

        The batch path computes every waypoint's geometry wholesale, then
        replays the scalar waypoint/body/obstacle iteration over the masks;
        configurations past the first colliding one therefore contribute no
        counter events, exactly like the scalar early exit.

        Note the collision cache is deliberately NOT consulted here: the
        per-configuration bookkeeping it needs costs more than it saves on
        a single short movement.  Cached results flow through
        :meth:`config_results`, where the wavefront planner amortises the
        bookkeeping over a whole wave of edges; per-configuration event
        sums equal the aggregate replay (integer cost weights), so both
        entry points produce identical counters.
        """
        if (
            self.kernels == "batch"
            and self._has_batch_kernels
            and self.environment.num_obstacles
        ):
            bodies = BodyBatch.from_frames(*self.robot.body_frames_batch(configs))
            return self._batch_check(bodies, counter)
        for config in configs:
            if self._config_scalar(config, counter):
                return True
        return False

    @staticmethod
    def _replay_config_results(verdicts, events, counter) -> bool:
        """Scalar early-exit scan over per-configuration results.

        Merges each configuration's stored counter events in order and stops
        at the first collision — the exact event stream the scalar loop
        produces for the same movement.
        """
        for verdict, captured in zip(verdicts, events):
            if counter is not None:
                counter.merge(captured)
            if verdict:
                return True
        return False

    # --------------------------------------------- per-configuration results

    def _cache_key(self, config: np.ndarray) -> bytes:
        if self._cache_quantum > 0.0:
            return np.round(config / self._cache_quantum).astype(np.int64).tobytes()
        return config.tobytes()

    def config_results(self, configs: np.ndarray):
        """Per-configuration ``(verdicts, events)`` with cache reuse.

        Returns a boolean verdict and an :class:`OpCounter` of the events the
        scalar check of that configuration records, for every row of
        ``configs``.  Cache misses are computed in one batched kernel pass
        (or the scalar loop on the reference backend) and inserted; hits
        return the stored pair.  The wavefront planner calls this once per
        wave with every speculative edge's waypoints concatenated, then
        replays per-edge slices at commit time.
        """
        configs = np.asarray(configs, dtype=float)
        cache = self._config_cache
        if cache is None:
            return self._compute_config_results(configs)
        count = len(configs)
        verdicts: List = [None] * count
        events: List = [None] * count
        missing: "dict" = {}
        for i in range(count):
            key = self._cache_key(configs[i])
            entry = cache.get(key)
            if entry is not None:
                verdicts[i], events[i] = entry
            else:
                missing.setdefault(key, []).append(i)
        hit_count = count - sum(len(rows) for rows in missing.values())
        evictions_before = cache.evictions
        if missing:
            order = list(missing)
            miss_configs = configs[[missing[key][0] for key in order]]
            miss_verdicts, miss_events = self._compute_config_results(miss_configs)
            for key, verdict, captured in zip(order, miss_verdicts, miss_events):
                cache.put(key, (verdict, captured))
                for i in missing[key]:
                    verdicts[i], events[i] = verdict, captured
        if hit_count:
            bump("repro_cache_events_total", hit_count, cache="collision",
                 event="hit", help="Software cache events by cache and outcome")
        if missing:
            bump("repro_cache_events_total", len(missing), cache="collision",
                 event="miss", help="Software cache events by cache and outcome")
        evicted = cache.evictions - evictions_before
        if evicted:
            bump("repro_cache_events_total", evicted, cache="collision",
                 event="evict", help="Software cache events by cache and outcome")
        return verdicts, events

    def _compute_config_results(self, configs: np.ndarray):
        """Uncached per-configuration results (batched when possible)."""
        if (
            self.kernels == "batch"
            and self._has_batch_kernels
            and self.environment.num_obstacles
        ):
            bodies = BodyBatch.from_frames(*self.robot.body_frames_batch(configs))
            return self._batch_config_results(bodies, len(configs))
        verdicts, events = [], []
        for config in configs:
            captured = OpCounter()
            verdicts.append(self._config_scalar(config, captured))
            events.append(captured)
        return verdicts, events

    def _batch_config_results(self, bodies: BodyBatch, count: int):
        """Vectorized per-configuration verdicts + events (batch backend)."""
        raise NotImplementedError

    @staticmethod
    def _per_config_replay(mask: np.ndarray, kind: str, dim: int, count: int):
        """Per-configuration replay of a flat SAT mask.

        ``mask`` rows follow the scalar order (configuration-major,
        body-minor, obstacle-innermost); each configuration's block gets its
        own early-exit event count, so merging the blocks in order
        reproduces the aggregate :meth:`_replay_flat` totals exactly.
        """
        flat = mask.reshape(count, -1)
        block = flat.shape[1]
        hit_any = flat.any(axis=1)
        firsts = np.argmax(flat, axis=1)
        verdicts, events = [], []
        for i in range(count):
            hit = bool(hit_any[i])
            n = int(firsts[i]) + 1 if hit else block
            captured = OpCounter()
            if n:
                captured.record(kind, dim=dim, n=n)
            verdicts.append(hit)
            events.append(captured)
        return verdicts, events

    def _config_scalar(self, config: np.ndarray, counter) -> bool:
        """Scalar single-configuration check (the reference code path)."""
        raise NotImplementedError

    def _batch_check(self, bodies: BodyBatch, counter) -> bool:
        """Vectorized check over a :class:`BodyBatch` of waypoint rows."""
        raise NotImplementedError

    @staticmethod
    def _replay_flat(mask: np.ndarray, kind: str, dim: int, counter) -> bool:
        """Replay a scalar early-exit scan over a flattened boolean mask.

        ``mask`` rows follow the scalar iteration order (row-major over the
        (configuration, body, obstacle) nest).  The scalar loop records one
        ``kind`` event per test and returns at the first hit; the replay
        records the same number of events in one aggregated call.
        """
        flat = mask.ravel()
        hit = bool(flat.any())
        if counter is not None:
            n = int(np.argmax(flat)) + 1 if hit else flat.size
            if n:
                counter.record(kind, dim=dim, n=n)
        return hit


class BruteOBBChecker(CollisionChecker):
    """Exhaustive OBB-OBB checking (vanilla RRT\\*)."""

    _has_batch_kernels = True

    def _config_scalar(self, config: np.ndarray, counter) -> bool:
        dim = self.environment.workspace_dim
        for body in self.robot.body_obbs(config):
            for obstacle in self.environment.obstacles:
                if counter is not None:
                    counter.record("sat_obb_obb", dim=dim)
                if obb_intersects_obb(body, obstacle):
                    return True
        return False

    def _batch_check(self, bodies: BodyBatch, counter) -> bool:
        obs = self.environment.obstacle_tensors
        mask = kernels_batch.obb_obb_grid(
            bodies.centers, bodies.half_extents, bodies.rotations,
            obs.centers, obs.half_extents, obs.rotations,
        )
        # The scalar nest iterates waypoint-major, body-minor, obstacle-
        # innermost: exactly the row-major flattening of ``mask``.
        return self._replay_flat(mask, "sat_obb_obb", obs.dim, counter)

    def _batch_config_results(self, bodies: BodyBatch, count: int):
        obs = self.environment.obstacle_tensors
        mask = kernels_batch.obb_obb_grid(
            bodies.centers, bodies.half_extents, bodies.rotations,
            obs.centers, obs.half_extents, obs.rotations,
        )
        return self._per_config_replay(mask, "sat_obb_obb", obs.dim, count)


class BruteAABBChecker(CollisionChecker):
    """Exhaustive AABB-OBB checking with AABB-represented obstacles.

    Cheaper per query than :class:`BruteOBBChecker` but over-approximates
    obstacles, so it may flag collision-free movements as colliding.
    """

    _has_batch_kernels = True

    def _config_scalar(self, config: np.ndarray, counter) -> bool:
        dim = self.environment.workspace_dim
        for body in self.robot.body_obbs(config):
            for box in self.environment.obstacle_aabbs:
                if counter is not None:
                    counter.record("sat_aabb_obb", dim=dim)
                if aabb_intersects_obb(box, body):
                    return True
        return False

    def _batch_check(self, bodies: BodyBatch, counter) -> bool:
        obs = self.environment.obstacle_tensors
        mask = kernels_batch.aabb_obb_grid(
            obs.aabb_lo, obs.aabb_hi,
            bodies.centers, bodies.half_extents, bodies.rotations,
        )
        return self._replay_flat(mask, "sat_aabb_obb", obs.dim, counter)

    def _batch_config_results(self, bodies: BodyBatch, count: int):
        obs = self.environment.obstacle_tensors
        mask = kernels_batch.aabb_obb_grid(
            obs.aabb_lo, obs.aabb_hi,
            bodies.centers, bodies.half_extents, bodies.rotations,
        )
        return self._per_config_replay(mask, "sat_aabb_obb", obs.dim, count)


class TwoStageChecker(CollisionChecker):
    """MOPED's two-stage processing scheme (Section III-A).

    First stage: walk the obstacle R-tree with cheap AABB-OBB checks; clear
    subtrees are skipped wholesale.  Second stage: the surviving leaf
    candidates get the accurate OBB-OBB check.

    With ``fine_stage=False`` the checker stops after the first stage and
    treats every surviving candidate as a collision — the AABB-only MOPED
    variant of Fig 18 (right).

    The batch backend keeps the funnel: stage-1 masks are computed for
    every (waypoint row, R-tree unit) pair in two stacked passes, but the
    exact OBB-OBB SAT is evaluated *only* for the (row, obstacle) pairs
    whose leaf entry passes both stage-1 masks — the same pairs the scalar
    traversal would forward to the second stage.
    """

    _has_batch_kernels = True

    def __init__(
        self,
        robot: RobotModel,
        environment: Environment,
        motion_resolution: float,
        fine_stage: bool = True,
        kernels: str = "batch",
        cache_size: int = 0,
        cache_quantum: float = 0.0,
    ):
        super().__init__(
            robot, environment, motion_resolution, kernels=kernels,
            cache_size=cache_size, cache_quantum=cache_quantum,
        )
        self.fine_stage = fine_stage
        self._rtree = environment.rtree

    def _config_scalar(self, config: np.ndarray, counter) -> bool:
        dim = self.environment.workspace_dim
        for body in self.robot.body_obbs(config):
            if counter is not None:
                counter.record("aabb_derive", dim=dim)
            candidates = self._rtree.query_obb(
                body, counter=counter, prefilter_aabb=body.to_aabb()
            )
            # Filter-efficiency metrics: how many obstacles survive the
            # cheap first stage and reach the exact OBB-OBB second stage.
            bump("repro_cc_stage1_queries_total",
                 help="Two-stage first-stage (R-tree AABB filter) queries")
            if candidates:
                bump("repro_cc_stage1_survivors_total", len(candidates),
                     help="Obstacles surviving the first-stage AABB filter")
            if not self.fine_stage:
                if candidates:
                    return True
                continue
            for idx in candidates:
                if counter is not None:
                    counter.record("sat_obb_obb", dim=dim)
                bump("repro_cc_stage2_checks_total",
                     help="Exact OBB-OBB checks run in the second stage")
                if obb_intersects_obb(body, self.environment.obstacles[idx]):
                    return True
        return False

    def _stage2_hits(self, bodies: BodyBatch, entry_pass: np.ndarray) -> np.ndarray:
        """Exact OBB-OBB verdicts for the stage-1 surviving (row, obstacle)
        pairs, scattered back into an ``(R, M)`` boolean matrix."""
        obs = self.environment.obstacle_tensors
        hits = np.zeros(entry_pass.shape, dtype=bool)
        rows, cols = np.nonzero(entry_pass)
        if rows.size:
            hits[rows, cols] = kernels_batch.obb_obb_pairs(
                bodies.centers[rows], bodies.half_extents[rows],
                bodies.rotations[rows],
                obs.centers[cols], obs.half_extents[cols], obs.rotations[cols],
            )
        return hits

    def _batch_check(self, bodies: BodyBatch, counter) -> bool:
        env = self.environment
        ftree = env.flat_rtree
        dim = env.workspace_dim
        lo, hi = bodies.aabb_corners()
        # Stage-1 masks against every traversal unit (node MBRs, then leaf
        # entry boxes) in two stacked passes, then the per-row traversal
        # statistics via ndarray reductions over the static tree structure.
        aabb_mask = kernels_batch.aabb_aabb_grid(lo, hi, ftree.unit_lo, ftree.unit_hi)
        obb_mask = kernels_batch.aabb_obb_grid(
            ftree.unit_lo, ftree.unit_hi,
            bodies.centers, bodies.half_extents, bodies.rotations,
        )
        split = ftree.num_nodes
        n_aabb, n_obb, candidates = ftree.batch_query_counts(
            aabb_mask[:, :split], obb_mask[:, :split],
            aabb_mask[:, split:], obb_mask[:, split:],
        )
        survivors = candidates.sum(axis=1)

        if not self.fine_stage:
            # A row with any surviving candidate is a collision; rows after
            # the first such row are never reached by the scalar loop.
            hit_rows = survivors > 0
            hit = bool(hit_rows.any())
            done = int(np.argmax(hit_rows)) + 1 if hit else bodies.rows
            self._record_stage1(counter, dim, done, n_aabb, n_obb, survivors)
            return hit

        # Second stage, funnelled: the exact SAT runs only on the candidate
        # pairs.  Columns are then permuted into the traversal's static
        # visit order so per-row early-exit counts are cumulative sums.
        stage2 = self._stage2_hits(bodies, candidates)
        order = ftree.entry_order
        cand_ord = candidates[:, order]
        hits_ord = stage2[:, order]
        row_hit = hits_ord.any(axis=1)
        hit = bool(row_hit.any())
        if hit:
            row = int(np.argmax(row_hit))
            done = row + 1
            # Checks in the hitting row stop at the hitting candidate; the
            # candidate's position in visit order is its cumulative count.
            first = int(np.argmax(hits_ord[row]))
            checks = int(survivors[:row].sum()) + int(
                np.count_nonzero(cand_ord[row, : first + 1])
            )
        else:
            done = bodies.rows
            checks = int(survivors.sum())
        self._record_stage1(counter, dim, done, n_aabb, n_obb, survivors)
        if checks:
            if counter is not None:
                counter.record("sat_obb_obb", dim=dim, n=checks)
            bump("repro_cc_stage2_checks_total", checks,
                 help="Exact OBB-OBB checks run in the second stage")
        return hit

    def _batch_config_results(self, bodies: BodyBatch, count: int):
        """Per-configuration two-stage results from one stacked kernel pass.

        The stage-1/stage-2 tensors are computed exactly as in
        :meth:`_batch_check`; each configuration's contiguous block of body
        rows is then replayed independently, so a block's events equal what
        the scalar loop records for that configuration alone.
        """
        env = self.environment
        ftree = env.flat_rtree
        dim = env.workspace_dim
        lo, hi = bodies.aabb_corners()
        aabb_mask = kernels_batch.aabb_aabb_grid(lo, hi, ftree.unit_lo, ftree.unit_hi)
        obb_mask = kernels_batch.aabb_obb_grid(
            ftree.unit_lo, ftree.unit_hi,
            bodies.centers, bodies.half_extents, bodies.rotations,
        )
        split = ftree.num_nodes
        n_aabb, n_obb, candidates = ftree.batch_query_counts(
            aabb_mask[:, :split], obb_mask[:, :split],
            aabb_mask[:, split:], obb_mask[:, split:],
        )
        survivors = candidates.sum(axis=1)
        bpc = bodies.rows // count
        rng = np.arange(count)
        # Per-configuration traversal statistics as (config, body) blocks;
        # cumulative sums give each block's "first done rows" totals without
        # per-config slicing.
        na_cum = n_aabb.reshape(count, bpc).cumsum(axis=1)
        no_cum = n_obb.reshape(count, bpc).cumsum(axis=1)
        su_cum = survivors.reshape(count, bpc).cumsum(axis=1)

        if not self.fine_stage:
            block_hit = survivors.reshape(count, bpc) > 0
            hit_any = block_hit.any(axis=1)
            dones = np.where(hit_any, np.argmax(block_hit, axis=1) + 1, bpc)
            checks_arr = np.zeros(count, dtype=np.int64)
        else:
            stage2 = self._stage2_hits(bodies, candidates)
            order = ftree.entry_order
            cand_ord = candidates[:, order]
            hits_ord = stage2[:, order]
            block_hit = hits_ord.any(axis=1).reshape(count, bpc)
            hit_any = block_hit.any(axis=1)
            rels = np.argmax(block_hit, axis=1)
            dones = np.where(hit_any, rels + 1, bpc)
            # Misses run the SAT on every surviving candidate; hits stop at
            # the hitting candidate of the hitting row.
            checks_arr = su_cum[:, -1].astype(np.int64)
            for k in np.nonzero(hit_any)[0]:
                rel = int(rels[k])
                row = k * bpc + rel
                first = int(np.argmax(hits_ord[row]))
                before = int(su_cum[k, rel - 1]) if rel else 0
                checks_arr[k] = before + int(
                    np.count_nonzero(cand_ord[row, : first + 1])
                )

        aabb_tot = na_cum[rng, dones - 1]
        obb_tot = no_cum[rng, dones - 1]
        sur_tot = su_cum[rng, dones - 1]
        # Python lists: the per-config loop below indexes every entry once,
        # and list indexing is several times cheaper than ndarray scalars.
        dones_l = dones.tolist()
        aabb_l = aabb_tot.tolist()
        obb_l = obb_tot.tolist()
        checks_l = checks_arr.tolist()
        verdicts: List[bool] = [bool(h) for h in hit_any.tolist()]
        events: List[OpCounter] = []
        for k in range(count):
            captured = OpCounter()
            captured.record("aabb_derive", dim=dim, n=dones_l[k])
            if aabb_l[k]:
                captured.record("sat_aabb_aabb", dim=dim, n=int(aabb_l[k]))
            if obb_l[k]:
                captured.record("sat_aabb_obb", dim=dim, n=int(obb_l[k]))
            if checks_l[k]:
                captured.record("sat_obb_obb", dim=dim, n=checks_l[k])
            events.append(captured)
        bump("repro_cc_stage1_queries_total", int(dones.sum()),
             help="Two-stage first-stage (R-tree AABB filter) queries")
        if int(sur_tot.sum()):
            bump("repro_cc_stage1_survivors_total", int(sur_tot.sum()),
                 help="Obstacles surviving the first-stage AABB filter")
        if int(checks_arr.sum()):
            bump("repro_cc_stage2_checks_total", int(checks_arr.sum()),
                 help="Exact OBB-OBB checks run in the second stage")
        return verdicts, events

    @staticmethod
    def _record_stage1(counter, dim: int, done: int, n_aabb, n_obb, survivors) -> None:
        """Record the stage-1 work of the first ``done`` rows (the rows the
        scalar loop processes before returning)."""
        if counter is not None:
            counter.record("aabb_derive", dim=dim, n=done)
            total_aabb = int(n_aabb[:done].sum())
            if total_aabb:
                counter.record("sat_aabb_aabb", dim=dim, n=total_aabb)
            total_obb = int(n_obb[:done].sum())
            if total_obb:
                counter.record("sat_aabb_obb", dim=dim, n=total_obb)
        bump("repro_cc_stage1_queries_total", done,
             help="Two-stage first-stage (R-tree AABB filter) queries")
        total_survivors = int(survivors[:done].sum())
        if total_survivors:
            bump("repro_cc_stage1_survivors_total", total_survivors,
                 help="Obstacles surviving the first-stage AABB filter")


class OccupancyGridChecker(CollisionChecker):
    """CODAcc-style occupancy-grid checking (baseline of Section V-B).

    The grid is built offline by rasterising every obstacle OBB at
    ``resolution`` units per cell (paper setting: 1.0).  A configuration is
    in collision when any grid cell covered by a body OBB is occupied.  The
    checker is conservative: cells partially covered by an obstacle are
    marked occupied, so clear means clear.

    Attributes:
        grid: boolean occupancy array.
        grid_bytes: storage the grid needs at one bit per cell — with the
            paper's 300^3 workspace this exceeds 3.2 MB, the on-chip memory
            pressure the paper charges against the CODAcc baseline.
    """

    def __init__(
        self,
        robot: RobotModel,
        environment: Environment,
        motion_resolution: float,
        resolution: float = 1.0,
        kernels: str = "batch",
        cache_size: int = 0,
        cache_quantum: float = 0.0,
    ):
        super().__init__(
            robot, environment, motion_resolution, kernels=kernels,
            cache_size=cache_size, cache_quantum=cache_quantum,
        )
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        self.resolution = resolution
        self._cells = int(math.ceil(environment.size / resolution))
        # Cell-centre coordinates per axis, computed once for the whole
        # obstacle batch (and reused by every query); rasterisation slices
        # this instead of rebuilding per-obstacle centre grids.
        self._axis_centers = (np.arange(self._cells) + 0.5) * resolution
        shape = (self._cells,) * environment.workspace_dim
        self.grid = np.zeros(shape, dtype=bool)
        for obstacle in environment.obstacles:
            self._rasterise(obstacle)

    @property
    def grid_bytes(self) -> int:
        """Grid storage at one bit per cell."""
        return int(math.ceil(self.grid.size / 8))

    def _index_range(self, box) -> Optional[Tuple[slice, ...]]:
        """Grid index slices covering an AABB, clipped to the workspace."""
        lo_idx = np.clip(np.floor(box.lo / self.resolution).astype(int), 0, self._cells)
        hi_idx = np.clip(np.ceil(box.hi / self.resolution).astype(int), 0, self._cells)
        if np.any(lo_idx >= hi_idx):
            return None
        return tuple(slice(int(lo_idx[d]), int(hi_idx[d])) for d in range(box.dim))

    def _region_inside(self, region: Tuple[slice, ...], obb: OBB, pad: float = 0.0):
        """Mask of region cells whose centres fall inside the (padded) OBB.

        Returned flat (C-order raveled over the region), matching how
        ``grid[region]`` ravels.
        """
        mesh = np.meshgrid(*(self._axis_centers[s] for s in region), indexing="ij")
        centers = np.stack([m.ravel() for m in mesh], axis=1)
        local = (centers - obb.center) @ obb.rotation
        return np.all(np.abs(local) <= obb.half_extents + pad, axis=1)

    def _rasterise(self, obstacle: OBB) -> None:
        """Mark every cell whose centre region intersects ``obstacle``.

        Cells are tested at their centres with the obstacle's half-extents
        padded by half a cell diagonal, a conservative cover.
        """
        region = self._index_range(obstacle.to_aabb())
        if region is None:
            return
        pad = 0.5 * self.resolution * math.sqrt(obstacle.dim)
        inside = self._region_inside(region, obstacle, pad=pad)
        self.grid[region] |= inside.reshape(self.grid[region].shape)

    def _config_scalar(self, config: np.ndarray, counter) -> bool:
        for body in self.robot.body_obbs(config):
            region = self._index_range(body.to_aabb())
            if region is None:
                continue
            inside = self._region_inside(region, body)
            probes = int(np.count_nonzero(inside))
            if counter is not None and probes:
                counter.record(
                    "grid_lookup", dim=self.environment.workspace_dim, n=probes
                )
            if probes and bool(np.any(self.grid[region].reshape(-1)[inside])):
                return True
        return False


CHECKERS = {
    "obb": BruteOBBChecker,
    "aabb": BruteAABBChecker,
    "two_stage": TwoStageChecker,
    "grid": OccupancyGridChecker,
}


def make_checker(
    name: str, robot: RobotModel, environment: Environment, motion_resolution: float, **kwargs
) -> CollisionChecker:
    """Factory over the checker registry."""
    try:
        cls = CHECKERS[name]
    except KeyError:
        raise KeyError(f"unknown checker {name!r}; available: {sorted(CHECKERS)}") from None
    return cls(robot, environment, motion_resolution, **kwargs)
