"""Collision checkers: brute OBB, AABB-only, two-stage, and occupancy grid.

Four interchangeable checkers cover the paper's design space:

* :class:`BruteOBBChecker` — the vanilla RRT\\* checker: every body OBB is
  SAT-tested against every obstacle OBB at every interpolated configuration
  of a movement (the Section II-C cost bottleneck).
* :class:`BruteAABBChecker` — obstacles represented by their AABBs and
  checked with the cheaper AABB-OBB SAT.  Conservative: clear means clear,
  but its false positives degrade path quality (Section III-A, Fig 5/18).
* :class:`TwoStageChecker` — MOPED's contribution (Section III-A): an
  R-tree traversal of AABB-OBB checks filters the obstacle set, and only the
  surviving candidates receive the accurate OBB-OBB second stage.  Decisions
  are *identical* to :class:`BruteOBBChecker` (the filter is conservative
  and the second stage exact) at a fraction of the cost.
* :class:`OccupancyGridChecker` — the CODAcc baseline (ISCA'22, ref [4]):
  the workspace is discretised at one unit per cell and a configuration is
  checked by probing the voxels covered by the robot body.  Conservative by
  construction (voxels are outer approximations).

All checkers share one interface: ``config_in_collision`` for a single
configuration and ``motion_in_collision`` for a movement, which walks the
interpolated configurations from the tree side so collisions are found with
the fewest checks.

Kernel backends
---------------

Each checker runs on one of two interchangeable backends
(:data:`repro.kernels.KERNEL_BACKENDS`):

* ``"reference"`` — the original scalar code path: one Python-level SAT
  call per (configuration, body, obstacle), early-exiting exactly where the
  hardware would.
* ``"batch"`` (default) — the geometry for a whole movement (every
  interpolated waypoint x every body x every obstacle) is evaluated in a
  few stacked ndarray passes (:mod:`repro.kernels.batch`), and the scalar
  control flow is then *replayed* over the precomputed boolean masks.  The
  replay visits checks in the scalar order and stops at the scalar early
  exits, recording aggregated :class:`~repro.core.counters.OpCounter`
  events — so decisions *and* operation counts are bit-identical to the
  reference backend while the arithmetic runs at ndarray speed.

The occupancy-grid checker's inner loop is already an ndarray pass per
body, so it has no separate batch path.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.core.robots import RobotModel
from repro.core.world import Environment
from repro.geometry.motion import interpolate_configs
from repro.kernels import KERNEL_BACKENDS, batch as kernels_batch
from repro.kernels.tensors import BodyBatch
from repro.obs import bump
from repro.geometry.obb import OBB
from repro.geometry.sat import aabb_intersects_obb, obb_intersects_obb


class CollisionChecker:
    """Base class wiring a robot model to an environment.

    Args:
        kernels: ``"batch"`` evaluates movement checks through the
            vectorized kernels with exact count replay; ``"reference"``
            keeps the original scalar per-object loops.
    """

    #: Subclasses with a vectorized movement check set this True; others
    #: (the grid checker) always run the scalar per-configuration loop.
    _has_batch_kernels = False

    def __init__(
        self,
        robot: RobotModel,
        environment: Environment,
        motion_resolution: float,
        kernels: str = "batch",
    ):
        if robot.workspace_dim != environment.workspace_dim:
            raise ValueError(
                f"robot workspace dim {robot.workspace_dim} != "
                f"environment dim {environment.workspace_dim}"
            )
        if motion_resolution <= 0:
            raise ValueError("motion_resolution must be positive")
        if kernels not in KERNEL_BACKENDS:
            raise ValueError(
                f"unknown kernel backend {kernels!r}; available: {KERNEL_BACKENDS}"
            )
        self.robot = robot
        self.environment = environment
        self.motion_resolution = motion_resolution
        self.kernels = kernels

    def config_in_collision(self, config: np.ndarray, counter=None) -> bool:
        """True when the robot at ``config`` intersects any obstacle."""
        config = np.asarray(config, dtype=float)
        return self._check_configs(config[None, :], counter)

    def motion_in_collision(self, start: np.ndarray, end: np.ndarray, counter=None) -> bool:
        """True when the movement from ``start`` to ``end`` hits an obstacle.

        The straight C-space segment is discretised at ``motion_resolution``
        and each configuration checked from the ``start`` side, stopping at
        the first collision.
        """
        bump("repro_cc_motion_checks_total",
             help="Motion (edge) collision queries issued")
        configs = interpolate_configs(start, end, self.motion_resolution)
        return self._check_configs(configs, counter)

    # ----------------------------------------------------------- dispatch

    def _check_configs(self, configs: np.ndarray, counter) -> bool:
        """Collision verdict over ordered configurations (first hit wins).

        The batch path computes every waypoint's geometry wholesale, then
        replays the scalar waypoint/body/obstacle iteration over the masks;
        configurations past the first colliding one therefore contribute no
        counter events, exactly like the scalar early exit.
        """
        if (
            self.kernels == "batch"
            and self._has_batch_kernels
            and self.environment.num_obstacles
        ):
            bodies = BodyBatch.from_frames(*self.robot.body_frames_batch(configs))
            return self._batch_check(bodies, counter)
        for config in configs:
            if self._config_scalar(config, counter):
                return True
        return False

    def _config_scalar(self, config: np.ndarray, counter) -> bool:
        """Scalar single-configuration check (the reference code path)."""
        raise NotImplementedError

    def _batch_check(self, bodies: BodyBatch, counter) -> bool:
        """Vectorized check over a :class:`BodyBatch` of waypoint rows."""
        raise NotImplementedError

    @staticmethod
    def _replay_flat(mask: np.ndarray, kind: str, dim: int, counter) -> bool:
        """Replay a scalar early-exit scan over a flattened boolean mask.

        ``mask`` rows follow the scalar iteration order (row-major over the
        (configuration, body, obstacle) nest).  The scalar loop records one
        ``kind`` event per test and returns at the first hit; the replay
        records the same number of events in one aggregated call.
        """
        flat = mask.ravel()
        hit = bool(flat.any())
        if counter is not None:
            n = int(np.argmax(flat)) + 1 if hit else flat.size
            if n:
                counter.record(kind, dim=dim, n=n)
        return hit


class BruteOBBChecker(CollisionChecker):
    """Exhaustive OBB-OBB checking (vanilla RRT\\*)."""

    _has_batch_kernels = True

    def _config_scalar(self, config: np.ndarray, counter) -> bool:
        dim = self.environment.workspace_dim
        for body in self.robot.body_obbs(config):
            for obstacle in self.environment.obstacles:
                if counter is not None:
                    counter.record("sat_obb_obb", dim=dim)
                if obb_intersects_obb(body, obstacle):
                    return True
        return False

    def _batch_check(self, bodies: BodyBatch, counter) -> bool:
        obs = self.environment.obstacle_tensors
        mask = kernels_batch.obb_obb_grid(
            bodies.centers, bodies.half_extents, bodies.rotations,
            obs.centers, obs.half_extents, obs.rotations,
        )
        # The scalar nest iterates waypoint-major, body-minor, obstacle-
        # innermost: exactly the row-major flattening of ``mask``.
        return self._replay_flat(mask, "sat_obb_obb", obs.dim, counter)


class BruteAABBChecker(CollisionChecker):
    """Exhaustive AABB-OBB checking with AABB-represented obstacles.

    Cheaper per query than :class:`BruteOBBChecker` but over-approximates
    obstacles, so it may flag collision-free movements as colliding.
    """

    _has_batch_kernels = True

    def _config_scalar(self, config: np.ndarray, counter) -> bool:
        dim = self.environment.workspace_dim
        for body in self.robot.body_obbs(config):
            for box in self.environment.obstacle_aabbs:
                if counter is not None:
                    counter.record("sat_aabb_obb", dim=dim)
                if aabb_intersects_obb(box, body):
                    return True
        return False

    def _batch_check(self, bodies: BodyBatch, counter) -> bool:
        obs = self.environment.obstacle_tensors
        mask = kernels_batch.aabb_obb_grid(
            obs.aabb_lo, obs.aabb_hi,
            bodies.centers, bodies.half_extents, bodies.rotations,
        )
        return self._replay_flat(mask, "sat_aabb_obb", obs.dim, counter)


class TwoStageChecker(CollisionChecker):
    """MOPED's two-stage processing scheme (Section III-A).

    First stage: walk the obstacle R-tree with cheap AABB-OBB checks; clear
    subtrees are skipped wholesale.  Second stage: the surviving leaf
    candidates get the accurate OBB-OBB check.

    With ``fine_stage=False`` the checker stops after the first stage and
    treats every surviving candidate as a collision — the AABB-only MOPED
    variant of Fig 18 (right).

    The batch backend keeps the funnel: stage-1 masks are computed for
    every (waypoint row, R-tree unit) pair in two stacked passes, but the
    exact OBB-OBB SAT is evaluated *only* for the (row, obstacle) pairs
    whose leaf entry passes both stage-1 masks — the same pairs the scalar
    traversal would forward to the second stage.
    """

    _has_batch_kernels = True

    def __init__(
        self,
        robot: RobotModel,
        environment: Environment,
        motion_resolution: float,
        fine_stage: bool = True,
        kernels: str = "batch",
    ):
        super().__init__(robot, environment, motion_resolution, kernels=kernels)
        self.fine_stage = fine_stage
        self._rtree = environment.rtree

    def _config_scalar(self, config: np.ndarray, counter) -> bool:
        dim = self.environment.workspace_dim
        for body in self.robot.body_obbs(config):
            if counter is not None:
                counter.record("aabb_derive", dim=dim)
            candidates = self._rtree.query_obb(
                body, counter=counter, prefilter_aabb=body.to_aabb()
            )
            # Filter-efficiency metrics: how many obstacles survive the
            # cheap first stage and reach the exact OBB-OBB second stage.
            bump("repro_cc_stage1_queries_total",
                 help="Two-stage first-stage (R-tree AABB filter) queries")
            if candidates:
                bump("repro_cc_stage1_survivors_total", len(candidates),
                     help="Obstacles surviving the first-stage AABB filter")
            if not self.fine_stage:
                if candidates:
                    return True
                continue
            for idx in candidates:
                if counter is not None:
                    counter.record("sat_obb_obb", dim=dim)
                bump("repro_cc_stage2_checks_total",
                     help="Exact OBB-OBB checks run in the second stage")
                if obb_intersects_obb(body, self.environment.obstacles[idx]):
                    return True
        return False

    def _stage2_hits(self, bodies: BodyBatch, entry_pass: np.ndarray) -> np.ndarray:
        """Exact OBB-OBB verdicts for the stage-1 surviving (row, obstacle)
        pairs, scattered back into an ``(R, M)`` boolean matrix."""
        obs = self.environment.obstacle_tensors
        hits = np.zeros(entry_pass.shape, dtype=bool)
        rows, cols = np.nonzero(entry_pass)
        if rows.size:
            hits[rows, cols] = kernels_batch.obb_obb_pairs(
                bodies.centers[rows], bodies.half_extents[rows],
                bodies.rotations[rows],
                obs.centers[cols], obs.half_extents[cols], obs.rotations[cols],
            )
        return hits

    def _batch_check(self, bodies: BodyBatch, counter) -> bool:
        env = self.environment
        ftree = env.flat_rtree
        dim = env.workspace_dim
        lo, hi = bodies.aabb_corners()
        # Stage-1 masks against every traversal unit (node MBRs, then leaf
        # entry boxes) in two stacked passes, then the per-row traversal
        # statistics via ndarray reductions over the static tree structure.
        aabb_mask = kernels_batch.aabb_aabb_grid(lo, hi, ftree.unit_lo, ftree.unit_hi)
        obb_mask = kernels_batch.aabb_obb_grid(
            ftree.unit_lo, ftree.unit_hi,
            bodies.centers, bodies.half_extents, bodies.rotations,
        )
        split = ftree.num_nodes
        n_aabb, n_obb, candidates = ftree.batch_query_counts(
            aabb_mask[:, :split], obb_mask[:, :split],
            aabb_mask[:, split:], obb_mask[:, split:],
        )
        survivors = candidates.sum(axis=1)

        if not self.fine_stage:
            # A row with any surviving candidate is a collision; rows after
            # the first such row are never reached by the scalar loop.
            hit_rows = survivors > 0
            hit = bool(hit_rows.any())
            done = int(np.argmax(hit_rows)) + 1 if hit else bodies.rows
            self._record_stage1(counter, dim, done, n_aabb, n_obb, survivors)
            return hit

        # Second stage, funnelled: the exact SAT runs only on the candidate
        # pairs.  Columns are then permuted into the traversal's static
        # visit order so per-row early-exit counts are cumulative sums.
        stage2 = self._stage2_hits(bodies, candidates)
        order = ftree.entry_order
        cand_ord = candidates[:, order]
        hits_ord = stage2[:, order]
        row_hit = hits_ord.any(axis=1)
        hit = bool(row_hit.any())
        if hit:
            row = int(np.argmax(row_hit))
            done = row + 1
            # Checks in the hitting row stop at the hitting candidate; the
            # candidate's position in visit order is its cumulative count.
            first = int(np.argmax(hits_ord[row]))
            checks = int(survivors[:row].sum()) + int(
                np.count_nonzero(cand_ord[row, : first + 1])
            )
        else:
            done = bodies.rows
            checks = int(survivors.sum())
        self._record_stage1(counter, dim, done, n_aabb, n_obb, survivors)
        if checks:
            if counter is not None:
                counter.record("sat_obb_obb", dim=dim, n=checks)
            bump("repro_cc_stage2_checks_total", checks,
                 help="Exact OBB-OBB checks run in the second stage")
        return hit

    @staticmethod
    def _record_stage1(counter, dim: int, done: int, n_aabb, n_obb, survivors) -> None:
        """Record the stage-1 work of the first ``done`` rows (the rows the
        scalar loop processes before returning)."""
        if counter is not None:
            counter.record("aabb_derive", dim=dim, n=done)
            total_aabb = int(n_aabb[:done].sum())
            if total_aabb:
                counter.record("sat_aabb_aabb", dim=dim, n=total_aabb)
            total_obb = int(n_obb[:done].sum())
            if total_obb:
                counter.record("sat_aabb_obb", dim=dim, n=total_obb)
        bump("repro_cc_stage1_queries_total", done,
             help="Two-stage first-stage (R-tree AABB filter) queries")
        total_survivors = int(survivors[:done].sum())
        if total_survivors:
            bump("repro_cc_stage1_survivors_total", total_survivors,
                 help="Obstacles surviving the first-stage AABB filter")


class OccupancyGridChecker(CollisionChecker):
    """CODAcc-style occupancy-grid checking (baseline of Section V-B).

    The grid is built offline by rasterising every obstacle OBB at
    ``resolution`` units per cell (paper setting: 1.0).  A configuration is
    in collision when any grid cell covered by a body OBB is occupied.  The
    checker is conservative: cells partially covered by an obstacle are
    marked occupied, so clear means clear.

    Attributes:
        grid: boolean occupancy array.
        grid_bytes: storage the grid needs at one bit per cell — with the
            paper's 300^3 workspace this exceeds 3.2 MB, the on-chip memory
            pressure the paper charges against the CODAcc baseline.
    """

    def __init__(
        self,
        robot: RobotModel,
        environment: Environment,
        motion_resolution: float,
        resolution: float = 1.0,
        kernels: str = "batch",
    ):
        super().__init__(robot, environment, motion_resolution, kernels=kernels)
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        self.resolution = resolution
        self._cells = int(math.ceil(environment.size / resolution))
        # Cell-centre coordinates per axis, computed once for the whole
        # obstacle batch (and reused by every query); rasterisation slices
        # this instead of rebuilding per-obstacle centre grids.
        self._axis_centers = (np.arange(self._cells) + 0.5) * resolution
        shape = (self._cells,) * environment.workspace_dim
        self.grid = np.zeros(shape, dtype=bool)
        for obstacle in environment.obstacles:
            self._rasterise(obstacle)

    @property
    def grid_bytes(self) -> int:
        """Grid storage at one bit per cell."""
        return int(math.ceil(self.grid.size / 8))

    def _index_range(self, box) -> Optional[Tuple[slice, ...]]:
        """Grid index slices covering an AABB, clipped to the workspace."""
        lo_idx = np.clip(np.floor(box.lo / self.resolution).astype(int), 0, self._cells)
        hi_idx = np.clip(np.ceil(box.hi / self.resolution).astype(int), 0, self._cells)
        if np.any(lo_idx >= hi_idx):
            return None
        return tuple(slice(int(lo_idx[d]), int(hi_idx[d])) for d in range(box.dim))

    def _region_inside(self, region: Tuple[slice, ...], obb: OBB, pad: float = 0.0):
        """Mask of region cells whose centres fall inside the (padded) OBB.

        Returned flat (C-order raveled over the region), matching how
        ``grid[region]`` ravels.
        """
        mesh = np.meshgrid(*(self._axis_centers[s] for s in region), indexing="ij")
        centers = np.stack([m.ravel() for m in mesh], axis=1)
        local = (centers - obb.center) @ obb.rotation
        return np.all(np.abs(local) <= obb.half_extents + pad, axis=1)

    def _rasterise(self, obstacle: OBB) -> None:
        """Mark every cell whose centre region intersects ``obstacle``.

        Cells are tested at their centres with the obstacle's half-extents
        padded by half a cell diagonal, a conservative cover.
        """
        region = self._index_range(obstacle.to_aabb())
        if region is None:
            return
        pad = 0.5 * self.resolution * math.sqrt(obstacle.dim)
        inside = self._region_inside(region, obstacle, pad=pad)
        self.grid[region] |= inside.reshape(self.grid[region].shape)

    def _config_scalar(self, config: np.ndarray, counter) -> bool:
        for body in self.robot.body_obbs(config):
            region = self._index_range(body.to_aabb())
            if region is None:
                continue
            inside = self._region_inside(region, body)
            probes = int(np.count_nonzero(inside))
            if counter is not None and probes:
                counter.record(
                    "grid_lookup", dim=self.environment.workspace_dim, n=probes
                )
            if probes and bool(np.any(self.grid[region].reshape(-1)[inside])):
                return True
        return False


CHECKERS = {
    "obb": BruteOBBChecker,
    "aabb": BruteAABBChecker,
    "two_stage": TwoStageChecker,
    "grid": OccupancyGridChecker,
}


def make_checker(
    name: str, robot: RobotModel, environment: Environment, motion_resolution: float, **kwargs
) -> CollisionChecker:
    """Factory over the checker registry."""
    try:
        cls = CHECKERS[name]
    except KeyError:
        raise KeyError(f"unknown checker {name!r}; available: {sorted(CHECKERS)}") from None
    return cls(robot, environment, motion_resolution, **kwargs)
