"""Neighbor-search strategies for the planning loop.

Each sampling round of RRT\\* needs two neighbor queries (Section II-B):
the nearest tree node to the sample ``x_rand``, and the neighborhood of the
steered point ``x_new`` used by choose-parent/rewire.  The strategies below
make those queries against different index structures so the planners and
benchmarks can swap them freely:

* :class:`BruteStrategy` — linear scans (vanilla RRT\\*).
* :class:`KDTreeStrategy` — incremental KD-tree, optionally rebuilt
  periodically (the Fig 19 right baseline).
* :class:`SIMBRStrategy` — the paper's SI-MBR-Tree, with independent flags
  for the O(1) steering-informed insertion (LCI, Section III-C) and the
  approximated neighborhood (SIAS, Section III-B).

All queries route operation counts through the shared counter protocol.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Tuple

import numpy as np

from repro.obs import bump
from repro.spatial.brute import BruteForceIndex
from repro.spatial.kdtree import KDTree
from repro.spatial.simbr import SIMBRTree

Neighbor = Tuple[Hashable, np.ndarray, float]


def _count_query(kind: str, strategy: str) -> None:
    """Metrics hook: one neighbor-search query of ``kind`` was issued."""
    bump("repro_ns_queries_total", kind=kind, strategy=strategy,
         help="Neighbor-search queries by kind and index strategy")


class NeighborStrategy:
    """Interface shared by all neighbor-search strategies."""

    #: True when ``nearest`` is a flat linear scan over insertion-ordered
    #: points — the wavefront planner can then evaluate a whole wave's
    #: nearest lookups as one batched distance matrix and charge the exact
    #: per-query costs via :meth:`count_nearest`.
    linear_scan = False

    def __len__(self) -> int:
        raise NotImplementedError

    def insert(
        self,
        key: Hashable,
        point: np.ndarray,
        nearest_key: Optional[Hashable] = None,
        counter=None,
    ) -> None:
        """Add an EXP-tree node.  ``nearest_key`` is the node it was steered from."""
        raise NotImplementedError

    def nearest(self, query: np.ndarray, counter=None, exclude=None):
        """Exact nearest neighbor: ``(key, point, distance)`` or None."""
        raise NotImplementedError

    def neighborhood(
        self,
        query: np.ndarray,
        radius: float,
        nearest_key: Optional[Hashable] = None,
        counter=None,
    ) -> List[Neighbor]:
        """Neighborhood of ``query`` for choose-parent/rewire.

        Exact strategies return all nodes within ``radius``; the approximated
        SI-MBR strategy returns the stored grouping around ``nearest_key``
        instead (no tree search; scope per ``approx_scope``).  Every
        returned tuple carries the distance to ``query`` so callers never
        recompute (and never double-count) it.
        """
        raise NotImplementedError


class BruteStrategy(NeighborStrategy):
    """Linear scans over all tree nodes (the vanilla RRT\\* cost profile)."""

    linear_scan = True

    def __init__(self, dim: int):
        self._index = BruteForceIndex(dim)

    def __len__(self) -> int:
        return len(self._index)

    def insert(self, key, point, nearest_key=None, counter=None) -> None:
        self._index.insert(key, point, counter=counter)

    def nearest(self, query, counter=None, exclude=None):
        _count_query("nearest", "brute")
        return self._index.nearest(query, counter=counter, exclude=exclude)

    def count_nearest(self, counter=None) -> None:
        """Record the cost of one nearest query answered from a wave batch.

        The scalar :meth:`nearest` records one ``dist`` event per stored
        point (before exclusion) and one query metric; the wavefront planner
        answers the query from a precomputed distance matrix and calls this
        to charge the identical cost.
        """
        _count_query("nearest", "brute")
        if counter is not None and len(self._index):
            counter.record("dist", dim=self._index.dim, n=len(self._index))

    def neighborhood(self, query, radius, nearest_key=None, counter=None):
        _count_query("neighborhood", "brute")
        return self._index.neighbors_within(query, radius, counter=counter)


class KDTreeStrategy(NeighborStrategy):
    """Incremental KD-tree with optional periodic rebuilds.

    Args:
        rebuild_every: rebuild the tree after this many insertions (the
            mitigation dynamic datasets force on KD-trees, charged to the
            baseline's operation count); ``None`` disables rebuilds.
    """

    def __init__(self, dim: int, rebuild_every: Optional[int] = None):
        if rebuild_every is not None and rebuild_every < 1:
            raise ValueError("rebuild_every must be >= 1")
        self._tree = KDTree(dim)
        self._rebuild_every = rebuild_every
        self._since_rebuild = 0

    def __len__(self) -> int:
        return len(self._tree)

    def insert(self, key, point, nearest_key=None, counter=None) -> None:
        self._tree.insert(key, point, counter=counter)
        self._since_rebuild += 1
        if self._rebuild_every is not None and self._since_rebuild >= self._rebuild_every:
            self._tree.rebuild(counter=counter)
            self._since_rebuild = 0

    def nearest(self, query, counter=None, exclude=None):
        _count_query("nearest", "kd")
        return self._tree.nearest(query, counter=counter, exclude=exclude)

    def neighborhood(self, query, radius, nearest_key=None, counter=None):
        _count_query("neighborhood", "kd")
        return self._tree.neighbors_within(query, radius, counter=counter)


class SIMBRStrategy(NeighborStrategy):
    """SI-MBR-Tree strategy with the paper's two optional optimisations.

    Args:
        steering_insert: use the O(1) sibling placement (LCI) instead of the
            conventional minimum-area-enlargement descent.
        approx_neighborhood: replace the second (radius) search with the
            stored grouping around ``x_nearest`` (SIAS).
        approx_scope: ``"leaf"`` (default, paper-literal) approximates
            with the population of ``x_nearest``'s leaf — the explicitly
            represented node-C grouping of Fig 7; ``"parent"`` widens to all
            leaves under the leaf's parent, trading part of the saving for
            better path quality in low-dimensional spaces.
        capacity: leaf/node fanout; bounds the approximated neighborhood at
            ``capacity`` (leaf scope) or ``capacity**2`` (parent scope).
        neighborhood_cache: capacity of the SI-MBR-Tree's reused-neighborhood
            cache (0 disables; see :class:`repro.spatial.simbr.SIMBRTree`).
    """

    def __init__(
        self,
        dim: int,
        steering_insert: bool = True,
        approx_neighborhood: bool = True,
        capacity: int = 8,
        approx_scope: str = "leaf",
        neighborhood_cache: int = 0,
    ):
        self._tree = SIMBRTree(
            dim, capacity=capacity, neighborhood_cache=neighborhood_cache
        )
        self.steering_insert = steering_insert
        self.approx_neighborhood = approx_neighborhood
        self.approx_scope = approx_scope

    def __len__(self) -> int:
        return len(self._tree)

    @property
    def tree(self) -> SIMBRTree:
        """The underlying SI-MBR-Tree (exposed for diagnostics/tests)."""
        return self._tree

    def insert(self, key, point, nearest_key=None, counter=None) -> None:
        sibling = nearest_key if self.steering_insert else None
        self._tree.insert(key, point, sibling_of=sibling, counter=counter)

    def nearest(self, query, counter=None, exclude=None):
        _count_query("nearest", "simbr")
        return self._tree.nearest(query, counter=counter, exclude=exclude)

    def neighborhood(self, query, radius, nearest_key=None, counter=None):
        if not self.approx_neighborhood or nearest_key is None:
            _count_query("neighborhood", "simbr")
            return self._tree.neighbors_within(query, radius, counter=counter)
        _count_query("neighborhood_approx", "simbr")
        # SIAS: the stored grouping around x_nearest approximates the
        # radius search around x_new.  Entries beyond the RRT* neighborhood
        # radius are dropped so choose-parent/rewire sees the same scope
        # either way (the distances are needed for the cost comparison
        # regardless).
        out: List[Neighbor] = []
        siblings = self._tree.leaf_siblings(
            nearest_key,
            counter=counter,
            scope=self.approx_scope,
            query=query,
            radius=radius,
        )
        if counter is not None and siblings:
            counter.record("dist", dim=self._tree.dim, n=len(siblings))
        for key, point in siblings:
            dist = float(np.linalg.norm(point - query))
            if dist <= radius:
                out.append((key, point, dist))
        out.sort(key=lambda item: item[2])
        return out


def make_strategy(
    name: str,
    dim: int,
    steering_insert: bool = True,
    approx_neighborhood: bool = True,
    capacity: int = 8,
    kd_rebuild_every: Optional[int] = None,
    approx_scope: str = "leaf",
    neighborhood_cache: int = 0,
) -> NeighborStrategy:
    """Factory over the strategy registry."""
    if name == "brute":
        return BruteStrategy(dim)
    if name == "kd":
        return KDTreeStrategy(dim, rebuild_every=kd_rebuild_every)
    if name == "simbr":
        return SIMBRStrategy(
            dim,
            steering_insert=steering_insert,
            approx_neighborhood=approx_neighborhood,
            capacity=capacity,
            approx_scope=approx_scope,
            neighborhood_cache=neighborhood_cache,
        )
    raise KeyError(f"unknown neighbor strategy {name!r}; available: brute, kd, simbr")
