"""Planner configuration and the paper's ablation presets.

The single :class:`PlannerConfig` drives both the vanilla RRT\\* baseline and
every MOPED variant; the presets mirror the Fig 16 ablation ladder:

* ``baseline``  — original RRT\\*: brute NN, exhaustive OBB-OBB collision.
* ``v1`` (TSPS) — + two-stage collision processing (Section III-A).
* ``v2`` (STNS) — + SI-MBR-Tree neighbor search (Section III-B).
* ``v3`` (SIAS) — + steering-informed approximated neighborhood.
* ``v4`` (LCI)  — + low-cost O(1) insertion (Section III-C) = full MOPED.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class PlannerConfig:
    """All knobs of the planning loop.

    Attributes:
        mode: planning algorithm — ``"rrtstar"`` (the default single-tree
            optimizing planner) or ``"connect"`` (bidirectional RRT-Connect:
            two trees rooted at start and goal, alternating extend + greedy
            connect, stops at the first bridge).  Connect is a feasibility
            planner: ``rewire``, ``goal_bias``, ``stop_on_goal`` and
            ``informed`` do not apply (``informed=True`` is rejected), and
            every other knob — checker, kernels, neighbor strategy, caches,
            ``wave_width``, deadline/op budgets — behaves identically.
        max_samples: sampling budget (the paper evaluates at 5 000).
        goal_bias: probability of sampling the goal configuration.
        step_size: steering step; ``None`` uses the robot's default.
        motion_resolution: movement-check discretisation; ``None`` derives
            ``step_size / 4``.
        goal_tolerance: C-space distance at which a node counts as reaching
            the goal; ``None`` derives ``step_size``.
        neighbor_radius_factor: neighborhood radius = ``factor * step_size``
            shrunk by the standard RRT\\* ``(log n / n)^(1/d)`` schedule and
            floored at ``step_size``.
        rewire: run the Tree Refinement stage (choose-parent + rewiring).
            False degrades RRT\\* to plain RRT — the paper notes MOPED's
            optimisations apply to the whole RRT family (Section VI).
        checker: ``"obb"`` | ``"aabb"`` | ``"two_stage"`` | ``"grid"``.
        kernels: collision kernel backend — ``"batch"`` (vectorized ndarray
            kernels with bit-exact count replay, the default) or
            ``"reference"`` (the original scalar per-object loops).  Both
            produce identical plans and identical operation counts; the
            reference backend exists as the equivalence/benchmark baseline.
        fine_stage: second-stage OBB-OBB refinement for the two-stage
            checker (off = the AABB-only MOPED of Fig 18 right).
        neighbor_strategy: ``"brute"`` | ``"kd"`` | ``"simbr"``.
        approx_neighborhood: SIAS flag (SI-MBR strategy only).
        approx_scope: approximated-neighborhood scope — ``"leaf"``
            (paper-literal: the node-C population holding ``x_nearest``) or
            ``"parent"`` (wider; trades some of the saving for path quality
            in low-dimensional spaces).
        steering_insert: LCI flag (SI-MBR strategy only).
        simbr_capacity: SI-MBR-Tree fanout.
        kd_rebuild_every: periodic KD rebuild interval.
        speculation_depth: functional speculate-and-repair model — the
            nearest-neighbor search for round *i* cannot see nodes inserted
            in the last ``depth`` rounds and repairs against the missing-
            neighbors buffer instead (Section IV-B).  0 disables.
        wave_width: wavefront planner mode — each wave draws ``W`` samples
            at once and runs speculative nearest/steer/collision for the
            whole wave as batched kernel calls, then commits the samples in
            order with the speculate-and-repair semantics of
            ``speculation_depth = W``.  Plans, costs, and operation counts
            are bit-identical to the scalar planner at that depth.  1 (the
            default) keeps the scalar loop; values > 1 require
            ``speculation_depth == 0`` (the wave implies its own depth) and
            ``informed = False`` (informed sampling is sequential by
            construction).
        collision_cache: capacity of the quantized-configuration collision
            result cache (Section IV-C multi-level caching, in software).
            ``None`` (default) auto-enables 4096 entries when
            ``wave_width > 1`` and disables otherwise; 0 disables.
        neighborhood_cache: capacity of the reused-neighborhood cache inside
            the SI-MBR-Tree (leaf-scope ``leaf_siblings`` results).  Same
            ``None``/0 convention as ``collision_cache`` (auto = 1024).
        edge_cache: capacity of the whole-edge collision-result cache —
            keyed on both endpoint configurations, a hit replays the stored
            verdict and counter events and skips ladder construction, FK,
            and the SAT kernels entirely.  Same ``None``/0 convention as
            ``collision_cache`` (auto = 4096 when ``wave_width > 1``).
        cache_quantum: configuration-space quantisation step for collision
            cache keys.  0.0 (default) keys on exact float bytes, which
            preserves bit-identical planning; > 0 trades exactness for a
            higher hit rate (a documented approximation — keep it 0 for
            equivalence checks).
        sampler: ``"numpy"`` | ``"lfsr"``.
        informed: wrap the sampler with Informed-RRT\\* prolate-hyperspheroid
            sampling once a first solution is found (the [22] variant the
            paper calls complementary to MOPED).
        seed: RNG seed.
        stop_on_goal: stop sampling once the goal is first connected
            (early-termination footnote 2 of the paper); default runs the
            full budget so Tree Refinement keeps improving the path.
        deadline_s: anytime-planning wall deadline in seconds.  When the
            deadline expires mid-run the planner stops sampling and returns
            the best result found so far with ``status="degraded"`` (a
            solved-but-still-refining path, or the collision-free prefix
            toward the node closest to the goal).  ``None`` (default)
            disables the check entirely — no clock reads, bit-identical
            results.
        op_budget: same degradation triggered by cumulative MAC-equivalents
            (:meth:`repro.core.counters.OpCounter.total_macs`) instead of
            wall time; deterministic, so degraded runs replay exactly under
            a fixed seed.  ``None`` disables.
    """

    mode: str = "rrtstar"
    max_samples: int = 1000
    goal_bias: float = 0.05
    step_size: Optional[float] = None
    motion_resolution: Optional[float] = None
    goal_tolerance: Optional[float] = None
    neighbor_radius_factor: float = 2.0
    rewire: bool = True
    checker: str = "obb"
    kernels: str = "batch"
    fine_stage: bool = True
    neighbor_strategy: str = "brute"
    approx_neighborhood: bool = False
    approx_scope: str = "leaf"
    steering_insert: bool = False
    simbr_capacity: int = 8
    kd_rebuild_every: Optional[int] = None
    speculation_depth: int = 0
    wave_width: int = 1
    collision_cache: Optional[int] = None
    neighborhood_cache: Optional[int] = None
    edge_cache: Optional[int] = None
    cache_quantum: float = 0.0
    sampler: str = "numpy"
    informed: bool = False
    seed: int = 0
    stop_on_goal: bool = False
    deadline_s: Optional[float] = None
    op_budget: Optional[float] = None

    def __post_init__(self) -> None:
        if self.mode not in ("rrtstar", "connect"):
            raise ValueError(
                f"mode must be 'rrtstar' or 'connect', got {self.mode!r}"
            )
        if self.mode == "connect" and self.informed:
            raise ValueError(
                "mode='connect' is incompatible with informed sampling "
                "(connect stops at the first feasible path; there is no "
                "solution cost to focus the sampler on)"
            )
        if self.max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        if not 0.0 <= self.goal_bias < 1.0:
            raise ValueError("goal_bias must be in [0, 1)")
        if self.neighbor_radius_factor <= 0:
            raise ValueError("neighbor_radius_factor must be positive")
        if self.speculation_depth < 0:
            raise ValueError("speculation_depth must be >= 0")
        if self.wave_width < 1:
            raise ValueError("wave_width must be >= 1")
        if self.wave_width > 1 and self.speculation_depth != 0:
            raise ValueError(
                "wave_width > 1 implies speculation_depth = wave_width; "
                "set speculation_depth = 0 in wave mode"
            )
        if self.wave_width > 1 and self.informed:
            raise ValueError(
                "wave_width > 1 is incompatible with informed sampling "
                "(the wave draws all samples before any commit)"
            )
        if self.collision_cache is not None and self.collision_cache < 0:
            raise ValueError("collision_cache must be >= 0 (or None for auto)")
        if self.neighborhood_cache is not None and self.neighborhood_cache < 0:
            raise ValueError("neighborhood_cache must be >= 0 (or None for auto)")
        if self.edge_cache is not None and self.edge_cache < 0:
            raise ValueError("edge_cache must be >= 0 (or None for auto)")
        if self.cache_quantum < 0:
            raise ValueError("cache_quantum must be >= 0")
        if self.kernels not in ("batch", "reference"):
            raise ValueError(
                f"kernels must be 'batch' or 'reference', got {self.kernels!r}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None to disable)")
        if self.op_budget is not None and self.op_budget <= 0:
            raise ValueError("op_budget must be positive (or None to disable)")

    def resolved_step(self, robot_step: float) -> float:
        """Steering step after applying the robot default."""
        return self.step_size if self.step_size is not None else robot_step

    def resolved_motion_resolution(self, robot_step: float) -> float:
        """Movement-check resolution after applying the derivation rule."""
        if self.motion_resolution is not None:
            return self.motion_resolution
        return self.resolved_step(robot_step) / 4.0

    def resolved_goal_tolerance(self, robot_step: float) -> float:
        """Goal tolerance after applying the derivation rule."""
        if self.goal_tolerance is not None:
            return self.goal_tolerance
        return self.resolved_step(robot_step)

    def resolved_collision_cache(self) -> int:
        """Collision-cache capacity after the auto rule (0 = disabled)."""
        if self.collision_cache is not None:
            return self.collision_cache
        return 4096 if self.wave_width > 1 else 0

    def resolved_neighborhood_cache(self) -> int:
        """Neighborhood-cache capacity after the auto rule (0 = disabled)."""
        if self.neighborhood_cache is not None:
            return self.neighborhood_cache
        return 1024 if self.wave_width > 1 else 0

    def resolved_edge_cache(self) -> int:
        """Whole-edge cache capacity after the auto rule (0 = disabled)."""
        if self.edge_cache is not None:
            return self.edge_cache
        return 4096 if self.wave_width > 1 else 0

    def neighbor_radius(self, n: int, dim: int, step: float) -> float:
        """Shrinking RRT\\* neighborhood radius at tree size ``n``.

        The standard ``gamma * (log n / n)^(1/d)`` schedule of Karaman &
        Frazzoli, capped at ``factor * step`` and floored at one steering
        step so rewiring always sees the immediate vicinity.
        """
        cap = self.neighbor_radius_factor * step
        if n < 2:
            return cap
        gamma = 4.0 * cap
        radius = gamma * (math.log(n) / n) ** (1.0 / dim)
        return float(min(cap, max(step, radius)))


def baseline_config(**overrides) -> PlannerConfig:
    """Original RRT\\*: brute NN + exhaustive OBB-OBB collision checks."""
    return PlannerConfig(**overrides)


def moped_config(variant: str = "v4", **overrides) -> PlannerConfig:
    """MOPED ablation presets ``v1``..``v4`` (``v4`` = full MOPED).

    Fig 16's ladder: v1 adds the two-stage collision scheme, v2 adds
    SI-MBR-Tree search, v3 adds the approximated neighborhood, v4 adds the
    O(1) insertion.
    """
    base = dict(checker="two_stage", neighbor_strategy="brute")
    if variant == "v1":
        pass
    elif variant == "v2":
        base.update(neighbor_strategy="simbr", approx_neighborhood=False, steering_insert=False)
    elif variant == "v3":
        base.update(neighbor_strategy="simbr", approx_neighborhood=True, steering_insert=False)
    elif variant in ("v4", "full"):
        base.update(neighbor_strategy="simbr", approx_neighborhood=True, steering_insert=True)
    else:
        raise ValueError(f"unknown MOPED variant {variant!r}; use v1..v4 or full")
    base.update(overrides)
    return PlannerConfig(**base)
