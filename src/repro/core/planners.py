"""Planner factory: dispatch on :attr:`PlannerConfig.mode`.

Every entry point that runs a single planning job (the service worker, the
CLI, :class:`~repro.core.moped.MopedEngine`, the benchmarks) builds its
planner here so ``mode="connect"`` is honoured uniformly.
"""

from __future__ import annotations

from repro.core.config import PlannerConfig
from repro.core.connect import RRTConnectPlanner
from repro.core.metrics import PlanResult
from repro.core.robots import RobotModel
from repro.core.rrtstar import RRTStarPlanner
from repro.core.world import PlanningTask


def make_planner(robot: RobotModel, task: PlanningTask, config: PlannerConfig):
    """Build the planner selected by ``config.mode``.

    ``"rrtstar"`` (default) returns the single-tree optimizing planner;
    ``"connect"`` returns the bidirectional feasibility planner.  Both
    expose the same ``plan() -> PlanResult`` / ``cache_stats()`` surface.
    """
    if config.mode == "connect":
        return RRTConnectPlanner(robot, task, config)
    return RRTStarPlanner(robot, task, config)


def plan(robot: RobotModel, task: PlanningTask, config: PlannerConfig) -> PlanResult:
    """Convenience wrapper: build the mode-selected planner and run it once."""
    return make_planner(robot, task, config).plan()
