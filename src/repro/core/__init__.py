"""MOPED core: the planning algorithms and their cost instrumentation.

Public surface:

* :class:`~repro.core.moped.MopedEngine` — the high-level planning engine.
* :func:`~repro.core.robots.get_robot` / :func:`~repro.core.robots.all_robots`
  — the five Section V evaluation robots.
* :class:`~repro.core.world.Environment` / :class:`~repro.core.world.PlanningTask`.
* :class:`~repro.core.config.PlannerConfig` with the ``baseline``/``v1``..``v4``
  ablation presets.
* :class:`~repro.core.counters.OpCounter` — the MAC-level cost model every
  figure's "computational cost" axis is measured in.
"""

from repro.core.config import PlannerConfig, baseline_config, moped_config
from repro.core.counters import OpCounter, mac_cost
from repro.core.batch import BatchRRTStarPlanner, multilane_latency_cycles
from repro.core.connect import RRTConnectPlanner
from repro.core.informed import InformedSampler
from repro.core.quantization import (
    QuantizingSampler,
    quantization_step,
    quantize_config,
    quantize_environment,
    quantize_obb,
    quantize_task,
    quantize_values,
)
from repro.core.replan import ReplanningSession, environment_prep_macs
from repro.core.smoothing import shortcut_smooth
from repro.core.trajectory import Trajectory, TrajectorySegment, time_parameterize
from repro.core.metrics import PlanResult, RoundRecord, path_length
from repro.core.moped import MopedEngine, config_for_variant, VARIANTS
from repro.core.planners import make_planner
from repro.core.portfolio import PLANNERS, PortfolioStats, task_signature
from repro.core.robots import RobotModel, all_robots, get_robot, ROBOT_FACTORIES
from repro.core.rrtstar import RRTStarPlanner, plan
from repro.core.tree import ExpTree
from repro.core.world import Environment, PlanningTask

__all__ = [
    "Environment",
    "ExpTree",
    "BatchRRTStarPlanner",
    "InformedSampler",
    "Trajectory",
    "TrajectorySegment",
    "multilane_latency_cycles",
    "time_parameterize",
    "RRTConnectPlanner",
    "QuantizingSampler",
    "ReplanningSession",
    "quantization_step",
    "quantize_config",
    "quantize_environment",
    "quantize_obb",
    "quantize_task",
    "quantize_values",
    "environment_prep_macs",
    "shortcut_smooth",
    "MopedEngine",
    "OpCounter",
    "PLANNERS",
    "PlanResult",
    "PlannerConfig",
    "PlanningTask",
    "PortfolioStats",
    "ROBOT_FACTORIES",
    "RRTStarPlanner",
    "RobotModel",
    "RoundRecord",
    "VARIANTS",
    "all_robots",
    "baseline_config",
    "config_for_variant",
    "get_robot",
    "mac_cost",
    "make_planner",
    "moped_config",
    "path_length",
    "plan",
    "task_signature",
]
