"""Informed sampling: the Informed-RRT\\* extension (Gammell et al., [22]).

The paper positions MOPED's optimisations as orthogonal to RRT\\* variants
like biased/informed sampling (Section VI, "RRT\\* and its Variants"): they
reduce the per-sampling cost of collision check and neighbor search, while
informed sampling reduces how many samplings are *useful*.  This module
implements the composition: once a first solution of cost ``c_best`` is
known, samples are drawn uniformly from the prolate hyperspheroid with foci
``start``/``goal``, transverse diameter ``c_best`` and conjugate diameter
``sqrt(c_best^2 - c_min^2)`` — the only region that can still improve the
solution.

The sampler wraps any base sampler (LFSR or numpy): before a solution
exists it delegates; afterwards it draws from the informed set, rejecting
the rare draws that fall outside the configuration-space bounds.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np


def rotation_to_world_frame(start: np.ndarray, goal: np.ndarray) -> np.ndarray:
    """Rotation ``C`` aligning the unit x-axis with the start->goal axis.

    Built via the SVD construction of Gammell et al.:
    ``C = U diag(1, ..., 1, det(U) det(V)) V^T`` with ``M = a1 e1^T``.
    """
    start = np.asarray(start, dtype=float)
    goal = np.asarray(goal, dtype=float)
    dim = start.shape[0]
    a1 = goal - start
    norm = np.linalg.norm(a1)
    if norm == 0.0:
        return np.eye(dim)
    a1 = a1 / norm
    m = np.outer(a1, np.eye(dim)[0])
    u, _, vt = np.linalg.svd(m)
    diag = np.ones(dim)
    diag[-1] = np.linalg.det(u) * np.linalg.det(vt)
    return u @ np.diag(diag) @ vt


class InformedSampler:
    """Wraps a base sampler with prolate-hyperspheroid informed sampling.

    Args:
        base: any object with ``sample(counter)`` / ``sample_biased(...)``
            and ``lo``/``hi`` bounds (:class:`~repro.core.rng.NumpySampler`
            or :class:`~repro.core.rng.LFSRSampler`).
        start / goal: the planning problem's foci.
        seed: seed for the ellipsoid draws.
        max_rejections: bound on re-draws when a sample lands outside the
            configuration-space box (the box-clipped draw is returned after
            that many failures so planning always progresses).
    """

    def __init__(self, base, start: np.ndarray, goal: np.ndarray, seed: int = 0,
                 max_rejections: int = 16):
        self.base = base
        self.lo = base.lo
        self.hi = base.hi
        self.dim = base.dim
        self.start = np.asarray(start, dtype=float)
        self.goal = np.asarray(goal, dtype=float)
        self.c_min = float(np.linalg.norm(self.goal - self.start))
        self.center = (self.start + self.goal) / 2.0
        self.rotation = rotation_to_world_frame(self.start, self.goal)
        self.best_cost: Optional[float] = None
        self.max_rejections = max_rejections
        self._rng = np.random.default_rng(seed)
        #: Number of draws served from the informed set (telemetry).
        self.informed_draws = 0

    def update_best_cost(self, cost: float) -> None:
        """Shrink the informed set to the latest best solution cost."""
        if self.best_cost is None or cost < self.best_cost:
            self.best_cost = float(cost)

    def _unit_ball(self) -> np.ndarray:
        """Uniform draw from the d-dimensional unit ball."""
        direction = self._rng.normal(size=self.dim)
        direction /= np.linalg.norm(direction)
        radius = self._rng.random() ** (1.0 / self.dim)
        return radius * direction

    def _informed_sample(self, counter=None) -> np.ndarray:
        """Uniform draw from the current prolate hyperspheroid."""
        if counter is not None:
            counter.record("sample", dim=self.dim)
        c_best = max(self.best_cost, self.c_min + 1e-9)
        r1 = c_best / 2.0
        conj = math.sqrt(max(c_best**2 - self.c_min**2, 0.0)) / 2.0
        radii = np.full(self.dim, conj)
        radii[0] = r1
        for _ in range(self.max_rejections):
            point = self.center + self.rotation @ (radii * self._unit_ball())
            if np.all(point >= self.lo) and np.all(point <= self.hi):
                self.informed_draws += 1
                return point
        self.informed_draws += 1
        return np.clip(point, self.lo, self.hi)

    def sample(self, counter=None) -> np.ndarray:
        """Draw a configuration (informed once a solution is known)."""
        if self.best_cost is None:
            return self.base.sample(counter=counter)
        return self._informed_sample(counter=counter)

    def sample_biased(self, goal: np.ndarray, bias: float, counter=None) -> np.ndarray:
        """Goal-biased draw; the informed set replaces the uniform branch."""
        if self.best_cost is None:
            return self.base.sample_biased(goal, bias, counter=counter)
        if self._rng.random() < bias:
            if counter is not None:
                counter.record("sample", dim=self.dim)
            return np.asarray(goal, dtype=float).copy()
        return self._informed_sample(counter=counter)
