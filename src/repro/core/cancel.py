"""Process-global cooperative-cancellation hook for planner runs.

Portfolio racing (:mod:`repro.core.portfolio`) cancels the losing planners
of a race as soon as a winner is known.  The supervisor flips a bit in a
shared-memory flag; the worker process hosting a loser installs a predicate
here before calling the planner, and the planner polls it through the same
per-round budget check that serves ``deadline_s`` / ``op_budget`` (PR 5).
A cancelled run therefore degrades exactly like a deadline expiry — it
stops sampling, returns the best-so-far result with ``status="degraded"``
and ``degraded_reason="cancelled"`` — and the worker maps that onto the
terminal ``"cancelled"`` response status.

The hook is deliberately minimal: one predicate per process, installed and
removed around each planner invocation.  When no predicate is installed the
planner skips the check entirely (zero overhead for non-race runs).
"""

from __future__ import annotations

from typing import Callable, Optional

_PREDICATE: Optional[Callable[[], bool]] = None


def install(predicate: Optional[Callable[[], bool]]) -> Optional[Callable[[], bool]]:
    """Install ``predicate`` as the process cancel check; returns the old one.

    Pass ``None`` to clear.  The predicate must be cheap (it is polled once
    per planner round) and must return True once the run should stop.
    """
    global _PREDICATE
    previous = _PREDICATE
    _PREDICATE = predicate
    return previous


def active() -> Optional[Callable[[], bool]]:
    """The currently installed predicate, or ``None``."""
    return _PREDICATE


def cancelled() -> bool:
    """True when a predicate is installed and it fires."""
    return _PREDICATE is not None and bool(_PREDICATE())
