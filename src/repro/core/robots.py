"""Robot models: the five evaluation platforms of Section V.

Each model maps a configuration-space point (the planner's state) to a set
of workspace OBBs (the collision checker's input):

* **2D Mobile** — 3 DoF (x, y, heading), one 2D OBB.
* **3D Drone** — 6 DoF (x, y, z, yaw, pitch, roll), one 3D OBB.
* **ViperX 300** — 5 DoF serial arm, three 3D link OBBs.
* **ROZUM** — 6 DoF serial arm, four 3D link OBBs.
* **xArm-7** — 7 DoF serial arm, seven 3D link OBBs.

The physical arms are substituted by representative serial-chain kinematic
models with the paper's DoF and OBB counts (see DESIGN.md): the planner only
observes the joint-space dimensionality and the workspace boxes produced by
forward kinematics, which is what drives the paper's DoF-scaling results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.geometry.obb import OBB
from repro.geometry.rotations import (
    rotation_2d,
    rotation_about_axis,
    rotation_from_euler,
    rotations_2d_batch,
    rotations_about_axes_batch,
    rotations_from_euler_batch,
)

WORKSPACE_SIZE = 300.0  # Section V: 300x300(x300) workspace.


@dataclass(frozen=True)
class LinkSpec:
    """One link of a serial arm.

    Attributes:
        axis: joint rotation axis, expressed in the parent link's frame.
        length: link length along the local +x direction.
        half_width: lateral OBB halfwidth; ``None`` marks a link whose
            geometry is folded into a neighbouring link's box (this is how
            the ViperX/ROZUM models realise fewer OBBs than joints).
    """

    axis: np.ndarray
    length: float
    half_width: Optional[float]


@dataclass(frozen=True)
class RobotModel:
    """A robot the planner can move: C-space bounds plus body geometry.

    Attributes:
        name: registry key (e.g. ``"viperx300"``).
        label: paper display name (e.g. ``"ViperX 300"``).
        dof: configuration-space dimensionality.
        workspace_dim: 2 or 3.
        config_lo / config_hi: C-space sampling bounds, shape ``(dof,)``.
        step_size: default RRT\\* steering step in C-space units.
        body_fn: maps a configuration to the robot's workspace OBBs.
        num_body_obbs: number of OBBs ``body_fn`` returns (paper Table in §V).
    """

    name: str
    label: str
    dof: int
    workspace_dim: int
    config_lo: np.ndarray
    config_hi: np.ndarray
    step_size: float
    body_fn: Callable[[np.ndarray], List[OBB]]
    num_body_obbs: int
    batch_body_fn: Optional[Callable[[np.ndarray], tuple]] = None

    def body_obbs(self, config: np.ndarray) -> List[OBB]:
        """Workspace OBBs of the robot body at ``config``."""
        config = np.asarray(config, dtype=float)
        if config.shape != (self.dof,):
            raise ValueError(f"{self.name} expects {self.dof}-dim configs, got {config.shape}")
        return self.body_fn(config)

    def body_frames_batch(self, configs: np.ndarray) -> tuple:
        """Body OBB frames for a whole batch of configurations at once.

        Returns ``(centers, half_extents, rotations)`` with shapes
        ``(k, B, wd)``, ``(k, B, wd)``, ``(k, B, wd, wd)`` for ``k`` input
        configurations and ``B = num_body_obbs`` bodies — the tensor form
        the batch collision kernels consume.  Robots with a vectorized
        forward-kinematics implementation (``batch_body_fn``) evaluate every
        configuration in one ndarray pass; the generic fallback stacks
        per-configuration :meth:`body_obbs` results.
        """
        configs = np.asarray(configs, dtype=float)
        if configs.ndim != 2 or configs.shape[1] != self.dof:
            raise ValueError(
                f"{self.name} expects (k, {self.dof}) config batches, got {configs.shape}"
            )
        if self.batch_body_fn is not None:
            return self.batch_body_fn(configs)
        k, b, d = configs.shape[0], self.num_body_obbs, self.workspace_dim
        centers = np.empty((k, b, d))
        halves = np.empty((k, b, d))
        rotations = np.empty((k, b, d, d))
        for i in range(k):
            for j, obb in enumerate(self.body_fn(configs[i])):
                centers[i, j] = obb.center
                halves[i, j] = obb.half_extents
                rotations[i, j] = obb.rotation
        return centers, halves, rotations

    def clip(self, config: np.ndarray) -> np.ndarray:
        """Clamp a configuration into the sampling bounds."""
        return np.clip(np.asarray(config, dtype=float), self.config_lo, self.config_hi)


# --------------------------------------------------------------------- mobile


_MOBILE2D_HALF = np.array([8.0, 5.0])


def _mobile2d_body(config: np.ndarray) -> List[OBB]:
    x, y, theta = config
    return [OBB(np.array([x, y]), _MOBILE2D_HALF.copy(), rotation_2d(theta))]


def _mobile2d_body_batch(configs: np.ndarray) -> tuple:
    k = configs.shape[0]
    centers = configs[:, None, :2].copy()
    halves = np.broadcast_to(_MOBILE2D_HALF, (k, 1, 2))
    rotations = rotations_2d_batch(configs[:, 2])[:, None]
    return centers, halves, rotations


def make_mobile2d() -> RobotModel:
    """3-DoF planar mobile robot bounded by one 2D OBB (Section V)."""
    return RobotModel(
        name="mobile2d",
        label="2D Mobile",
        dof=3,
        workspace_dim=2,
        config_lo=np.array([0.0, 0.0, -math.pi]),
        config_hi=np.array([WORKSPACE_SIZE, WORKSPACE_SIZE, math.pi]),
        step_size=15.0,
        body_fn=_mobile2d_body,
        num_body_obbs=1,
        batch_body_fn=_mobile2d_body_batch,
    )


# ---------------------------------------------------------------------- drone


_DRONE3D_HALF = np.array([7.0, 7.0, 2.5])


def _drone3d_body(config: np.ndarray) -> List[OBB]:
    x, y, z, yaw, pitch, roll = config
    rot = rotation_from_euler(yaw, pitch, roll)
    return [OBB(np.array([x, y, z]), _DRONE3D_HALF.copy(), rot)]


def _drone3d_body_batch(configs: np.ndarray) -> tuple:
    k = configs.shape[0]
    centers = configs[:, None, :3].copy()
    halves = np.broadcast_to(_DRONE3D_HALF, (k, 1, 3))
    rotations = rotations_from_euler_batch(
        configs[:, 3], configs[:, 4], configs[:, 5]
    )[:, None]
    return centers, halves, rotations


def make_drone3d() -> RobotModel:
    """6-DoF free-flying drone bounded by one 3D OBB (Section V)."""
    half_pi = math.pi / 2
    return RobotModel(
        name="drone3d",
        label="3D Drone",
        dof=6,
        workspace_dim=3,
        config_lo=np.array([0.0, 0.0, 0.0, -math.pi, -half_pi, -half_pi]),
        config_hi=np.array([WORKSPACE_SIZE] * 3 + [math.pi, half_pi, half_pi]),
        step_size=15.0,
        body_fn=_drone3d_body,
        num_body_obbs=1,
        batch_body_fn=_drone3d_body_batch,
    )


# ----------------------------------------------------------------------- arms


def _arm_body_fn(
    links: Sequence[LinkSpec], base: np.ndarray
) -> Callable[[np.ndarray], List[OBB]]:
    """Build a forward-kinematics body function for a serial arm.

    Frame recursion: joint *i* rotates the link frame about ``links[i].axis``
    (expressed in the parent frame); the link then extends ``length`` along
    the rotated local +x.  A link with a ``half_width`` contributes an OBB
    centred at the link midpoint, aligned with the link frame.
    """

    def body(config: np.ndarray) -> List[OBB]:
        rotation = np.eye(3)
        position = base.copy()
        obbs: List[OBB] = []
        for link, angle in zip(links, config):
            rotation = rotation @ rotation_about_axis(link.axis, float(angle))
            direction = rotation @ np.array([link.length, 0.0, 0.0])
            midpoint = position + 0.5 * direction
            if link.half_width is not None:
                obbs.append(
                    OBB(
                        midpoint,
                        np.array([link.length / 2.0, link.half_width, link.half_width]),
                        rotation,
                    )
                )
            position = position + direction
        return obbs

    return body


def _arm_batch_body_fn(
    links: Sequence[LinkSpec], base: np.ndarray
) -> Callable[[np.ndarray], tuple]:
    """Vectorized forward kinematics over a batch of configurations.

    Same frame recursion as :func:`_arm_body_fn`, evaluated for all ``k``
    configurations at once: per link, the ``k`` joint rotations come from
    one Rodrigues pass and compose via a batched matrix product; the link
    direction is ``length`` times the composed frame's first column (the
    scalar path's ``R @ [length, 0, 0]``).
    """
    half_rows = [
        np.array([link.length / 2.0, link.half_width, link.half_width])
        for link in links
        if link.half_width is not None
    ]
    halves_matrix = np.stack(half_rows)
    axes_matrix = np.stack([link.axis for link in links])

    def body(configs: np.ndarray) -> tuple:
        k = configs.shape[0]
        rotation = np.broadcast_to(np.eye(3), (k, 3, 3))
        position = np.broadcast_to(base, (k, 3))
        centers, rotations = [], []
        # One Rodrigues pass builds every joint step for every config; the
        # frame chain itself stays a serial product over links.
        steps = rotations_about_axes_batch(axes_matrix, configs)
        for i, link in enumerate(links):
            # Stacked matmul runs the same per-slice kernel as the scalar
            # path's ``rotation @ step``, keeping the frames bit-identical.
            rotation = rotation @ steps[:, i]
            direction = rotation[:, :, 0] * link.length
            midpoint = position + 0.5 * direction
            if link.half_width is not None:
                centers.append(midpoint)
                rotations.append(rotation)
            position = position + direction
        return (
            np.stack(centers, axis=1),
            np.broadcast_to(halves_matrix, (k,) + halves_matrix.shape),
            np.stack(rotations, axis=1),
        )

    return body


_ARM_BASE = np.array([WORKSPACE_SIZE / 2, WORKSPACE_SIZE / 2, 20.0])
_Z = np.array([0.0, 0.0, 1.0])
_Y = np.array([0.0, 1.0, 0.0])
_X = np.array([1.0, 0.0, 0.0])


def make_viperx300() -> RobotModel:
    """5-DoF arm with three link OBBs (ViperX 300 stand-in; Section V)."""
    links = [
        LinkSpec(_Z, 25.0, None),  # waist: folded into the shoulder link box
        LinkSpec(_Y, 40.0, 6.0),
        LinkSpec(_Y, 40.0, 5.0),
        LinkSpec(_Y, 25.0, None),  # wrist pitch: folded into gripper box
        LinkSpec(_X, 20.0, 4.0),
    ]
    bound = math.pi
    return RobotModel(
        name="viperx300",
        label="ViperX 300",
        dof=5,
        workspace_dim=3,
        config_lo=np.full(5, -bound),
        config_hi=np.full(5, bound),
        step_size=0.35,
        body_fn=_arm_body_fn(links, _ARM_BASE),
        batch_body_fn=_arm_batch_body_fn(links, _ARM_BASE),
        num_body_obbs=3,
    )


def make_rozum() -> RobotModel:
    """6-DoF arm with four link OBBs (ROZUM PULSE stand-in; Section V)."""
    links = [
        LinkSpec(_Z, 25.0, None),
        LinkSpec(_Y, 45.0, 6.0),
        LinkSpec(_Y, 40.0, 5.0),
        LinkSpec(_Z, 25.0, 4.5),
        LinkSpec(_Y, 20.0, None),
        LinkSpec(_X, 18.0, 4.0),
    ]
    bound = math.pi
    return RobotModel(
        name="rozum",
        label="ROZUM",
        dof=6,
        workspace_dim=3,
        config_lo=np.full(6, -bound),
        config_hi=np.full(6, bound),
        step_size=0.35,
        body_fn=_arm_body_fn(links, _ARM_BASE),
        batch_body_fn=_arm_batch_body_fn(links, _ARM_BASE),
        num_body_obbs=4,
    )


def make_xarm7() -> RobotModel:
    """7-DoF arm with seven link OBBs (UFACTORY xArm-7 stand-in; Section V)."""
    links = [
        LinkSpec(_Z, 22.0, 6.0),
        LinkSpec(_Y, 35.0, 6.0),
        LinkSpec(_Z, 30.0, 5.0),
        LinkSpec(_Y, 30.0, 5.0),
        LinkSpec(_Z, 25.0, 4.5),
        LinkSpec(_Y, 20.0, 4.0),
        LinkSpec(_X, 15.0, 3.5),
    ]
    bound = math.pi
    return RobotModel(
        name="xarm7",
        label="xArm-7",
        dof=7,
        workspace_dim=3,
        config_lo=np.full(7, -bound),
        config_hi=np.full(7, bound),
        step_size=0.35,
        body_fn=_arm_body_fn(links, _ARM_BASE),
        batch_body_fn=_arm_batch_body_fn(links, _ARM_BASE),
        num_body_obbs=7,
    )


def make_dualarm13() -> RobotModel:
    """13-DoF dual-arm platform: the top of the paper's 2-13 DoF range.

    Not one of the five Section V evaluation robots — the paper's
    introduction claims RRT\\* (and hence MOPED) covers planning problems up
    to 13 DoF, and this model exercises that envelope: a rotating torso
    carrying two 6-DoF arms (1 + 2x6 joints), ten link OBBs in total.
    """
    torso = [LinkSpec(_Z, 30.0, 8.0)]
    arm_links = [
        LinkSpec(_Y, 35.0, 5.0),
        LinkSpec(_Y, 30.0, 4.5),
        LinkSpec(_Z, 22.0, 4.0),
        LinkSpec(_Y, 18.0, None),
        LinkSpec(_Z, 15.0, 3.5),
        LinkSpec(_X, 12.0, 3.0),
    ]
    base = _ARM_BASE

    def body(config: np.ndarray) -> List[OBB]:
        obbs: List[OBB] = []
        # Torso: joint 0 about z.
        torso_rot = rotation_about_axis(_Z, float(config[0]))
        torso_dir = torso_rot @ np.array([0.0, 0.0, torso[0].length])
        obbs.append(
            OBB(
                base + 0.5 * torso_dir,
                np.array([torso[0].half_width, torso[0].half_width, torso[0].length / 2.0]),
                torso_rot,
            )
        )
        shoulder = base + torso_dir
        # Two arms mounted either side of the torso top.
        for side, joint_offset in ((-1.0, 1), (+1.0, 7)):
            rotation = torso_rot
            position = shoulder + torso_rot @ np.array([0.0, side * 12.0, 0.0])
            for link, angle in zip(arm_links, config[joint_offset : joint_offset + 6]):
                rotation = rotation @ rotation_about_axis(link.axis, float(angle))
                direction = rotation @ np.array([link.length, 0.0, 0.0])
                midpoint = position + 0.5 * direction
                if link.half_width is not None:
                    obbs.append(
                        OBB(
                            midpoint,
                            np.array([link.length / 2.0, link.half_width, link.half_width]),
                            rotation,
                        )
                    )
                position = position + direction
        return obbs

    bound = math.pi
    return RobotModel(
        name="dualarm13",
        label="Dual-arm 13-DoF",
        dof=13,
        workspace_dim=3,
        config_lo=np.full(13, -bound),
        config_hi=np.full(13, bound),
        step_size=0.35,
        body_fn=body,
        num_body_obbs=11,
    )


ROBOT_FACTORIES: Dict[str, Callable[[], RobotModel]] = {
    "mobile2d": make_mobile2d,
    "drone3d": make_drone3d,
    "viperx300": make_viperx300,
    "rozum": make_rozum,
    "xarm7": make_xarm7,
    "dualarm13": make_dualarm13,
}


def get_robot(name: str) -> RobotModel:
    """Look up a robot model by registry name."""
    try:
        return ROBOT_FACTORIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown robot {name!r}; available: {sorted(ROBOT_FACTORIES)}"
        ) from None


def all_robots() -> List[RobotModel]:
    """All five evaluation robots, in the paper's DoF order."""
    return [ROBOT_FACTORIES[name]() for name in
            ("mobile2d", "viperx300", "drone3d", "rozum", "xarm7")]
