"""The RRT\\* planning loop shared by the baseline and every MOPED variant.

One parameterised planner implements the Section II-B processing scheme —
sample, nearest-neighbor, steer, collision check, choose-parent, rewire —
with the collision checker and neighbor-search strategy injected through
:class:`~repro.core.config.PlannerConfig`.  The MOPED presets
(:func:`~repro.core.config.moped_config`) select the paper's optimisations;
the defaults reproduce the original RRT\\* baseline.

The planner also hosts the *functional* speculate-and-repair model
(Section IV-B): with ``speculation_depth = k``, the nearest-neighbor search
of each round is blinded to the nodes inserted in the previous ``k`` rounds
(they are still in flight in the hardware pipeline) and a repair step then
compares the speculated result against those pending nodes — the Missing
Neighbors Buffer.  The repaired result is provably the true nearest
neighbor, so planning outcomes are identical with and without speculation
(a tested invariant mirroring the paper's "functionally equivalent" claim).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro.core.collision import make_checker
from repro.core.config import PlannerConfig
from repro.core.counters import OpCounter
from repro.obs import PhaseRecorder
from repro.core.informed import InformedSampler
from repro.core.metrics import PlanResult, RoundRecord
from repro.core.neighbors import make_strategy
from repro.core.rng import LFSRSampler, NumpySampler
from repro.core.robots import RobotModel
from repro.core.tree import ExpTree
from repro.core.world import PlanningTask

# Operation kinds executed on each hardware unit, used to split a round's
# counter diff into per-unit loads for the pipeline timing model.
_NS_KINDS = ("dist", "mindist", "plane_compare", "buffer_read", "rebuild_item")
_CC_KINDS = ("sat_obb_obb", "sat_aabb_obb", "sat_aabb_aabb", "aabb_derive", "grid_lookup")
_MAINT_KINDS = ("enlargement", "mbr_update", "insert_direct", "split")


class RRTStarPlanner:
    """RRT\\* planner over a robot model and planning task."""

    def __init__(self, robot: RobotModel, task: PlanningTask, config: PlannerConfig):
        if task.start.shape != (robot.dof,) or task.goal.shape != (robot.dof,):
            raise ValueError(
                f"task configurations must be {robot.dof}-dimensional for {robot.name}"
            )
        self.robot = robot
        self.task = task
        self.config = config
        self.step = config.resolved_step(robot.step_size)
        self.goal_tolerance = config.resolved_goal_tolerance(robot.step_size)
        resolution = config.resolved_motion_resolution(robot.step_size)
        checker_kwargs = {"kernels": config.kernels}
        if config.checker == "two_stage":
            checker_kwargs["fine_stage"] = config.fine_stage
        self.checker = make_checker(
            config.checker, robot, task.environment, resolution, **checker_kwargs
        )
        self.strategy = make_strategy(
            config.neighbor_strategy,
            robot.dof,
            steering_insert=config.steering_insert,
            approx_neighborhood=config.approx_neighborhood,
            capacity=config.simbr_capacity,
            kd_rebuild_every=config.kd_rebuild_every,
            approx_scope=config.approx_scope,
        )
        sampler_cls = {"numpy": NumpySampler, "lfsr": LFSRSampler}.get(config.sampler)
        if sampler_cls is None:
            raise KeyError(f"unknown sampler {config.sampler!r}; use 'numpy' or 'lfsr'")
        self.sampler = sampler_cls(robot.config_lo, robot.config_hi, seed=config.seed)
        if config.informed:
            self.sampler = InformedSampler(
                self.sampler, task.start, task.goal, seed=config.seed
            )

    # ------------------------------------------------------------------- plan

    def plan(self) -> PlanResult:
        """Run the sampling loop and return the planning outcome."""
        config, robot, task = self.config, self.robot, self.task
        dim = robot.dof
        counter = OpCounter()
        tree = ExpTree(task.start)
        self.strategy.insert(tree.root, task.start, counter=counter)
        self.tree = tree

        goal_nodes: List[int] = []
        first_solution: Optional[int] = None
        rounds: List[RoundRecord] = []
        self._neighborhood_macs = 0.0
        cost_history: List[tuple] = []
        best_known = float("inf")
        # (round index, node id) pairs still "in flight" for speculation.
        pending: Deque[Tuple[int, int]] = deque()

        # Observability front end: with tracing/metrics off this binds the
        # dormant globals and every obs.phase() below is one attribute check.
        obs = PhaseRecorder()
        plan_started = obs.tracer.now()
        plan_span = obs.tracer.span(
            "plan",
            robot=robot.name,
            dof=dim,
            checker=config.checker,
            strategy=config.neighbor_strategy,
            max_samples=config.max_samples,
        )

        with plan_span:
            for iteration in range(config.max_samples):
                snapshot = counter.snapshot()
                with obs.phase("sample", counter):
                    x_rand = self.sampler.sample_biased(
                        task.goal, config.goal_bias, counter=counter
                    )

                nearest_key, nearest_point, nearest_dist, missing_used, repaired = (
                    self._nearest_with_repair(tree, x_rand, pending, counter, obs)
                )

                accepted = False
                node_id: Optional[int] = None
                if nearest_dist > 1e-12:
                    with obs.phase("steer", counter):
                        counter.record("steer", dim=dim)
                        x_new = self._steer(nearest_point, x_rand, nearest_dist)
                    with obs.phase("collision", counter):
                        blocked = self.checker.motion_in_collision(
                            nearest_point, x_new, counter=counter
                        )
                    if not blocked:
                        with obs.phase("rewire", counter):
                            node_id = self._extend(
                                tree, x_new, nearest_key, nearest_point, counter
                            )
                        accepted = True
                        if float(np.linalg.norm(x_new - task.goal)) <= self.goal_tolerance:
                            goal_nodes.append(node_id)
                            if first_solution is None:
                                first_solution = iteration
                        if goal_nodes:
                            best = min(
                                tree.cost(n)
                                + float(np.linalg.norm(tree.point(n) - task.goal))
                                for n in goal_nodes
                            )
                            if best < best_known - 1e-9:
                                best_known = best
                                cost_history.append((iteration, best))
                            if isinstance(self.sampler, InformedSampler):
                                self.sampler.update_best_cost(best)

                rounds.append(
                    self._round_record(counter.diff(snapshot), accepted, missing_used, repaired)
                )

                if accepted and config.speculation_depth > 0:
                    pending.append((iteration, node_id))
                while pending and pending[0][0] <= iteration - config.speculation_depth:
                    pending.popleft()

                if config.stop_on_goal and first_solution is not None:
                    break

        self._cost_history = cost_history
        result = self._result(tree, goal_nodes, first_solution, counter, rounds, len(rounds))
        if obs.registry.enabled:
            self._record_run_metrics(obs, result, counter, obs.tracer.now() - plan_started)
        return result

    def _record_run_metrics(self, obs, result, counter, elapsed_s: float) -> None:
        """Run-level metrics: plan count/latency and Fig-3 MAC categories."""
        registry = obs.registry
        registry.counter("repro_plans_total", "Completed planning runs").inc(
            outcome="success" if result.success else "failure"
        )
        registry.counter("repro_plan_rounds_total", "Sampling rounds executed").inc(
            result.iterations
        )
        registry.histogram(
            "repro_plan_seconds", "End-to-end planner wall time"
        ).observe(elapsed_s)
        for category, macs in counter.macs_by_category().items():
            registry.counter(
                "repro_macs_total", "MAC-equivalents by cost-model category"
            ).inc(macs, category=category)

    # -------------------------------------------------------------- internals

    def _nearest_with_repair(self, tree, x_rand, pending, counter, obs=None):
        """Speculated nearest-neighbor search plus the repair step.

        Without speculation this is a plain exact search.  With speculation,
        the index search cannot see the pending (in-flight) node ids; the
        repair step then reads each pending node from the Missing Neighbors
        Buffer and keeps whichever candidate is truly nearest.
        """
        if obs is None:
            obs = PhaseRecorder()
        dim = self.robot.dof
        exclude = {key for _, key in pending} if pending else None
        with obs.phase("nearest", counter):
            found = self.strategy.nearest(x_rand, counter=counter, exclude=exclude)
        assert found is not None, "tree root can never be excluded"
        nearest_key, nearest_point, nearest_dist = found
        missing_used = 0
        repaired = False
        if pending:
            with obs.phase("repair", counter, entries=len(pending)):
                for _, key in pending:
                    missing_used += 1
                    counter.record("buffer_read", dim=dim)
                    counter.record("dist", dim=dim)
                    point = tree.point(key)
                    dist = float(np.linalg.norm(point - x_rand))
                    if dist < nearest_dist:
                        nearest_key, nearest_point, nearest_dist = key, point, dist
                        repaired = True
        return nearest_key, nearest_point, nearest_dist, missing_used, repaired

    def _steer(self, origin: np.ndarray, target: np.ndarray, dist: float) -> np.ndarray:
        """Move from ``origin`` toward ``target`` by at most one step."""
        if dist <= self.step:
            return target.copy()
        return origin + (self.step / dist) * (target - origin)

    def _extend(self, tree, x_new, nearest_key, nearest_point, counter):
        """Choose-parent + insert + rewire for an accepted sample.

        With ``config.rewire`` disabled the sample is attached straight to
        ``x_nearest`` (plain RRT): no neighborhood query, no refinement.
        """
        config, dim = self.config, self.robot.dof
        if not config.rewire:
            edge = float(np.linalg.norm(x_new - nearest_point))
            node_id = tree.add(x_new, nearest_key, edge)
            self.strategy.insert(node_id, x_new, nearest_key=nearest_key, counter=counter)
            return node_id
        radius = config.neighbor_radius(len(tree), dim, self.step)
        before_neighborhood = counter.snapshot()
        neighborhood = self.strategy.neighborhood(
            x_new, radius, nearest_key=nearest_key, counter=counter
        )
        self._neighborhood_macs += counter.diff(before_neighborhood).total_macs()
        candidates = {key: (point, dist) for key, point, dist in neighborhood}
        nearest_edge = float(np.linalg.norm(x_new - nearest_point))
        candidates.setdefault(nearest_key, (nearest_point, nearest_edge))

        # Choose parent: lowest cost-to-come through a collision-free edge.
        # The edge from x_nearest was already verified by the extension check.
        parent_key, parent_edge = nearest_key, candidates[nearest_key][1]
        best_cost = tree.cost(nearest_key) + parent_edge
        ranked = sorted(
            candidates.items(), key=lambda kv: tree.cost(kv[0]) + kv[1][1]
        )
        for key, (point, dist) in ranked:
            counter.record("cost_update", dim=dim)
            cost = tree.cost(key) + dist
            if cost >= best_cost:
                break
            if not self.checker.motion_in_collision(point, x_new, counter=counter):
                parent_key, parent_edge, best_cost = key, dist, cost
                break

        node_id = tree.add(x_new, parent_key, parent_edge)
        self.strategy.insert(node_id, x_new, nearest_key=nearest_key, counter=counter)

        # Rewire: route neighbors through x_new when cheaper and collision free.
        new_cost = tree.cost(node_id)
        for key, (point, dist) in candidates.items():
            if key == parent_key:
                continue
            counter.record("cost_update", dim=dim)
            if new_cost + dist >= tree.cost(key) - 1e-12:
                continue
            if self._is_ancestor(tree, key, node_id):
                continue
            if not self.checker.motion_in_collision(x_new, point, counter=counter):
                tree.rewire(key, node_id, dist)
        return node_id

    @staticmethod
    def _is_ancestor(tree, candidate: int, node_id: int) -> bool:
        current = tree.parent(node_id)
        while current is not None:
            if current == candidate:
                return True
            current = tree.parent(current)
        return False

    @staticmethod
    def _round_record(diff: OpCounter, accepted, missing_used, repaired) -> RoundRecord:
        loads = {"ns": 0.0, "cc": 0.0, "maint": 0.0, "other": 0.0}
        for kind, macs in diff.macs.items():
            if kind in _NS_KINDS:
                loads["ns"] += macs
            elif kind in _CC_KINDS:
                loads["cc"] += macs
            elif kind in _MAINT_KINDS:
                loads["maint"] += macs
            else:
                loads["other"] += macs
        return RoundRecord(
            ns_macs=loads["ns"],
            cc_macs=loads["cc"],
            maint_macs=loads["maint"],
            other_macs=loads["other"],
            accepted=accepted,
            missing_used=missing_used,
            repaired=repaired,
            events=dict(diff.events),
        )

    def _result(self, tree, goal_nodes, first_solution, counter, rounds, iterations):
        task = self.task
        if goal_nodes:
            # Pick the cheapest goal-region node whose final hop to the
            # exact goal is itself collision free (the hop can be up to one
            # goal_tolerance long, so it must be verified like any edge).
            # Falls back to ending the path at the in-tolerance node.
            best, best_cost, best_tail = None, float("inf"), 0.0
            fallback, fallback_cost = None, float("inf")
            for node in goal_nodes:
                tail = float(np.linalg.norm(tree.point(node) - task.goal))
                cost = tree.cost(node) + tail
                if cost < fallback_cost:
                    fallback, fallback_cost = node, cost
                if cost < best_cost and (
                    tail <= 1e-12
                    or not self.checker.motion_in_collision(
                        tree.point(node), task.goal, counter=counter
                    )
                ):
                    best, best_cost, best_tail = node, cost, tail
            if best is not None:
                path = tree.path_to(best)
                if best_tail > 1e-12:
                    path = path + [task.goal.copy()]
                path_cost = best_cost
                goal_node = best
            else:
                goal_node = fallback
                path = tree.path_to(fallback)
                path_cost = tree.cost(fallback)
            return PlanResult(
                success=True,
                path=path,
                path_cost=path_cost,
                num_nodes=len(tree),
                iterations=iterations,
                counter=counter,
                rounds=rounds,
                goal_node=goal_node,
                first_solution_iteration=first_solution,
                neighborhood_macs=self._neighborhood_macs,
                cost_history=list(getattr(self, "_cost_history", [])),
            )
        return PlanResult(
            success=False,
            path=[],
            path_cost=float("inf"),
            num_nodes=len(tree),
            iterations=iterations,
            counter=counter,
            rounds=rounds,
            neighborhood_macs=self._neighborhood_macs,
        )


def plan(robot: RobotModel, task: PlanningTask, config: PlannerConfig) -> PlanResult:
    """Convenience wrapper: build a planner and run it once."""
    return RRTStarPlanner(robot, task, config).plan()
