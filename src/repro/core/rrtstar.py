"""The RRT\\* planning loop shared by the baseline and every MOPED variant.

One parameterised planner implements the Section II-B processing scheme —
sample, nearest-neighbor, steer, collision check, choose-parent, rewire —
with the collision checker and neighbor-search strategy injected through
:class:`~repro.core.config.PlannerConfig`.  The MOPED presets
(:func:`~repro.core.config.moped_config`) select the paper's optimisations;
the defaults reproduce the original RRT\\* baseline.

The planner also hosts the *functional* speculate-and-repair model
(Section IV-B): with ``speculation_depth = k``, the nearest-neighbor search
of each round is blinded to the nodes inserted in the previous ``k`` rounds
(they are still in flight in the hardware pipeline) and a repair step then
compares the speculated result against those pending nodes — the Missing
Neighbors Buffer.  The repaired result is provably the true nearest
neighbor, so planning outcomes are identical with and without speculation
(a tested invariant mirroring the paper's "functionally equivalent" claim).

Wavefront mode (``wave_width = W > 1``) turns that functional model into a
throughput mechanism: each wave draws ``W`` samples at once, evaluates the
nearest-neighbor distance matrix, speculative steering, and the collision
check of every speculative edge as single batched kernel calls against a
snapshot of the tree, then commits the samples *in order* with the exact
scalar semantics of ``speculation_depth = W`` — a sample whose speculative
result is invalidated by an intra-wave accept is repaired exactly like a
pending-node miss.  Every counter event of the scalar round is replayed at
commit time (batched arithmetic feeds verdicts, not counts), so paths,
costs, and OpCounter totals are bit-identical to the scalar planner at the
equivalent speculation depth.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro.core.collision import make_checker
from repro.core.config import PlannerConfig
from repro.core.counters import OpCounter
from repro.obs import PhaseRecorder, bump
from repro.core.informed import InformedSampler
from repro.core.metrics import PlanResult, RoundRecord
from repro.core.neighbors import make_strategy
from repro.core.rng import LFSRSampler, NumpySampler
from repro.core.robots import RobotModel
from repro.core.tree import ExpTree
from repro.core.world import PlanningTask

# Operation kinds executed on each hardware unit, used to split a round's
# counter diff into per-unit loads for the pipeline timing model.
_NS_KINDS = ("dist", "mindist", "plane_compare", "buffer_read", "rebuild_item")
_CC_KINDS = ("sat_obb_obb", "sat_aabb_obb", "sat_aabb_aabb", "aabb_derive", "grid_lookup")
_MAINT_KINDS = ("enlargement", "mbr_update", "insert_direct", "split")


class _RunState:
    """Mutable bookkeeping shared by the scalar and wavefront run loops."""

    __slots__ = (
        "goal_nodes", "first_solution", "rounds", "cost_history",
        "best_known", "pending", "deadline", "op_budget", "degraded_reason",
        "cancel",
    )

    def __init__(self):
        self.goal_nodes: List[int] = []
        self.first_solution: Optional[int] = None
        self.rounds: List[RoundRecord] = []
        self.cost_history: List[tuple] = []
        self.best_known = float("inf")
        # (round index, node id) pairs still "in flight" for speculation.
        self.pending: Deque[Tuple[int, int]] = deque()
        # Anytime-planning budgets: a monotonic wall deadline and a MAC
        # budget.  None = disabled; both loops guard every check with a
        # single `is not None` so absent budgets cost nothing and perturb
        # neither RNG streams nor operation counts.
        self.deadline: Optional[float] = None
        self.op_budget: Optional[float] = None
        self.degraded_reason: Optional[str] = None
        # Cooperative cancellation (portfolio racing): a zero-arg predicate
        # polled alongside the budgets.  None = no race in flight.
        self.cancel = None

    def budget_expired(self, counter) -> bool:
        """Check budgets; records the degradation reason on expiry."""
        if self.cancel is not None and self.cancel():
            self.degraded_reason = "cancelled"
            return True
        if self.deadline is not None and time.monotonic() >= self.deadline:
            self.degraded_reason = "deadline"
            return True
        if self.op_budget is not None and counter.total_macs() >= self.op_budget:
            self.degraded_reason = "op_budget"
            return True
        return False


class RRTStarPlanner:
    """RRT\\* planner over a robot model and planning task."""

    def __init__(self, robot: RobotModel, task: PlanningTask, config: PlannerConfig):
        if task.start.shape != (robot.dof,) or task.goal.shape != (robot.dof,):
            raise ValueError(
                f"task configurations must be {robot.dof}-dimensional for {robot.name}"
            )
        self.robot = robot
        self.task = task
        self.config = config
        self.step = config.resolved_step(robot.step_size)
        self.goal_tolerance = config.resolved_goal_tolerance(robot.step_size)
        resolution = config.resolved_motion_resolution(robot.step_size)
        checker_kwargs = {"kernels": config.kernels}
        if config.checker == "two_stage":
            checker_kwargs["fine_stage"] = config.fine_stage
        cache_size = config.resolved_collision_cache()
        if cache_size:
            checker_kwargs["cache_size"] = cache_size
            checker_kwargs["cache_quantum"] = config.cache_quantum
        edge_cache_size = config.resolved_edge_cache()
        if edge_cache_size:
            checker_kwargs["edge_cache_size"] = edge_cache_size
            checker_kwargs.setdefault("cache_quantum", config.cache_quantum)
        self.checker = make_checker(
            config.checker, robot, task.environment, resolution, **checker_kwargs
        )
        self.strategy = make_strategy(
            config.neighbor_strategy,
            robot.dof,
            steering_insert=config.steering_insert,
            approx_neighborhood=config.approx_neighborhood,
            capacity=config.simbr_capacity,
            kd_rebuild_every=config.kd_rebuild_every,
            approx_scope=config.approx_scope,
            neighborhood_cache=config.resolved_neighborhood_cache(),
        )
        sampler_cls = {"numpy": NumpySampler, "lfsr": LFSRSampler}.get(config.sampler)
        if sampler_cls is None:
            raise KeyError(f"unknown sampler {config.sampler!r}; use 'numpy' or 'lfsr'")
        self.sampler = sampler_cls(robot.config_lo, robot.config_hi, seed=config.seed)
        if config.informed:
            self.sampler = InformedSampler(
                self.sampler, task.start, task.goal, seed=config.seed
            )

    # ------------------------------------------------------------------- plan

    def plan(self) -> PlanResult:
        """Run the sampling loop and return the planning outcome."""
        config, robot, task = self.config, self.robot, self.task
        dim = robot.dof
        counter = OpCounter()
        tree = ExpTree(task.start)
        self.strategy.insert(tree.root, task.start, counter=counter)
        self.tree = tree

        state = _RunState()
        if config.op_budget is not None:
            state.op_budget = config.op_budget
        if config.deadline_s is not None:
            state.deadline = time.monotonic() + config.deadline_s
        from repro.core import cancel as _cancel
        state.cancel = _cancel.active()
        self._neighborhood_macs = 0.0
        # Fault-injection front end (repro.faults): None in the steady
        # state, so the hot loops pay one is-None check per round.
        from repro.faults import get_injector
        self._injector = get_injector()
        # The checker bound its injector at construction; refresh it so an
        # injector installed after planner construction still sees the
        # ``edge.validate`` site.
        self.checker._injector = self._injector

        # Observability front end: with tracing/metrics off this binds the
        # dormant globals and every obs.phase() below is one attribute check.
        obs = PhaseRecorder()
        plan_started = obs.tracer.now()
        plan_span = obs.tracer.span(
            "plan",
            robot=robot.name,
            dof=dim,
            checker=config.checker,
            strategy=config.neighbor_strategy,
            max_samples=config.max_samples,
            wave_width=config.wave_width,
        )

        with plan_span:
            if config.wave_width > 1:
                self._run_wave(tree, counter, obs, state)
            else:
                self._run_scalar(tree, counter, obs, state)

        self._cost_history = state.cost_history
        result = self._result(
            tree, state.goal_nodes, state.first_solution, counter,
            state.rounds, len(state.rounds),
            degraded_reason=state.degraded_reason,
        )
        if obs.registry.enabled:
            self._record_run_metrics(obs, result, counter, obs.tracer.now() - plan_started)
        return result

    def _run_scalar(self, tree, counter, obs, state) -> None:
        """One sample per round: the reference sequential loop."""
        config, task, dim = self.config, self.task, self.robot.dof
        pending = state.pending
        injector = self._injector
        check_budget = (state.deadline is not None or state.op_budget is not None
                        or state.cancel is not None)
        for iteration in range(config.max_samples):
            if check_budget and state.budget_expired(counter):
                break
            if injector is not None:
                injector.fire("planner.round", detail=f"iteration {iteration}")
            snapshot = counter.snapshot()
            with obs.phase("sample", counter):
                x_rand = self.sampler.sample_biased(
                    task.goal, config.goal_bias, counter=counter
                )

            nearest_key, nearest_point, nearest_dist, missing_used, repaired = (
                self._nearest_with_repair(tree, x_rand, pending, counter, obs)
            )

            accepted = False
            node_id: Optional[int] = None
            if nearest_dist > 1e-12:
                with obs.phase("steer", counter):
                    counter.record("steer", dim=dim)
                    x_new = self._steer(nearest_point, x_rand, nearest_dist)
                if injector is not None:
                    injector.fire("planner.collision")
                with obs.phase("collision", counter):
                    blocked = self.checker.motion_in_collision(
                        nearest_point, x_new, counter=counter
                    )
                if not blocked:
                    with obs.phase("rewire", counter):
                        node_id = self._extend(
                            tree, x_new, nearest_key, nearest_point, counter
                        )
                    accepted = True
                    self._after_accept(tree, node_id, x_new, iteration, state)

            state.rounds.append(
                self._round_record(counter.diff(snapshot), accepted, missing_used, repaired)
            )

            if accepted and config.speculation_depth > 0:
                pending.append((iteration, node_id))
            while pending and pending[0][0] <= iteration - config.speculation_depth:
                pending.popleft()

            if config.stop_on_goal and state.first_solution is not None:
                break

    def _run_wave(self, tree, counter, obs, state) -> None:
        """Wavefront loop: W samples per wave through batched kernels.

        Stage 1 (speculative, batched): against a snapshot of the tree, the
        wave's nearest-neighbor lookups run as one distance-matrix einsum,
        each sample's speculative ``x_new`` is steered, and every
        speculative edge is validated whole — one ladder construction, one
        FK batch, one stacked kernel pass — through a single
        :meth:`~repro.core.collision.CollisionChecker.motion_results_batch`
        call.  Each sample only sees the tree prefix the scalar planner at
        ``speculation_depth = W`` would see (pending rounds are blinded).

        Stage 2 (commit, in sample order): each sample replays the scalar
        round — nearest + missing-neighbors repair, steer, collision,
        extend — into its own sub-counter.  When the committed nearest
        matches the speculation, the edge's verdict and captured counter
        events are replayed from the batched stage; otherwise (an intra-wave
        conflict repaired the nearest) the edge is re-checked scalar-wise,
        exactly like a speculation miss in the hardware pipeline.  Because
        all cost-model weights are integers, merging the sub-counters
        reproduces the scalar counter totals bit-for-bit.
        """
        config, task, dim = self.config, self.task, self.robot.dof
        width_cfg = config.wave_width
        pending = state.pending
        linear = getattr(self.strategy, "linear_scan", False)
        injector = self._injector
        check_budget = (state.deadline is not None or state.op_budget is not None
                        or state.cancel is not None)
        start = 0
        while start < config.max_samples:
            if check_budget and state.budget_expired(counter):
                break
            if injector is not None:
                injector.fire("planner.round", detail=f"wave at {start}")
            width = min(width_cfg, config.max_samples - start)
            subs = [OpCounter() for _ in range(width)]
            xs = np.empty((width, dim), dtype=float)
            for j in range(width):
                with obs.phase("sample", subs[j]):
                    xs[j] = self.sampler.sample_biased(
                        task.goal, config.goal_bias, counter=subs[j]
                    )

            # ---------------- stage 1: speculative batched evaluation
            n0 = len(tree)
            points = tree.points_view()
            pend_rounds = [r for r, _ in pending]
            # Entering round start+j the scalar loop has popped rounds
            # <= start+j-1-W, so the blinded suffix is rounds >= start+j-W;
            # node ids are insertion-ordered, hence the visible set is a
            # prefix of the snapshot.
            limits = [
                n0 - sum(1 for r in pend_rounds if r >= start + j - width_cfg)
                for j in range(width)
            ]
            base_key = [0] * width
            spec_key = [0] * width
            spec_new: List[Optional[np.ndarray]] = [None] * width
            #: Per-sample whole-edge (verdict, events) for the commit replay.
            spec_results: List[Optional[tuple]] = [None] * width
            with obs.tracer.span("wave", width=width, nodes=n0):
                diffs = points[None, :, :] - xs[:, None, :]
                d_sq = np.einsum("wnd,wnd->wn", diffs, diffs)
                seg_starts = []
                seg_ends = []
                seg_js = []
                pre_key = [0] * width
                pre_dist = [0.0] * width
                for j in range(width):
                    k = int(np.argmin(d_sq[j, : limits[j]]))
                    base_key[j] = k
                    if linear:
                        # Matches BruteForceIndex: sqrt of the einsum row.
                        dist = float(np.sqrt(d_sq[j, k]))
                    else:
                        # Matches SIMBRTree's per-point distance arithmetic.
                        dist = float(
                            np.sqrt(float(np.sum((points[k] - xs[j]) ** 2)))
                        )
                    # Predict the POST-repair nearest among the snapshot:
                    # replay the repair scan against the pending entries
                    # that will still be in flight at this sample's commit
                    # (bitwise the same arithmetic the commit-time repair
                    # performs).  The matrix distance prunes entries that
                    # provably cannot win (it agrees with the scalar norm
                    # to a few ulp, dwarfed by the 1e-9 relative margin).
                    cut = start + j - width_cfg
                    bound = dist * dist * (1.0 + 1e-9)
                    for r, pkey in pending:
                        if r >= cut and d_sq[j, pkey] <= bound:
                            pdist = float(np.linalg.norm(points[pkey] - xs[j]))
                            if pdist < dist:
                                k, dist = pkey, pdist
                                bound = dist * dist * (1.0 + 1e-9)
                    pre_key[j] = k
                    pre_dist[j] = dist
                    if dist > 1e-12:
                        x_new = self._steer(points[k], xs[j], dist)
                        spec_new[j] = x_new
                        seg_starts.append(points[k])
                        seg_ends.append(x_new)
                        seg_js.append(j)
                batch1: dict = {}
                if seg_js:
                    edge_results = self.checker.motion_results_batch(
                        np.stack(seg_starts), np.stack(seg_ends)
                    )
                    for j, res in zip(seg_js, edge_results):
                        batch1[j] = res
                self._simulate_commit(
                    xs, width, n0, pre_key, pre_dist, points,
                    spec_key, spec_new, spec_results, batch1,
                )

            # ---------------- stage 2: in-order commit with repair
            stop = False
            for j in range(width):
                iteration = start + j
                sub = subs[j]
                x_rand = xs[j]
                if linear:
                    # The committed visible set equals the speculative
                    # prefix (intra-wave accepts are all still pending), so
                    # the matrix row IS the exact scalar scan result.
                    with obs.phase("nearest", sub):
                        self.strategy.count_nearest(sub)
                    k = base_key[j]
                    nearest_key, nearest_point = k, points[k].copy()
                    nearest_dist = float(np.sqrt(d_sq[j, k]))
                    missing_used = 0
                    repaired = False
                    if pending:
                        with obs.phase("repair", sub, entries=len(pending)):
                            (nearest_key, nearest_point, nearest_dist,
                             missing_used, repaired) = self._repair(
                                tree, x_rand, pending, sub,
                                nearest_key, nearest_point, nearest_dist,
                                d_sq_row=d_sq[j], snapshot_len=n0,
                            )
                else:
                    (nearest_key, nearest_point, nearest_dist,
                     missing_used, repaired) = self._nearest_with_repair(
                        tree, x_rand, pending, sub, obs,
                        d_sq_row=d_sq[j], snapshot_len=n0,
                    )

                accepted = False
                node_id: Optional[int] = None
                used_spec = False
                if nearest_dist > 1e-12:
                    with obs.phase("steer", sub):
                        sub.record("steer", dim=dim)
                        x_new = self._steer(nearest_point, x_rand, nearest_dist)
                    spec = spec_new[j]
                    used_spec = (
                        spec is not None
                        and spec_results[j] is not None
                        and nearest_key == spec_key[j]
                        and np.array_equal(x_new, spec)
                    )
                    with obs.phase("collision", sub):
                        if used_spec:
                            blocked = self._replay_motion(spec_results[j], sub)
                        else:
                            blocked = self.checker.motion_in_collision(
                                nearest_point, x_new, counter=sub
                            )
                    if not blocked:
                        with obs.phase("rewire", sub):
                            node_id = self._extend(
                                tree, x_new, nearest_key, nearest_point, sub
                            )
                        accepted = True
                        self._after_accept(tree, node_id, x_new, iteration, state)

                state.rounds.append(
                    self._round_record(
                        sub, accepted, missing_used, repaired,
                        wave_width=width,
                        repaired_in_wave=pre_dist[j] > 1e-12 and not used_spec,
                    )
                )

                if accepted:
                    pending.append((iteration, node_id))
                while pending and pending[0][0] <= iteration - width_cfg:
                    pending.popleft()

                counter.merge(sub)

                if config.stop_on_goal and state.first_solution is not None:
                    stop = True
                    break
            if stop:
                break
            start += width

    def _simulate_commit(self, xs, width, n0, pre_key, pre_dist, points,
                         spec_key, spec_new, spec_results, batch1):
        """Fold intra-wave accepts into the speculation (two sim passes).

        The pre-pass speculation only sees the tree snapshot, so a sample
        whose true nearest is a node accepted *earlier in the same wave*
        would miss at commit and fall back to a scalar collision check.
        This walks the commit order ahead of time:

        * Pass A predicts each sample's acceptance from the batch-1
          verdicts; samples whose predicted nearest moves to an intra-wave
          accept get their edge re-steered and validated whole in one
          second :meth:`~repro.core.collision.CollisionChecker.
          motion_results_batch` call.
        * Pass B re-walks the chain with both verdict sets and fixes the
          final per-sample speculation (``spec_key``/``spec_new``/
          ``spec_results``), predicting intra-wave node ids from the
          insertion order.

        The simulation uses bitwise the same steering and distance
        arithmetic as the commit, so its predictions are exact unless a
        re-steered edge's own acceptance was mispredicted (third-order
        conflicts); any misprediction surfaces only as a commit-time
        speculation miss — the scalar fallback — never as a wrong result.

        Both passes prefilter with squared-distance matrices to the
        candidate accept points (one stacked einsum per candidate set);
        the exact scalar norm runs only on entries inside the 1e-9
        relative margin, which dwarfs the few-ulp matrix/norm divergence.
        """
        cand_idx = [j for j in range(width) if spec_new[j] is not None]
        if not cand_idx:
            for j in range(width):
                spec_key[j] = pre_key[j]
                spec_results[j] = batch1.get(j)
            return
        margin = 1.0 + 1e-9
        cmat = np.stack([spec_new[j] for j in cand_idx])
        d_a = cmat[None, :, :] - xs[:, None, :]
        sq_a = np.einsum("wmd,wmd->wm", d_a, d_a).tolist()
        col_of = {j: i for i, j in enumerate(cand_idx)}

        # ---- pass A: find edges that need a second collision batch
        accepts = []  # (candidate column, point)
        resteer = []
        for j in range(width):
            dist = pre_dist[j]
            bound = dist * dist * margin
            row = sq_a[j]
            pt = None
            for col, apt in accepts:
                if row[col] <= bound:
                    pdist = float(np.linalg.norm(apt - xs[j]))
                    if pdist < dist:
                        dist, pt = pdist, apt
                        bound = dist * dist * margin
            if pt is not None:
                # Moved intra-wave: re-steer; assume rejected this pass.
                if dist > 1e-12:
                    x2 = self._steer(pt, xs[j], dist)
                    resteer.append((j, pt, x2))
                continue
            res = batch1.get(j)
            if res is not None and not res[0]:
                accepts.append((col_of[j], spec_new[j]))
        batch2: dict = {}
        bcol_of: dict = {}
        sq_b = None
        if resteer:
            edge_results = self.checker.motion_results_batch(
                np.stack([pt for _, pt, _ in resteer]),
                np.stack([x2 for _, _, x2 in resteer]),
            )
            for i, ((j, _, x2), res) in enumerate(zip(resteer, edge_results)):
                batch2[j] = (x2, res)
                bcol_of[j] = i
            bmat = np.stack([x2 for _, _, x2 in resteer])
            d_b = bmat[None, :, :] - xs[:, None, :]
            sq_b = np.einsum("wmd,wmd->wm", d_b, d_b).tolist()

        # ---- pass B: exact chain replay with both verdict sets
        accepts = []  # (matrix flag, column, point); id = n0 + position
        for j in range(width):
            k, dist = pre_key[j], pre_dist[j]
            pt = points[k]
            bound = dist * dist * margin
            row_a = sq_a[j]
            row_b = sq_b[j] if sq_b is not None else None
            for idx, (in_b, col, apt) in enumerate(accepts):
                sq = row_b[col] if in_b else row_a[col]
                if sq <= bound:
                    pdist = float(np.linalg.norm(apt - xs[j]))
                    if pdist < dist:
                        k, dist, pt = n0 + idx, pdist, apt
                        bound = dist * dist * margin
            spec_key[j] = k
            if dist <= 1e-12:
                spec_new[j] = None
                spec_results[j] = None
                continue
            if k == pre_key[j]:
                x2 = spec_new[j]
                results = batch1.get(j)
                in_b, col = False, col_of.get(j)
            else:
                x2 = self._steer(pt, xs[j], dist)
                spec_new[j] = x2
                entry = batch2.get(j)
                results = None
                in_b, col = True, bcol_of.get(j)
                if entry is not None and np.array_equal(entry[0], x2):
                    results = entry[1]
            spec_results[j] = results
            if results is not None and not results[0]:
                accepts.append((in_b, col, spec_new[j]))

    def _replay_motion(self, result, counter) -> bool:
        """Commit a speculatively validated edge from its stored result.

        Mirrors :meth:`~repro.core.collision.CollisionChecker.
        motion_in_collision`: one motion-query metric, then the whole-edge
        verdict with its captured counter events merged in.
        """
        bump("repro_cc_motion_checks_total",
             help="Motion (edge) collision queries issued")
        verdict, events = result
        counter.merge(events)
        return verdict

    def _after_accept(self, tree, node_id, x_new, iteration, state) -> None:
        """Goal bookkeeping for an accepted sample (shared by both loops)."""
        task = self.task
        if float(np.linalg.norm(x_new - task.goal)) <= self.goal_tolerance:
            state.goal_nodes.append(node_id)
            if state.first_solution is None:
                state.first_solution = iteration
        if state.goal_nodes:
            best = min(
                tree.cost(n) + float(np.linalg.norm(tree.point(n) - task.goal))
                for n in state.goal_nodes
            )
            if best < state.best_known - 1e-9:
                state.best_known = best
                state.cost_history.append((iteration, best))
            if isinstance(self.sampler, InformedSampler):
                self.sampler.update_best_cost(best)

    def cache_stats(self) -> dict:
        """Hit/miss statistics of the software caches (empty when disabled)."""
        stats = {}
        if self.checker.config_cache is not None:
            stats["collision"] = self.checker.config_cache.stats()
        if self.checker.edge_cache is not None:
            stats["edge"] = self.checker.edge_cache.stats()
        index = getattr(self.strategy, "tree", None)
        cache = getattr(index, "neighborhood_cache", None)
        if cache is not None:
            stats["neighborhood"] = cache.stats()
        return stats

    def _record_run_metrics(self, obs, result, counter, elapsed_s: float) -> None:
        """Run-level metrics: plan count/latency and Fig-3 MAC categories."""
        registry = obs.registry
        registry.counter("repro_plans_total", "Completed planning runs").inc(
            outcome="success" if result.success else "failure"
        )
        registry.counter("repro_plan_rounds_total", "Sampling rounds executed").inc(
            result.iterations
        )
        registry.histogram(
            "repro_plan_seconds", "End-to-end planner wall time"
        ).observe(elapsed_s)
        for category, macs in counter.macs_by_category().items():
            registry.counter(
                "repro_macs_total", "MAC-equivalents by cost-model category"
            ).inc(macs, category=category)

    # -------------------------------------------------------------- internals

    def _nearest_with_repair(self, tree, x_rand, pending, counter, obs=None,
                             d_sq_row=None, snapshot_len=0):
        """Speculated nearest-neighbor search plus the repair step.

        Without speculation this is a plain exact search.  With speculation,
        the index search cannot see the pending (in-flight) node ids; the
        repair step then reads each pending node from the Missing Neighbors
        Buffer and keeps whichever candidate is truly nearest.
        """
        if obs is None:
            obs = PhaseRecorder()
        exclude = {key for _, key in pending} if pending else None
        with obs.phase("nearest", counter):
            found = self.strategy.nearest(x_rand, counter=counter, exclude=exclude)
        assert found is not None, "tree root can never be excluded"
        nearest_key, nearest_point, nearest_dist = found
        missing_used = 0
        repaired = False
        if pending:
            with obs.phase("repair", counter, entries=len(pending)):
                (nearest_key, nearest_point, nearest_dist,
                 missing_used, repaired) = self._repair(
                    tree, x_rand, pending, counter,
                    nearest_key, nearest_point, nearest_dist,
                    d_sq_row=d_sq_row, snapshot_len=snapshot_len,
                )
        return nearest_key, nearest_point, nearest_dist, missing_used, repaired

    def _repair(self, tree, x_rand, pending, counter,
                nearest_key, nearest_point, nearest_dist,
                d_sq_row=None, snapshot_len=0):
        """Missing-neighbors repair: compare against every pending node.

        Every pending entry is charged its buffer read and distance (the
        hardware always performs them), but when the wavefront planner
        supplies its precomputed squared-distance row the actual norm is
        skipped for snapshot entries that provably cannot beat the current
        nearest — the matrix agrees with the scalar norm to a few ulp,
        dwarfed by the 1e-9 relative margin, so the selected neighbor is
        bitwise unchanged.
        """
        dim = self.robot.dof
        missing_used = len(pending)
        repaired = False
        # One aggregated record per kind: integer cost weights make the
        # n-fold record bitwise equal to n single records.
        counter.record("buffer_read", dim=dim, n=missing_used)
        counter.record("dist", dim=dim, n=missing_used)
        bound = (
            nearest_dist * nearest_dist * (1.0 + 1e-9)
            if d_sq_row is not None else 0.0
        )
        for _, key in pending:
            if d_sq_row is not None and key < snapshot_len and d_sq_row[key] > bound:
                continue
            point = tree.point(key)
            dist = float(np.linalg.norm(point - x_rand))
            if dist < nearest_dist:
                nearest_key, nearest_point, nearest_dist = key, point, dist
                repaired = True
                if d_sq_row is not None:
                    bound = nearest_dist * nearest_dist * (1.0 + 1e-9)
        return nearest_key, nearest_point, nearest_dist, missing_used, repaired

    def _steer(self, origin: np.ndarray, target: np.ndarray, dist: float) -> np.ndarray:
        """Move from ``origin`` toward ``target`` by at most one step."""
        if dist <= self.step:
            return target.copy()
        return origin + (self.step / dist) * (target - origin)

    def _extend(self, tree, x_new, nearest_key, nearest_point, counter):
        """Choose-parent + insert + rewire for an accepted sample.

        With ``config.rewire`` disabled the sample is attached straight to
        ``x_nearest`` (plain RRT): no neighborhood query, no refinement.
        """
        config, dim = self.config, self.robot.dof
        if not config.rewire:
            edge = float(np.linalg.norm(x_new - nearest_point))
            node_id = tree.add(x_new, nearest_key, edge)
            self.strategy.insert(node_id, x_new, nearest_key=nearest_key, counter=counter)
            return node_id
        radius = config.neighbor_radius(len(tree), dim, self.step)
        before_neighborhood = counter.snapshot()
        neighborhood = self.strategy.neighborhood(
            x_new, radius, nearest_key=nearest_key, counter=counter
        )
        self._neighborhood_macs += counter.diff(before_neighborhood).total_macs()
        candidates = {key: (point, dist) for key, point, dist in neighborhood}
        nearest_edge = float(np.linalg.norm(x_new - nearest_point))
        candidates.setdefault(nearest_key, (nearest_point, nearest_edge))

        # Choose parent: lowest cost-to-come through a collision-free edge.
        # The edge from x_nearest was already verified by the extension check.
        parent_key, parent_edge = nearest_key, candidates[nearest_key][1]
        best_cost = tree.cost(nearest_key) + parent_edge
        ranked = sorted(
            candidates.items(), key=lambda kv: tree.cost(kv[0]) + kv[1][1]
        )
        for key, (point, dist) in ranked:
            counter.record("cost_update", dim=dim)
            cost = tree.cost(key) + dist
            if cost >= best_cost:
                break
            if not self.checker.motion_in_collision(point, x_new, counter=counter):
                parent_key, parent_edge, best_cost = key, dist, cost
                break

        node_id = tree.add(x_new, parent_key, parent_edge)
        self.strategy.insert(node_id, x_new, nearest_key=nearest_key, counter=counter)

        # Rewire: route neighbors through x_new when cheaper and collision free.
        new_cost = tree.cost(node_id)
        for key, (point, dist) in candidates.items():
            if key == parent_key:
                continue
            counter.record("cost_update", dim=dim)
            if new_cost + dist >= tree.cost(key) - 1e-12:
                continue
            if self._is_ancestor(tree, key, node_id):
                continue
            if not self.checker.motion_in_collision(x_new, point, counter=counter):
                tree.rewire(key, node_id, dist)
        return node_id

    @staticmethod
    def _is_ancestor(tree, candidate: int, node_id: int) -> bool:
        current = tree.parent(node_id)
        while current is not None:
            if current == candidate:
                return True
            current = tree.parent(current)
        return False

    @staticmethod
    def _round_record(diff: OpCounter, accepted, missing_used, repaired,
                      wave_width: int = 1, repaired_in_wave: bool = False) -> RoundRecord:
        loads = {"ns": 0.0, "cc": 0.0, "maint": 0.0, "other": 0.0}
        for kind, macs in diff.macs.items():
            if kind in _NS_KINDS:
                loads["ns"] += macs
            elif kind in _CC_KINDS:
                loads["cc"] += macs
            elif kind in _MAINT_KINDS:
                loads["maint"] += macs
            else:
                loads["other"] += macs
        return RoundRecord(
            ns_macs=loads["ns"],
            cc_macs=loads["cc"],
            maint_macs=loads["maint"],
            other_macs=loads["other"],
            accepted=accepted,
            missing_used=missing_used,
            repaired=repaired,
            events=dict(diff.events),
            wave_width=wave_width,
            repaired_in_wave=repaired_in_wave,
        )

    def _result(self, tree, goal_nodes, first_solution, counter, rounds, iterations,
                *, degraded_reason: Optional[str] = None):
        task = self.task
        status = "complete" if degraded_reason is None else "degraded"
        if goal_nodes:
            # Pick the cheapest goal-region node whose final hop to the
            # exact goal is itself collision free (the hop can be up to one
            # goal_tolerance long, so it must be verified like any edge).
            # Falls back to ending the path at the in-tolerance node.
            best, best_cost, best_tail = None, float("inf"), 0.0
            fallback, fallback_cost = None, float("inf")
            for node in goal_nodes:
                tail = float(np.linalg.norm(tree.point(node) - task.goal))
                cost = tree.cost(node) + tail
                if cost < fallback_cost:
                    fallback, fallback_cost = node, cost
                if cost < best_cost and (
                    tail <= 1e-12
                    or not self.checker.motion_in_collision(
                        tree.point(node), task.goal, counter=counter
                    )
                ):
                    best, best_cost, best_tail = node, cost, tail
            if best is not None:
                path = tree.path_to(best)
                if best_tail > 1e-12:
                    path = path + [task.goal.copy()]
                path_cost = best_cost
                goal_node = best
                goal_distance = 0.0
            else:
                goal_node = fallback
                path = tree.path_to(fallback)
                path_cost = tree.cost(fallback)
                goal_distance = float(
                    np.linalg.norm(tree.point(fallback) - task.goal)
                )
            return PlanResult(
                success=True,
                path=path,
                path_cost=path_cost,
                num_nodes=len(tree),
                iterations=iterations,
                counter=counter,
                rounds=rounds,
                goal_node=goal_node,
                first_solution_iteration=first_solution,
                neighborhood_macs=self._neighborhood_macs,
                cost_history=list(getattr(self, "_cost_history", [])),
                status=status,
                degraded_reason=degraded_reason,
                best_goal_distance=goal_distance,
            )
        path: List[np.ndarray] = []
        goal_distance = None
        if degraded_reason is not None and len(tree) > 0:
            # Anytime best-so-far: every tree edge was collision checked at
            # insertion, so the path to ANY node is a valid collision-free
            # prefix.  Return the one minimizing cost-to-come plus the
            # straight-line remainder to the goal (the classic anytime
            # heuristic), leaving path_cost at inf — the goal was not
            # reached, only approached.
            points = tree.points_view()
            remainder = np.linalg.norm(points - task.goal[None, :], axis=1)
            score = tree.costs_view() + remainder
            best_node = int(np.argmin(score))
            path = tree.path_to(best_node)
            goal_distance = float(remainder[best_node])
        return PlanResult(
            success=False,
            path=path,
            path_cost=float("inf"),
            num_nodes=len(tree),
            iterations=iterations,
            counter=counter,
            rounds=rounds,
            neighborhood_macs=self._neighborhood_macs,
            status=status,
            degraded_reason=degraded_reason,
            best_goal_distance=goal_distance,
        )


def plan(robot: RobotModel, task: PlanningTask, config: PlannerConfig) -> PlanResult:
    """Convenience wrapper: build a planner and run it once."""
    return RRTStarPlanner(robot, task, config).plan()
