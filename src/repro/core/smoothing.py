"""Path post-processing: shortcut smoothing.

A standard practical companion to sampling-based planners: repeatedly pick
two random waypoints on the path and splice them with a straight segment
when the movement between them is collision free.  Smoothing reduces the
zig-zag a finite sampling budget leaves behind — the same path-cost metric
the paper optimises (Section III-A discusses why path cost matters for the
robot's energy budget).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.collision import CollisionChecker
from repro.core.metrics import path_length


def shortcut_smooth(
    path: List[np.ndarray],
    checker: CollisionChecker,
    iterations: int = 100,
    seed: int = 0,
    counter=None,
) -> Tuple[List[np.ndarray], float]:
    """Shortcut-smooth ``path``; returns ``(smoothed_path, cost)``.

    Each iteration samples two non-adjacent waypoint indices and replaces
    the intermediate waypoints with a straight connection when that
    movement is collision free.  The input path is not modified.

    Raises ValueError for paths with fewer than two waypoints.
    """
    if len(path) < 2:
        raise ValueError("path must contain at least two waypoints")
    if iterations < 0:
        raise ValueError("iterations must be >= 0")
    rng = np.random.default_rng(seed)
    waypoints = [np.asarray(p, dtype=float).copy() for p in path]
    for _ in range(iterations):
        if len(waypoints) < 3:
            break
        i = int(rng.integers(0, len(waypoints) - 2))
        j = int(rng.integers(i + 2, len(waypoints)))
        if not checker.motion_in_collision(waypoints[i], waypoints[j], counter=counter):
            waypoints = waypoints[: i + 1] + waypoints[j:]
    return waypoints, path_length(waypoints)
