"""The EXP-tree: RRT\\*'s exploration tree with cost propagation.

The EXP-tree stores every accepted configuration (node), its parent edge,
and its cost-to-come from the start configuration.  The Tree Refinement
stage rewires edges when a cheaper route through a new node exists
(Section II-B); rewiring must propagate the cost improvement to the whole
affected subtree, which this implementation does eagerly so path costs are
always consistent (a tested invariant).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

import numpy as np


class ExpTree:
    """Exploration tree rooted at the start configuration.

    Node 0 is always the root.  Node ids are dense integers in insertion
    order, matching how the hardware addresses the EXP Node SRAM.
    """

    def __init__(self, root_config: np.ndarray):
        root = np.asarray(root_config, dtype=float)
        if root.ndim != 1:
            raise ValueError("root configuration must be 1-D")
        self.dim = root.shape[0]
        self._points: List[np.ndarray] = [root]
        self._parent: List[Optional[int]] = [None]
        self._cost: List[float] = [0.0]
        self._children: List[Set[int]] = [set()]

    def __len__(self) -> int:
        return len(self._points)

    @property
    def root(self) -> int:
        return 0

    def point(self, node_id: int) -> np.ndarray:
        """Configuration stored at ``node_id``."""
        return self._points[node_id]

    def parent(self, node_id: int) -> Optional[int]:
        """Parent id, or None for the root."""
        return self._parent[node_id]

    def cost(self, node_id: int) -> float:
        """Cost-to-come from the root."""
        return self._cost[node_id]

    def children(self, node_id: int) -> Set[int]:
        """Ids of direct children."""
        return set(self._children[node_id])

    def add(self, point: np.ndarray, parent_id: int, edge_cost: float) -> int:
        """Append a node under ``parent_id``; returns the new node id."""
        point = np.asarray(point, dtype=float)
        if point.shape != (self.dim,):
            raise ValueError(f"point must have shape ({self.dim},), got {point.shape}")
        if not 0 <= parent_id < len(self._points):
            raise IndexError(f"parent id {parent_id} out of range")
        if edge_cost < 0:
            raise ValueError("edge cost must be non-negative")
        node_id = len(self._points)
        self._points.append(point)
        self._parent.append(parent_id)
        self._cost.append(self._cost[parent_id] + edge_cost)
        self._children.append(set())
        self._children[parent_id].add(node_id)
        return node_id

    def rewire(self, node_id: int, new_parent_id: int, new_edge_cost: float) -> None:
        """Reattach ``node_id`` under ``new_parent_id`` and propagate costs.

        Raises ValueError when the rewiring would create a cycle (the new
        parent is a descendant of the node), which a correct planner never
        attempts but tests and the validator guard against.
        """
        if node_id == self.root:
            raise ValueError("cannot rewire the root")
        if new_edge_cost < 0:
            raise ValueError("edge cost must be non-negative")
        if self._is_descendant(new_parent_id, of=node_id):
            raise ValueError(f"rewiring {node_id} under {new_parent_id} would create a cycle")
        old_parent = self._parent[node_id]
        if old_parent is not None:
            self._children[old_parent].discard(node_id)
        self._parent[node_id] = new_parent_id
        self._children[new_parent_id].add(node_id)
        new_cost = self._cost[new_parent_id] + new_edge_cost
        delta = new_cost - self._cost[node_id]
        self._propagate_delta(node_id, delta)

    def _is_descendant(self, candidate: int, of: int) -> bool:
        if candidate == of:
            return True
        stack = [of]
        while stack:
            current = stack.pop()
            for child in self._children[current]:
                if child == candidate:
                    return True
                stack.append(child)
        return False

    def _propagate_delta(self, node_id: int, delta: float) -> None:
        stack = [node_id]
        while stack:
            current = stack.pop()
            self._cost[current] += delta
            stack.extend(self._children[current])

    def path_to(self, node_id: int) -> List[np.ndarray]:
        """Configurations from the root to ``node_id`` (inclusive)."""
        path: List[np.ndarray] = []
        current: Optional[int] = node_id
        while current is not None:
            path.append(self._points[current])
            current = self._parent[current]
        path.reverse()
        return path

    def nodes(self) -> Iterator[int]:
        """All node ids in insertion order."""
        return iter(range(len(self._points)))

    def depth(self, node_id: int) -> int:
        """Number of edges from the root to ``node_id``."""
        depth = 0
        current = self._parent[node_id]
        while current is not None:
            depth += 1
            current = self._parent[current]
        return depth

    def validate(self) -> None:
        """Raise AssertionError when a structural invariant is broken.

        Invariants: parent/child agreement, acyclicity (every node reaches
        the root), and cost consistency (cost = parent cost + edge length).
        """
        n = len(self._points)
        for node_id in range(1, n):
            parent = self._parent[node_id]
            assert parent is not None, f"non-root node {node_id} has no parent"
            assert node_id in self._children[parent], "parent/child mismatch"
            edge = float(np.linalg.norm(self._points[node_id] - self._points[parent]))
            expected = self._cost[parent] + edge
            assert abs(self._cost[node_id] - expected) < 1e-6, (
                f"cost inconsistency at node {node_id}: "
                f"{self._cost[node_id]} != {expected}"
            )
        # Acyclicity: walking up from every node must terminate at the root.
        for node_id in range(n):
            seen = set()
            current: Optional[int] = node_id
            while current is not None:
                assert current not in seen, f"cycle through node {current}"
                seen.add(current)
                current = self._parent[current]
            assert 0 in seen, f"node {node_id} does not reach the root"
