"""The EXP-tree: RRT\\*'s exploration tree with cost propagation.

The EXP-tree stores every accepted configuration (node), its parent edge,
and its cost-to-come from the start configuration.  The Tree Refinement
stage rewires edges when a cheaper route through a new node exists
(Section II-B); rewiring must propagate the cost improvement to the whole
affected subtree, which this implementation does eagerly so path costs are
always consistent (a tested invariant).

Storage is structure-of-arrays: configurations live in one preallocated,
geometrically grown ``(capacity, dim)`` matrix with parallel cost and
parent arrays, mirroring how the hardware's EXP Node SRAM lays nodes out
as dense rows.  :meth:`ExpTree.points_view` / :meth:`ExpTree.costs_view`
expose the live prefix so distance reductions over the whole tree are
single vectorised ndarray operations instead of per-node Python loops.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set

import numpy as np

_INITIAL_CAPACITY = 64


class ExpTree:
    """Exploration tree rooted at the start configuration.

    Node 0 is always the root.  Node ids are dense integers in insertion
    order, matching how the hardware addresses the EXP Node SRAM; the id is
    the row index into the coordinate matrix.
    """

    def __init__(self, root_config: np.ndarray):
        root = np.asarray(root_config, dtype=float)
        if root.ndim != 1:
            raise ValueError("root configuration must be 1-D")
        self.dim = root.shape[0]
        self._coords = np.empty((_INITIAL_CAPACITY, self.dim), dtype=float)
        self._cost = np.empty(_INITIAL_CAPACITY, dtype=float)
        self._parent = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._size = 0
        self._children: List[Set[int]] = []
        self._append(root, -1, 0.0)

    def __len__(self) -> int:
        return self._size

    @property
    def root(self) -> int:
        return 0

    def _append(self, point: np.ndarray, parent: int, cost: float) -> int:
        if self._size == self._cost.shape[0]:
            self._grow()
        node_id = self._size
        self._coords[node_id] = point
        self._cost[node_id] = cost
        self._parent[node_id] = parent
        self._children.append(set())
        self._size = node_id + 1
        return node_id

    def _grow(self) -> None:
        new_capacity = max(2 * self._cost.shape[0], _INITIAL_CAPACITY)
        coords = np.empty((new_capacity, self.dim), dtype=float)
        coords[: self._size] = self._coords[: self._size]
        cost = np.empty(new_capacity, dtype=float)
        cost[: self._size] = self._cost[: self._size]
        parent = np.empty(new_capacity, dtype=np.int64)
        parent[: self._size] = self._parent[: self._size]
        self._coords, self._cost, self._parent = coords, cost, parent

    def point(self, node_id: int) -> np.ndarray:
        """Configuration stored at ``node_id`` (a row view, do not mutate)."""
        return self._coords[: self._size][node_id]

    def points_view(self) -> np.ndarray:
        """All stored configurations as one ``(len(self), dim)`` view."""
        return self._coords[: self._size]

    def parent(self, node_id: int) -> Optional[int]:
        """Parent id, or None for the root."""
        parent = int(self._parent[: self._size][node_id])
        return None if parent < 0 else parent

    def cost(self, node_id: int) -> float:
        """Cost-to-come from the root."""
        return float(self._cost[: self._size][node_id])

    def costs_view(self) -> np.ndarray:
        """All cost-to-come values as one ``(len(self),)`` view."""
        return self._cost[: self._size]

    def children(self, node_id: int) -> Set[int]:
        """Ids of direct children."""
        return set(self._children[node_id])

    def add(self, point: np.ndarray, parent_id: int, edge_cost: float) -> int:
        """Append a node under ``parent_id``; returns the new node id."""
        point = np.asarray(point, dtype=float)
        if point.shape != (self.dim,):
            raise ValueError(f"point must have shape ({self.dim},), got {point.shape}")
        if not 0 <= parent_id < self._size:
            raise IndexError(f"parent id {parent_id} out of range")
        if edge_cost < 0:
            raise ValueError("edge cost must be non-negative")
        node_id = self._append(point, parent_id, self._cost[parent_id] + edge_cost)
        self._children[parent_id].add(node_id)
        return node_id

    def rewire(self, node_id: int, new_parent_id: int, new_edge_cost: float) -> None:
        """Reattach ``node_id`` under ``new_parent_id`` and propagate costs.

        Raises ValueError when the rewiring would create a cycle (the new
        parent is a descendant of the node), which a correct planner never
        attempts but tests and the validator guard against.
        """
        if node_id == self.root:
            raise ValueError("cannot rewire the root")
        if new_edge_cost < 0:
            raise ValueError("edge cost must be non-negative")
        if self._is_descendant(new_parent_id, of=node_id):
            raise ValueError(f"rewiring {node_id} under {new_parent_id} would create a cycle")
        old_parent = int(self._parent[node_id])
        if old_parent >= 0:
            self._children[old_parent].discard(node_id)
        self._parent[node_id] = new_parent_id
        self._children[new_parent_id].add(node_id)
        new_cost = self._cost[new_parent_id] + new_edge_cost
        delta = new_cost - self._cost[node_id]
        self._propagate_delta(node_id, delta)

    def _is_descendant(self, candidate: int, of: int) -> bool:
        if candidate == of:
            return True
        stack = [of]
        while stack:
            current = stack.pop()
            for child in self._children[current]:
                if child == candidate:
                    return True
                stack.append(child)
        return False

    def _propagate_delta(self, node_id: int, delta: float) -> None:
        stack = [node_id]
        while stack:
            current = stack.pop()
            self._cost[current] += delta
            stack.extend(self._children[current])

    def path_to(self, node_id: int) -> List[np.ndarray]:
        """Configurations from the root to ``node_id`` (inclusive)."""
        path: List[np.ndarray] = []
        current: Optional[int] = node_id
        while current is not None:
            path.append(self.point(current))
            current = self.parent(current)
        path.reverse()
        return path

    def nodes(self) -> Iterator[int]:
        """All node ids in insertion order."""
        return iter(range(self._size))

    def depth(self, node_id: int) -> int:
        """Number of edges from the root to ``node_id``."""
        depth = 0
        current = self.parent(node_id)
        while current is not None:
            depth += 1
            current = self.parent(current)
        return depth

    def validate(self) -> None:
        """Raise AssertionError when a structural invariant is broken.

        Invariants: parent/child agreement, acyclicity (every node reaches
        the root), and cost consistency (cost = parent cost + edge length).
        """
        n = self._size
        for node_id in range(1, n):
            parent = self.parent(node_id)
            assert parent is not None, f"non-root node {node_id} has no parent"
            assert node_id in self._children[parent], "parent/child mismatch"
            edge = float(np.linalg.norm(self._coords[node_id] - self._coords[parent]))
            expected = self._cost[parent] + edge
            assert abs(self._cost[node_id] - expected) < 1e-6, (
                f"cost inconsistency at node {node_id}: "
                f"{self._cost[node_id]} != {expected}"
            )
        # Acyclicity: walking up from every node must terminate at the root.
        for node_id in range(n):
            seen = set()
            current: Optional[int] = node_id
            while current is not None:
                assert current not in seen, f"cycle through node {current}"
                seen.add(current)
                current = self.parent(current)
            assert 0 in seen, f"node {node_id} does not reach the root"
