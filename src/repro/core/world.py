"""Planning environments: workspace, obstacles, and task definitions.

Section V evaluates in a simulated workspace of size 300x300(x300) with
8/16/32/48 randomly placed OBB obstacles (3D size up to 30x30x50, 2D up to
30x30, random orientations).  Obstacles arrive in OBB format (the output of
a perception front-end); the AABB forms consumed by the first-stage checker
are derived from the OBBs, mirroring how MOPED fills its AABB SRAM from the
obstacle OBB SRAM (Section V, "Environmental Settings").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import InvalidRequest
from repro.geometry.aabb import AABB
from repro.geometry.obb import OBB
from repro.kernels.tensors import FlatRTree, ObstacleTensors
from repro.spatial.rtree import RTree


@dataclass(frozen=True)
class Environment:
    """A static workspace populated with OBB obstacles.

    Attributes:
        workspace_dim: 2 or 3.
        size: side length of the (square/cubic) workspace.
        obstacles: obstacle OBBs, as produced by perception.
    """

    workspace_dim: int
    size: float
    obstacles: tuple

    def __init__(self, workspace_dim: int, size: float, obstacles: Sequence[OBB]):
        if workspace_dim not in (2, 3):
            raise ValueError("workspace_dim must be 2 or 3")
        if size <= 0:
            raise ValueError("size must be positive")
        for index, obstacle in enumerate(obstacles):
            if obstacle.dim != workspace_dim:
                raise ValueError(
                    f"obstacle dim {obstacle.dim} != workspace dim {workspace_dim}"
                )
            # Perception output is untrusted: a NaN/inf OBB would poison
            # the derived AABBs, R-tree, and SAT kernels far from here.
            if not (
                np.isfinite(obstacle.center).all()
                and np.isfinite(obstacle.half_extents).all()
                and np.isfinite(obstacle.rotation).all()
            ):
                raise InvalidRequest(
                    f"obstacle {index} has non-finite geometry"
                )
        object.__setattr__(self, "workspace_dim", workspace_dim)
        object.__setattr__(self, "size", float(size))
        object.__setattr__(self, "obstacles", tuple(obstacles))

    @cached_property
    def obstacle_aabbs(self) -> List[AABB]:
        """Derived AABB representation of every obstacle (the AABB SRAM)."""
        return [obstacle.to_aabb() for obstacle in self.obstacles]

    @cached_property
    def rtree(self) -> RTree:
        """STR-packed R-tree over the obstacle AABBs (built offline)."""
        return RTree(self.obstacle_aabbs)

    @cached_property
    def obstacle_tensors(self) -> ObstacleTensors:
        """Obstacles stacked into the batch-kernel tensor form.

        Built once per environment (like :attr:`rtree`) so every motion
        check reads the same contiguous arrays; the AABB rows reuse
        :attr:`obstacle_aabbs` verbatim.
        """
        return ObstacleTensors.from_obbs(
            self.obstacles, aabbs=self.obstacle_aabbs, dim=self.workspace_dim
        )

    @cached_property
    def flat_rtree(self) -> FlatRTree:
        """Index-addressed export of :attr:`rtree` for the batch checker."""
        return FlatRTree.from_rtree(self.rtree)

    @property
    def num_obstacles(self) -> int:
        return len(self.obstacles)

    def bounds(self) -> AABB:
        """The workspace as an AABB."""
        return AABB(np.zeros(self.workspace_dim), np.full(self.workspace_dim, self.size))


@dataclass(frozen=True)
class PlanningTask:
    """One planning problem: a robot, an environment, and start/goal configs."""

    robot_name: str
    environment: Environment
    start: np.ndarray
    goal: np.ndarray
    task_id: int = 0

    def __post_init__(self) -> None:
        start = np.asarray(self.start, dtype=float)
        goal = np.asarray(self.goal, dtype=float)
        if start.shape != goal.shape or start.ndim != 1:
            raise ValueError("start and goal must be matching 1-D configurations")
        if not (np.isfinite(start).all() and np.isfinite(goal).all()):
            raise InvalidRequest("start and goal configurations must be finite")
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "goal", goal)
