"""MOPED: the user-facing planning engine facade.

This module packages the paper's full co-design into the public API a
downstream user works with::

    from repro import MopedEngine, get_robot
    from repro.workloads import random_environment

    robot = get_robot("viperx300")
    env = random_environment(workspace_dim=3, num_obstacles=16, seed=0)
    engine = MopedEngine(robot, env)
    result = engine.plan(start, goal)

``MopedEngine`` defaults to the full algorithm (two-stage collision check,
SI-MBR-Tree search, approximated neighborhoods, O(1) insertion); the
``variant`` argument selects the Fig 16 ablation rungs, and ``"baseline"``
yields the original RRT\\* for comparison.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import PlannerConfig, baseline_config, moped_config
from repro.core.metrics import PlanResult
from repro.core.robots import RobotModel, get_robot
from repro.core.rrtstar import RRTStarPlanner
from repro.core.world import Environment, PlanningTask

VARIANTS = ("baseline", "v1", "v2", "v3", "v4", "full")


def config_for_variant(variant: str, **overrides) -> PlannerConfig:
    """PlannerConfig for an ablation variant name (see :data:`VARIANTS`)."""
    if variant == "baseline":
        return baseline_config(**overrides)
    return moped_config(variant, **overrides)


class MopedEngine:
    """High-level planning engine bound to one robot and environment.

    Args:
        robot: a :class:`~repro.core.robots.RobotModel` or registry name.
        environment: the static workspace to plan in.
        variant: ``"full"`` (default), ``"v1"``..``"v4"``, or ``"baseline"``.
        **config_overrides: any :class:`~repro.core.config.PlannerConfig`
            field (``max_samples``, ``seed``, ``goal_bias``, ...).
    """

    def __init__(
        self,
        robot,
        environment: Environment,
        variant: str = "full",
        **config_overrides,
    ):
        if isinstance(robot, str):
            robot = get_robot(robot)
        if variant not in VARIANTS:
            raise ValueError(f"unknown variant {variant!r}; available: {VARIANTS}")
        self.robot: RobotModel = robot
        self.environment = environment
        self.variant = variant
        self.config = config_for_variant(variant, **config_overrides)

    def plan(
        self,
        start: np.ndarray,
        goal: np.ndarray,
        task_id: int = 0,
    ) -> PlanResult:
        """Plan a collision-free path from ``start`` to ``goal``."""
        task = PlanningTask(
            robot_name=self.robot.name,
            environment=self.environment,
            start=np.asarray(start, dtype=float),
            goal=np.asarray(goal, dtype=float),
            task_id=task_id,
        )
        return self.plan_task(task)

    def plan_task(self, task: PlanningTask) -> PlanResult:
        """Plan a pre-built :class:`~repro.core.world.PlanningTask`.

        Routes through :func:`~repro.core.planners.make_planner`, so
        ``config.mode`` selects the algorithm (RRT* or RRT-Connect).
        """
        from repro.core.planners import make_planner
        from repro.obs import get_tracer

        planner = make_planner(self.robot, task, self.config)
        with get_tracer().span(
            "engine.plan", variant=self.variant, robot=self.robot.name,
            task_id=task.task_id,
        ):
            return planner.plan()

    def with_config(self, **overrides) -> "MopedEngine":
        """A copy of this engine with configuration fields replaced."""
        merged = {**_config_as_dict(self.config), **overrides}
        engine = MopedEngine.__new__(MopedEngine)
        engine.robot = self.robot
        engine.environment = self.environment
        engine.variant = self.variant
        engine.config = PlannerConfig(**merged)
        return engine


def _config_as_dict(config: PlannerConfig) -> dict:
    from dataclasses import asdict

    return asdict(config)
