"""RRT-Connect: the bidirectional variant (Kuffner & LaValle, ref [45]).

Section VI places RRT-Connect at the *exploration-tree level* of the
parallelisation design space — two trees grow from start and goal and the
planner tries to connect them after every extension.  MOPED's algorithmic
optimisations (two-stage collision checking, SI-MBR-Tree search, O(1)
insertion) apply per tree unchanged, which is the paper's claim that its
techniques transfer across the whole RRT family.  This implementation
reuses the same collision checkers and neighbor strategies as the RRT\\*
loop, so ablations compose.

RRT-Connect is a feasibility planner: it returns the first path that joins
the trees (no cost refinement), typically after far fewer samples than
RRT\\* needs for a first solution.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.collision import make_checker
from repro.core.config import PlannerConfig
from repro.core.counters import OpCounter
from repro.core.metrics import PlanResult, RoundRecord, path_length
from repro.core.neighbors import make_strategy
from repro.core.rng import LFSRSampler, NumpySampler
from repro.core.robots import RobotModel
from repro.core.tree import ExpTree
from repro.core.world import PlanningTask
from repro.core.rrtstar import _CC_KINDS, _MAINT_KINDS, _NS_KINDS


class RRTConnectPlanner:
    """Bidirectional RRT with greedy connect extensions."""

    def __init__(self, robot: RobotModel, task: PlanningTask, config: PlannerConfig):
        if task.start.shape != (robot.dof,) or task.goal.shape != (robot.dof,):
            raise ValueError(
                f"task configurations must be {robot.dof}-dimensional for {robot.name}"
            )
        self.robot = robot
        self.task = task
        self.config = config
        self.step = config.resolved_step(robot.step_size)
        resolution = config.resolved_motion_resolution(robot.step_size)
        checker_kwargs = {}
        if config.checker == "two_stage":
            checker_kwargs["fine_stage"] = config.fine_stage
        self.checker = make_checker(
            config.checker, robot, task.environment, resolution, **checker_kwargs
        )

        def new_strategy():
            return make_strategy(
                config.neighbor_strategy,
                robot.dof,
                steering_insert=config.steering_insert,
                approx_neighborhood=config.approx_neighborhood,
                capacity=config.simbr_capacity,
                kd_rebuild_every=config.kd_rebuild_every,
                approx_scope=config.approx_scope,
            )

        self.strategies = (new_strategy(), new_strategy())
        sampler_cls = {"numpy": NumpySampler, "lfsr": LFSRSampler}.get(config.sampler)
        if sampler_cls is None:
            raise KeyError(f"unknown sampler {config.sampler!r}; use 'numpy' or 'lfsr'")
        self.sampler = sampler_cls(robot.config_lo, robot.config_hi, seed=config.seed)

    # ------------------------------------------------------------------- plan

    def plan(self) -> PlanResult:
        """Grow both trees until they connect or the budget runs out."""
        config, dim = self.config, self.robot.dof
        counter = OpCounter()
        trees = (ExpTree(self.task.start), ExpTree(self.task.goal))
        self.trees = trees
        self.strategies[0].insert(0, self.task.start, counter=counter)
        self.strategies[1].insert(0, self.task.goal, counter=counter)
        rounds: List[RoundRecord] = []
        bridge: Optional[Tuple[int, int]] = None  # (node in tree a, node in tree b)
        active = 0  # which tree extends toward the sample this round

        for iteration in range(config.max_samples):
            snapshot = counter.snapshot()
            x_rand = self.sampler.sample(counter=counter)
            new_a = self._extend(active, x_rand, counter)
            accepted = new_a is not None
            if accepted:
                target = trees[active].point(new_a)
                new_b = self._connect(1 - active, target, counter)
                if new_b is not None:
                    other_point = trees[1 - active].point(new_b)
                    if float(np.linalg.norm(other_point - target)) <= 1e-9:
                        bridge = (new_a, new_b) if active == 0 else (new_b, new_a)
            rounds.append(self._round_record(counter.diff(snapshot), accepted))
            if bridge is not None:
                break
            active = 1 - active

        if bridge is None:
            return PlanResult(
                success=False,
                path=[],
                path_cost=float("inf"),
                num_nodes=len(trees[0]) + len(trees[1]),
                iterations=len(rounds),
                counter=counter,
                rounds=rounds,
            )
        forward = trees[0].path_to(bridge[0])
        backward = trees[1].path_to(bridge[1])
        path = forward + backward[::-1][1:]  # bridge point appears once
        return PlanResult(
            success=True,
            path=path,
            path_cost=path_length(path),
            num_nodes=len(trees[0]) + len(trees[1]),
            iterations=len(rounds),
            counter=counter,
            rounds=rounds,
            goal_node=bridge[0],
            first_solution_iteration=len(rounds) - 1,
        )

    # -------------------------------------------------------------- internals

    def _extend(self, side: int, target: np.ndarray, counter) -> Optional[int]:
        """One bounded step of tree ``side`` toward ``target``.

        Returns the new node id, or None when the step is blocked or the
        target coincides with the nearest node.
        """
        tree = self.trees_ref(side)
        strategy = self.strategies[side]
        found = strategy.nearest(target, counter=counter)
        nearest_key, nearest_point, dist = found
        if dist <= 1e-12:
            return None
        counter.record("steer", dim=self.robot.dof)
        if dist <= self.step:
            x_new = target.copy()
        else:
            x_new = nearest_point + (self.step / dist) * (target - nearest_point)
        if self.checker.motion_in_collision(nearest_point, x_new, counter=counter):
            return None
        edge = float(np.linalg.norm(x_new - nearest_point))
        node_id = tree.add(x_new, nearest_key, edge)
        strategy.insert(node_id, x_new, nearest_key=nearest_key, counter=counter)
        return node_id

    def _connect(self, side: int, target: np.ndarray, counter) -> Optional[int]:
        """Greedily extend tree ``side`` toward ``target`` until blocked.

        Returns the last node added (which equals ``target`` on success),
        or None when not even one step succeeded.
        """
        last = None
        while True:
            node_id = self._extend(side, target, counter)
            if node_id is None:
                return last
            last = node_id
            if float(np.linalg.norm(self.trees_ref(side).point(node_id) - target)) <= 1e-9:
                return node_id

    def trees_ref(self, side: int) -> ExpTree:
        return self.trees[side]

    def _round_record(self, diff: OpCounter, accepted: bool) -> RoundRecord:
        loads = {"ns": 0.0, "cc": 0.0, "maint": 0.0, "other": 0.0}
        for kind, macs in diff.macs.items():
            if kind in _NS_KINDS:
                loads["ns"] += macs
            elif kind in _CC_KINDS:
                loads["cc"] += macs
            elif kind in _MAINT_KINDS:
                loads["maint"] += macs
            else:
                loads["other"] += macs
        return RoundRecord(
            ns_macs=loads["ns"],
            cc_macs=loads["cc"],
            maint_macs=loads["maint"],
            other_macs=loads["other"],
            accepted=accepted,
            events=dict(diff.events),
        )
